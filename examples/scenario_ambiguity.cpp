// Scenario 2 — resolving ambiguous specifications (paper §2, experiment E3).
//
// "(Cust->R3->R1->P1->...->D1) >> (Cust->R3->R2->P2->...->D1)" — what about
// the paths the ranking never mentions? The synthesizer blocks them
// (interpretation 1); the administrator expected them as fallbacks
// (interpretation 2). The subspecification at R3 (paper Fig. 4) surfaces
// the discrepancy.
//
// Run:  ./scenario_ambiguity
#include <iostream>

#include "bgp/simulator.hpp"
#include "explain/report.hpp"
#include "spec/checker.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"
#include "util/strings.hpp"

int main() {
  using namespace ns;

  const synth::Scenario s = synth::Scenario2();
  std::cout << "Specification (paper Figs. 1a + 3):\n\n"
            << s.spec.ToString() << "\n";

  synth::Synthesizer synthesizer(s.topo, s.spec);
  auto solved = synthesizer.Synthesize(s.sketch);
  if (!solved) {
    std::cerr << solved.error().ToString() << "\n";
    return 1;
  }

  // How many D1 paths did the customer end up with?
  auto sim = bgp::Simulate(s.topo, solved.value().network);
  if (!sim) return 1;
  std::cout << "Usable D1 routes at the customer after synthesis:\n";
  int usable = 0;
  for (const auto& route : sim.value().rib.at("Cust")) {
    if (route.prefix != s.d1_prefix) continue;
    std::cout << "  " << route.ToString() << "\n";
    ++usable;
  }
  std::cout << "-> only " << usable
            << " of the 4 possible paths survive: the synthesizer blocked "
               "every unranked path (less redundancy than expected!).\n\n";

  std::cout << "The subspecification at R3 explains why (paper Fig. 4):\n\n";
  explain::Session session(s.topo, s.spec, solved.value().network);
  auto answer =
      session.Ask(explain::Selection::Router("R3"), explain::LiftMode::kExact);
  if (!answer) {
    std::cerr << answer.error().ToString() << "\n";
    return 1;
  }
  std::cout << answer.value().SubspecText() << "\n\n";
  std::cout << "-> Besides ordering the two ranked paths, R3 must *drop* the "
               "detours — the network is \"trying to block paths that are "
               "not explicitly specified, contradicting the original "
               "intent\".\n\n";

  // Demonstrate the two interpretations with the checker.
  const spec::RoutingOutcome outcome =
      bgp::ToRoutingOutcome(sim.value(), s.spec);
  const auto strict = spec::Check(
      s.spec, outcome,
      spec::CheckOptions{spec::PreferenceSemantics::kStrictBlocked});
  const auto fallback = spec::Check(
      s.spec, outcome,
      spec::CheckOptions{spec::PreferenceSemantics::kFallbackAllowed});
  std::cout << "Checker, interpretation (1) unranked-blocked : "
            << (strict.ok() ? "satisfied" : strict.ToString()) << "\n";
  std::cout << "Checker, interpretation (2) fallback-allowed : "
            << (fallback.ok() ? "satisfied" : fallback.ToString()) << "\n";
  std::cout << "\nBoth interpretations accept this configuration — but only "
               "because the synthesizer already removed the fallbacks. The "
               "administrator now adds allow statements for them.\n\n";

  // ---- Round 2: the refinement the paper describes -----------------------
  std::cout << "#### Round 2: allow the unranked paths as fallbacks ####\n\n";
  const synth::Scenario refined = synth::Scenario2Refined();
  std::cout << refined.spec.ToString() << "\n";
  synth::Synthesizer refined_synthesizer(refined.topo, refined.spec);
  auto round2 = refined_synthesizer.Synthesize(refined.sketch);
  if (!round2) {
    std::cerr << round2.error().ToString() << "\n";
    return 1;
  }
  auto sim2 = bgp::Simulate(refined.topo, round2.value().network);
  if (!sim2) return 1;
  int usable2 = 0;
  for (const auto& route : sim2.value().rib.at("Cust")) {
    if (route.prefix == refined.d1_prefix) {
      std::cout << "  " << route.ToString() << "\n";
      ++usable2;
    }
  }
  const auto* best = sim2.value().BestRoute("Cust", refined.d1_prefix);
  std::cout << "-> " << usable2 << " usable paths (full redundancy), and "
            << "forwarding still follows the ranked preference: "
            << (best ? ns::util::Join(best->via, " -> ") : "none") << "\n";
  return 0;
}
