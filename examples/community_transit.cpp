// The paper's §5 discussion, executable: the community-tagging no-transit
// idiom, modular assumptions about the rest of the network, and
// explainable verification.
//
//   "when inspecting the local subspecification for router R1, which
//    denies routes with community 100:2 from R1 to P1, it is essential to
//    ensure a route is tagged with community 100:2 if received from P2"
//
// Run:  ./community_transit
#include <iostream>

#include "bgp/simulator.hpp"
#include "config/render.hpp"
#include "explain/report.hpp"
#include "explain/verify.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace ns;

  const synth::Scenario s = synth::Scenario1();
  const config::NetworkConfig network = synth::Scenario1CommunityConfig();

  std::cout << "R1's configuration (community idiom, cf. paper §5):\n\n"
            << config::RenderRouter(*network.FindRouter("R1"), &s.topo)
            << "\n";

  // Unlike scenario 1's deny-everything model, connectivity survives.
  auto sim = bgp::Simulate(s.topo, network);
  if (!sim) return 1;
  const net::Prefix cust = network.FindRouter("Cust")->networks[0];
  std::cout << "P1 reaches the customer network: "
            << (sim.value().BestRoute("P1", cust) ? "yes" : "NO") << "\n";
  std::cout << "transit between the providers  : blocked (verified below)\n\n";

  auto verdict = explain::VerifyWithEncoder(s.topo, s.spec, network);
  if (!verdict) return 1;
  std::cout << "encoder-based verification: " << verdict.value().ToString()
            << "\n";

  // The local filter's subspecification...
  explain::Session session(s.topo, s.spec, network);
  auto answer = session.Ask(explain::Selection::Map("R1", "R1_to_P1"),
                            explain::LiftMode::kExact);
  if (!answer) return 1;
  std::cout << "Local contract at R1's provider-facing map:\n"
            << answer.value().SubspecText() << "\n\n";

  // ...holds only under an assumption about everyone else: the
  // rest-of-network summary (paper §5, "view the rest of the network as a
  // single component").
  auto rest = session.Ask(explain::Selection::Rest("R1"));
  if (!rest) return 1;
  std::cout << "What the rest of the network owes R1 ("
            << rest.value().subspec.holes.size()
            << " symbolized fields, residual "
            << rest.value().subspec.metrics.residual_constraints
            << " constraints):\n";
  std::cout << "-> non-empty: R2's import map must keep tagging P2's routes "
               "with 100:2, or R1's filter silently stops working.\n";
  return 0;
}
