// Scenario 1 — identifying underspecified paths (paper §2, experiment E2).
//
// The administrator asks for "no transit traffic" and nothing else. The
// synthesizer happily blocks *everything* towards the providers; the
// subspecification at R1 makes that brutally visible (`!(R1->P1)`), the
// administrator refines the specification, and synthesis now produces a
// discriminating configuration.
//
// Run:  ./scenario_underspec
#include <iostream>

#include "bgp/simulator.hpp"
#include "config/render.hpp"
#include "explain/report.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"

namespace {

void ShowReachability(const ns::net::Topology& topo,
                      const ns::config::NetworkConfig& network) {
  using namespace ns;
  auto sim = bgp::Simulate(topo, network);
  if (!sim) {
    std::cerr << "simulation failed: " << sim.error().ToString() << "\n";
    return;
  }
  const net::Prefix cust = network.FindRouter("Cust")->networks[0];
  for (const char* provider : {"P1", "P2"}) {
    const bgp::Route* route = sim.value().BestRoute(provider, cust);
    std::cout << "  " << provider << " -> customer network ("
              << cust.ToString() << "): "
              << (route ? "reachable via " + route->ToString()
                        : "UNREACHABLE")
              << "\n";
  }
}

}  // namespace

int main() {
  using namespace ns;

  std::cout << "#### Round 1: the under-specified intent ####\n\n";
  const synth::Scenario s1 = synth::Scenario1();
  std::cout << s1.spec.ToString() << "\n";

  synth::Synthesizer synthesizer(s1.topo, s1.spec);
  auto round1 = synthesizer.Synthesize(s1.sketch);
  if (!round1) {
    std::cerr << round1.error().ToString() << "\n";
    return 1;
  }
  std::cout << "Synthesis succeeded; provider reachability of the customer:\n";
  ShowReachability(s1.topo, round1.value().network);

  std::cout << "\nThe administrator asks about R1 (paper Fig. 2):\n\n";
  explain::Session session(s1.topo, s1.spec, round1.value().network);
  auto answer = session.Ask(explain::Selection::Map("R1", "R1_to_P1"),
                            explain::LiftMode::kFaithful);
  if (!answer) {
    std::cerr << answer.error().ToString() << "\n";
    return 1;
  }
  std::cout << answer.value().SubspecText() << "\n\n";
  std::cout << "-> The configuration satisfies \"no transit\" by dropping "
               "ALL routes to Provider 1 — clearly not the intent: it cuts "
               "the customer off from the provider.\n\n";

  std::cout << "#### Round 2: the refined specification ####\n\n";
  const synth::Scenario s1b = synth::Scenario1Refined();
  std::cout << s1b.spec.ToString() << "\n";

  synth::Synthesizer refined_synthesizer(s1b.topo, s1b.spec);
  auto round2 = refined_synthesizer.Synthesize(s1b.sketch);
  if (!round2) {
    std::cerr << round2.error().ToString() << "\n";
    return 1;
  }
  std::cout << "Provider reachability after refinement:\n";
  ShowReachability(s1b.topo, round2.value().network);

  std::cout << "\nR1's provider-facing map now discriminates:\n\n";
  std::cout << config::RenderRouter(*round2.value().network.FindRouter("R1"),
                                    &s1b.topo);
  return 0;
}
