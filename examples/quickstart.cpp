// Quickstart (experiment E1 + E5): the full pipeline of the paper's
// Fig. 1 and Fig. 6 on the running example —
//
//   specification + topology + sketch
//     --synthesize-->  concrete configurations     (Fig. 1c)
//     --symbolize-->   partially symbolic config   (Fig. 6b)
//     --encode-->      seed specification
//     --simplify-->    a handful of constraints    (Fig. 6c)
//     --lift-->        localized subspecification  (Fig. 2 / Fig. 1d)
//
// Run:  ./quickstart
#include <iostream>

#include "bgp/simulator.hpp"
#include "config/render.hpp"
#include "explain/report.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace ns;

  const synth::Scenario scenario = synth::Scenario1();

  std::cout << "== Topology (paper Fig. 1b) =============================\n";
  std::cout << scenario.topo.ToDot() << "\n";

  std::cout << "== Global specification (paper Fig. 1a) =================\n";
  std::cout << scenario.spec.ToString() << "\n";

  // ---- Synthesis --------------------------------------------------------
  synth::Synthesizer synthesizer(scenario.topo, scenario.spec);
  auto result = synthesizer.Synthesize(scenario.sketch);
  if (!result) {
    std::cerr << "synthesis failed: " << result.error().ToString() << "\n";
    return 1;
  }
  std::cout << "== Synthesized configuration for R1 (cf. Fig. 1c) =======\n";
  std::cout << config::RenderRouter(*result.value().network.FindRouter("R1"),
                                    &scenario.topo)
            << "\n";
  std::cout << "(seed encoding had " << result.value().encoding.constraints.size()
            << " constraints; " << result.value().holes_filled
            << " holes were filled; the independent simulator validated the "
               "result)\n\n";

  // ---- Explanation (paper Fig. 6 / Fig. 1d) -----------------------------
  // The paper walks through the configuration of Fig. 1c specifically; use
  // that exact configuration so the dialogue matches the paper.
  const config::NetworkConfig paper_config = synth::Scenario1PaperConfig();

  // Stage 1 (Fig. 6b): the partially symbolic configuration — the fields
  // under question replaced by Var_* symbols.
  {
    config::NetworkConfig partial = paper_config;
    auto holes =
        explain::Symbolize(partial, explain::Selection::Map("R1", "R1_to_P1"));
    if (holes) {
      std::cout << "== Partially symbolic configuration (cf. Fig. 6b) =======\n";
      std::cout << config::RenderRouter(*partial.FindRouter("R1"),
                                        &scenario.topo)
                << "\n";
    }
  }

  explain::Session session(scenario.topo, scenario.spec, paper_config);

  std::cout << "== Q&A (paper Fig. 1d) ==================================\n";
  auto answer = session.Ask(explain::Selection::Map("R1", "R1_to_P1"),
                            explain::LiftMode::kFaithful);
  if (!answer) {
    std::cerr << "explanation failed: " << answer.error().ToString() << "\n";
    return 1;
  }
  std::cout << answer.value().Report() << "\n";

  std::cout << "== One variable at a time (paper §4) ====================\n";
  for (const char* slot : {"action", "match", "set.next-hop"}) {
    auto narrow = session.Ask(
        explain::Selection::Slot("R1", "R1_to_P1", 10, slot),
        explain::LiftMode::kExact);
    if (!narrow) continue;
    std::cout << "entry 10 [" << slot << "]: "
              << (narrow.value().subspec.IsEmpty()
                      ? "empty — nothing depends on it"
                      : narrow.value().subspec.ToString())
              << "\n";
  }
  std::cout << "\nThe template's `set next-hop` line carries no requirement: "
               "exactly the paper's \"the set next-hop line is redundant\".\n";
  return 0;
}
