// OSPF weight synthesis + localized weight explanations.
//
// NetComplete — the synthesizer the paper builds on — synthesizes IGP link
// weights as well as BGP policies, and the explanation pipeline applies
// unchanged: symbolize a weight, re-encode, simplify, read off the local
// contract ("keep w(A,D) + w(D,C) below every alternative").
//
// Run:  ./ospf_weights
#include <iostream>

#include "net/builders.hpp"
#include "ospf/synth.hpp"
#include "spec/parser.hpp"

int main() {
  using namespace ns;

  // The internal square of the ring topology with a shortcut diagonal.
  net::Topology topo;
  const auto a = topo.AddRouter("A", 100);
  const auto b = topo.AddRouter("B", 100);
  const auto c = topo.AddRouter("C", 100);
  const auto d = topo.AddRouter("D", 100);
  topo.AddLink(a, b);
  topo.AddLink(b, c);
  topo.AddLink(c, d);
  topo.AddLink(d, a);
  topo.AddLink(a, c);

  const auto spec = spec::ParseSpec(R"(
    // Traffic engineering: A-to-C traffic must take the southern path,
    // with the northern path strictly second and the direct link last.
    Req1 {
      (A->D->C)
      (A->D->C) >> (A->B->C)
      (A->B->C) >> (A->C)
    }
  )");
  if (!spec) {
    std::cerr << spec.error().ToString() << "\n";
    return 1;
  }
  std::cout << "Requirements:\n" << spec.value().ToString() << "\n";

  ospf::OspfSynthesizer synthesizer(topo, spec.value());
  auto solved =
      synthesizer.Synthesize(ospf::WeightConfig::SketchFor(topo));
  if (!solved) {
    std::cerr << solved.error().ToString() << "\n";
    return 1;
  }
  std::cout << "Synthesized weights (validated against Dijkstra):\n"
            << solved.value().ToText(topo) << "\n";

  const auto tree = ospf::ShortestPaths(topo, solved.value(), a);
  std::cout << "Shortest A ~> C: " << topo.FormatPath(tree.value().path.at(c))
            << " (cost " << tree.value().cost.at(c) << ")\n\n";

  // "I want to retune the A-D link. What must I preserve?"
  smt::ExprPool pool;
  const auto subspec = ospf::ExplainWeights(pool, topo, spec.value(),
                                            solved.value(), {{a, d}});
  if (!subspec) {
    std::cerr << subspec.error().ToString() << "\n";
    return 1;
  }
  std::cout << "Q: I want to change the A-D weight. What should I keep in "
               "mind?\n";
  std::cout << "   (seed " << subspec.value().metrics.seed_constraints
            << " constraints -> residual "
            << subspec.value().metrics.residual_constraints << ")\n";
  std::cout << "A:\n" << subspec.value().ToString() << "\n";
  std::cout << "Any value satisfying these inequalities keeps every "
               "requirement intact.\n";
  return 0;
}
