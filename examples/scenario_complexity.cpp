// Scenario 3 — taming complexity (paper §2, experiment E4).
//
// With more requirements and more policy, the configuration volume grows
// past what anyone wants to read. Per-requirement questions localize the
// review: for "no transit", R3's subspecification is empty ("R3 can do
// anything"), while R1/R2 carry the requirement (paper Fig. 5).
//
// Run:  ./scenario_complexity
#include <iomanip>
#include <iostream>

#include "config/render.hpp"
#include "explain/report.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace ns;

  const synth::Scenario s = synth::Scenario3();
  synth::Synthesizer synthesizer(s.topo, s.spec);
  auto solved = synthesizer.Synthesize(s.sketch);
  if (!solved) {
    std::cerr << solved.error().ToString() << "\n";
    return 1;
  }

  std::cout << "The network now satisfies " << s.spec.requirements.size()
            << " requirement blocks; the full configuration is "
            << config::CountConfigLines(solved.value().network)
            << " lines — too much to review line by line.\n\n";

  explain::Session session(s.topo, s.spec, solved.value().network);

  std::cout << "Q: \"Which routers matter for the no-transit requirement "
               "(Req1)?\"\n\n";
  auto survey = session.Survey({"Req1"});
  if (!survey) {
    std::cerr << survey.error().ToString() << "\n";
    return 1;
  }
  std::cout << explain::FormatSurvey(survey.value());

  std::cout << "\nThe relevant interfaces, localized (paper Fig. 5):\n\n";
  for (const auto& [router, map] :
       {std::pair{"R2", "R2_to_P2"}, std::pair{"R1", "R1_to_P1"}}) {
    auto answer = session.Ask(explain::Selection::Map(router, map),
                              explain::LiftMode::kExact, {"Req1"});
    if (!answer) continue;
    std::cout << answer.value().SubspecText() << "\n\n";
  }

  std::cout << "Validation now means reading a dozen lines instead of the "
               "whole configuration.\n";
  return 0;
}
