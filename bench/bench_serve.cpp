// bench_serve — the serve front-end trajectory (the tentpole of the epoll
// reactor rewrite). Drives the same warmed question mix through two
// otherwise-identical in-process servers — the blocking
// thread-per-connection baseline (ref) and the epoll reactor pool (opt) —
// at fixed connection counts, and records the closed-loop latency
// percentiles and throughput of each. With a warm answer cache the
// numbers isolate exactly what this rewrite changed: framing, dispatch,
// admission, and response ordering, not Z3.
//
//   bench_serve --json BENCH_SERVE.json [--benchmark_filter=NONE]
//
// The committed BENCH_SERVE.json at the repo root is regenerated with
// exactly that invocation (see TESTING.md); CI re-runs the bench and
// fails if the epoll median p50 regresses >1.5x against the committed
// numbers (tools/bench_json_check --baseline --record median
// --key opt_ms).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "config/parse.hpp"
#include "config/render.hpp"
#include "explain/batch.hpp"
#include "net/topo_text.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace ns;

constexpr double kDurationS = 2.0;
constexpr int kWorkerThreads = 4;

struct RequestMix {
  std::string load_line;
  std::vector<std::string> explain_lines;
};

/// Scenario 1 with the paper's fixed configuration, every policy-carrying
/// router in both lift modes — the serve tests' byte-identity mix.
RequestMix BuildRequestMix() {
  const synth::Scenario scenario = synth::Scenario1();
  const std::string topo = net::ToText(scenario.topo);
  const std::string spec = scenario.spec.ToString();
  const std::string config =
      config::RenderNetwork(synth::Scenario1PaperConfig(), &scenario.topo);

  RequestMix mix;
  util::Json load = util::Json::MakeObject();
  load.Set("cmd", "load");
  load.Set("topo", topo);
  load.Set("spec", spec);
  load.Set("config", config);
  mix.load_line = load.Dump(0);

  auto solved = config::ParseNetworkConfig(config);
  NS_ASSERT_MSG(solved.ok(), "bench scenario config failed to parse");
  for (const auto& request : explain::RequestsForAllRouters(solved.value())) {
    for (const char* mode : {"exact", "faithful"}) {
      util::Json explain = util::Json::MakeObject();
      explain.Set("cmd", "explain");
      explain.Set("router", request.selection.router);
      explain.Set("mode", mode);
      mix.explain_lines.push_back(explain.Dump(0));
    }
  }
  return mix;
}

struct FrontendRun {
  double p50_ms = 0;
  double p99_ms = 0;
  double rps = 0;
};

FrontendRun RunFrontend(serve::Frontend frontend, int connections,
                        const RequestMix& mix) {
  serve::ServerOptions options;
  options.threads = kWorkerThreads;
  options.frontend = frontend;
  serve::Server server(options);
  auto started = server.Start();
  NS_ASSERT_MSG(started.ok(), "bench server failed to start");

  // Load and answer every question once: the measured window then runs
  // against a warm cache, so the A/B isolates front-end overhead.
  {
    auto client = serve::Client::Connect(server.port());
    NS_ASSERT_MSG(client.ok(), "bench client failed to connect");
    auto loaded = client.value().Call(util::Json::Parse(mix.load_line).value());
    NS_ASSERT_MSG(loaded.ok() && loaded.value().Find("ok")->AsBool(),
                  "bench load request failed");
    for (const std::string& line : mix.explain_lines) {
      auto warm = client.value().Call(util::Json::Parse(line).value());
      NS_ASSERT_MSG(warm.ok() && warm.value().Find("ok")->AsBool(),
                    "bench warmup explain failed");
    }
  }

  serve::LoadgenOptions load_options;
  load_options.port = server.port();
  load_options.connections = connections;
  load_options.duration_s = kDurationS;
  load_options.seed = 7;
  auto report = serve::RunLoadgen(load_options, mix.explain_lines);
  NS_ASSERT_MSG(report.ok(), "bench loadgen failed");
  NS_ASSERT_MSG(report.value().protocol_errors == 0,
                "bench run saw protocol errors");
  NS_ASSERT_MSG(report.value().shed == 0,
                "bench run shed requests (queue misconfigured)");
  server.Shutdown();

  FrontendRun run;
  run.p50_ms = report.value().p50_ms;
  run.p99_ms = report.value().p99_ms;
  run.rps = report.value().throughput_rps;
  return run;
}

double Median(std::vector<double> values) {
  NS_ASSERT_MSG(!values.empty(), "median of nothing");
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

util::Json PrintTable() {
  const RequestMix mix = BuildRequestMix();
  bench::Rule();
  std::printf("serve front end: blocking (ref) vs epoll reactors (opt), "
              "closed loop, warm cache, %d workers, %.0f s per cell\n",
              kWorkerThreads, kDurationS);
  bench::Rule();
  std::printf("%-6s | %9s %9s %7s | %9s %9s | %9s %9s\n", "conns",
              "ref p50", "opt p50", "ratio", "ref p99", "opt p99", "ref rps",
              "opt rps");

  util::Json records = util::Json::MakeArray();
  std::vector<double> ref_p50s;
  std::vector<double> opt_p50s;
  for (const int connections : {4, 16, 64}) {
    const FrontendRun ref =
        RunFrontend(serve::Frontend::kBlocking, connections, mix);
    const FrontendRun opt =
        RunFrontend(serve::Frontend::kEpoll, connections, mix);
    const double speedup = opt.p50_ms > 0 ? ref.p50_ms / opt.p50_ms : 0;
    std::printf("%-6d | %9.3f %9.3f %6.2fx | %9.3f %9.3f | %9.0f %9.0f\n",
                connections, ref.p50_ms, opt.p50_ms, speedup, ref.p99_ms,
                opt.p99_ms, ref.rps, opt.rps);
    ref_p50s.push_back(ref.p50_ms);
    opt_p50s.push_back(opt.p50_ms);

    util::Json record = util::Json::MakeObject();
    record.Set("label", "c" + std::to_string(connections));
    record.Set("ref_ms", ref.p50_ms);
    record.Set("opt_ms", opt.p50_ms);
    record.Set("speedup", speedup);
    record.Set("ref_p99_ms", ref.p99_ms);
    record.Set("opt_p99_ms", opt.p99_ms);
    record.Set("ref_rps", ref.rps);
    record.Set("opt_rps", opt.rps);
    records.Append(std::move(record));
  }
  bench::Rule();

  // Summary record CI compares against the committed BENCH_SERVE.json:
  // the epoll median p50 across connection counts may not regress.
  const double ref_median = Median(ref_p50s);
  const double opt_median = Median(opt_p50s);
  const double median_speedup = opt_median > 0 ? ref_median / opt_median : 0;
  std::printf("median p50: blocking %.3f ms, epoll %.3f ms (%.2fx)\n\n",
              ref_median, opt_median, median_speedup);
  util::Json median = util::Json::MakeObject();
  median.Set("label", "median");
  median.Set("ref_ms", ref_median);
  median.Set("opt_ms", opt_median);
  median.Set("speedup", median_speedup);
  records.Append(std::move(median));
  return records;
}

void BM_EpollWarmExplain(benchmark::State& state) {
  const RequestMix mix = BuildRequestMix();
  serve::ServerOptions options;
  options.threads = kWorkerThreads;
  serve::Server server(options);
  NS_ASSERT_MSG(server.Start().ok(), "bench server failed to start");
  auto client = serve::Client::Connect(server.port());
  NS_ASSERT_MSG(client.ok(), "bench client failed to connect");
  (void)client.value().Call(util::Json::Parse(mix.load_line).value());
  const util::Json question =
      util::Json::Parse(mix.explain_lines.front()).value();
  (void)client.value().Call(question);  // warm the cache
  for (auto _ : state) {
    auto response = client.value().Call(question);
    benchmark::DoNotOptimize(response.ok());
  }
  server.Shutdown();
}
BENCHMARK(BM_EpollWarmExplain)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  util::Json records = PrintTable();
  ns::bench::WriteBenchJson(json_path, "bench_serve", std::move(records));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
