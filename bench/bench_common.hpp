// Shared helpers for the bench binaries: each bench prints the table or
// series the corresponding paper artifact reports (see DESIGN.md §3), then
// runs its google-benchmark timings.
#pragma once

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "simplify/engine.hpp"
#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::bench {

/// Synthesizes a scenario, aborting the bench on failure.
inline config::NetworkConfig MustSynthesize(const synth::Scenario& scenario) {
  synth::Synthesizer synthesizer(scenario.topo, scenario.spec);
  auto result = synthesizer.Synthesize(scenario.sketch);
  NS_ASSERT_MSG(result.ok(), "bench scenario failed to synthesize: " +
                                 (result.ok() ? "" : result.error().ToString()));
  return std::move(result).value().network;
}

/// Milliseconds spent in `fn()`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

inline void Rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Strips our `--json PATH` flag from argv *before* benchmark::Initialize
/// sees it (google-benchmark rejects flags it does not know). Returns the
/// path, or "" when the flag is absent.
inline std::string ExtractJsonPath(int& argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  return path;
}

/// Writes a BENCH_*.json artifact. The shared shape — `bench` name plus a
/// `records` array — is what tools/bench_json_check validates. No-op when
/// `path` is empty (the flag was not given).
inline void WriteBenchJson(const std::string& path, std::string bench_name,
                           util::Json records) {
  if (path.empty()) return;
  util::Json doc = util::Json::MakeObject();
  doc.Set("bench", std::move(bench_name));
  doc.Set("records", std::move(records));
  const auto status = util::WriteFile(path, doc.Dump() + "\n");
  NS_ASSERT_MSG(status.ok(), "failed to write bench JSON to " + path);
  std::printf("bench JSON written to %s\n", path.c_str());
}

/// One reference-vs-optimized fixpoint measurement (see AbFixpoint).
struct AbResult {
  double ref_ms = 0;  ///< best-of-reps, per-pass memo + unindexed propagation
  double opt_ms = 0;  ///< best-of-reps, cross-pass memo + indexed propagation
  double speedup = 0;
  int passes = 0;
  std::size_t seed_size = 0;
  std::size_t simplified_size = 0;
  std::size_t rule_hits = 0;
  std::size_t memo_entries = 0;  ///< optimized engine's retained memo
};

/// Times `SimplifyConstraints` under the reference engine options versus
/// the optimized defaults. `make_seed(pool)` must deterministically rebuild
/// the seed constraint set into the pool it is given; every measurement
/// uses a fresh pool so neither variant benefits from the other's warm
/// hash-cons table. Asserts the two variants produce the same constraints
/// (textually) and the same per-rule hit counts — the optimization must be
/// a pure speedup.
template <typename MakeSeed>
AbResult AbFixpoint(MakeSeed&& make_seed, int reps = 3) {
  AbResult out;
  out.ref_ms = std::numeric_limits<double>::infinity();
  out.opt_ms = std::numeric_limits<double>::infinity();
  std::vector<std::string> ref_text;
  std::vector<std::string> opt_text;
  simplify::RuleStats ref_stats{};
  simplify::RuleStats opt_stats{};

  for (int rep = 0; rep < reps; ++rep) {
    {
      smt::ExprPool pool;
      std::vector<smt::Expr> seed = make_seed(pool);
      if (rep == 0) out.seed_size = simplify::ConstraintSetSize(seed);
      simplify::Engine engine(pool, simplify::ReferenceEngineOptions());
      std::vector<smt::Expr> result;
      out.ref_ms = std::min(out.ref_ms, TimeMs([&] {
        result = engine.SimplifyConstraints(std::move(seed));
      }));
      if (rep == 0) {
        for (const smt::Expr& c : result) ref_text.push_back(c.ToString());
        ref_stats = engine.stats();
      }
    }
    {
      smt::ExprPool pool;
      std::vector<smt::Expr> seed = make_seed(pool);
      simplify::Engine engine(pool);
      std::vector<smt::Expr> result;
      out.opt_ms = std::min(out.opt_ms, TimeMs([&] {
        result = engine.SimplifyConstraints(std::move(seed));
      }));
      if (rep == 0) {
        for (const smt::Expr& c : result) opt_text.push_back(c.ToString());
        opt_stats = engine.stats();
        out.passes = engine.last_passes();
        out.simplified_size = simplify::ConstraintSetSize(result);
        out.rule_hits = engine.TotalRuleHits();
        out.memo_entries = engine.memo_size();
      }
    }
  }

  NS_ASSERT_MSG(ref_text == opt_text,
                "optimized engine changed the simplified constraint set");
  NS_ASSERT_MSG(ref_stats == opt_stats,
                "optimized engine changed the rule-hit counts");
  out.speedup = out.opt_ms > 0 ? out.ref_ms / out.opt_ms : 0;
  return out;
}

/// JSON record for one AbResult (label + the standard keys the validator
/// checks for).
inline util::Json AbRecord(const std::string& label, const AbResult& ab) {
  util::Json record = util::Json::MakeObject();
  record.Set("label", label);
  record.Set("ref_ms", ab.ref_ms);
  record.Set("opt_ms", ab.opt_ms);
  record.Set("speedup", ab.speedup);
  record.Set("passes", ab.passes);
  record.Set("seed_size", ab.seed_size);
  record.Set("simplified_size", ab.simplified_size);
  record.Set("rule_hits", ab.rule_hits);
  record.Set("memo_entries", ab.memo_entries);
  return record;
}

}  // namespace ns::bench
