// Shared helpers for the bench binaries: each bench prints the table or
// series the corresponding paper artifact reports (see DESIGN.md §3), then
// runs its google-benchmark timings.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "synth/scenarios.hpp"
#include "synth/synthesizer.hpp"
#include "util/status.hpp"

namespace ns::bench {

/// Synthesizes a scenario, aborting the bench on failure.
inline config::NetworkConfig MustSynthesize(const synth::Scenario& scenario) {
  synth::Synthesizer synthesizer(scenario.topo, scenario.spec);
  auto result = synthesizer.Synthesize(scenario.sketch);
  NS_ASSERT_MSG(result.ok(), "bench scenario failed to synthesize: " +
                                 (result.ok() ? "" : result.error().ToString()));
  return std::move(result).value().network;
}

/// Milliseconds spent in `fn()`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

inline void Rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace ns::bench
