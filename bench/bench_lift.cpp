// bench_lift — the lift-search trajectory. Two axes per problem:
//
//  - solver: the O(candidates) implication queries under the
//    fresh-session baseline (a z3::solver stood up per query, kFreshZ3)
//    versus the incremental fast-path default (shared push/pop prefix +
//    boolean DPLL over the pool IR, kFastPath);
//  - pipeline: the whole sequential Lift() (prefix + inline compile +
//    greedy) versus the arena-seeded two-phase pipeline (DESIGN.md §12)
//    at 4 compile workers — cold CompileCache, warm repeat, and the
//    full strategy-portfolio race.
//
// Every variant is asserted byte-identical before a number is reported.
//
//   bench_lift --json BENCH_LIFT.json [--benchmark_filter=NONE]
//
// The committed BENCH_LIFT.json at the repo root is regenerated with
// exactly that invocation (see TESTING.md); CI re-runs the bench and
// fails if the fast-path per-query median or the median parallel lift
// (lift_total_opt_ms) regresses >1.5x against the committed numbers
// (tools/bench_json_check --baseline).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "explain/arena.hpp"
#include "explain/lift.hpp"
#include "explain/subspec.hpp"
#include "net/builders.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "spec/parser.hpp"

namespace {

using namespace ns;

struct Problem {
  std::string label;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;
  std::string router;  ///< whole-router selection the lift answers
};

/// Paper scenario: synthesize and ask about the first router that carries
/// routing policy (deterministic — routers is an ordered map).
Problem FromScenario(std::string label, const synth::Scenario& scenario) {
  config::NetworkConfig solved = bench::MustSynthesize(scenario);
  std::string router;
  for (const auto& [name, cfg] : solved.routers) {
    if (!cfg.route_maps.empty()) {
      router = name;
      break;
    }
  }
  NS_ASSERT_MSG(!router.empty(), "scenario has no policy to explain");
  return Problem{std::move(label), scenario.topo, scenario.spec,
                 std::move(solved), std::move(router)};
}

/// Synthetic no-transit problem (bench_scaling's shape): deny-all export
/// maps at the attachment routers of the first two externals.
Problem MakeSynthetic(std::string label, net::Topology topo) {
  std::vector<net::RouterId> externals;
  for (net::RouterId id : topo.AllRouters()) {
    if (topo.GetRouter(id).external) externals.push_back(id);
  }
  NS_ASSERT_MSG(externals.size() >= 2, "need two externals");
  const std::string e1 = topo.NameOf(externals[0]);
  const std::string e2 = topo.NameOf(externals[1]);
  auto spec = spec::ParseSpec("Req1 {\n  !(" + e1 + "->...->" + e2 +
                              ")\n  !(" + e2 + "->...->" + e1 + ")\n}");
  NS_ASSERT(spec.ok());

  config::NetworkConfig network = config::SkeletonFor(topo);
  std::string router;
  for (net::RouterId ext : {externals[0], externals[1]}) {
    for (net::RouterId nbr : topo.Neighbors(ext)) {
      config::RouterConfig& attach = *network.FindRouter(topo.NameOf(nbr));
      config::RouteMap& map =
          config::EnsureExportMap(attach, topo.NameOf(ext));
      if (map.entries.empty()) map.entries.push_back(config::DenyAll(10));
      if (router.empty()) router = attach.router;
    }
  }
  return Problem{std::move(label), std::move(topo), std::move(spec).value(),
                 std::move(network), std::move(router)};
}

std::vector<Problem> Sweep() {
  std::vector<Problem> out;
  out.push_back(FromScenario("scenario1", synth::Scenario1()));
  out.push_back(FromScenario("scenario2", synth::Scenario2()));
  out.push_back(FromScenario("scenario3", synth::Scenario3()));
  out.push_back(MakeSynthetic("chain(8)", net::Chain(8)));
  out.push_back(MakeSynthetic("chain(12)", net::Chain(12)));
  out.push_back(MakeSynthetic("ring(8)", net::Ring(8)));
  out.push_back(MakeSynthetic("fabric(2,3)", net::Fabric(2, 3)));
  return out;
}

/// One measured lift run: fresh Explainer + pool (so neither backend
/// benefits from the other's warm hash-cons table), untimed Explain, then
/// the timed Lift under `backend`. Returns the rendered lift so the
/// caller can assert byte-identity across backends.
struct LiftRun {
  double lift_ms = 0;
  std::string text;
  bool complete = false;
  int candidates = 0;
  smt::SolverStats stats;
  explain::LiftStats pipeline;
};

LiftRun RunLift(const Problem& problem, smt::SolverBackend backend) {
  explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
  auto subspec = explainer.Explain(explain::Selection::Router(problem.router));
  NS_ASSERT_MSG(subspec.ok(), "bench problem failed to explain");
  explain::SubspecOptions options;
  options.solver.backend = backend;
  explain::Lifter lifter(explainer.pool(), problem.topo, problem.spec,
                         problem.solved);
  LiftRun run;
  util::Result<explain::LiftResult> lifted =
      util::Error(util::ErrorCode::kInternal, "not run");
  run.lift_ms = bench::TimeMs([&] {
    lifted = lifter.Lift(subspec.value(), explain::LiftMode::kExact, options);
  });
  NS_ASSERT_MSG(lifted.ok(), "bench problem failed to lift");
  run.text = lifted.value().ToString();
  run.complete = lifted.value().complete;
  run.candidates = lifted.value().candidates_tried;
  run.stats = lifted.value().solver_stats;
  run.pipeline = lifted.value().stats;
  return run;
}

/// One arena-seeded lift through the two-phase pipeline (DESIGN.md §12):
/// the question's encode + frozen lift prefix come from the registry
/// (untimed, amortized across every lift of the question), then the timed
/// Lift() compiles candidates on `threads` workers through the question's
/// CompileCache and assembles — racing the strategy portfolio when asked.
LiftRun RunArenaLift(const Problem& problem, explain::ArenaRegistry& registry,
                     int threads, bool portfolio) {
  auto question =
      registry.GetOrBuild(problem.topo, problem.spec, problem.solved,
                          explain::Selection::Router(problem.router), {});
  NS_ASSERT_MSG(question.ok(), "bench problem failed to build its question");
  const explain::FrozenQuestion& frozen = *question.value();
  smt::ExprPool overlay(frozen.arena);

  explain::SubspecOptions options;
  options.shared_fixpoints = frozen.fixpoints.get();
  options.lift_threads = threads;
  options.lift_portfolio = portfolio;
  explain::LiftContext context;
  if (frozen.lift_prefix.has_value()) {
    context.prefix = &*frozen.lift_prefix;
    context.cache = frozen.compile_cache.get();
  }
  explain::Lifter lifter(overlay, problem.topo, problem.spec, problem.solved,
                         context);
  LiftRun run;
  util::Result<explain::LiftResult> lifted =
      util::Error(util::ErrorCode::kInternal, "not run");
  run.lift_ms = bench::TimeMs([&] {
    lifted = lifter.Lift(frozen.subspec, explain::LiftMode::kExact, options);
  });
  NS_ASSERT_MSG(lifted.ok(), "bench problem failed to lift via the arena");
  run.text = lifted.value().ToString();
  run.complete = lifted.value().complete;
  run.candidates = lifted.value().candidates_tried;
  run.stats = lifted.value().solver_stats;
  run.pipeline = lifted.value().stats;
  return run;
}

double Median(std::vector<double> values) {
  NS_ASSERT(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

util::Json PrintTable() {
  std::printf("lift search | slv ref/opt = solver wall, fresh z3::solver "
              "per query vs incremental fast path\n            | seq = "
              "whole sequential Lift() (prefix + inline compile + greedy)\n"
              "            | par4 = arena-seeded two-phase Lift(), 4 "
              "compile workers, cold cache\n            | warm = repeat on "
              "the warmed CompileCache; pf = portfolio race wall\n");
  bench::Rule('=');
  std::printf("%-12s %5s %5s | %8s %8s %7s | %8s %8s %7s %8s | %6s %8s "
              "%3s %3s\n",
              "problem", "cand", "qrys", "slv ref", "slv opt", "speedup",
              "seq", "par4", "speedup", "compile", "warm", "hit rate", "win",
              "cxl");
  bench::Rule();

  constexpr int kReps = 3;
  util::Json records = util::Json::MakeArray();
  std::vector<double> ref_query_series;
  std::vector<double> opt_query_series;
  std::vector<double> par_total_series;
  for (const Problem& problem : Sweep()) {
    double ref_ms = 0;
    double opt_ms = 0;
    double total_ref_ms = 0;
    double total_seq_ms = 0;
    double par_ms = 0;
    double warm_ms = 0;
    double portfolio_ms = 0;
    LiftRun baseline;
    LiftRun fast;
    LiftRun par;
    LiftRun warm;
    LiftRun raced;
    for (int rep = 0; rep < kReps; ++rep) {
      baseline = RunLift(problem, smt::SolverBackend::kFreshZ3);
      fast = RunLift(problem, smt::SolverBackend::kFastPath);
      // Fresh registries per rep: `par` measures a cold CompileCache,
      // `warm` the repeat on the cache `par` just filled, `raced` the
      // full portfolio from cold on its own registry.
      explain::ArenaRegistry registry;
      par = RunArenaLift(problem, registry, /*threads=*/4,
                         /*portfolio=*/false);
      warm = RunArenaLift(problem, registry, /*threads=*/4,
                          /*portfolio=*/false);
      explain::ArenaRegistry raced_registry;
      raced = RunArenaLift(problem, raced_registry, /*threads=*/4,
                           /*portfolio=*/true);
      const auto best = [rep](double acc, double sample) {
        return rep == 0 ? sample : std::min(acc, sample);
      };
      ref_ms = best(ref_ms, baseline.stats.wall_ms);
      opt_ms = best(opt_ms, fast.stats.wall_ms);
      total_ref_ms = best(total_ref_ms, baseline.lift_ms);
      total_seq_ms = best(total_seq_ms, fast.lift_ms);
      par_ms = best(par_ms, par.lift_ms);
      warm_ms = best(warm_ms, warm.lift_ms);
      portfolio_ms = best(portfolio_ms, raced.lift_ms);
    }
    // The whole point of the solver interface and the two-phase pipeline:
    // the answer must depend on neither the backend nor the schedule.
    NS_ASSERT_MSG(baseline.text == fast.text &&
                      baseline.complete == fast.complete &&
                      baseline.candidates == fast.candidates &&
                      baseline.stats.queries == fast.stats.queries,
                  "fast-path lift diverged from the fresh-session baseline");
    NS_ASSERT_MSG(fast.text == par.text && fast.text == warm.text &&
                      fast.text == raced.text &&
                      fast.candidates == par.candidates &&
                      fast.candidates == raced.candidates,
                  "parallel lift diverged from the sequential pipeline");

    const double speedup = opt_ms > 0 ? ref_ms / opt_ms : 0;
    const double par_speedup = par_ms > 0 ? total_seq_ms / par_ms : 0;
    const std::uint64_t warm_lookups =
        warm.pipeline.compile_cache_hits + warm.pipeline.compile_cache_misses;
    const double warm_hit_rate =
        warm_lookups > 0
            ? static_cast<double>(warm.pipeline.compile_cache_hits) /
                  static_cast<double>(warm_lookups)
            : 0;
    std::printf("%-12s %5d %5llu | %8.2f %8.2f %6.2fx | %8.2f %8.2f %6.2fx "
                "%8.2f | %6.2f %7.0f%% %3d %3llu\n",
                problem.label.c_str(), fast.candidates,
                static_cast<unsigned long long>(fast.stats.queries), ref_ms,
                opt_ms, speedup, total_seq_ms, par_ms, par_speedup,
                par.pipeline.compile_ms, warm_ms, warm_hit_rate * 100,
                raced.pipeline.winner,
                static_cast<unsigned long long>(
                    raced.pipeline.strategies_cancelled));
    const auto queries = static_cast<double>(fast.stats.queries);
    if (queries > 0) {
      ref_query_series.push_back(ref_ms / queries);
      opt_query_series.push_back(opt_ms / queries);
    }
    par_total_series.push_back(par_ms);

    util::Json record = util::Json::MakeObject();
    record.Set("label", problem.label);
    record.Set("ref_ms", ref_ms);
    record.Set("opt_ms", opt_ms);
    record.Set("speedup", speedup);
    record.Set("lift_total_ref_ms", total_ref_ms);
    record.Set("lift_total_seq_ms", total_seq_ms);
    // The end-to-end headline CI gates on: arena-seeded two-phase Lift()
    // wall at 4 compile workers, cold cache.
    record.Set("lift_total_opt_ms", par_ms);
    record.Set("parallel_speedup", par_speedup);
    record.Set("compile_ms", par.pipeline.compile_ms);
    record.Set("compile_cache_hits",
               static_cast<std::int64_t>(par.pipeline.compile_cache_hits));
    record.Set("compile_cache_misses",
               static_cast<std::int64_t>(par.pipeline.compile_cache_misses));
    record.Set("warm_total_ms", warm_ms);
    record.Set("warm_hit_rate", warm_hit_rate);
    record.Set("portfolio_total_ms", portfolio_ms);
    record.Set("portfolio_winner", raced.pipeline.winner);
    record.Set("portfolio_cancelled",
               static_cast<std::int64_t>(raced.pipeline.strategies_cancelled));
    record.Set("candidates", fast.candidates);
    record.Set("queries", static_cast<std::int64_t>(fast.stats.queries));
    record.Set("fast_path_hits",
               static_cast<std::int64_t>(fast.stats.fast_path_hits));
    record.Set("fast_path_ineligible",
               static_cast<std::int64_t>(fast.stats.fast_path_ineligible));
    record.Set("z3_queries",
               static_cast<std::int64_t>(fast.stats.z3_queries));
    record.Set("frame_reuse",
               static_cast<std::int64_t>(fast.stats.frame_reuse));
    records.Append(std::move(record));
  }
  bench::Rule();

  // Summary record CI compares against the committed BENCH_LIFT.json:
  // neither the per-query median (solver wall over query count) nor the
  // median end-to-end parallel lift may regress, whatever the per-problem
  // noise.
  const double ref_median = Median(ref_query_series);
  const double opt_median = Median(opt_query_series);
  const double par_median = Median(par_total_series);
  const double median_speedup = opt_median > 0 ? ref_median / opt_median : 0;
  std::printf("median query time: fresh %.3f ms, incremental fast path "
              "%.3f ms (%.2fx); median parallel lift %.2f ms\n\n",
              ref_median, opt_median, median_speedup, par_median);
  util::Json median = util::Json::MakeObject();
  median.Set("label", "median");
  median.Set("ref_ms", ref_median);
  median.Set("opt_ms", opt_median);
  median.Set("speedup", median_speedup);
  median.Set("lift_total_opt_ms", par_median);
  records.Append(std::move(median));
  return records;
}

void BM_LiftScenario1(benchmark::State& state) {
  const Problem problem = FromScenario("scenario1", synth::Scenario1());
  const auto backend = static_cast<smt::SolverBackend>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLift(problem, backend).candidates);
  }
}
BENCHMARK(BM_LiftScenario1)
    ->Arg(static_cast<int>(smt::SolverBackend::kFreshZ3))
    ->Arg(static_cast<int>(smt::SolverBackend::kFastPath))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  util::Json records = PrintTable();
  ns::bench::WriteBenchJson(json_path, "bench_lift", std::move(records));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
