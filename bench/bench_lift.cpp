// bench_lift — the lift-search solver trajectory (the tentpole of the
// incremental solver layer). The lift search discharges O(candidates)
// implication queries against the same domain ∧ target prefix; this bench
// times that search under the fresh-session baseline (a z3::solver stood
// up per query — the pre-interface behavior, kept as kFreshZ3) versus the
// incremental fast-path default (shared push/pop prefix + boolean DPLL
// over the pool IR, kFastPath), asserting byte-identical answers.
//
//   bench_lift --json BENCH_LIFT.json [--benchmark_filter=NONE]
//
// The committed BENCH_LIFT.json at the repo root is regenerated with
// exactly that invocation (see TESTING.md); CI re-runs the bench and
// fails if the fast-path median regresses >1.5x against the committed
// numbers (tools/bench_json_check --baseline).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "explain/lift.hpp"
#include "explain/subspec.hpp"
#include "net/builders.hpp"
#include "smt/solver.hpp"
#include "spec/parser.hpp"

namespace {

using namespace ns;

struct Problem {
  std::string label;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;
  std::string router;  ///< whole-router selection the lift answers
};

/// Paper scenario: synthesize and ask about the first router that carries
/// routing policy (deterministic — routers is an ordered map).
Problem FromScenario(std::string label, const synth::Scenario& scenario) {
  config::NetworkConfig solved = bench::MustSynthesize(scenario);
  std::string router;
  for (const auto& [name, cfg] : solved.routers) {
    if (!cfg.route_maps.empty()) {
      router = name;
      break;
    }
  }
  NS_ASSERT_MSG(!router.empty(), "scenario has no policy to explain");
  return Problem{std::move(label), scenario.topo, scenario.spec,
                 std::move(solved), std::move(router)};
}

/// Synthetic no-transit problem (bench_scaling's shape): deny-all export
/// maps at the attachment routers of the first two externals.
Problem MakeSynthetic(std::string label, net::Topology topo) {
  std::vector<net::RouterId> externals;
  for (net::RouterId id : topo.AllRouters()) {
    if (topo.GetRouter(id).external) externals.push_back(id);
  }
  NS_ASSERT_MSG(externals.size() >= 2, "need two externals");
  const std::string e1 = topo.NameOf(externals[0]);
  const std::string e2 = topo.NameOf(externals[1]);
  auto spec = spec::ParseSpec("Req1 {\n  !(" + e1 + "->...->" + e2 +
                              ")\n  !(" + e2 + "->...->" + e1 + ")\n}");
  NS_ASSERT(spec.ok());

  config::NetworkConfig network = config::SkeletonFor(topo);
  std::string router;
  for (net::RouterId ext : {externals[0], externals[1]}) {
    for (net::RouterId nbr : topo.Neighbors(ext)) {
      config::RouterConfig& attach = *network.FindRouter(topo.NameOf(nbr));
      config::RouteMap& map =
          config::EnsureExportMap(attach, topo.NameOf(ext));
      if (map.entries.empty()) map.entries.push_back(config::DenyAll(10));
      if (router.empty()) router = attach.router;
    }
  }
  return Problem{std::move(label), std::move(topo), std::move(spec).value(),
                 std::move(network), std::move(router)};
}

std::vector<Problem> Sweep() {
  std::vector<Problem> out;
  out.push_back(FromScenario("scenario1", synth::Scenario1()));
  out.push_back(FromScenario("scenario2", synth::Scenario2()));
  out.push_back(FromScenario("scenario3", synth::Scenario3()));
  out.push_back(MakeSynthetic("chain(8)", net::Chain(8)));
  out.push_back(MakeSynthetic("chain(12)", net::Chain(12)));
  out.push_back(MakeSynthetic("ring(8)", net::Ring(8)));
  out.push_back(MakeSynthetic("fabric(2,3)", net::Fabric(2, 3)));
  return out;
}

/// One measured lift run: fresh Explainer + pool (so neither backend
/// benefits from the other's warm hash-cons table), untimed Explain, then
/// the timed Lift under `backend`. Returns the rendered lift so the
/// caller can assert byte-identity across backends.
struct LiftRun {
  double lift_ms = 0;
  std::string text;
  bool complete = false;
  int candidates = 0;
  smt::SolverStats stats;
};

LiftRun RunLift(const Problem& problem, smt::SolverBackend backend) {
  explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
  auto subspec = explainer.Explain(explain::Selection::Router(problem.router));
  NS_ASSERT_MSG(subspec.ok(), "bench problem failed to explain");
  explain::SubspecOptions options;
  options.solver.backend = backend;
  explain::Lifter lifter(explainer.pool(), problem.topo, problem.spec,
                         problem.solved);
  LiftRun run;
  util::Result<explain::LiftResult> lifted =
      util::Error(util::ErrorCode::kInternal, "not run");
  run.lift_ms = bench::TimeMs([&] {
    lifted = lifter.Lift(subspec.value(), explain::LiftMode::kExact, options);
  });
  NS_ASSERT_MSG(lifted.ok(), "bench problem failed to lift");
  run.text = lifted.value().ToString();
  run.complete = lifted.value().complete;
  run.candidates = lifted.value().candidates_tried;
  run.stats = lifted.value().solver_stats;
  return run;
}

double Median(std::vector<double> values) {
  NS_ASSERT(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

util::Json PrintTable() {
  std::printf("lift search | solver time: fresh z3::solver per query "
              "(baseline) vs incremental\n            | fast path — "
              "ref/opt = time inside the solver layer (stats.wall_ms),\n"
              "            | total = whole Lift() including candidate "
              "compilation\n");
  bench::Rule('=');
  std::printf("%-12s %6s %5s | %9s %9s %8s | %9s %9s %6s %6s\n", "problem",
              "cand", "qrys", "slv ref", "slv opt", "speedup", "total ref",
              "total opt", "z3", "reuse");
  bench::Rule();

  constexpr int kReps = 3;
  util::Json records = util::Json::MakeArray();
  std::vector<double> ref_query_series;
  std::vector<double> opt_query_series;
  for (const Problem& problem : Sweep()) {
    double ref_ms = 0;
    double opt_ms = 0;
    double total_ref_ms = 0;
    double total_opt_ms = 0;
    LiftRun baseline;
    LiftRun fast;
    for (int rep = 0; rep < kReps; ++rep) {
      baseline = RunLift(problem, smt::SolverBackend::kFreshZ3);
      fast = RunLift(problem, smt::SolverBackend::kFastPath);
      const auto best = [rep](double acc, double sample) {
        return rep == 0 ? sample : std::min(acc, sample);
      };
      ref_ms = best(ref_ms, baseline.stats.wall_ms);
      opt_ms = best(opt_ms, fast.stats.wall_ms);
      total_ref_ms = best(total_ref_ms, baseline.lift_ms);
      total_opt_ms = best(total_opt_ms, fast.lift_ms);
    }
    // The whole point of the solver interface: the answer must not depend
    // on the backend.
    NS_ASSERT_MSG(baseline.text == fast.text &&
                      baseline.complete == fast.complete &&
                      baseline.candidates == fast.candidates &&
                      baseline.stats.queries == fast.stats.queries,
                  "fast-path lift diverged from the fresh-session baseline");

    const double speedup = opt_ms > 0 ? ref_ms / opt_ms : 0;
    std::printf("%-12s %6d %5llu | %9.2f %9.2f %7.2fx | %9.2f %9.2f %6llu "
                "%6llu\n",
                problem.label.c_str(), fast.candidates,
                static_cast<unsigned long long>(fast.stats.queries), ref_ms,
                opt_ms, speedup, total_ref_ms, total_opt_ms,
                static_cast<unsigned long long>(fast.stats.z3_queries),
                static_cast<unsigned long long>(fast.stats.frame_reuse));
    const auto queries = static_cast<double>(fast.stats.queries);
    if (queries > 0) {
      ref_query_series.push_back(ref_ms / queries);
      opt_query_series.push_back(opt_ms / queries);
    }

    util::Json record = util::Json::MakeObject();
    record.Set("label", problem.label);
    record.Set("ref_ms", ref_ms);
    record.Set("opt_ms", opt_ms);
    record.Set("speedup", speedup);
    record.Set("lift_total_ref_ms", total_ref_ms);
    record.Set("lift_total_opt_ms", total_opt_ms);
    record.Set("candidates", fast.candidates);
    record.Set("queries", static_cast<std::int64_t>(fast.stats.queries));
    record.Set("fast_path_hits",
               static_cast<std::int64_t>(fast.stats.fast_path_hits));
    record.Set("z3_queries",
               static_cast<std::int64_t>(fast.stats.z3_queries));
    record.Set("frame_reuse",
               static_cast<std::int64_t>(fast.stats.frame_reuse));
    records.Append(std::move(record));
  }
  bench::Rule();

  // Summary record CI compares against the committed BENCH_LIFT.json: the
  // per-query median (solver wall over query count) may not regress,
  // whatever the per-problem noise.
  const double ref_median = Median(ref_query_series);
  const double opt_median = Median(opt_query_series);
  const double median_speedup = opt_median > 0 ? ref_median / opt_median : 0;
  std::printf("median query time: fresh %.3f ms, incremental fast path "
              "%.3f ms (%.2fx)\n\n",
              ref_median, opt_median, median_speedup);
  util::Json median = util::Json::MakeObject();
  median.Set("label", "median");
  median.Set("ref_ms", ref_median);
  median.Set("opt_ms", opt_median);
  median.Set("speedup", median_speedup);
  records.Append(std::move(median));
  return records;
}

void BM_LiftScenario1(benchmark::State& state) {
  const Problem problem = FromScenario("scenario1", synth::Scenario1());
  const auto backend = static_cast<smt::SolverBackend>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLift(problem, backend).candidates);
  }
}
BENCHMARK(BM_LiftScenario1)
    ->Arg(static_cast<int>(smt::SolverBackend::kFreshZ3))
    ->Arg(static_cast<int>(smt::SolverBackend::kFastPath))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  util::Json records = PrintTable();
  ns::bench::WriteBenchJson(json_path, "bench_lift", std::move(records));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
