// Experiments E2/E3/E4 — regenerates the paper's figure artifacts:
//   Fig. 2  subspecification at R1 (scenario 1, faithful mode)
//   Fig. 4  subspecification at R3 (scenario 2, exact mode)
//   Fig. 5  subspecification at R2 towards P2 (scenario 3, Req1 projection)
// and times one full question per scenario.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "explain/report.hpp"

namespace {

using namespace ns;

void PrintFigures() {
  std::printf("E2 | paper Fig. 2 — scenario 1, ask about R1 (faithful)\n");
  ns::bench::Rule('=');
  {
    const synth::Scenario s = synth::Scenario1();
    explain::Session session(s.topo, s.spec, synth::Scenario1PaperConfig());
    auto answer = session.Ask(explain::Selection::Map("R1", "R1_to_P1"),
                              explain::LiftMode::kFaithful);
    NS_ASSERT(answer.ok());
    std::printf("%s\n", answer.value().SubspecText().c_str());
    std::printf("(paper Fig. 2: R1 { !(R1->P1) })\n\n");
  }

  std::printf("E3 | paper Fig. 4 — scenario 2, ask about R3 (exact)\n");
  ns::bench::Rule('=');
  {
    const synth::Scenario s = synth::Scenario2();
    explain::Session session(s.topo, s.spec, ns::bench::MustSynthesize(s));
    auto answer =
        session.Ask(explain::Selection::Router("R3"), explain::LiftMode::kExact);
    NS_ASSERT(answer.ok());
    std::printf("%s\n", answer.value().SubspecText().c_str());
    std::printf("(paper Fig. 4: preference through P1 over P2 plus the two "
                "detour drops)\n\n");
  }

  std::printf("E4 | paper Fig. 5 — scenario 3, ask about R2 towards P2, "
              "no-transit only\n");
  ns::bench::Rule('=');
  {
    const synth::Scenario s = synth::Scenario3();
    explain::Session session(s.topo, s.spec, ns::bench::MustSynthesize(s));
    auto answer = session.Ask(explain::Selection::Map("R2", "R2_to_P2"),
                              explain::LiftMode::kExact, {"Req1"});
    NS_ASSERT(answer.ok());
    std::printf("%s\n", answer.value().SubspecText().c_str());
    std::printf("(paper Fig. 5: R2 to P2 { !(P1->R1->R2->P2) "
                "!(P1->R1->R3->R2->P2) })\n");

    auto r3 = session.Ask(explain::Selection::Router("R3"),
                          explain::LiftMode::kExact, {"Req1"});
    NS_ASSERT(r3.ok());
    std::printf("\nand R3 for the same question: %s\n\n",
                r3.value().subspec.IsEmpty()
                    ? "empty — \"R3 can do anything\""
                    : r3.value().SubspecText().c_str());
  }
}

void BM_AskScenario(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const synth::Scenario s = synth::GetScenario(index);
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  const explain::Selection selection =
      index == 2 ? explain::Selection::Router("R3")
                 : explain::Selection::Map(index == 3 ? "R2" : "R1",
                                           index == 3 ? "R2_to_P2" : "R1_to_P1");
  for (auto _ : state) {
    explain::Session session(s.topo, s.spec, solved);
    auto answer = session.Ask(selection, explain::LiftMode::kExact);
    benchmark::DoNotOptimize(answer.ok());
  }
}
BENCHMARK(BM_AskScenario)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
