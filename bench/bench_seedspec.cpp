// Experiment E6 — paper claims C1/C2 (§3, §4):
//   ">1000 constraints even in the simple scenario"  and
//   "this reduction resulted in only a few constraints".
//
// For each scenario the table reports the seed specification produced for
// a representative question, its size after the 15 rewrite rules, and the
// residual over the explanation variables. The google-benchmark section
// times the pipeline stages.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "explain/report.hpp"

namespace {

using namespace ns;

struct Question {
  const char* label;
  synth::Scenario scenario;
  explain::Selection selection;
};

std::vector<Question> Questions() {
  std::vector<Question> out;
  out.push_back({"S1: R1/R1_to_P1 (whole map)", synth::Scenario1(),
                 explain::Selection::Map("R1", "R1_to_P1")});
  out.push_back({"S2: R3 (whole router)", synth::Scenario2(),
                 explain::Selection::Router("R3")});
  out.push_back({"S3: R2/R2_to_P2 (whole map)", synth::Scenario3(),
                 explain::Selection::Map("R2", "R2_to_P2")});
  return out;
}

void PrintTable() {
  std::printf("E6 | seed-specification sizes across the pipeline "
              "(paper claims C1 and C2)\n");
  ns::bench::Rule('=');
  std::printf("%-30s %10s %10s %12s %12s %10s\n", "question", "seed#",
              "seed size", "simplified#", "simpl.size", "residual#");
  ns::bench::Rule();
  for (const Question& q : Questions()) {
    const config::NetworkConfig solved = ns::bench::MustSynthesize(q.scenario);
    explain::Explainer explainer(q.scenario.topo, q.scenario.spec, solved);
    auto subspec = explainer.Explain(q.selection);
    NS_ASSERT(subspec.ok());
    const auto& m = subspec.value().metrics;
    std::printf("%-30s %10zu %10zu %12zu %12zu %10zu\n", q.label,
                m.seed_constraints, m.seed_size, m.simplified_constraints,
                m.simplified_size, m.residual_constraints);
  }
  ns::bench::Rule();
  std::printf("paper: seed specifications exceed 1000 constraints in the "
              "running example;\nafter simplification only a few "
              "constraints over the Var_* fields remain.\n\n");
}

void BM_EncodeSeed(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario2();
  config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  config::NetworkConfig partial = solved;
  auto holes =
      explain::Symbolize(partial, explain::Selection::Map("R2", "R2_to_P2"));
  NS_ASSERT(holes.ok());
  auto dests = synth::BuildDestinations(s.topo, partial, s.spec).value();
  synth::EnsureOriginated(partial, dests);
  for (auto _ : state) {
    smt::ExprPool pool;
    auto encoding = synth::Encode(pool, s.topo, partial, s.spec);
    benchmark::DoNotOptimize(encoding.value().constraints.size());
  }
}
BENCHMARK(BM_EncodeSeed)->Unit(benchmark::kMillisecond);

void BM_ExplainPipeline(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario1();
  config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  for (auto _ : state) {
    explain::Explainer explainer(s.topo, s.spec, solved);
    auto subspec =
        explainer.Explain(explain::Selection::Map("R1", "R1_to_P1"));
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_ExplainPipeline)->Unit(benchmark::kMillisecond);

void BM_SynthesizeScenario(benchmark::State& state) {
  const synth::Scenario s = synth::GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    synth::Synthesizer synthesizer(s.topo, s.spec);
    auto result = synthesizer.Synthesize(s.sketch);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_SynthesizeScenario)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
