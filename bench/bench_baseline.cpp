// Experiment E8 — paper §5 / claim C7:
//   "Directly applying current explainable program synthesis tools to
//    network synthesis problems does not adequately address these
//    challenges. While these tools can simplify SMT constraints, the
//    resulting subspecifications remain ... difficult to interpret."
//
// Compares three simplifiers on the same seed specifications:
//   localized   — the full pipeline (rules + conjunction-context
//                 propagation + state-variable projection)
//   local-rules — the 15 rules without cross-constraint propagation
//                 (a generic, context-free simplifier)
//   Z3 simplify — Z3's built-in generic `simplify` on the monolithic seed
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "explain/report.hpp"

namespace {

using namespace ns;

void PrintTable() {
  struct Row {
    const char* label;
    synth::Scenario scenario;
    explain::Selection selection;
    std::vector<std::string> requirements;
  };
  std::vector<Row> rows;
  rows.push_back({"S1: R1/R1_to_P1", synth::Scenario1(),
                  explain::Selection::Map("R1", "R1_to_P1"), {}});
  rows.push_back({"S2: R3", synth::Scenario2(),
                  explain::Selection::Router("R3"), {}});
  rows.push_back({"S3: R2_to_P2 (Req1)", synth::Scenario3(),
                  explain::Selection::Map("R2", "R2_to_P2"), {"Req1"}});

  std::printf("E8 | localized pipeline vs generic simplification "
              "(claim C7; sizes = expression tree nodes)\n");
  ns::bench::Rule('=');
  std::printf("%-22s %10s %12s %14s %12s %9s\n", "question", "seed",
              "localized", "local-rules", "Z3 simplify", "factor");
  ns::bench::Rule();
  for (const Row& row : rows) {
    const config::NetworkConfig solved = ns::bench::MustSynthesize(row.scenario);
    explain::Explainer explainer(row.scenario.topo, row.scenario.spec, solved);
    explain::SubspecOptions options;
    options.requirements = row.requirements;
    options.compute_baselines = true;
    auto subspec = explainer.Explain(row.selection, options);
    NS_ASSERT(subspec.ok());
    const auto& m = subspec.value().metrics;
    const double factor =
        m.residual_size == 0
            ? static_cast<double>(m.baseline_local_rules_size)
            : static_cast<double>(m.baseline_local_rules_size) /
                  static_cast<double>(m.residual_size);
    std::printf("%-22s %10zu %12zu %14zu %12zu %8.0fx\n", row.label,
                m.seed_size, m.residual_size, m.baseline_local_rules_size,
                m.baseline_z3_size, factor);
  }
  ns::bench::Rule();
  std::printf("paper: generic simplifiers lack the network context (the "
              "concrete rest-of-network)\nthat lets the localized pipeline "
              "collapse the seed; their output stays low-level\nand orders "
              "of magnitude larger.\n\n");
}

void BM_LocalizedSimplify(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario1();
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  for (auto _ : state) {
    explain::Explainer explainer(s.topo, s.spec, solved);
    auto subspec = explainer.Explain(explain::Selection::Map("R1", "R1_to_P1"));
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_LocalizedSimplify)->Unit(benchmark::kMillisecond);

void BM_GenericZ3Simplify(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario1();
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  for (auto _ : state) {
    explain::Explainer explainer(s.topo, s.spec, solved);
    explain::SubspecOptions options;
    options.compute_baselines = true;
    auto subspec =
        explainer.Explain(explain::Selection::Map("R1", "R1_to_P1"), options);
    benchmark::DoNotOptimize(subspec.value().metrics.baseline_z3_size);
  }
}
BENCHMARK(BM_GenericZ3Simplify)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
