// Experiment E10 — simplifier micro-measurements supporting E6: which of
// the 15 rewrite rules do the work on real seed specifications, and how
// fast is the engine on a random-formula corpus.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <tuple>

#include "bench_common.hpp"
#include "explain/report.hpp"
#include "simplify/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace ns;
using smt::Expr;
using smt::Sort;

void PrintRuleTable() {
  std::printf("E10 | rewrite-rule firings while simplifying the scenario "
              "seed specifications\n");
  ns::bench::Rule('=');
  std::printf("%-20s %12s %12s %12s\n", "rule", "S1 (R1 map)", "S2 (R3)",
              "S3 (R2 map)");
  ns::bench::Rule();

  std::vector<simplify::RuleStats> per_scenario;
  std::vector<int> passes;
  const std::vector<std::pair<synth::Scenario, explain::Selection>> questions{
      {synth::Scenario1(), explain::Selection::Map("R1", "R1_to_P1")},
      {synth::Scenario2(), explain::Selection::Router("R3")},
      {synth::Scenario3(), explain::Selection::Map("R2", "R2_to_P2")},
  };
  for (const auto& [scenario, selection] : questions) {
    const config::NetworkConfig solved = ns::bench::MustSynthesize(scenario);
    explain::Explainer explainer(scenario.topo, scenario.spec, solved);
    auto subspec = explainer.Explain(selection);
    NS_ASSERT(subspec.ok());
    per_scenario.push_back(subspec.value().metrics.rule_stats);
    passes.push_back(subspec.value().metrics.simplify_passes);
  }

  for (int rule = 0; rule < simplify::kNumRules; ++rule) {
    std::printf("%-20s %12zu %12zu %12zu\n",
                simplify::RuleName(static_cast<simplify::RuleId>(rule)),
                per_scenario[0][static_cast<std::size_t>(rule)],
                per_scenario[1][static_cast<std::size_t>(rule)],
                per_scenario[2][static_cast<std::size_t>(rule)]);
  }
  ns::bench::Rule();
  std::printf("%-20s %12d %12d %12d\n", "fixpoint passes", passes[0],
              passes[1], passes[2]);
  std::printf("\nconstant folding plus the two conjunction-context rules "
              "(unit/eq propagation)\ncarry the partial evaluation; the "
              "boolean identities mop up what remains.\n\n");
}

/// Rebuilds a scenario question's seed specification (state definitions +
/// requirement assertions, domains excluded — same filter the explainer
/// applies) into `pool`. Deterministic, so AbFixpoint can call it once per
/// fresh pool.
std::vector<Expr> MakeSeed(smt::ExprPool& pool, const synth::Scenario& scenario,
                           const config::NetworkConfig& solved,
                           const explain::Selection& selection) {
  config::NetworkConfig partial = solved;
  auto holes = explain::Symbolize(partial, selection);
  NS_ASSERT(holes.ok());
  auto dests = synth::BuildDestinations(scenario.topo, partial, scenario.spec);
  NS_ASSERT(dests.ok());
  synth::EnsureOriginated(partial, dests.value());
  auto encoding = synth::Encode(pool, scenario.topo, partial, scenario.spec);
  NS_ASSERT(encoding.ok());
  std::vector<Expr> seed;
  seed.reserve(encoding.value().constraints.size());
  for (Expr c : encoding.value().constraints) {
    const bool is_domain =
        std::find(encoding.value().domain_constraints.begin(),
                  encoding.value().domain_constraints.end(),
                  c) != encoding.value().domain_constraints.end();
    if (!is_domain) seed.push_back(c);
  }
  return seed;
}

/// Reference vs optimized fixpoint on the three scenario questions.
/// Returns the JSON records for --json.
util::Json PrintAbTable() {
  std::printf("A/B | fixpoint engine: reference (per-pass memo, unindexed "
              "propagation)\n    | vs optimized (cross-pass memo, indexed "
              "propagation) — identical outputs asserted\n");
  ns::bench::Rule('=');
  std::printf("%-16s %10s %10s %9s %7s %10s %10s\n", "question", "ref ms",
              "opt ms", "speedup", "passes", "seed size", "memo");
  ns::bench::Rule();

  util::Json records = util::Json::MakeArray();
  const std::vector<
      std::tuple<std::string, synth::Scenario, explain::Selection>>
      questions{
          {"S1:R1_to_P1", synth::Scenario1(),
           explain::Selection::Map("R1", "R1_to_P1")},
          {"S2:R3", synth::Scenario2(), explain::Selection::Router("R3")},
          {"S3:R2_to_P2", synth::Scenario3(),
           explain::Selection::Map("R2", "R2_to_P2")},
      };
  for (const auto& [label, scenario, selection] : questions) {
    const config::NetworkConfig solved = ns::bench::MustSynthesize(scenario);
    const auto ab = ns::bench::AbFixpoint([&](smt::ExprPool& pool) {
      return MakeSeed(pool, scenario, solved, selection);
    });
    std::printf("%-16s %10.2f %10.2f %8.2fx %7d %10zu %10zu\n", label.c_str(),
                ab.ref_ms, ab.opt_ms, ab.speedup, ab.passes, ab.seed_size,
                ab.memo_entries);
    records.Append(ns::bench::AbRecord(label, ab));
  }
  ns::bench::Rule();
  std::printf("\n");
  return records;
}

Expr RandomFormula(smt::ExprPool& pool, util::Rng& rng, int depth) {
  if (depth == 0 || rng.Chance(1, 4)) {
    switch (rng.Below(3)) {
      case 0:
        return pool.Var("b" + std::to_string(rng.Below(6)), Sort::kBool);
      case 1:
        return pool.Bool(rng.Coin());
      default: {
        const Expr x = pool.Var("x" + std::to_string(rng.Below(4)), Sort::kInt);
        return pool.Eq(x, pool.Int(rng.Range(0, 3)));
      }
    }
  }
  switch (rng.Below(5)) {
    case 0: return pool.Not(RandomFormula(pool, rng, depth - 1));
    case 1:
      return pool.And({RandomFormula(pool, rng, depth - 1),
                       RandomFormula(pool, rng, depth - 1),
                       RandomFormula(pool, rng, depth - 1)});
    case 2:
      return pool.Or({RandomFormula(pool, rng, depth - 1),
                      RandomFormula(pool, rng, depth - 1)});
    case 3:
      return pool.Implies(RandomFormula(pool, rng, depth - 1),
                          RandomFormula(pool, rng, depth - 1));
    default:
      return pool.Ite(RandomFormula(pool, rng, depth - 1),
                      RandomFormula(pool, rng, depth - 1),
                      RandomFormula(pool, rng, depth - 1));
  }
}

void BM_SimplifyRandomFormula(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  smt::ExprPool pool;
  util::Rng rng(42);
  std::vector<Expr> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back(RandomFormula(pool, rng, depth));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    simplify::Engine engine(pool);
    benchmark::DoNotOptimize(
        engine.Simplify(corpus[i++ % corpus.size()]).expr.raw());
  }
}
BENCHMARK(BM_SimplifyRandomFormula)->Arg(4)->Arg(6)->Arg(8);

void BM_HashConsing(benchmark::State& state) {
  for (auto _ : state) {
    smt::ExprPool pool;
    Expr acc = pool.True();
    for (int i = 0; i < 1000; ++i) {
      const Expr x = pool.Var("x" + std::to_string(i % 10), Sort::kInt);
      acc = pool.And({acc, pool.Le(x, pool.Int(i))});
    }
    benchmark::DoNotOptimize(acc.raw());
  }
}
BENCHMARK(BM_HashConsing);

void BM_SubstituteLargeEnv(benchmark::State& state) {
  smt::ExprPool pool;
  util::Rng rng(7);
  const Expr formula = RandomFormula(pool, rng, 10);
  std::unordered_map<std::string, Expr> env;
  for (int i = 0; i < 6; ++i) {
    env.emplace("b" + std::to_string(i), pool.Bool(rng.Coin()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt::Substitute(pool, formula, env).raw());
  }
}
BENCHMARK(BM_SubstituteLargeEnv);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  PrintRuleTable();
  ns::bench::WriteBenchJson(json_path, "bench_rules", PrintAbTable());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
