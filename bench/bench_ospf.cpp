// OSPF-side measurements: the explanation pipeline on weight synthesis
// (the other half of NetComplete's synthesis surface), swept over ring
// sizes. Complements E6/E9 with the IGP substrate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "net/builders.hpp"
#include "ospf/synth.hpp"
#include "spec/parser.hpp"

namespace {

using namespace ns;

struct OspfProblem {
  net::Topology topo;
  spec::Spec spec;
  ospf::WeightConfig solved;
  ospf::EdgeKey question;
};

OspfProblem MakeRingProblem(int n) {
  net::Topology topo = net::Ring(n);
  // Require the clockwise half-ring path R1 -> R2 -> ... -> R(n/2+1).
  std::string pattern = "R1";
  for (int i = 2; i <= n / 2 + 1; ++i) {
    pattern += "->R" + std::to_string(i);
  }
  auto spec = spec::ParseSpec("Req { (" + pattern + ") }");
  NS_ASSERT(spec.ok());
  ospf::OspfSynthesizer synthesizer(topo, spec.value());
  auto solved = synthesizer.Synthesize(ospf::WeightConfig::SketchFor(topo));
  NS_ASSERT_MSG(solved.ok(), solved.ok() ? "" : solved.error().ToString());
  const ospf::EdgeKey question =
      ospf::MakeEdge(topo.FindRouter("R1"), topo.FindRouter("R2"));
  return OspfProblem{std::move(topo), std::move(spec).value(),
                     std::move(solved).value(), question};
}

void PrintTable() {
  std::printf("OSPF | weight-explanation pipeline on ring(n) "
              "(IGP half of the synthesis surface)\n");
  ns::bench::Rule('=');
  std::printf("%-10s %10s %12s %12s %12s\n", "topology", "seed#",
              "seed size", "residual#", "explain ms");
  ns::bench::Rule();
  for (int n : {4, 6, 8, 10}) {
    OspfProblem problem = MakeRingProblem(n);
    std::size_t seed = 0;
    std::size_t seed_size = 0;
    std::size_t residual = 0;
    const double ms = ns::bench::TimeMs([&] {
      smt::ExprPool pool;
      auto subspec = ospf::ExplainWeights(pool, problem.topo, problem.spec,
                                          problem.solved, {problem.question});
      NS_ASSERT(subspec.ok());
      seed = subspec.value().metrics.seed_constraints;
      seed_size = subspec.value().metrics.seed_size;
      residual = subspec.value().metrics.residual_constraints;
    });
    std::printf("ring(%-2d)   %10zu %12zu %12zu %12.1f\n", n, seed, seed_size,
                residual, ms);
  }
  ns::bench::Rule();
  std::printf("\n");
}

void BM_OspfSynthesizeRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Ring(n);
  std::string pattern = "R1";
  for (int i = 2; i <= n / 2 + 1; ++i) pattern += "->R" + std::to_string(i);
  auto spec = spec::ParseSpec("Req { (" + pattern + ") }");
  for (auto _ : state) {
    ospf::OspfSynthesizer synthesizer(topo, spec.value());
    auto solved = synthesizer.Synthesize(ospf::WeightConfig::SketchFor(topo));
    benchmark::DoNotOptimize(solved.ok());
  }
}
BENCHMARK(BM_OspfSynthesizeRing)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_OspfExplainWeight(benchmark::State& state) {
  OspfProblem problem = MakeRingProblem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    smt::ExprPool pool;
    auto subspec = ospf::ExplainWeights(pool, problem.topo, problem.spec,
                                        problem.solved, {problem.question});
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_OspfExplainWeight)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Dijkstra(benchmark::State& state) {
  const net::Topology topo = net::Fabric(3, 4);
  const ospf::WeightConfig weights = ospf::WeightConfig::DefaultsFor(topo);
  for (auto _ : state) {
    for (net::RouterId id : topo.AllRouters()) {
      auto tree = ospf::ShortestPaths(topo, weights, id);
      benchmark::DoNotOptimize(tree.value().cost.size());
    }
  }
}
BENCHMARK(BM_Dijkstra);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
