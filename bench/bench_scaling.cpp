// Experiment E9 — the scalability question the paper leaves open (§4:
// "the scalability of this approach for large-scale network configurations
// remains untested"). Sweeps synthetic chain / ring / fabric topologies
// with a no-transit specification between two attachment points and
// measures the explanation pipeline end to end.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "explain/batch.hpp"
#include "explain/lift.hpp"
#include "explain/report.hpp"
#include "net/builders.hpp"
#include "spec/parser.hpp"
#include "synth/sketch.hpp"
#include "testkit/families.hpp"

namespace {

using namespace ns;

struct Problem {
  std::string label;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;  ///< concrete no-transit configuration
  std::string question_router;
  std::string question_map;
};

/// Builds a no-transit problem between the first two external routers of
/// `topo`, with a concrete configuration that blocks all exports to them
/// at their attachment routers (satisfies the spec by construction).
Problem MakeProblem(std::string label, net::Topology topo) {
  std::vector<net::RouterId> externals;
  for (net::RouterId id : topo.AllRouters()) {
    if (topo.GetRouter(id).external) externals.push_back(id);
  }
  NS_ASSERT_MSG(externals.size() >= 2, "need two externals");
  const std::string e1 = topo.NameOf(externals[0]);
  const std::string e2 = topo.NameOf(externals[1]);

  auto spec = spec::ParseSpec("Req1 {\n  !(" + e1 + "->...->" + e2 +
                              ")\n  !(" + e2 + "->...->" + e1 + ")\n}");
  NS_ASSERT(spec.ok());

  config::NetworkConfig network = config::SkeletonFor(topo);
  std::string question_router;
  std::string question_map;
  for (net::RouterId ext : {externals[0], externals[1]}) {
    for (net::RouterId nbr : topo.Neighbors(ext)) {
      config::RouterConfig& attach = *network.FindRouter(topo.NameOf(nbr));
      config::RouteMap& map =
          config::EnsureExportMap(attach, topo.NameOf(ext));
      if (map.entries.empty()) map.entries.push_back(config::DenyAll(10));
      if (question_router.empty()) {
        question_router = attach.router;
        question_map = map.name;
      }
    }
  }
  return Problem{std::move(label), std::move(topo), std::move(spec).value(),
                 std::move(network), question_router, question_map};
}

std::vector<Problem> Sweep() {
  std::vector<Problem> out;
  for (int n : {2, 4, 6, 8, 10, 12}) {
    out.push_back(MakeProblem("chain(" + std::to_string(n) + ")",
                              net::Chain(n)));
  }
  for (int n : {4, 6, 8}) {
    out.push_back(MakeProblem("ring(" + std::to_string(n) + ")",
                              net::Ring(n)));
  }
  out.push_back(MakeProblem("fabric(2,2)", net::Fabric(2, 2)));
  out.push_back(MakeProblem("fabric(2,3)", net::Fabric(2, 3)));
  return out;
}

void PrintTable() {
  std::printf("E9 | explanation pipeline vs topology size "
              "(scalability, untested in the paper)\n");
  ns::bench::Rule('=');
  std::printf("%-13s %8s %11s %10s %10s %11s %10s\n", "topology", "routers",
              "candidates", "seed#", "residual#", "encode ms", "explain ms");
  ns::bench::Rule();
  for (Problem& problem : Sweep()) {
    std::size_t candidates = 0;
    std::size_t seed = 0;
    double encode_ms = 0;
    {
      config::NetworkConfig partial = problem.solved;
      auto holes = explain::Symbolize(
          partial, explain::Selection::Map(problem.question_router,
                                           problem.question_map));
      NS_ASSERT(holes.ok());
      auto dests =
          synth::BuildDestinations(problem.topo, partial, problem.spec).value();
      synth::EnsureOriginated(partial, dests);
      smt::ExprPool pool;
      encode_ms = ns::bench::TimeMs([&] {
        auto encoding =
            synth::Encode(pool, problem.topo, partial, problem.spec);
        NS_ASSERT(encoding.ok());
        candidates = encoding.value().candidates.size();
        seed = encoding.value().constraints.size();
      });
    }

    std::size_t residual = 0;
    const double explain_ms = ns::bench::TimeMs([&] {
      explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
      auto subspec = explainer.Explain(explain::Selection::Map(
          problem.question_router, problem.question_map));
      NS_ASSERT(subspec.ok());
      residual = subspec.value().metrics.residual_size;
    });

    std::printf("%-13s %8zu %11zu %10zu %10zu %11.1f %10.1f\n",
                problem.label.c_str(), problem.topo.NumRouters(), candidates,
                seed, residual, encode_ms, explain_ms);
  }
  ns::bench::Rule();
  std::printf("the seed grows with the number of candidate paths; the "
              "residual stays proportional\nto the symbolized fields "
              "(localization pays off more the bigger the network).\n\n");
}

/// One point of the family sweep: a topology family at a given size
/// parameter (fat-tree arity, WAN nodes, mesh cores, ring length).
struct ScalePoint {
  testkit::Family family;
  int size;
};

std::vector<ScalePoint> FamilySweepPoints() {
  using testkit::Family;
  return {
      {Family::kFatTree, 2}, {Family::kFatTree, 4},
      {Family::kWan, 8},     {Family::kWan, 16},    {Family::kWan, 24},
      {Family::kMultiAs, 4}, {Family::kMultiAs, 8}, {Family::kMultiAs, 12},
      {Family::kOspfMix, 6}, {Family::kOspfMix, 10},
  };
}

double Median(std::vector<double> values) {
  NS_ASSERT(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// The production-scale sweep (ROADMAP item 4): solved no-transit problems
/// over realistic topology families, recording seed-constraint count,
/// simplification (explain) time, lift time, and subspec size per family
/// and size — the in-tree trajectory behind the C6 linearity claim. The
/// per-point records plus a "family-median" summary land in
/// BENCH_SCALING.json and are gated by the bench-scaling CI job.
void PrintFamilyTable(util::Json& records) {
  std::printf(
      "family sweep | explanation pipeline on realistic topology families\n");
  ns::bench::Rule('=');
  std::printf("%-13s %8s %6s %7s %10s %11s %9s %9s\n", "family", "routers",
              "links", "seed#", "explain ms", "lift ms", "subspec",
              "complete");
  ns::bench::Rule();

  std::vector<double> explain_times;
  std::vector<double> lift_times;
  for (const ScalePoint& point : FamilySweepPoints()) {
    testkit::FamilyProblem problem =
        testkit::MakeFamilyProblem(point.family, point.size);
    explain::SubspecOptions options;
    options.encoder.max_hops = problem.max_hops;

    explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
    explain::Subspec subspec;
    const double explain_ms = ns::bench::TimeMs([&] {
      auto result = explainer.Explain(
          explain::Selection::Map(problem.question_router,
                                  problem.question_map),
          options);
      NS_ASSERT(result.ok());
      subspec = std::move(result).value();
    });

    explain::Lifter lifter(explainer.pool(), problem.topo, problem.spec,
                           problem.solved);
    bool complete = false;
    int candidates_tried = 0;
    const double lift_ms = ns::bench::TimeMs([&] {
      auto lifted =
          lifter.Lift(subspec, explain::LiftMode::kFaithful, options);
      NS_ASSERT(lifted.ok());
      complete = lifted.value().complete;
      candidates_tried = lifted.value().candidates_tried;
    });

    explain_times.push_back(explain_ms);
    lift_times.push_back(lift_ms);
    const explain::SubspecMetrics& m = subspec.metrics;
    std::printf("%-13s %8zu %6zu %7zu %10.1f %11.1f %9zu %9s\n",
                problem.label.c_str(), problem.topo.NumRouters(),
                problem.topo.links().size(), m.seed_constraints, explain_ms,
                lift_ms, m.residual_size, complete ? "yes" : "no");
    std::fflush(stdout);

    util::Json record = util::Json::MakeObject();
    record.Set("label", problem.label);
    record.Set("ref_ms", explain_ms);   // encode + simplify + project
    record.Set("opt_ms", lift_ms);      // two-phase lift on top
    // Localization ratio: how much smaller the residual subspec is than
    // the seed specification (the paper's C6 story at scale).
    record.Set("speedup",
               static_cast<double>(m.seed_size) /
                   static_cast<double>(std::max<std::size_t>(1u,
                                                             m.residual_size)));
    record.Set("family", testkit::FamilyName(problem.family));
    record.Set("size", problem.size);
    record.Set("routers", problem.topo.NumRouters());
    record.Set("links", problem.topo.links().size());
    record.Set("max_hops", problem.max_hops);
    record.Set("seed_constraints", m.seed_constraints);
    record.Set("seed_size", m.seed_size);
    record.Set("simplify_ms", explain_ms);
    record.Set("lift_ms", lift_ms);
    record.Set("subspec_constraints", m.residual_constraints);
    record.Set("subspec_size", m.residual_size);
    record.Set("lift_complete", complete);
    record.Set("candidates_tried", candidates_tried);
    records.Append(std::move(record));
  }
  ns::bench::Rule();
  std::printf("seed constraints grow with candidate paths; the subspec "
              "stays proportional to the\nsymbolized fields across every "
              "family (C6 at production scale).\n\n");

  util::Json median = util::Json::MakeObject();
  median.Set("label", "family-median");
  median.Set("ref_ms", Median(explain_times));
  median.Set("opt_ms", Median(lift_times));
  median.Set("speedup", 1.0);
  records.Append(std::move(median));
}

/// Rebuilds a problem's seed specification (domains excluded, matching the
/// explainer's filter) into `pool`; deterministic for AbFixpoint.
std::vector<smt::Expr> MakeSeed(smt::ExprPool& pool, const Problem& problem) {
  config::NetworkConfig partial = problem.solved;
  auto holes = explain::Symbolize(
      partial, explain::Selection::Map(problem.question_router,
                                       problem.question_map));
  NS_ASSERT(holes.ok());
  auto dests =
      synth::BuildDestinations(problem.topo, partial, problem.spec);
  NS_ASSERT(dests.ok());
  synth::EnsureOriginated(partial, dests.value());
  auto encoding = synth::Encode(pool, problem.topo, partial, problem.spec);
  NS_ASSERT(encoding.ok());
  std::vector<smt::Expr> seed;
  seed.reserve(encoding.value().constraints.size());
  for (smt::Expr c : encoding.value().constraints) {
    const bool is_domain =
        std::find(encoding.value().domain_constraints.begin(),
                  encoding.value().domain_constraints.end(),
                  c) != encoding.value().domain_constraints.end();
    if (!is_domain) seed.push_back(c);
  }
  return seed;
}

/// Reference vs optimized fixpoint across the whole sweep. The largest
/// seeds are where the cross-pass memo and indexed propagation matter; the
/// target is >= 2x there.
util::Json PrintAbTable() {
  std::printf("A/B | fixpoint engine on the sweep seeds: reference "
              "(per-pass memo, unindexed\n    | propagation) vs optimized — "
              "identical outputs asserted\n");
  ns::bench::Rule('=');
  std::printf("%-13s %10s %10s %9s %7s %10s %10s\n", "topology", "ref ms",
              "opt ms", "speedup", "passes", "seed size", "memo");
  ns::bench::Rule();

  util::Json records = util::Json::MakeArray();
  for (const Problem& problem : Sweep()) {
    const auto ab = ns::bench::AbFixpoint(
        [&](smt::ExprPool& pool) { return MakeSeed(pool, problem); });
    std::printf("%-13s %10.2f %10.2f %8.2fx %7d %10zu %10zu\n",
                problem.label.c_str(), ab.ref_ms, ab.opt_ms, ab.speedup,
                ab.passes, ab.seed_size, ab.memo_entries);
    records.Append(ns::bench::AbRecord(problem.label, ab));
  }
  ns::bench::Rule();
  std::printf("\n");
  return records;
}

/// Sequential vs parallel batch-explain on the largest sweep problems.
/// Asserts the parallel reports are byte-identical to the sequential ones
/// (fresh pool per request makes each answer order-independent).
void PrintBatchTable(util::Json& records) {
  std::printf("batch-explain | 1 worker vs hardware concurrency "
              "(one Session per request)\n");
  ns::bench::Rule('=');
  std::printf("%-13s %9s %10s %10s %9s %8s\n", "topology", "questions",
              "seq ms", "par ms", "speedup", "workers");
  ns::bench::Rule();

  int max_workers = 1;
  for (const Problem& problem :
       {MakeProblem("chain(12)", net::Chain(12)),
        MakeProblem("ring(8)", net::Ring(8)),
        MakeProblem("fabric(2,3)", net::Fabric(2, 3))}) {
    const auto requests = explain::RequestsForAllRouters(problem.solved);
    explain::BatchOutcome sequential;
    const double seq_ms = ns::bench::TimeMs([&] {
      sequential = explain::BatchExplain(problem.topo, problem.spec,
                                         problem.solved, requests,
                                         explain::BatchOptions{1});
    });
    explain::BatchOutcome parallel;
    const double par_ms = ns::bench::TimeMs([&] {
      parallel = explain::BatchExplain(problem.topo, problem.spec,
                                       problem.solved, requests,
                                       explain::BatchOptions{0});
    });
    NS_ASSERT(sequential.items.size() == parallel.items.size());
    for (std::size_t i = 0; i < sequential.items.size(); ++i) {
      NS_ASSERT(sequential.items[i].result.ok());
      NS_ASSERT(parallel.items[i].result.ok());
      NS_ASSERT_MSG(sequential.items[i].result.value().report ==
                        parallel.items[i].result.value().report,
                    "parallel batch diverged from sequential");
    }
    const double speedup = par_ms > 0 ? seq_ms / par_ms : 0;
    max_workers = std::max(max_workers, parallel.threads_used);
    std::printf("%-13s %9zu %10.2f %10.2f %8.2fx %8d\n",
                problem.label.c_str(), requests.size(), seq_ms, par_ms,
                speedup, parallel.threads_used);

    util::Json record = util::Json::MakeObject();
    record.Set("label", "batch:" + problem.label);
    record.Set("ref_ms", seq_ms);
    record.Set("opt_ms", par_ms);
    record.Set("speedup", speedup);
    record.Set("questions", requests.size());
    record.Set("threads_used", parallel.threads_used);
    records.Append(std::move(record));
  }
  ns::bench::Rule();
  if (max_workers == 1) {
    std::printf("single-CPU host: hardware concurrency is 1, so the parallel\n"
                "driver degenerates to the sequential path (no speedup here).\n");
  }
  std::printf("\n");
}

void BM_ExplainChain(benchmark::State& state) {
  Problem problem = MakeProblem("chain", net::Chain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
    auto subspec = explainer.Explain(explain::Selection::Map(
        problem.question_router, problem.question_map));
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_ExplainChain)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_SynthesizeChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Chain(n);
  auto spec = spec::ParseSpec(
      "Req1 {\n  !(Left->...->Right)\n  !(Right->...->Left)\n}");
  NS_ASSERT(spec.ok());
  config::NetworkConfig sketch = config::SkeletonFor(topo);
  config::RouteMap& left_map = config::EnsureExportMap(
      *sketch.FindRouter("R1"), "Left");
  synth::AddSymbolicEntry(left_map, 10);
  left_map.entries.push_back(config::DenyAll(100));
  config::RouteMap& right_map = config::EnsureExportMap(
      *sketch.FindRouter("R" + std::to_string(n)), "Right");
  synth::AddSymbolicEntry(right_map, 10);
  right_map.entries.push_back(config::DenyAll(100));
  for (auto _ : state) {
    synth::Synthesizer synthesizer(topo, spec.value());
    auto result = synthesizer.Synthesize(sketch);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_SynthesizeChain)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  PrintTable();
  util::Json records = PrintAbTable();
  PrintBatchTable(records);
  PrintFamilyTable(records);
  ns::bench::WriteBenchJson(json_path, "bench_scaling", std::move(records));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
