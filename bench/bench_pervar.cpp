// Experiment E7 — paper claim C6 (§4 observation 2):
//   "the size of the sub-specifications was linear in relation to the
//    configuration variables in question. We found that generating and
//    inspecting sub-specifications one variable at a time was an
//    effective strategy."
//
// Sweeps selections of increasing width at R2's provider-facing map in
// scenario 3 (where every slot is load-bearing) and reports residual size
// per number of symbolized variables.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "explain/report.hpp"

namespace {

using namespace ns;

void PrintTable() {
  const synth::Scenario s = synth::Scenario3();
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  explain::Explainer explainer(s.topo, s.spec, solved);

  struct Step {
    const char* label;
    explain::Selection selection;
  };
  const std::vector<Step> steps{
      {"R2 entry 10, action only",
       explain::Selection::Slot("R2", "R2_to_P2", 10, "action")},
      {"R2 entry 10, match clause",
       explain::Selection::Slot("R2", "R2_to_P2", 10, "match")},
      {"R2 entry 10, every slot",
       explain::Selection::Entry("R2", "R2_to_P2", 10)},
      {"R2 whole provider map", explain::Selection::Map("R2", "R2_to_P2")},
      {"R3 whole router (3 maps)", explain::Selection::Router("R3")},
  };

  std::printf("E7 | sub-specification size vs number of symbolized "
              "variables (claim C6)\n");
  ns::bench::Rule('=');
  std::printf("%-28s %8s %12s %12s %14s\n", "selection", "#vars", "residual#",
              "resid.size", "size per var");
  ns::bench::Rule();
  for (const Step& step : steps) {
    auto subspec = explainer.Explain(step.selection);
    NS_ASSERT_MSG(subspec.ok(), subspec.ok() ? "" : subspec.error().ToString());
    const std::size_t vars = subspec.value().holes.size();
    const auto& m = subspec.value().metrics;
    std::printf("%-28s %8zu %12zu %12zu %14.1f\n", step.label, vars,
                m.residual_constraints, m.residual_size,
                vars == 0 ? 0.0 : static_cast<double>(m.residual_size) /
                                      static_cast<double>(vars));
  }
  ns::bench::Rule();
  std::printf("paper: size grows roughly linearly with the variables in "
              "question; per-variable\nanswers stay small and "
              "interpretable.\n\n");
}

void BM_PerVariableQuestion(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario3();
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  for (auto _ : state) {
    explain::Explainer explainer(s.topo, s.spec, solved);
    auto subspec = explainer.Explain(
        explain::Selection::Slot("R2", "R2_to_P2", 10, "action"));
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_PerVariableQuestion)->Unit(benchmark::kMillisecond);

void BM_WholeRouterQuestion(benchmark::State& state) {
  const synth::Scenario s = synth::Scenario3();
  const config::NetworkConfig solved = ns::bench::MustSynthesize(s);
  for (auto _ : state) {
    explain::Explainer explainer(s.topo, s.spec, solved);
    auto subspec = explainer.Explain(explain::Selection::Router("R2"));
    benchmark::DoNotOptimize(subspec.value().metrics.residual_size);
  }
}
BENCHMARK(BM_WholeRouterQuestion)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
