// bench_arena — the frozen-arena answer trajectory. A warm request seeds
// its Session from a shared frozen arena (the replayed symbolize → encode
// → simplify → eliminate prefix, hash-consed and immutable) and runs only
// the lift suffix in a thin copy-on-write overlay pool; the baseline
// re-runs the whole pipeline in a fresh ExprPool. This bench A/Bs both
// granularities per question:
//
//   * encode+simplify — the stage the arena removes: a fresh
//     Explainer::Explain versus the warm seed (registry hit + overlay
//     pool construction). This is where the headline speedup lives.
//   * whole answer — end-to-end AnswerRequest fresh versus warm, with the
//     lift suffix (solver-bound, shared by both paths) included; the
//     rendered answers are asserted byte-identical while measuring.
//
//   bench_arena --json BENCH_ARENA.json [--benchmark_filter=NONE]
//
// The committed BENCH_ARENA.json at the repo root is regenerated with
// exactly that invocation (see TESTING.md); CI re-runs the bench and
// fails if the warm whole-answer median (record "median", key opt_ms —
// millisecond scale, stable) regresses >1.5x against the committed
// numbers (tools/bench_json_check --baseline). The "median-encode" record
// carries the encode+simplify A/B; the "memory" record reuses the ref/opt
// keys for node *counts* (fresh-pool nodes vs frozen + overlay nodes
// across the run) and its "speedup" is the footprint ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "explain/arena.hpp"
#include "explain/batch.hpp"
#include "explain/report.hpp"

namespace {

using namespace ns;

struct Problem {
  std::string label;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;
  explain::BatchRequest request;
};

/// One row per policy-carrying router of each paper scenario — the same
/// question population the batch driver and the serve workers answer.
std::vector<Problem> Sweep() {
  std::vector<Problem> out;
  const struct {
    const char* label;
    synth::Scenario scenario;
  } scenarios[] = {{"scenario1", synth::Scenario1()},
                   {"scenario2", synth::Scenario2()},
                   {"scenario3", synth::Scenario3()}};
  for (const auto& entry : scenarios) {
    config::NetworkConfig solved = bench::MustSynthesize(entry.scenario);
    for (explain::BatchRequest& request :
         explain::RequestsForAllRouters(solved)) {
      Problem problem{std::string(entry.label) + "/" +
                          request.selection.router,
                      entry.scenario.topo, entry.scenario.spec, solved,
                      std::move(request)};
      out.push_back(std::move(problem));
    }
  }
  return out;
}

explain::BatchAnswer MustAnswer(
    const Problem& problem,
    const std::shared_ptr<explain::ArenaRegistry>& registry) {
  auto answer = explain::AnswerRequest(problem.topo, problem.spec,
                                       problem.solved, problem.request,
                                       registry);
  NS_ASSERT_MSG(answer.ok(), "bench problem failed to answer");
  return std::move(answer).value();
}

/// The fresh-pool encode+simplify prefix: everything Explain runs before
/// the lift suffix (symbolize → encode → simplify → eliminate).
double TimeFreshEncode(const Problem& problem) {
  return bench::TimeMs([&] {
    explain::Explainer explainer(problem.topo, problem.spec, problem.solved);
    explain::SubspecOptions options;
    options.requirements = problem.request.requirements;
    options.solver = problem.request.solver;
    auto subspec =
        explainer.Explain(problem.request.selection, options);
    NS_ASSERT_MSG(subspec.ok(), "bench problem failed to explain");
    benchmark::DoNotOptimize(subspec.value().constraints.size());
  });
}

/// The warm replacement for that prefix: a registry hit plus standing up
/// the request's copy-on-write overlay pool (what AskViaArena does before
/// handing off to the lift).
double TimeWarmSeed(const Problem& problem,
                    const std::shared_ptr<explain::ArenaRegistry>& registry) {
  return bench::TimeMs([&] {
    auto question = registry->GetOrBuild(problem.topo, problem.spec,
                                         problem.solved,
                                         problem.request.selection,
                                         problem.request.requirements);
    NS_ASSERT_MSG(question.ok(), "bench registry lookup failed");
    smt::ExprPool overlay(question.value()->arena);
    benchmark::DoNotOptimize(overlay.NumFrozenNodes());
  });
}

double Median(std::vector<double> values) {
  NS_ASSERT(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

util::Json PrintTable() {
  std::printf("arena answers | enc ref/opt = encode+simplify: fresh ExprPool "
              "vs warm arena seed\n              | (registry hit + overlay); "
              "ans ref/opt = whole answer including the\n              | "
              "lift suffix — cold = first request, which builds the arena\n");
  bench::Rule('=');
  std::printf("%-14s | %8s %8s %8s | %8s %8s %8s %7s | %7s %7s\n", "question",
              "enc ref", "enc opt", "speedup", "ans ref", "cold", "ans opt",
              "speedup", "frozen", "overlay");
  bench::Rule();

  constexpr int kReps = 5;
  util::Json records = util::Json::MakeArray();
  std::vector<double> encode_ref_series;
  std::vector<double> encode_opt_series;
  std::vector<double> answer_ref_series;
  std::vector<double> answer_opt_series;
  // Node-count totals over every answer the run produced: the fresh path
  // pays a full pool per answer; the arena path pays each question's
  // frozen tier once plus an overlay per answer.
  std::uint64_t fresh_nodes_total = 0;
  std::uint64_t arena_nodes_total = 0;
  for (const Problem& problem : Sweep()) {
    double answer_ref_ms = 0;
    explain::BatchAnswer fresh;
    for (int rep = 0; rep < kReps; ++rep) {
      const double sample =
          bench::TimeMs([&] { fresh = MustAnswer(problem, nullptr); });
      answer_ref_ms = rep == 0 ? sample : std::min(answer_ref_ms, sample);
    }

    auto registry = std::make_shared<explain::ArenaRegistry>();
    explain::BatchAnswer warm;
    const double cold_ms =
        bench::TimeMs([&] { warm = MustAnswer(problem, registry); });
    double answer_opt_ms = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double sample =
          bench::TimeMs([&] { warm = MustAnswer(problem, registry); });
      answer_opt_ms = rep == 0 ? sample : std::min(answer_opt_ms, sample);
    }

    double encode_ref_ms = 0;
    double encode_opt_ms = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double ref_sample = TimeFreshEncode(problem);
      const double opt_sample = TimeWarmSeed(problem, registry);
      encode_ref_ms =
          rep == 0 ? ref_sample : std::min(encode_ref_ms, ref_sample);
      encode_opt_ms =
          rep == 0 ? opt_sample : std::min(encode_opt_ms, opt_sample);
    }

    // The determinism contract (DESIGN.md §11): the arena path replays
    // the fresh path's node-creation sequence exactly, so the rendered
    // answer may not differ by a byte.
    NS_ASSERT_MSG(fresh.report == warm.report &&
                      fresh.subspec_text == warm.subspec_text &&
                      fresh.empty == warm.empty && fresh.unsat == warm.unsat,
                  "warm arena answer diverged from the fresh-pool baseline");
    NS_ASSERT_MSG(warm.stats.arena.used, "warm answer bypassed the arena");

    const double encode_speedup =
        encode_opt_ms > 0 ? encode_ref_ms / encode_opt_ms : 0;
    const double answer_speedup =
        answer_opt_ms > 0 ? answer_ref_ms / answer_opt_ms : 0;
    const std::uint64_t frozen = warm.stats.arena.frozen_nodes;
    const std::uint64_t overlay = warm.stats.arena.overlay_nodes;
    std::printf("%-14s | %8.2f %8.3f %7.1fx | %8.2f %8.2f %8.2f %6.2fx | "
                "%7llu %7llu\n",
                problem.label.c_str(), encode_ref_ms, encode_opt_ms,
                encode_speedup, answer_ref_ms, cold_ms, answer_opt_ms,
                answer_speedup, static_cast<unsigned long long>(frozen),
                static_cast<unsigned long long>(overlay));
    encode_ref_series.push_back(encode_ref_ms);
    encode_opt_series.push_back(encode_opt_ms);
    answer_ref_series.push_back(answer_ref_ms);
    answer_opt_series.push_back(answer_opt_ms);
    const std::uint64_t answers = 1 + kReps;  // one cold + kReps warm
    fresh_nodes_total += answers * (frozen + overlay);
    arena_nodes_total += frozen + answers * overlay;

    util::Json record = util::Json::MakeObject();
    record.Set("label", problem.label);
    record.Set("ref_ms", answer_ref_ms);
    record.Set("opt_ms", answer_opt_ms);
    record.Set("speedup", answer_speedup);
    record.Set("cold_ms", cold_ms);
    record.Set("encode_ref_ms", encode_ref_ms);
    record.Set("encode_opt_ms", encode_opt_ms);
    record.Set("encode_speedup", encode_speedup);
    record.Set("frozen_nodes", static_cast<std::int64_t>(frozen));
    record.Set("frozen_symbols",
               static_cast<std::int64_t>(warm.stats.arena.frozen_symbols));
    record.Set("overlay_nodes", static_cast<std::int64_t>(overlay));
    records.Append(std::move(record));
  }
  bench::Rule();

  // Summary records. CI gates on "median" (whole-answer warm median, key
  // opt_ms — millisecond scale, so the 1.5x ratio is meaningful);
  // "median-encode" is the headline encode+simplify trajectory.
  const double answer_ref_median = Median(answer_ref_series);
  const double answer_opt_median = Median(answer_opt_series);
  const double answer_median_speedup =
      answer_opt_median > 0 ? answer_ref_median / answer_opt_median : 0;
  const double encode_ref_median = Median(encode_ref_series);
  const double encode_opt_median = Median(encode_opt_series);
  const double encode_median_speedup =
      encode_opt_median > 0 ? encode_ref_median / encode_opt_median : 0;
  std::printf("median encode+simplify: fresh %.3f ms, warm arena seed "
              "%.3f ms (%.1fx)\n",
              encode_ref_median, encode_opt_median, encode_median_speedup);
  std::printf("median whole answer:    fresh %.3f ms, warm %.3f ms "
              "(%.2fx)\n",
              answer_ref_median, answer_opt_median, answer_median_speedup);

  util::Json median = util::Json::MakeObject();
  median.Set("label", "median");
  median.Set("ref_ms", answer_ref_median);
  median.Set("opt_ms", answer_opt_median);
  median.Set("speedup", answer_median_speedup);
  records.Append(std::move(median));

  util::Json encode_median = util::Json::MakeObject();
  encode_median.Set("label", "median-encode");
  encode_median.Set("ref_ms", encode_ref_median);
  encode_median.Set("opt_ms", encode_opt_median);
  encode_median.Set("speedup", encode_median_speedup);
  records.Append(std::move(encode_median));

  // Memory footprint over the whole run (counts, not milliseconds — the
  // shared ref/opt keys keep the artifact schema uniform).
  const double ratio =
      arena_nodes_total > 0 ? static_cast<double>(fresh_nodes_total) /
                                  static_cast<double>(arena_nodes_total)
                            : 0;
  std::printf("pool nodes allocated: fresh %llu, arena+overlays %llu "
              "(%.2fx smaller)\n\n",
              static_cast<unsigned long long>(fresh_nodes_total),
              static_cast<unsigned long long>(arena_nodes_total), ratio);
  util::Json memory = util::Json::MakeObject();
  memory.Set("label", "memory");
  memory.Set("ref_ms", static_cast<double>(fresh_nodes_total));
  memory.Set("opt_ms", static_cast<double>(arena_nodes_total));
  memory.Set("speedup", ratio);
  records.Append(std::move(memory));
  return records;
}

void BM_AnswerScenario1(benchmark::State& state) {
  const Problem problem = Sweep().front();
  const bool warm = state.range(0) != 0;
  auto registry = std::make_shared<explain::ArenaRegistry>();
  if (warm) MustAnswer(problem, registry);  // prime the arena
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustAnswer(problem, warm ? registry : nullptr).metrics);
  }
}
BENCHMARK(BM_AnswerScenario1)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ns::bench::ExtractJsonPath(argc, argv);
  util::Json records = PrintTable();
  ns::bench::WriteBenchJson(json_path, "bench_arena", std::move(records));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
