#!/usr/bin/env python3
"""CI smoke driver for `netsubspec serve` (wire protocol: docs/SERVE.md).

Usage: serve_smoke.py PORT TOPO SPEC CONFIG GOLDEN_REPORT

Drives load -> explain -> repeat -> stats -> shutdown against a running
server on 127.0.0.1:PORT and exits nonzero on any divergence:
  - the first explain must be a miss, the repeat a hit with byte-identical
    report and subspec,
  - the served report must equal the checked-in golden file byte for byte,
  - stats must show at least one cache hit,
  - shutdown must be acknowledged with draining=true.
"""
import json
import socket
import sys


def main() -> int:
    port, topo_path, spec_path, config_path, golden_path = sys.argv[1:6]
    with open(topo_path) as f:
        topo = f.read()
    with open(spec_path) as f:
        spec = f.read()
    with open(config_path) as f:
        config = f.read()
    with open(golden_path) as f:
        golden = f.read()

    sock = socket.create_connection(("127.0.0.1", int(port)), timeout=60)
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")

    def call(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        line = stream.readline()
        if not line:
            raise SystemExit("server closed the connection unexpectedly")
        response = json.loads(line)
        print(f"<- {request['cmd']}: ok={response.get('ok')}", flush=True)
        return response

    loaded = call({"cmd": "load", "topo": topo, "spec": spec, "config": config})
    assert loaded["ok"], loaded
    assert len(loaded["scenario"]) == 16, loaded

    question = {"cmd": "explain", "router": "R1", "mode": "faithful"}
    first = call(question)
    assert first["ok"] and first["cached"] is False, first
    assert first["report"] == golden, (
        "served report diverged from the golden file; if the rendering "
        "change is intentional, regenerate with NS_UPDATE_GOLDEN=1 "
        "./build/tests/test_golden"
    )

    repeat = call(question)
    assert repeat["ok"] and repeat["cached"] is True, repeat
    assert repeat["report"] == first["report"], "cache returned different bytes"
    assert repeat["subspec"] == first["subspec"], "cache returned different bytes"

    stats = call({"cmd": "stats"})
    assert stats["ok"], stats
    assert stats["cache"]["hits"] >= 1, stats
    assert stats["requests"]["explain"] == 2, stats

    bye = call({"cmd": "shutdown"})
    assert bye["ok"] and bye["draining"] is True, bye
    sock.close()
    print("serve smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
