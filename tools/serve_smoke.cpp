// serve_smoke — scripted end-to-end exchange against the explanation
// service, used by the `serve_smoke` ctest and the CI serve-smoke job.
//
//   serve_smoke --topo F --spec F --config F --router R [--mode faithful]
//               [--golden FILE]
//
// Boots a Server in-process on an ephemeral loopback port (so the run
// needs no free-port coordination), then drives the canonical session
// through a real socket:
//
//   load -> explain -> explain (repeat) -> stats -> shutdown
//
// and checks every service invariant a deploy smoke should: the repeat is
// answered from the cache, byte-identical to the first answer; `stats`
// reports the hit; the drain completes with no thread leaked. With
// --golden the report must equal the checked-in file byte for byte, so
// pretty-printer drift fails the job instead of slipping through.
// Exit codes: 0 = ok, 1 = invariant violated, 2 = usage/IO error.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using namespace ns;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --topo F --spec F --config F --router R\n"
               "          [--mode exact|faithful] [--golden FILE]\n",
               argv0);
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return {};
    flags[arg.substr(2)] = argv[i + 1];
  }
  return flags;
}

int Violated(const std::string& what) {
  std::fprintf(stderr, "serve_smoke: FAILED: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  for (const char* required : {"topo", "spec", "config", "router"}) {
    if (flags.count(required) == 0) return Usage(argv[0]);
  }

  std::string texts[3];
  const char* files[3] = {"topo", "spec", "config"};
  for (int i = 0; i < 3; ++i) {
    auto text = util::ReadFile(flags.at(files[i]));
    if (!text.ok()) {
      std::fprintf(stderr, "serve_smoke: %s\n",
                   text.error().ToString().c_str());
      return 2;
    }
    texts[i] = std::move(text).value();
  }

  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.threads = 2;
  options.cache_entries = 64;
  serve::Server server(options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "serve_smoke: %s\n",
                 started.error().ToString().c_str());
    return 2;
  }
  std::printf("serve_smoke: server on 127.0.0.1:%d\n", server.port());

  auto client = serve::Client::Connect(server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "serve_smoke: %s\n",
                 client.error().ToString().c_str());
    return 2;
  }

  const auto call = [&](util::Json request) -> util::Result<util::Json> {
    return client.value().Call(request);
  };
  const auto require_ok = [](const util::Result<util::Json>& response,
                             const char* step) -> const util::Json* {
    if (!response.ok()) {
      std::fprintf(stderr, "serve_smoke: %s: %s\n", step,
                   response.error().ToString().c_str());
      return nullptr;
    }
    const util::Json* ok = response.value().Find("ok");
    if (ok == nullptr || !ok->AsBool()) {
      std::fprintf(stderr, "serve_smoke: %s: server error response: %s\n",
                   step, response.value().Dump(0).c_str());
      return nullptr;
    }
    return &response.value();
  };

  // 1. load
  util::Json load = util::Json::MakeObject();
  load.Set("cmd", "load");
  load.Set("topo", texts[0]);
  load.Set("spec", texts[1]);
  load.Set("config", texts[2]);
  auto load_response = call(std::move(load));
  if (require_ok(load_response, "load") == nullptr) return 1;

  // 2. explain
  util::Json explain = util::Json::MakeObject();
  explain.Set("cmd", "explain");
  explain.Set("router", flags.at("router"));
  if (flags.count("mode")) explain.Set("mode", flags.at("mode"));
  auto first = call(explain);
  const util::Json* first_ok = require_ok(first, "explain");
  if (first_ok == nullptr) return 1;
  const std::string report = first_ok->Find("report")->AsString();
  if (first_ok->Find("cached")->AsBool()) {
    return Violated("first explain claims to be served from the cache");
  }

  // 3. repeat -> must be a byte-identical cache hit
  auto repeat = call(explain);
  const util::Json* repeat_ok = require_ok(repeat, "explain (repeat)");
  if (repeat_ok == nullptr) return 1;
  if (!repeat_ok->Find("cached")->AsBool()) {
    return Violated("repeated explain was not served from the cache");
  }
  if (repeat_ok->Find("report")->AsString() != report) {
    return Violated("cached answer differs from the first answer");
  }

  // 4. stats -> the hit is visible
  util::Json stats_request = util::Json::MakeObject();
  stats_request.Set("cmd", "stats");
  auto stats = call(std::move(stats_request));
  const util::Json* stats_ok = require_ok(stats, "stats");
  if (stats_ok == nullptr) return 1;
  const util::Json* cache = stats_ok->Find("cache");
  if (cache == nullptr || cache->Find("hits")->AsInt() < 1) {
    return Violated("stats does not report the cache hit");
  }

  // 5. shutdown -> graceful drain, no leaked threads
  util::Json shutdown_request = util::Json::MakeObject();
  shutdown_request.Set("cmd", "shutdown");
  auto shutdown = call(std::move(shutdown_request));
  if (require_ok(shutdown, "shutdown") == nullptr) return 1;
  server.Shutdown();
  if (server.threads_spawned() != server.threads_joined()) {
    return Violated("thread leak: spawned " +
                    std::to_string(server.threads_spawned()) + ", joined " +
                    std::to_string(server.threads_joined()));
  }

  // 6. optional golden comparison
  if (flags.count("golden")) {
    auto golden = util::ReadFile(flags.at("golden"));
    if (!golden.ok()) {
      std::fprintf(stderr, "serve_smoke: %s\n",
                   golden.error().ToString().c_str());
      return 2;
    }
    if (golden.value() != report) {
      std::fprintf(stderr,
                   "serve_smoke: report drifted from golden %s\n"
                   "---- served ----\n%s---- golden ----\n%s",
                   flags.at("golden").c_str(), report.c_str(),
                   golden.value().c_str());
      return 1;
    }
  }

  std::printf("serve_smoke: ok (load, explain, cached repeat, stats, "
              "clean drain%s)\n",
              flags.count("golden") ? ", golden match" : "");
  return 0;
}
