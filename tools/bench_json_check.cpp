// bench_json_check — validates the machine-readable bench artifacts
// (BENCH_*.json) emitted by the bench binaries' --json flag.
//
//   bench_json_check BENCH_rules.json [BENCH_scaling.json ...]
//
// The shared shape (see bench/bench_common.hpp): a top-level object with a
// "bench" name and a non-empty "records" array; every record carries
// "label" (string) plus the A/B keys "ref_ms"/"opt_ms"/"speedup"
// (numbers). Exit code 0 iff every file validates — CI runs this after the
// bench smoke run so a schema drift fails the build, not a dashboard.
#include <cstdio>
#include <string>

#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using ns::util::Json;

bool Complain(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "bench_json_check: %s: %s\n", path.c_str(),
               what.c_str());
  return false;
}

bool CheckRecord(const std::string& path, const Json& record,
                 std::size_t index) {
  const std::string where = "records[" + std::to_string(index) + "]";
  if (!record.IsObject()) return Complain(path, where + " is not an object");
  const Json* label = record.Find("label");
  if (label == nullptr || !label->IsString() || label->AsString().empty()) {
    return Complain(path, where + " lacks a non-empty string 'label'");
  }
  for (const char* key : {"ref_ms", "opt_ms", "speedup"}) {
    const Json* value = record.Find(key);
    if (value == nullptr || !value->IsNumber()) {
      return Complain(path, where + " ('" + label->AsString() +
                                "') lacks numeric '" + key + "'");
    }
    if (value->AsDouble() < 0) {
      return Complain(path, where + " ('" + label->AsString() + "') has '" +
                                key + "' < 0");
    }
  }
  return true;
}

bool CheckFile(const std::string& path) {
  auto text = ns::util::ReadFile(path);
  if (!text) return Complain(path, text.error().ToString());
  auto parsed = Json::Parse(text.value());
  if (!parsed) return Complain(path, parsed.error().ToString());
  const Json& doc = parsed.value();
  if (!doc.IsObject()) return Complain(path, "top level is not an object");
  const Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->IsString() || bench->AsString().empty()) {
    return Complain(path, "lacks a non-empty string 'bench'");
  }
  const Json* records = doc.Find("records");
  if (records == nullptr || !records->IsArray()) {
    return Complain(path, "lacks a 'records' array");
  }
  if (records->AsArray().empty()) {
    return Complain(path, "'records' is empty");
  }
  for (std::size_t i = 0; i < records->AsArray().size(); ++i) {
    if (!CheckRecord(path, records->AsArray()[i], i)) return false;
  }
  std::printf("bench_json_check: %s: ok (%s, %zu records)\n", path.c_str(),
              bench->AsString().c_str(), records->AsArray().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_FILE.json...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    ok = CheckFile(argv[i]) && ok;
  }
  return ok ? 0 : 1;
}
