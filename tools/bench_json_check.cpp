// bench_json_check — validates the machine-readable bench artifacts
// (BENCH_*.json) emitted by the bench binaries' --json flag.
//
//   bench_json_check BENCH_rules.json [BENCH_scaling.json ...]
//   bench_json_check NEW.json --baseline COMMITTED.json \
//       [--record median] [--key opt_ms] [--max-ratio 1.5]
//
// The shared shape (see bench/bench_common.hpp): a top-level object with a
// "bench" name and a non-empty "records" array; every record carries
// "label" (string) plus the A/B keys "ref_ms"/"opt_ms"/"speedup"
// (numbers). Exit code 0 iff every file validates — CI runs this after the
// bench smoke run so a schema drift fails the build, not a dashboard.
//
// Compare mode (--baseline): after validating, look up the record with the
// given label in the first file and in the baseline and fail if the
// candidate's key exceeds baseline * max-ratio — the CI regression gate
// for committed artifacts like BENCH_LIFT.json (key opt_ms, record
// "median": the incremental lift-search median query time may not regress
// more than 1.5x against the committed trajectory).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using ns::util::Json;

bool Complain(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "bench_json_check: %s: %s\n", path.c_str(),
               what.c_str());
  return false;
}

bool CheckRecord(const std::string& path, const Json& record,
                 std::size_t index) {
  const std::string where = "records[" + std::to_string(index) + "]";
  if (!record.IsObject()) return Complain(path, where + " is not an object");
  const Json* label = record.Find("label");
  if (label == nullptr || !label->IsString() || label->AsString().empty()) {
    return Complain(path, where + " lacks a non-empty string 'label'");
  }
  for (const char* key : {"ref_ms", "opt_ms", "speedup"}) {
    const Json* value = record.Find(key);
    if (value == nullptr || !value->IsNumber()) {
      return Complain(path, where + " ('" + label->AsString() +
                                "') lacks numeric '" + key + "'");
    }
    if (value->AsDouble() < 0) {
      return Complain(path, where + " ('" + label->AsString() + "') has '" +
                                key + "' < 0");
    }
  }
  return true;
}

bool CheckFile(const std::string& path) {
  auto text = ns::util::ReadFile(path);
  if (!text) return Complain(path, text.error().ToString());
  auto parsed = Json::Parse(text.value());
  if (!parsed) return Complain(path, parsed.error().ToString());
  const Json& doc = parsed.value();
  if (!doc.IsObject()) return Complain(path, "top level is not an object");
  const Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->IsString() || bench->AsString().empty()) {
    return Complain(path, "lacks a non-empty string 'bench'");
  }
  const Json* records = doc.Find("records");
  if (records == nullptr || !records->IsArray()) {
    return Complain(path, "lacks a 'records' array");
  }
  if (records->AsArray().empty()) {
    return Complain(path, "'records' is empty");
  }
  for (std::size_t i = 0; i < records->AsArray().size(); ++i) {
    if (!CheckRecord(path, records->AsArray()[i], i)) return false;
  }
  std::printf("bench_json_check: %s: ok (%s, %zu records)\n", path.c_str(),
              bench->AsString().c_str(), records->AsArray().size());
  return true;
}

/// Finds the record with `label`, or nullptr.
const Json* FindRecord(const Json& doc, const std::string& label) {
  const Json* records = doc.Find("records");
  if (records == nullptr || !records->IsArray()) return nullptr;
  for (const Json& record : records->AsArray()) {
    const Json* name = record.Find("label");
    if (name != nullptr && name->IsString() && name->AsString() == label) {
      return &record;
    }
  }
  return nullptr;
}

bool Compare(const std::string& candidate_path, const std::string& baseline_path,
             const std::string& label, const std::string& key,
             double max_ratio) {
  auto load = [](const std::string& path) -> ns::util::Result<Json> {
    auto text = ns::util::ReadFile(path);
    if (!text) return text.error();
    return Json::Parse(text.value());
  };
  auto candidate = load(candidate_path);
  if (!candidate) return Complain(candidate_path, candidate.error().ToString());
  auto baseline = load(baseline_path);
  if (!baseline) return Complain(baseline_path, baseline.error().ToString());

  const Json* new_record = FindRecord(candidate.value(), label);
  if (new_record == nullptr) {
    return Complain(candidate_path, "no record labeled '" + label + "'");
  }
  const Json* old_record = FindRecord(baseline.value(), label);
  if (old_record == nullptr) {
    return Complain(baseline_path, "no record labeled '" + label + "'");
  }
  const Json* new_value = new_record->Find(key);
  const Json* old_value = old_record->Find(key);
  if (new_value == nullptr || !new_value->IsNumber() || old_value == nullptr ||
      !old_value->IsNumber()) {
    return Complain(candidate_path,
                    "record '" + label + "' lacks numeric '" + key + "'");
  }
  const double bound = old_value->AsDouble() * max_ratio;
  if (new_value->AsDouble() > bound) {
    return Complain(candidate_path,
                    "regression: record '" + label + "' " + key + " = " +
                        std::to_string(new_value->AsDouble()) + " exceeds " +
                        std::to_string(max_ratio) + "x the baseline (" +
                        std::to_string(old_value->AsDouble()) + " in " +
                        baseline_path + ")");
  }
  std::printf("bench_json_check: %s: '%s' %s = %.4f within %.2fx of "
              "baseline %.4f\n",
              candidate_path.c_str(), label.c_str(), key.c_str(),
              new_value->AsDouble(), max_ratio, old_value->AsDouble());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string baseline;
  std::string record = "median";
  std::string key = "opt_ms";
  double max_ratio = 1.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--baseline") {
      baseline = value();
    } else if (arg == "--record") {
      record = value();
    } else if (arg == "--key") {
      key = value();
    } else if (arg == "--max-ratio") {
      max_ratio = std::strtod(value(), nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (!baseline.empty() && max_ratio <= 0)) {
    std::fprintf(stderr,
                 "usage: %s BENCH_FILE.json... [--baseline FILE "
                 "[--record LABEL] [--key KEY] [--max-ratio R]]\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (const std::string& file : files) {
    ok = CheckFile(file) && ok;
  }
  if (ok && !baseline.empty()) {
    ok = Compare(files.front(), baseline, record, key, max_ratio);
  }
  return ok ? 0 : 1;
}
