// loadgen — sustained-load driver for the explanation service.
//
//   loadgen [--port P]                 drive a live server (sends `load` first)
//           [--frontend epoll|blocking] [--threads N] [--reactors R]
//           [--max-queue Q] [--cache-entries K] [--deadline-ms D]
//                                      ... or spawn an in-process server
//           [--connections C]          concurrent connections    (default 8)
//           [--duration-s S]           generation window         (default 5)
//           [--rate R]                 per-connection open-loop arrivals/s;
//                                      0 = closed loop           (default 0)
//           [--seed S]                 request-mix shuffle       (default 1)
//           [--json FILE]              write the report as JSON
//           [--max-p99-ms X]           exit 1 if p99 exceeds X   (CI sanity)
//           [--allow-shed]             don't fail on shed responses
//
// The question mix is scenario 1 (paper Fig. 1) with its fixed
// configuration: every policy-carrying router in both lift modes — the
// same mix the serve tests assert byte-identity on. Exit status: 0 ok,
// 1 gate violated (protocol errors, unexpected sheds, p99 over budget),
// 2 usage/setup error.
//
// CI uses this twice: a 30 s smoke against the real `netsubspec serve`
// binary (zero protocol errors, sane p99) and bench/bench_serve's
// in-process A/B for BENCH_SERVE.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "config/parse.hpp"
#include "config/render.hpp"
#include "explain/batch.hpp"
#include "net/topo_text.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "synth/scenarios.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using ns::util::Json;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P | --frontend epoll|blocking] "
               "[--threads N] [--reactors R] [--max-queue Q] "
               "[--cache-entries K] [--deadline-ms D] [--connections C] "
               "[--duration-s S] [--rate R] [--seed S] [--json FILE] "
               "[--max-p99-ms X] [--allow-shed]\n",
               argv0);
  return 2;
}

struct RequestMix {
  std::string load_line;
  std::vector<std::string> explain_lines;
};

/// Scenario 1 with the paper's fixed configuration — deterministic texts,
/// the same mix tests/serve_test.cpp answers byte-identically.
RequestMix BuildRequestMix() {
  const ns::synth::Scenario scenario = ns::synth::Scenario1();
  const std::string topo = ns::net::ToText(scenario.topo);
  const std::string spec = scenario.spec.ToString();
  const std::string config = ns::config::RenderNetwork(
      ns::synth::Scenario1PaperConfig(), &scenario.topo);

  RequestMix mix;
  Json load = Json::MakeObject();
  load.Set("cmd", "load");
  load.Set("topo", topo);
  load.Set("spec", spec);
  load.Set("config", config);
  mix.load_line = load.Dump(0);

  auto solved = ns::config::ParseNetworkConfig(config);
  if (!solved.ok()) return mix;  // impossible for the built-in scenario
  for (const auto& request :
       ns::explain::RequestsForAllRouters(solved.value())) {
    for (const char* mode : {"exact", "faithful"}) {
      Json explain = Json::MakeObject();
      explain.Set("cmd", "explain");
      explain.Set("router", request.selection.router);
      explain.Set("mode", mode);
      mix.explain_lines.push_back(explain.Dump(0));
    }
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage(argv[0]);
    arg = arg.substr(2);
    if (arg == "allow-shed") {
      flags[arg] = "true";
      continue;
    }
    if (i + 1 >= argc) return Usage(argv[0]);
    flags[arg] = argv[++i];
  }

  ns::serve::LoadgenOptions options;
  if (flags.count("connections")) {
    options.connections = std::atoi(flags["connections"].c_str());
  }
  if (flags.count("duration-s")) {
    options.duration_s = std::atof(flags["duration-s"].c_str());
  }
  if (flags.count("rate")) options.rate_per_s = std::atof(flags["rate"].c_str());
  if (flags.count("seed")) {
    options.seed = std::strtoull(flags["seed"].c_str(), nullptr, 10);
  }

  const RequestMix mix = BuildRequestMix();
  if (mix.explain_lines.empty()) {
    std::fprintf(stderr, "loadgen: could not build the request mix\n");
    return 2;
  }

  // Target: a live server, or an in-process one for self-contained runs.
  std::unique_ptr<ns::serve::Server> server;
  if (flags.count("port")) {
    options.port = std::atoi(flags["port"].c_str());
  } else {
    ns::serve::ServerOptions server_options;
    if (flags.count("threads")) {
      server_options.threads = std::atoi(flags["threads"].c_str());
    }
    if (flags.count("reactors")) {
      server_options.reactors = std::atoi(flags["reactors"].c_str());
    }
    if (flags.count("max-queue")) {
      server_options.max_queue =
          static_cast<std::size_t>(std::atoll(flags["max-queue"].c_str()));
    }
    if (flags.count("cache-entries")) {
      server_options.cache_entries =
          static_cast<std::size_t>(std::atoll(flags["cache-entries"].c_str()));
    }
    if (flags.count("deadline-ms")) {
      server_options.deadline_ms = std::atoi(flags["deadline-ms"].c_str());
    }
    if (flags.count("frontend")) {
      if (flags["frontend"] == "epoll") {
        server_options.frontend = ns::serve::Frontend::kEpoll;
      } else if (flags["frontend"] == "blocking") {
        server_options.frontend = ns::serve::Frontend::kBlocking;
      } else {
        return Usage(argv[0]);
      }
    }
    server = std::make_unique<ns::serve::Server>(server_options);
    if (auto started = server->Start(); !started.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", started.ToString().c_str());
      return 2;
    }
    options.port = server->port();
  }

  // Install the scenario before generating load.
  {
    auto loader = ns::serve::Client::Connect(options.port);
    if (!loader.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", loader.error().ToString().c_str());
      return 2;
    }
    if (auto sent = loader.value().SendLine(mix.load_line); !sent.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", sent.ToString().c_str());
      return 2;
    }
    auto loaded = loader.value().ReadResponse();
    if (!loaded.ok() || loaded.value().Find("ok") == nullptr ||
        !loaded.value().Find("ok")->AsBool()) {
      std::fprintf(stderr, "loadgen: load request failed: %s\n",
                   loaded.ok() ? loaded.value().Dump(0).c_str()
                               : loaded.error().ToString().c_str());
      return 2;
    }
  }

  auto report = ns::serve::RunLoadgen(options, mix.explain_lines);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", report.error().ToString().c_str());
    return 2;
  }
  const ns::serve::LoadgenReport& r = report.value();

  std::printf(
      "loadgen: %llu requests in %.1f s over %d connections "
      "(%s loop)\n"
      "  throughput  %.1f resp/s\n"
      "  latency     p50 %.2f ms   p95 %.2f ms   p99 %.2f ms   max %.2f ms\n"
      "  outcomes    ok %llu (cached %llu)   shed %llu (rate %.3f)   "
      "deadline %llu   errors %llu   protocol %llu\n",
      static_cast<unsigned long long>(r.requests_sent), r.wall_s,
      options.connections, options.rate_per_s > 0 ? "open" : "closed",
      r.throughput_rps, r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms,
      static_cast<unsigned long long>(r.answers_ok),
      static_cast<unsigned long long>(r.answers_cached),
      static_cast<unsigned long long>(r.shed), r.shed_rate,
      static_cast<unsigned long long>(r.deadline_exceeded),
      static_cast<unsigned long long>(r.answer_errors),
      static_cast<unsigned long long>(r.protocol_errors));

  if (flags.count("json")) {
    const Json doc = ns::serve::LoadgenReportToJson(r);
    if (auto written = ns::util::WriteFile(flags["json"], doc.Dump() + "\n");
        !written.ok()) {
      std::fprintf(stderr, "loadgen: %s\n", written.ToString().c_str());
      return 2;
    }
    std::printf("  report      %s\n", flags["json"].c_str());
  }

  if (server != nullptr) server->Shutdown();

  int gate_failures = 0;
  if (r.protocol_errors > 0) {
    std::fprintf(stderr, "loadgen: GATE: %llu protocol errors (want 0)\n",
                 static_cast<unsigned long long>(r.protocol_errors));
    ++gate_failures;
  }
  if (r.answer_errors > 0) {
    std::fprintf(stderr, "loadgen: GATE: %llu unexpected error responses\n",
                 static_cast<unsigned long long>(r.answer_errors));
    ++gate_failures;
  }
  if (r.shed > 0 && !flags.count("allow-shed")) {
    std::fprintf(stderr,
                 "loadgen: GATE: %llu shed responses (pass --allow-shed if "
                 "overload is intended)\n",
                 static_cast<unsigned long long>(r.shed));
    ++gate_failures;
  }
  if (flags.count("max-p99-ms")) {
    const double budget = std::atof(flags["max-p99-ms"].c_str());
    if (r.p99_ms > budget) {
      std::fprintf(stderr, "loadgen: GATE: p99 %.2f ms over the %.2f ms budget\n",
                   r.p99_ms, budget);
      ++gate_failures;
    }
  }
  if (r.answers_ok == 0) {
    std::fprintf(stderr, "loadgen: GATE: no successful answers\n");
    ++gate_failures;
  }
  return gate_failures == 0 ? 0 : 1;
}
