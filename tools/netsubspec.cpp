// netsubspec — command-line front end for the library.
//
//   netsubspec synthesize --topo fig1b.topo --spec s1.spec --sketch s1.cfg
//   netsubspec verify     --topo fig1b.topo --spec s1.spec --config out.cfg
//   netsubspec simulate   --topo fig1b.topo --config out.cfg
//   netsubspec explain    --topo fig1b.topo --spec s1.spec --config out.cfg
//                         --router R1 [--map R1_to_P1] [--seq 10]
//                         [--slot action] [--req Req1]... [--mode faithful]
//                         [--rest] [--baselines]
//                         [--solver fresh|incremental|fastpath] [--stats]
//   netsubspec batch-explain --topo fig1b.topo --spec s1.spec --config out.cfg
//                         [--router R1]... [--threads N] [--sequential]
//                         [--req Req1]... [--mode faithful] [--baselines]
//                         [--solver NAME] [--stats] [--json out.json]
//   netsubspec serve      [--port P] [--threads N] [--cache-entries K]
//                         [--deadline-ms D] [--frontend epoll|blocking]
//                         [--reactors R] [--max-queue Q]
//                         [--topo F --spec F --config F]   (preload)
//
// File formats: topologies per net/topo_text.hpp, specifications per
// spec/parser.hpp, configurations per config/parse.hpp (what `synthesize`
// itself emits). Sample inputs live in examples/data/.
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bgp/simulator.hpp"
#include "config/parse.hpp"
#include "config/render.hpp"
#include "explain/arena.hpp"
#include "explain/batch.hpp"
#include "explain/report.hpp"
#include "explain/verify.hpp"
#include "net/topo_text.hpp"
#include "ospf/synth.hpp"
#include "serve/server.hpp"
#include "spec/lint.hpp"
#include "spec/parser.hpp"
#include "synth/synthesizer.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using namespace ns;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <synthesize|verify|simulate|explain|batch-explain|"
               "serve|lint|ospf-synthesize|ospf-explain> [flags]\n"
               "  common flags: --topo FILE  --spec FILE\n"
               "  synthesize:   --sketch FILE [--out FILE]\n"
               "  verify:       --config FILE\n"
               "  simulate:     --config FILE (no --spec needed)\n"
               "  explain:      --config FILE --router NAME [--map NAME]\n"
               "                [--seq N] [--slot SLOT] [--req NAME]...\n"
               "                [--mode exact|faithful] [--rest] [--baselines]\n"
               "                [--solver fresh|incremental|fastpath] "
               "[--stats]\n"
               "                [--no-arena]  (fresh-pool path, no frozen "
               "arena)\n"
               "                [--lift-threads N] [--lift-portfolio]\n"
               "  batch-explain: --config FILE [--router NAME]... (default:\n"
               "                all routers with route-maps) [--threads N]\n"
               "                [--sequential] [--req NAME]... [--mode MODE]\n"
               "                [--baselines] [--solver NAME] [--stats]\n"
               "                [--json FILE] [--no-arena]\n"
               "                [--lift-threads N] [--lift-portfolio]\n"
               "  serve:        [--port P] [--threads N] [--cache-entries K]\n"
               "                [--deadline-ms D] [--frontend epoll|blocking]\n"
               "                [--reactors R] [--max-queue Q]\n"
               "                [--lift-threads N] [--lift-portfolio] [--topo F\n"
               "                --spec F --config F]  (see docs/SERVE.md)\n",
               argv0);
  return 2;
}

/// Minimal flag parser: every flag takes one value except the listed
/// booleans; repeated flags accumulate.
class Flags {
 public:
  static util::Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           "unexpected argument '" + arg + "'");
      }
      arg = arg.substr(2);
      if (arg == "rest" || arg == "baselines" || arg == "sequential" ||
          arg == "stats" || arg == "no-arena" || arg == "lift-portfolio") {
        flags.values_[arg].push_back("true");
        continue;
      }
      if (i + 1 >= argc) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           "flag --" + arg + " needs a value");
      }
      flags.values_[arg].push_back(argv[++i]);
    }
    return flags;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  util::Result<std::string> One(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return util::Error(util::ErrorCode::kInvalidArgument,
                         "missing required flag --" + name);
    }
    return it->second.back();
  }

  std::vector<std::string> All(const std::string& name) const {
    const auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

util::Result<net::Topology> LoadTopology(const Flags& flags) {
  auto path = flags.One("topo");
  if (!path) return path.error();
  auto text = util::ReadFile(path.value());
  if (!text) return text.error();
  return net::ParseTopology(text.value());
}

util::Result<spec::Spec> LoadSpec(const Flags& flags) {
  auto path = flags.One("spec");
  if (!path) return path.error();
  auto text = util::ReadFile(path.value());
  if (!text) return text.error();
  return spec::ParseSpec(text.value());
}

util::Result<config::NetworkConfig> LoadConfig(const Flags& flags,
                                               const std::string& flag) {
  auto path = flags.One(flag);
  if (!path) return path.error();
  auto text = util::ReadFile(path.value());
  if (!text) return text.error();
  return config::ParseNetworkConfig(text.value());
}

int Fail(const util::Error& error) {
  std::fprintf(stderr, "netsubspec: %s\n", error.ToString().c_str());
  return 1;
}

util::Result<int> ParseIntFlag(const Flags& flags, const std::string& name) {
  const std::string text = flags.One(name).value();
  int value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "--" + name + " expects an integer, got '" + text + "'");
  }
  return value;
}

util::Result<smt::SolverOptions> ParseSolverFlag(const Flags& flags) {
  smt::SolverOptions options;
  if (!flags.Has("solver")) return options;
  auto backend = smt::ParseSolverBackend(flags.One("solver").value());
  if (!backend) return backend.error();
  options.backend = backend.value();
  return options;
}

util::Result<explain::LiftMode> ParseLiftMode(const Flags& flags) {
  if (!flags.Has("mode")) return explain::LiftMode::kExact;
  const std::string value = flags.One("mode").value();
  if (value == "exact") return explain::LiftMode::kExact;
  if (value == "faithful") return explain::LiftMode::kFaithful;
  return util::Error(util::ErrorCode::kInvalidArgument,
                     "--mode must be 'exact' or 'faithful'");
}

// ------------------------------------------------------------- synthesize

int CmdSynthesize(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto sketch = LoadConfig(flags, "sketch");
  if (!sketch) return Fail(sketch.error());

  synth::Synthesizer synthesizer(topo.value(), spec.value());
  auto result = synthesizer.Synthesize(sketch.value());
  if (!result) return Fail(result.error());

  const std::string rendered =
      config::RenderNetwork(result.value().network, &topo.value());
  if (flags.Has("out")) {
    const auto out = flags.One("out").value();
    if (auto status = util::WriteFile(out, rendered); !status.ok()) {
      return Fail(status.error());
    }
    std::printf("synthesized configuration written to %s (%d holes filled, "
                "%zu constraints, validated)\n",
                out.c_str(), result.value().holes_filled,
                result.value().encoding.constraints.size());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

// ----------------------------------------------------------------- verify

int CmdVerify(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto network = LoadConfig(flags, "config");
  if (!network) return Fail(network.error());
  auto solver = ParseSolverFlag(flags);
  if (!solver) return Fail(solver.error());

  // Verdict 1: SMT encoder (explains violations along candidate paths).
  auto encoder_verdict = explain::VerifyWithEncoder(
      topo.value(), spec.value(), network.value(), solver.value());
  if (!encoder_verdict) return Fail(encoder_verdict.error());
  std::printf("encoder-based verification : %s\n",
              encoder_verdict.value().ToString().c_str());

  // Verdict 2: concrete simulator + checker.
  synth::Synthesizer synthesizer(topo.value(), spec.value());
  auto checker_verdict = synthesizer.Validate(network.value());
  if (!checker_verdict) return Fail(checker_verdict.error());
  std::printf("simulator+checker verdict  : %s\n",
              checker_verdict.value().ToString().c_str());

  return encoder_verdict.value().ok() && checker_verdict.value().ok() ? 0 : 1;
}

// --------------------------------------------------------------- simulate

int CmdSimulate(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto network = LoadConfig(flags, "config");
  if (!network) return Fail(network.error());

  auto sim = bgp::Simulate(topo.value(), network.value());
  if (!sim) return Fail(sim.error());
  std::printf("converged after %d rounds\n", sim.value().rounds);
  for (const auto& [router, best_by_prefix] : sim.value().best) {
    std::printf("%s:\n", router.c_str());
    for (const auto& [prefix, index] : best_by_prefix) {
      const bgp::Route& route =
          sim.value().rib.at(router)[static_cast<std::size_t>(index)];
      std::printf("  %s\n", route.ToString().c_str());
    }
  }
  return 0;
}

// ---------------------------------------------------------------- explain

int CmdExplain(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto network = LoadConfig(flags, "config");
  if (!network) return Fail(network.error());
  auto router = flags.One("router");
  if (!router) return Fail(router.error());

  explain::Selection selection = explain::Selection::Router(router.value());
  if (flags.Has("rest")) {
    selection = explain::Selection::Rest(router.value());
  }
  if (flags.Has("map")) selection.route_map = flags.One("map").value();
  if (flags.Has("seq")) {
    auto seq = ParseIntFlag(flags, "seq");
    if (!seq) return Fail(seq.error());
    selection.seq = seq.value();
  }
  if (flags.Has("slot")) selection.slot = flags.One("slot").value();

  auto mode = ParseLiftMode(flags);
  if (!mode) return Fail(mode.error());
  auto solver = ParseSolverFlag(flags);
  if (!solver) return Fail(solver.error());

  int lift_threads = 1;
  if (flags.Has("lift-threads")) {
    auto value = ParseIntFlag(flags, "lift-threads");
    if (!value) return Fail(value.error());
    lift_threads = value.value();
  }

  explain::Session session(topo.value(), spec.value(),
                           std::move(network).value());
  // Frozen-arena answering is the default (byte-identical to the fresh
  // path); --no-arena forces the fresh-pool path for A/B comparisons.
  if (!flags.Has("no-arena")) {
    session.UseArenaRegistry(std::make_shared<explain::ArenaRegistry>());
  }
  session.SetLiftOptions(lift_threads, flags.Has("lift-portfolio"));
  auto answer = session.Ask(selection, mode.value(), flags.All("req"),
                            flags.Has("baselines"), solver.value());
  if (!answer) return Fail(answer.error());
  std::fputs(answer.value().Report().c_str(), stdout);
  if (flags.Has("stats")) {
    // Separate from Report(): the report text is golden-pinned and must
    // stay backend-independent.
    std::printf("%s\n", answer.value().stats.ToString().c_str());
  }
  return 0;
}

// ---------------------------------------------------------- batch-explain

int CmdBatchExplain(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto network = LoadConfig(flags, "config");
  if (!network) return Fail(network.error());
  auto mode = ParseLiftMode(flags);
  if (!mode) return Fail(mode.error());
  auto solver = ParseSolverFlag(flags);
  if (!solver) return Fail(solver.error());

  std::vector<explain::BatchRequest> requests;
  if (flags.Has("router")) {
    for (const std::string& router : flags.All("router")) {
      explain::BatchRequest request;
      request.selection = explain::Selection::Router(router);
      request.mode = mode.value();
      request.requirements = flags.All("req");
      request.compute_baselines = flags.Has("baselines");
      requests.push_back(std::move(request));
    }
  } else {
    requests = explain::RequestsForAllRouters(network.value(), mode.value(),
                                              flags.All("req"));
  }
  int lift_threads = 1;
  if (flags.Has("lift-threads")) {
    auto value = ParseIntFlag(flags, "lift-threads");
    if (!value) return Fail(value.error());
    lift_threads = value.value();
  }
  for (explain::BatchRequest& request : requests) {
    request.compute_baselines = flags.Has("baselines");
    request.solver = solver.value();
    request.lift_threads = lift_threads;
    request.lift_portfolio = flags.Has("lift-portfolio");
  }
  if (requests.empty()) {
    return Fail(util::Error(util::ErrorCode::kNotFound,
                            "no routers with route-maps to explain"));
  }

  explain::BatchOptions options;
  if (!flags.Has("no-arena")) {
    options.registry = std::make_shared<explain::ArenaRegistry>();
  }
  if (flags.Has("sequential")) {
    options.num_threads = 1;
  } else if (flags.Has("threads")) {
    auto threads = ParseIntFlag(flags, "threads");
    if (!threads) return Fail(threads.error());
    options.num_threads = threads.value();
  }

  const explain::BatchOutcome outcome = explain::BatchExplain(
      topo.value(), spec.value(), network.value(), requests, options);

  int failures = 0;
  for (const explain::BatchItem& item : outcome.items) {
    if (item.result.ok()) {
      std::fputs(item.result.value().report.c_str(), stdout);
    } else {
      ++failures;
      std::fprintf(stderr, "netsubspec: %s: %s\n",
                   item.request.selection.ToString().c_str(),
                   item.result.error().ToString().c_str());
    }
  }
  std::printf("batch: %zu questions, %d worker thread(s), %.1f ms total\n",
              outcome.items.size(), outcome.threads_used, outcome.wall_ms);
  if (flags.Has("stats")) {
    explain::ExplainStats total;
    total.backend = solver.value().backend;
    for (const explain::BatchItem& item : outcome.items) {
      if (!item.result.ok()) continue;
      total.lift += item.result.value().stats.lift;
      total.pipeline += item.result.value().stats.pipeline;
    }
    std::printf("%s\n", total.ToString().c_str());
  }

  if (flags.Has("json")) {
    util::Json items = util::Json::MakeArray();
    for (const explain::BatchItem& item : outcome.items) {
      util::Json row = util::Json::MakeObject();
      row.Set("selection", item.request.selection.ToString());
      row.Set("ok", item.result.ok());
      row.Set("wall_ms", item.wall_ms);
      row.Set("worker", item.worker);
      if (item.result.ok()) {
        const explain::BatchAnswer& answer = item.result.value();
        row.Set("empty", answer.empty);
        row.Set("unsat", answer.unsat);
        row.Set("seed_size", answer.metrics.seed_size);
        row.Set("residual_size", answer.metrics.residual_size);
        util::Json solver_row = util::Json::MakeObject();
        solver_row.Set("backend", std::string(smt::SolverBackendName(
                                      answer.stats.backend)));
        solver_row.Set("queries",
                       static_cast<std::int64_t>(answer.stats.lift.queries));
        solver_row.Set("fast_path_hits", static_cast<std::int64_t>(
                                             answer.stats.lift.fast_path_hits));
        solver_row.Set("z3_queries", static_cast<std::int64_t>(
                                         answer.stats.lift.z3_queries));
        solver_row.Set("wall_ms", answer.stats.lift.wall_ms);
        row.Set("solver", std::move(solver_row));
        util::Json lift_row = util::Json::MakeObject();
        lift_row.Set("threads", answer.stats.pipeline.threads);
        lift_row.Set("portfolio", answer.stats.pipeline.portfolio);
        lift_row.Set("strategies", answer.stats.pipeline.strategies);
        lift_row.Set("compile_cache_hits",
                     static_cast<std::int64_t>(
                         answer.stats.pipeline.compile_cache_hits));
        lift_row.Set("compile_cache_misses",
                     static_cast<std::int64_t>(
                         answer.stats.pipeline.compile_cache_misses));
        lift_row.Set("candidates_compiled",
                     static_cast<std::int64_t>(
                         answer.stats.pipeline.candidates_compiled));
        lift_row.Set("compile_ms", answer.stats.pipeline.compile_ms);
        lift_row.Set("assemble_ms", answer.stats.pipeline.assemble_ms);
        row.Set("lift", std::move(lift_row));
        if (answer.stats.arena.used) {
          // Deterministic per-answer fields only (registry aggregates are
          // scheduling-dependent and stay out of comparable output).
          util::Json arena_row = util::Json::MakeObject();
          arena_row.Set("frozen_nodes", static_cast<std::int64_t>(
                                            answer.stats.arena.frozen_nodes));
          arena_row.Set("frozen_symbols",
                        static_cast<std::int64_t>(
                            answer.stats.arena.frozen_symbols));
          arena_row.Set("overlay_nodes", static_cast<std::int64_t>(
                                             answer.stats.arena.overlay_nodes));
          row.Set("arena", std::move(arena_row));
        }
        row.Set("subspec", answer.subspec_text);
      } else {
        row.Set("error", item.result.error().ToString());
      }
      items.Append(std::move(row));
    }
    util::Json doc = util::Json::MakeObject();
    doc.Set("command", "batch-explain");
    doc.Set("threads_used", outcome.threads_used);
    doc.Set("wall_ms", outcome.wall_ms);
    doc.Set("items", std::move(items));
    const auto out = flags.One("json").value();
    if (auto status = util::WriteFile(out, doc.Dump() + "\n"); !status.ok()) {
      return Fail(status.error());
    }
    std::printf("batch results written to %s\n", out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

// ------------------------------------------------------------------ serve

/// Raised by SIGTERM/SIGINT; the serving loop polls it and drains.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void OnShutdownSignal(int) { g_shutdown_signal = 1; }

int CmdServe(const Flags& flags) {
  serve::ServerOptions options;
  for (const auto& [flag, target] :
       {std::pair<const char*, int*>{"port", &options.port},
        {"threads", &options.threads},
        {"deadline-ms", &options.deadline_ms},
        {"reactors", &options.reactors},
        {"lift-threads", &options.lift_threads}}) {
    if (flags.Has(flag)) {
      auto value = ParseIntFlag(flags, flag);
      if (!value) return Fail(value.error());
      *target = value.value();
    }
  }
  for (const auto& [flag, target] :
       {std::pair<const char*, std::size_t*>{"cache-entries",
                                             &options.cache_entries},
        {"max-queue", &options.max_queue}}) {
    if (flags.Has(flag)) {
      auto value = ParseIntFlag(flags, flag);
      if (!value) return Fail(value.error());
      if (value.value() < 0) {
        return Fail(util::Error(util::ErrorCode::kInvalidArgument,
                                std::string("--") + flag + " must be >= 0"));
      }
      *target = static_cast<std::size_t>(value.value());
    }
  }
  if (flags.Has("frontend")) {
    auto value = flags.One("frontend");
    if (!value) return Fail(value.error());
    if (value.value() == "epoll") {
      options.frontend = serve::Frontend::kEpoll;
    } else if (value.value() == "blocking") {
      options.frontend = serve::Frontend::kBlocking;
    } else {
      return Fail(util::Error(util::ErrorCode::kInvalidArgument,
                              "--frontend must be 'epoll' or 'blocking', got '" +
                                  value.value() + "'"));
    }
  }
  options.lift_portfolio = flags.Has("lift-portfolio");

  serve::Server server(options);

  // Optional preload: the same three inputs `explain` takes, so a serving
  // session can start answering without a `load` request.
  if (flags.Has("topo") || flags.Has("spec") || flags.Has("config")) {
    auto topo = flags.One("topo");
    if (!topo) return Fail(topo.error());
    auto spec = flags.One("spec");
    if (!spec) return Fail(spec.error());
    auto config = flags.One("config");
    if (!config) return Fail(config.error());
    auto topo_text = util::ReadFile(topo.value());
    if (!topo_text) return Fail(topo_text.error());
    auto spec_text = util::ReadFile(spec.value());
    if (!spec_text) return Fail(spec_text.error());
    auto config_text = util::ReadFile(config.value());
    if (!config_text) return Fail(config_text.error());
    if (auto loaded = server.Load(topo_text.value(), spec_text.value(),
                                  config_text.value());
        !loaded.ok()) {
      return Fail(loaded.error());
    }
  }

  if (auto started = server.Start(); !started.ok()) {
    return Fail(started.error());
  }
  // Scripts scrape this line for the ephemeral port; keep it first and
  // flushed.
  std::printf("serving on 127.0.0.1:%d (%d worker threads)\n", server.port(),
              server.Stats().worker_threads);
  std::fflush(stdout);

  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  while (!server.ShutdownRequested() && g_shutdown_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Shutdown();  // graceful drain either way

  const serve::ServerStats stats = server.Stats();
  std::printf("drained: %llu requests (%llu explain, %llu cache hits, "
              "%llu deadline-exceeded)\n",
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.requests_explain),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.deadline_exceeded));
  return 0;
}

// ------------------------------------------------------------------- ospf

util::Result<ospf::WeightConfig> LoadWeights(const Flags& flags,
                                             const net::Topology& topo) {
  if (!flags.Has("weights")) return ospf::WeightConfig::SketchFor(topo);
  auto path = flags.One("weights");
  if (!path) return path.error();
  auto text = util::ReadFile(path.value());
  if (!text) return text.error();
  return ospf::WeightConfig::Parse(topo, text.value());
}

int CmdOspfSynthesize(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto sketch = LoadWeights(flags, topo.value());
  if (!sketch) return Fail(sketch.error());

  ospf::OspfSynthesizer synthesizer(topo.value(), spec.value());
  auto solved = synthesizer.Synthesize(std::move(sketch).value());
  if (!solved) return Fail(solved.error());
  const std::string rendered = solved.value().ToText(topo.value());
  if (flags.Has("out")) {
    const auto out = flags.One("out").value();
    if (auto status = util::WriteFile(out, rendered); !status.ok()) {
      return Fail(status.error());
    }
    std::printf("synthesized weights written to %s\n", out.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

int CmdOspfExplain(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  auto weights = LoadWeights(flags, topo.value());
  if (!weights) return Fail(weights.error());
  if (weights.value().HasHole()) {
    // No (complete) weight file given: synthesize the weights first, then
    // explain the synthesized assignment.
    ospf::OspfSynthesizer synthesizer(topo.value(), spec.value());
    auto solved = synthesizer.Synthesize(std::move(weights).value());
    if (!solved) return Fail(solved.error());
    weights = std::move(solved);
    std::printf("(weights synthesized on the fly)\n");
  }
  auto link = flags.One("link");
  if (!link) return Fail(link.error());
  const auto comma = link.value().find(',');
  if (comma == std::string::npos) {
    return Fail(util::Error(util::ErrorCode::kInvalidArgument,
                            "--link expects 'A,B'"));
  }
  const net::RouterId a = topo.value().FindRouter(link.value().substr(0, comma));
  const net::RouterId b = topo.value().FindRouter(link.value().substr(comma + 1));
  if (a == net::kInvalidRouter || b == net::kInvalidRouter) {
    return Fail(util::Error(util::ErrorCode::kNotFound,
                            "--link names an unknown router"));
  }

  smt::ExprPool pool;
  ospf::OspfEncoderOptions options;
  options.only_requirements = flags.All("req");
  auto subspec =
      ospf::ExplainWeights(pool, topo.value(), spec.value(), weights.value(),
                           {ospf::MakeEdge(a, b)}, options);
  if (!subspec) return Fail(subspec.error());
  std::printf("seed %zu constraints -> residual %zu\n",
              subspec.value().metrics.seed_constraints,
              subspec.value().metrics.residual_constraints);
  std::fputs(subspec.value().ToString().c_str(), stdout);
  return 0;
}

// ------------------------------------------------------------------- lint

int CmdLint(const Flags& flags) {
  auto topo = LoadTopology(flags);
  if (!topo) return Fail(topo.error());
  auto spec = LoadSpec(flags);
  if (!spec) return Fail(spec.error());
  const spec::LintReport report = spec::Lint(topo.value(), spec.value());
  std::fputs(report.ToString().c_str(), stdout);
  std::fputs("\n", stdout);
  return report.HasErrors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  auto flags = Flags::Parse(argc, argv, 2);
  if (!flags) return Fail(flags.error());

  if (command == "synthesize") return CmdSynthesize(flags.value());
  if (command == "verify") return CmdVerify(flags.value());
  if (command == "simulate") return CmdSimulate(flags.value());
  if (command == "explain") return CmdExplain(flags.value());
  if (command == "batch-explain") return CmdBatchExplain(flags.value());
  if (command == "serve") return CmdServe(flags.value());
  if (command == "lint") return CmdLint(flags.value());
  if (command == "ospf-synthesize") return CmdOspfSynthesize(flags.value());
  if (command == "ospf-explain") return CmdOspfExplain(flags.value());
  return Usage(argv[0]);
}
