// netfuzz — differential fuzzing and metamorphic-oracle driver for the
// explain pipeline (see TESTING.md for the oracle catalog).
//
//   netfuzz --runs 500 --seed 1            # the nightly CI invocation
//   netfuzz --runs 200 --seed 1 --family fattree   # one topology family
//   netfuzz --runs 50 --seed 7 --budget-s 300 --out repros/
//   netfuzz --replay tests/corpus/seed3.scenario [--replay ...]
//   netfuzz --print-seed 42                # dump the generated scenario
//   netfuzz --runs 1 --seed 3 --inject-rule and-identity --minimize-out m.scenario
//
// Exit codes: 0 = no oracle violations, 1 = violations found, 2 = usage.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "simplify/rules.hpp"
#include "testkit/corpus.hpp"
#include "testkit/families.hpp"
#include "testkit/gen.hpp"
#include "testkit/minimize.hpp"
#include "testkit/oracles.hpp"
#include "util/file.hpp"

namespace {

using namespace ns;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --runs N           scenarios to generate and check (default 20)\n"
      "  --seed S           first seed; run i uses seed S+i (default 1)\n"
      "  --family F         topology family to generate: paper (default),\n"
      "                     fattree, wan, multias, ospfmix\n"
      "  --budget-s T       stop starting new runs after T seconds\n"
      "  --replay FILE      replay a corpus scenario instead of generating\n"
      "                     (repeatable; ignores --runs/--seed)\n"
      "  --out DIR          write minimized repros here (default '.')\n"
      "  --print-seed S     print the scenario for seed S and exit\n"
      "  --inject-rule R    arm the test-only rewrite-rule fault (rule name\n"
      "                     as in bench tables, e.g. and-identity)\n"
      "  --minimize-out F   with a failing run: write the minimized repro\n"
      "                     to F instead of an auto-named file\n"
      "  --no-minimize      report failures without shrinking them\n"
      "  --no-z3 / --no-batch / --no-rename / --no-solver-diff /\n"
      "  --no-serve-diff / --no-arena-diff / --no-portfolio-diff\n"
      "                     disable oracle groups\n"
      "  --quiet            only print failures and the final summary\n",
      argv0);
  return 2;
}

/// Minimal flag parser: every flag takes one value except the listed
/// booleans; repeated flags accumulate.
class Flags {
 public:
  static util::Result<Flags> Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           "unexpected argument '" + arg + "'");
      }
      arg = arg.substr(2);
      if (arg == "no-minimize" || arg == "no-z3" || arg == "no-batch" ||
          arg == "no-rename" || arg == "no-solver-diff" ||
          arg == "no-serve-diff" || arg == "no-arena-diff" ||
          arg == "no-portfolio-diff" || arg == "quiet") {
        flags.values_[arg].push_back("true");
        continue;
      }
      if (i + 1 >= argc) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           "flag --" + arg + " needs a value");
      }
      flags.values_[arg].push_back(argv[++i]);
    }
    return flags;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string OneOr(const std::string& name, std::string fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second.back();
  }

  std::vector<std::string> All(const std::string& name) const {
    const auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

util::Result<simplify::RuleId> RuleByName(const std::string& name) {
  for (int i = 0; i < simplify::kNumRules; ++i) {
    const auto rule = static_cast<simplify::RuleId>(i);
    if (name == simplify::RuleName(rule)) return rule;
  }
  return util::Error(util::ErrorCode::kNotFound,
                     "unknown rewrite rule '" + name + "'");
}

struct Tally {
  int ok = 0;
  int unsat = 0;
  int skipped = 0;
  int violations = 0;
};

/// Handles one failing scenario: minimize (unless disabled) and write the
/// repro to disk so CI can upload it as an artifact.
void HandleFailure(const testkit::FuzzScenario& scenario,
                   const testkit::RunReport& report, const Flags& flags,
                   const testkit::RunOptions& run_options) {
  std::fprintf(stderr, "seed %llu: %s\n",
               static_cast<unsigned long long>(scenario.seed),
               report.Summary().c_str());
  testkit::FuzzScenario repro = scenario;
  if (!flags.Has("no-minimize")) {
    testkit::MinimizeOptions minimize;
    // Shrink against the cheap oracle set unless groups were disabled
    // explicitly — then mirror the run's configuration.
    minimize.run.eval_models = run_options.eval_models;
    auto minimized = testkit::Minimize(scenario, minimize);
    if (!minimized.failing) {
      // The failure needs one of the expensive oracles; shrink with the
      // same configuration the run used.
      minimize.run = run_options;
      minimized = testkit::Minimize(scenario, minimize);
    }
    if (minimized.failing) {
      repro = std::move(minimized.scenario);
      std::fprintf(stderr,
                   "  minimized to %zu routers, %zu requirement blocks "
                   "(%d probe runs)\n",
                   repro.topo.NumRouters(), repro.spec.requirements.size(),
                   minimized.tests_run);
    }
  }
  const std::string path =
      flags.Has("minimize-out")
          ? flags.OneOr("minimize-out", "")
          : flags.OneOr("out", ".") + "/netfuzz-seed-" +
                std::to_string(scenario.seed) + ".scenario";
  const auto written = util::WriteFile(path, testkit::SaveScenario(repro));
  if (written.ok()) {
    std::fprintf(stderr, "  repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  failed to write repro: %s\n",
                 written.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().ToString().c_str());
    return Usage(argv[0]);
  }
  const Flags& flags = parsed.value();
  const bool quiet = flags.Has("quiet");

  testkit::RunOptions run_options;
  run_options.with_z3 = !flags.Has("no-z3");
  run_options.with_batch = !flags.Has("no-batch");
  run_options.with_rename = !flags.Has("no-rename");
  run_options.with_solver_diff = !flags.Has("no-solver-diff");
  run_options.with_serve_diff = !flags.Has("no-serve-diff");
  run_options.with_arena_diff = !flags.Has("no-arena-diff");
  run_options.with_portfolio_diff = !flags.Has("no-portfolio-diff");

  if (flags.Has("inject-rule")) {
    auto rule = RuleByName(flags.OneOr("inject-rule", ""));
    if (!rule.ok()) {
      std::fprintf(stderr, "%s\n", rule.error().ToString().c_str());
      return Usage(argv[0]);
    }
    simplify::testing::InjectRuleFault(rule.value());
  }

  auto family = testkit::ParseFamily(flags.OneOr("family", "paper"));
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.error().ToString().c_str());
    return Usage(argv[0]);
  }

  if (flags.Has("print-seed")) {
    const std::uint64_t seed =
        std::strtoull(flags.OneOr("print-seed", "1").c_str(), nullptr, 10);
    std::fputs(testkit::SaveScenario(testkit::GenerateFamilyScenario(
                                         family.value(), seed))
                   .c_str(),
               stdout);
    return 0;
  }

  Tally tally;
  const auto started = std::chrono::steady_clock::now();
  const double budget_s =
      std::strtod(flags.OneOr("budget-s", "0").c_str(), nullptr);

  const auto run_one = [&](const testkit::FuzzScenario& scenario,
                           const std::string& label) {
    const testkit::RunReport report =
        testkit::RunScenario(scenario, run_options);
    switch (report.status) {
      case testkit::RunStatus::kOk: ++tally.ok; break;
      case testkit::RunStatus::kUnsatScenario: ++tally.unsat; break;
      case testkit::RunStatus::kSkipped: ++tally.skipped; break;
      case testkit::RunStatus::kViolation:
        ++tally.violations;
        HandleFailure(scenario, report, flags, run_options);
        break;
    }
    if (!quiet && !report.Violated()) {
      std::printf("%s: %s\n", label.c_str(), report.Summary().c_str());
    }
  };

  const std::vector<std::string> replays = flags.All("replay");
  if (!replays.empty()) {
    for (const std::string& path : replays) {
      auto text = util::ReadFile(path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.error().ToString().c_str());
        return 2;
      }
      auto scenario = testkit::LoadScenario(text.value());
      if (!scenario.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     scenario.error().ToString().c_str());
        return 2;
      }
      run_one(scenario.value(), path);
    }
  } else {
    const std::uint64_t first =
        std::strtoull(flags.OneOr("seed", "1").c_str(), nullptr, 10);
    const long runs = std::strtol(flags.OneOr("runs", "20").c_str(), nullptr, 10);
    for (long i = 0; i < runs; ++i) {
      if (budget_s > 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        if (elapsed > budget_s) {
          if (!quiet) {
            std::printf("time budget exhausted after %ld runs\n", i);
          }
          break;
        }
      }
      const std::uint64_t seed = first + static_cast<std::uint64_t>(i);
      run_one(testkit::GenerateFamilyScenario(family.value(), seed),
              "seed " + std::to_string(seed));
    }
  }

  std::printf(
      "netfuzz: %d ok, %d unsat, %d skipped, %d violation%s\n", tally.ok,
      tally.unsat, tally.skipped, tally.violations,
      tally.violations == 1 ? "" : "s");
  return tally.violations == 0 ? 0 : 1;
}
