#include "net/topo_text.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace ns::net {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<Topology> ParseTopology(std::string_view text) {
  Topology topo;
  int line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    // Strip comments, then whitespace.
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto words = util::SplitWhitespace(line);
    if (words.empty()) continue;

    if (words[0] == "router") {
      // router <name> as <asn> [external]
      if (words.size() < 4 || words[2] != "as" || !util::IsAllDigits(words[3])) {
        return Error(ErrorCode::kParse,
                     "expected 'router <name> as <asn> [external]'", line_no, 1);
      }
      const bool external = words.size() == 5 && words[4] == "external";
      if (words.size() > 5 || (words.size() == 5 && !external)) {
        return Error(ErrorCode::kParse,
                     "unexpected tokens after router declaration", line_no, 1);
      }
      if (topo.FindRouter(words[1]) != kInvalidRouter) {
        return Error(ErrorCode::kParse, "duplicate router '" + words[1] + "'",
                     line_no, 1);
      }
      topo.AddRouter(words[1], static_cast<Asn>(std::stoul(words[3])),
                     external);
      continue;
    }

    if (words[0] == "link") {
      // link <a> <b> [<addr_a> <addr_b>]
      if (words.size() != 3 && words.size() != 5) {
        return Error(ErrorCode::kParse,
                     "expected 'link <a> <b> [<addr_a> <addr_b>]'", line_no, 1);
      }
      const RouterId a = topo.FindRouter(words[1]);
      const RouterId b = topo.FindRouter(words[2]);
      if (a == kInvalidRouter || b == kInvalidRouter) {
        return Error(ErrorCode::kParse,
                     "link references undeclared router", line_no, 1);
      }
      if (a == b) {
        return Error(ErrorCode::kParse, "self-link on '" + words[1] + "'",
                     line_no, 1);
      }
      if (topo.Adjacent(a, b)) {
        return Error(ErrorCode::kParse,
                     "duplicate link " + words[1] + " -- " + words[2], line_no,
                     1);
      }
      if (words.size() == 5) {
        const auto addr_a = Ipv4Addr::Parse(words[3]);
        const auto addr_b = Ipv4Addr::Parse(words[4]);
        if (!addr_a || !addr_b) {
          return Error(ErrorCode::kParse, "bad interface address", line_no, 1);
        }
        topo.AddLink(a, b, addr_a.value(), addr_b.value());
      } else {
        topo.AddLink(a, b);
      }
      continue;
    }

    return Error(ErrorCode::kParse,
                 "unknown directive '" + words[0] + "' (expected 'router' or "
                 "'link')",
                 line_no, 1);
  }
  if (topo.NumRouters() == 0) {
    return Error(ErrorCode::kParse, "topology declares no routers");
  }
  return topo;
}

std::string ToText(const Topology& topo) {
  std::ostringstream os;
  for (RouterId id : topo.AllRouters()) {
    const Router& router = topo.GetRouter(id);
    os << "router " << router.name << " as " << router.asn;
    if (router.external) os << " external";
    os << "\n";
  }
  for (const Link& link : topo.links()) {
    os << "link " << topo.NameOf(link.a) << " " << topo.NameOf(link.b) << " "
       << link.addr_a.ToString() << " " << link.addr_b.ToString() << "\n";
  }
  return os.str();
}

}  // namespace ns::net
