#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "util/status.hpp"

namespace ns::net {

using util::Error;
using util::ErrorCode;
using util::Result;

RouterId Topology::AddRouter(std::string name, Asn asn, bool external) {
  NS_ASSERT_MSG(by_name_.find(name) == by_name_.end(),
                "duplicate router name: " + name);
  const RouterId id = static_cast<RouterId>(routers_.size());
  by_name_.emplace(name, id);
  routers_.push_back(Router{std::move(name), asn, external});
  adjacency_.emplace_back();
  return id;
}

void Topology::AddLink(RouterId a, RouterId b) {
  // Auto-assign a /30. Links 1..255 keep the historical 10.<link>.0.x
  // form (checked-in corpus files render these); larger indices spill
  // into the third octet, which indices 1..255 never use, so addresses
  // stay unique up to 65535 links instead of silently wrapping a byte.
  const std::size_t index = links_.size() + 1;
  const auto lo = static_cast<std::uint8_t>(index & 0xff);
  const auto hi = static_cast<std::uint8_t>((index >> 8) & 0xff);
  AddLink(a, b, Ipv4Addr(10, lo, hi, 1), Ipv4Addr(10, lo, hi, 2));
}

void Topology::AddLink(RouterId a, RouterId b, Ipv4Addr addr_a,
                       Ipv4Addr addr_b) {
  CheckId(a);
  CheckId(b);
  NS_ASSERT_MSG(a != b, "self-link on " + routers_[static_cast<size_t>(a)].name);
  NS_ASSERT_MSG(!Adjacent(a, b), "duplicate link");
  links_.push_back(Link{a, b, addr_a, addr_b});
  adjacency_[static_cast<std::size_t>(a)].push_back(b);
  adjacency_[static_cast<std::size_t>(b)].push_back(a);
}

void Topology::AddLink(std::string_view name_a, std::string_view name_b) {
  const RouterId a = FindRouter(name_a);
  const RouterId b = FindRouter(name_b);
  NS_ASSERT_MSG(a != kInvalidRouter, "unknown router " + std::string(name_a));
  NS_ASSERT_MSG(b != kInvalidRouter, "unknown router " + std::string(name_b));
  AddLink(a, b);
}

const Router& Topology::GetRouter(RouterId id) const {
  CheckId(id);
  return routers_[static_cast<std::size_t>(id)];
}

RouterId Topology::FindRouter(std::string_view name) const noexcept {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidRouter : it->second;
}

Result<RouterId> Topology::RequireRouter(std::string_view name) const {
  const RouterId id = FindRouter(name);
  if (id == kInvalidRouter) {
    return Error(ErrorCode::kNotFound,
                 "no router named '" + std::string(name) + "' in topology");
  }
  return id;
}

const std::vector<RouterId>& Topology::Neighbors(RouterId id) const {
  CheckId(id);
  return adjacency_[static_cast<std::size_t>(id)];
}

bool Topology::Adjacent(RouterId a, RouterId b) const noexcept {
  if (a < 0 || static_cast<std::size_t>(a) >= adjacency_.size()) return false;
  const auto& nbrs = adjacency_[static_cast<std::size_t>(a)];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

std::optional<Ipv4Addr> Topology::InterfaceAddr(RouterId on,
                                                RouterId neighbor) const {
  for (const Link& link : links_) {
    if (link.a == on && link.b == neighbor) return link.addr_a;
    if (link.b == on && link.a == neighbor) return link.addr_b;
  }
  return std::nullopt;
}

namespace {
void Dfs(const Topology& topo, RouterId dst, int max_hops, Path& current,
         std::vector<bool>& visited, std::vector<Path>& out) {
  const RouterId last = current.back();
  const bool match_all = dst == kInvalidRouter;
  if ((match_all || last == dst) && current.size() >= 1) {
    if (!match_all && last == dst) {
      out.push_back(current);
      return;  // simple paths: don't extend past the destination
    }
    out.push_back(current);
  }
  if (static_cast<int>(current.size()) - 1 >= max_hops) return;
  // Neighbor order is insertion order; sort a copy for determinism across
  // topologies built in different orders.
  std::vector<RouterId> nbrs = topo.Neighbors(last);
  std::sort(nbrs.begin(), nbrs.end());
  for (RouterId next : nbrs) {
    if (visited[static_cast<std::size_t>(next)]) continue;
    visited[static_cast<std::size_t>(next)] = true;
    current.push_back(next);
    Dfs(topo, dst, max_hops, current, visited, out);
    current.pop_back();
    visited[static_cast<std::size_t>(next)] = false;
  }
}
}  // namespace

std::vector<Path> Topology::SimplePaths(RouterId src, RouterId dst,
                                        int max_hops) const {
  CheckId(src);
  CheckId(dst);
  std::vector<Path> out;
  std::vector<bool> visited(routers_.size(), false);
  visited[static_cast<std::size_t>(src)] = true;
  Path current{src};
  Dfs(*this, dst, max_hops, current, visited, out);
  // Dfs with a concrete dst records only paths ending at dst; drop the
  // degenerate single-node path unless src == dst.
  std::erase_if(out, [&](const Path& p) { return p.back() != dst; });
  return out;
}

std::vector<Path> Topology::SimplePathsFrom(RouterId src, int max_hops) const {
  CheckId(src);
  std::vector<Path> out;
  std::vector<bool> visited(routers_.size(), false);
  visited[static_cast<std::size_t>(src)] = true;
  Path current{src};
  Dfs(*this, kInvalidRouter, max_hops, current, visited, out);
  return out;
}

bool Topology::IsSimplePath(const Path& path) const {
  if (path.empty()) return false;
  std::vector<bool> seen(routers_.size(), false);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const RouterId id = path[i];
    if (id < 0 || static_cast<std::size_t>(id) >= routers_.size()) return false;
    if (seen[static_cast<std::size_t>(id)]) return false;
    seen[static_cast<std::size_t>(id)] = true;
    if (i > 0 && !Adjacent(path[i - 1], id)) return false;
  }
  return true;
}

std::string Topology::FormatPath(const Path& path) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << NameOf(path[i]);
  }
  return os.str();
}

std::string Topology::ToDot() const {
  std::ostringstream os;
  os << "graph topology {\n";
  for (const Router& r : routers_) {
    os << "  \"" << r.name << "\" [label=\"" << r.name << "\\nAS" << r.asn
       << "\"";
    if (r.external) os << ", shape=box";
    os << "];\n";
  }
  for (const Link& link : links_) {
    os << "  \"" << NameOf(link.a) << "\" -- \"" << NameOf(link.b) << "\";\n";
  }
  os << "}\n";
  return os.str();
}

std::vector<RouterId> Topology::AllRouters() const {
  std::vector<RouterId> out(routers_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<RouterId>(i);
  return out;
}

void Topology::CheckId(RouterId id) const {
  NS_ASSERT_MSG(id >= 0 && static_cast<std::size_t>(id) < routers_.size(),
                "router id out of range: " + std::to_string(id));
}

std::size_t Distance(const Topology& topo, RouterId from, RouterId to) {
  constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  if (from == kInvalidRouter || to == kInvalidRouter) return kUnreachable;
  std::map<RouterId, std::size_t> dist{{from, 0}};
  std::deque<RouterId> frontier{from};
  while (!frontier.empty()) {
    const RouterId at = frontier.front();
    frontier.pop_front();
    if (at == to) return dist[at];
    for (const RouterId next : topo.Neighbors(at)) {
      if (dist.emplace(next, dist[at] + 1).second) frontier.push_back(next);
    }
  }
  return kUnreachable;
}

}  // namespace ns::net
