// Plain-text topology format used by the command-line tool:
//
//   # the paper's Fig. 1b
//   router R1 as 100
//   router P1 as 500 external
//   link R1 P1
//   link R1 R2 10.4.0.1 10.4.0.2     # optional interface addresses
//
// Routers must be declared before links mention them. `ToText` serializes
// a topology back into this format (round-trips through Parse).
#pragma once

#include <string>
#include <string_view>

#include "net/topology.hpp"
#include "util/status.hpp"

namespace ns::net {

util::Result<Topology> ParseTopology(std::string_view text);

std::string ToText(const Topology& topo);

}  // namespace ns::net
