// Canonical topologies used throughout the tests, examples, and benches.
#pragma once

#include "net/topology.hpp"

namespace ns::net {

/// The paper's Fig. 1b topology:
///
///   Provider1 (AS500)   Provider2 (AS800)
///        |                   |
///        R1 ----------------- R2          (AS100: R1, R2, R3)
///          \                 /
///           \               /
///            +---- R3 ----+
///                  |
///               Customer (AS600)
///
/// R1-R2, R1-R3, R2-R3 are internal links; P1-R1, P2-R2, Cust-R3 external.
Topology PaperFig1b();

/// Router names used by PaperFig1b, for convenience in tests.
struct Fig1bNames {
  static constexpr const char* kR1 = "R1";
  static constexpr const char* kR2 = "R2";
  static constexpr const char* kR3 = "R3";
  static constexpr const char* kProvider1 = "P1";
  static constexpr const char* kProvider2 = "P2";
  static constexpr const char* kCustomer = "Cust";
};

/// A chain of n internal routers R1-...-Rn with an external peer on each end
/// (Left attached to R1, Right attached to Rn). Used by the scaling bench.
Topology Chain(int n);

/// A ring of n internal routers with two external peers attached to opposite
/// sides of the ring. Provides path diversity for preference requirements.
Topology Ring(int n);

/// A two-tier fabric: `spines` spine routers each connected to `leaves` leaf
/// routers; one external peer per leaf. Denser topologies for scaling tests.
Topology Fabric(int spines, int leaves);

}  // namespace ns::net
