// Canonical topologies used throughout the tests, examples, and benches.
#pragma once

#include "net/topology.hpp"

namespace ns::net {

/// The paper's Fig. 1b topology:
///
///   Provider1 (AS500)   Provider2 (AS800)
///        |                   |
///        R1 ----------------- R2          (AS100: R1, R2, R3)
///          \                 /
///           \               /
///            +---- R3 ----+
///                  |
///               Customer (AS600)
///
/// R1-R2, R1-R3, R2-R3 are internal links; P1-R1, P2-R2, Cust-R3 external.
Topology PaperFig1b();

/// Router names used by PaperFig1b, for convenience in tests.
struct Fig1bNames {
  static constexpr const char* kR1 = "R1";
  static constexpr const char* kR2 = "R2";
  static constexpr const char* kR3 = "R3";
  static constexpr const char* kProvider1 = "P1";
  static constexpr const char* kProvider2 = "P2";
  static constexpr const char* kCustomer = "Cust";
};

/// A chain of n internal routers R1-...-Rn with an external peer on each end
/// (Left attached to R1, Right attached to Rn). Used by the scaling bench.
Topology Chain(int n);

/// A ring of n internal routers with two external peers attached to opposite
/// sides of the ring. Provides path diversity for preference requirements.
Topology Ring(int n);

/// A two-tier fabric: `spines` spine routers each connected to `leaves` leaf
/// routers; one external peer per leaf. Denser topologies for scaling tests.
Topology Fabric(int spines, int leaves);

/// Parameters for a generalized pod-structured Clos fabric (the data-center
/// family of the NetComplete evaluations).
struct ClosParams {
  int pods = 2;
  int edges_per_pod = 1;      ///< top-of-rack tier, "T<p>_<i>"
  int aggs_per_pod = 1;       ///< aggregation tier, "A<p>_<i>"
  int cores = 1;              ///< core tier, "C<i>"
  int externals_per_pod = 1;  ///< peers "X<p>_<i>", round-robin on the ToRs
};

/// Builds the Clos fabric: inside each pod every edge (ToR) router links to
/// every aggregation router; core c links to aggregation (c mod
/// aggs_per_pod) of every pod, so FatTree() below gets the canonical k-ary
/// wiring. All fabric routers are AS 100; each external peer is its own AS.
Topology Clos(const ClosParams& params);

/// Canonical k-ary fat-tree (k even, >= 2): k pods of k/2 edge + k/2
/// aggregation routers, (k/2)^2 cores, `externals_per_pod` peers per pod.
Topology FatTree(int k, int externals_per_pod = 1);

/// Topology-Zoo-style WAN: seeded preferential-attachment growth (heavy-
/// tailed degree distribution) plus triangle-closing chords for
/// geographic-style clustering; connected by construction. Internal
/// routers "W1..Wn" (AS 100); `externals` peers "XW1.." (one AS each)
/// attached to the highest-degree nodes. Deterministic in (nodes,
/// externals, seed).
Topology Wan(int nodes, int externals, std::uint64_t seed);

/// Parameters for a multi-AS provider mesh (the provider/customer family).
struct MeshParams {
  int cores = 3;      ///< mesh routers "M<i>" (AS 100); full mesh up to 4,
                      ///< ring + skip-chords beyond
  int providers = 2;  ///< provider peers "P<i>" (AS 2000+i), dual-homed
  int customers = 1;  ///< customer peers "CU<i>" (AS 3000+i), single-homed
};

/// Builds the provider mesh: providers are dual-homed to consecutive core
/// routers (multi-path/ECMP shape), customers hang off cores on the far
/// side of the ring.
Topology ProviderMesh(const MeshParams& params);

}  // namespace ns::net
