// Network topology: routers grouped into autonomous systems, connected by
// bidirectional links. Routers are identified by name; the topology assigns
// dense ids for fast adjacency queries.
//
// Path enumeration here is the substrate for the NetComplete-style encoder:
// candidate announcement-propagation paths are simple paths from a prefix's
// origin router outward (see synth/candidates.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/prefix.hpp"
#include "util/status.hpp"

namespace ns::net {

/// Dense router identifier within one Topology.
using RouterId = std::int32_t;
inline constexpr RouterId kInvalidRouter = -1;

/// Autonomous-system number.
using Asn = std::uint32_t;

/// A router: name, owning AS, and optionally an external role marker
/// (providers/customers in the paper's Fig. 1b are external peers).
struct Router {
  std::string name;
  Asn asn = 0;
  bool external = false;  ///< belongs to a neighboring AS (provider/customer)
};

/// Undirected link between two routers, with the /30-style interface
/// addresses used on each side (these show up in rendered configs).
struct Link {
  RouterId a = kInvalidRouter;
  RouterId b = kInvalidRouter;
  Ipv4Addr addr_a;  ///< address of the interface on router `a`
  Ipv4Addr addr_b;  ///< address of the interface on router `b`
};

/// A hop sequence through the topology (router ids, adjacent pairs linked).
using Path = std::vector<RouterId>;

class Topology {
 public:
  /// Adds a router; names must be unique. Returns its id.
  RouterId AddRouter(std::string name, Asn asn, bool external = false);

  /// Connects two routers. Interface addresses are auto-assigned from
  /// 10.L.0.0/30 where L is the link index, unless provided.
  void AddLink(RouterId a, RouterId b);
  void AddLink(RouterId a, RouterId b, Ipv4Addr addr_a, Ipv4Addr addr_b);
  void AddLink(std::string_view name_a, std::string_view name_b);

  std::size_t NumRouters() const noexcept { return routers_.size(); }
  std::size_t NumLinks() const noexcept { return links_.size(); }

  const Router& GetRouter(RouterId id) const;
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Name -> id lookup; kInvalidRouter if absent.
  RouterId FindRouter(std::string_view name) const noexcept;
  /// Like FindRouter but an error mentioning the name.
  util::Result<RouterId> RequireRouter(std::string_view name) const;

  const std::string& NameOf(RouterId id) const { return GetRouter(id).name; }

  /// Neighbors of `id`, in insertion order (deterministic).
  const std::vector<RouterId>& Neighbors(RouterId id) const;

  bool Adjacent(RouterId a, RouterId b) const noexcept;

  /// Interface address of `on` for the link (on, neighbor); nullopt if the
  /// two routers are not adjacent.
  std::optional<Ipv4Addr> InterfaceAddr(RouterId on, RouterId neighbor) const;

  /// All simple paths from `src` to `dst` with at most `max_hops` edges,
  /// in deterministic (lexicographic by router id) order.
  std::vector<Path> SimplePaths(RouterId src, RouterId dst, int max_hops) const;

  /// All simple paths starting at `src`, any endpoint, <= max_hops edges.
  /// Includes the trivial single-node path {src}.
  std::vector<Path> SimplePathsFrom(RouterId src, int max_hops) const;

  /// True iff consecutive routers in `path` are adjacent and no router
  /// repeats.
  bool IsSimplePath(const Path& path) const;

  /// Pretty "R1 -> R2 -> P1" form.
  std::string FormatPath(const Path& path) const;

  /// Graphviz dot output (for documentation/debugging).
  std::string ToDot() const;

  /// All router ids, 0..n-1.
  std::vector<RouterId> AllRouters() const;

 private:
  void CheckId(RouterId id) const;

  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<RouterId>> adjacency_;
  std::map<std::string, RouterId, std::less<>> by_name_;
};

/// Unweighted hop distance between two routers (BFS); SIZE_MAX when
/// disconnected or either id is invalid.
std::size_t Distance(const Topology& topo, RouterId from, RouterId to);

}  // namespace ns::net
