#include "net/builders.hpp"

#include <algorithm>
#include <string>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace ns::net {

Topology PaperFig1b() {
  Topology topo;
  const RouterId r1 = topo.AddRouter("R1", 100);
  const RouterId r2 = topo.AddRouter("R2", 100);
  const RouterId r3 = topo.AddRouter("R3", 100);
  const RouterId p1 = topo.AddRouter("P1", 500, /*external=*/true);
  const RouterId p2 = topo.AddRouter("P2", 800, /*external=*/true);
  const RouterId cust = topo.AddRouter("Cust", 600, /*external=*/true);
  topo.AddLink(r1, r2);
  topo.AddLink(r1, r3);
  topo.AddLink(r2, r3);
  topo.AddLink(p1, r1);
  topo.AddLink(p2, r2);
  topo.AddLink(cust, r3);
  return topo;
}

Topology Chain(int n) {
  NS_ASSERT_MSG(n >= 1, "chain needs at least one router");
  Topology topo;
  std::vector<RouterId> routers;
  routers.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    routers.push_back(topo.AddRouter("R" + std::to_string(i), 100));
  }
  for (int i = 1; i < n; ++i) {
    topo.AddLink(routers[static_cast<std::size_t>(i - 1)],
                 routers[static_cast<std::size_t>(i)]);
  }
  const RouterId left = topo.AddRouter("Left", 500, /*external=*/true);
  const RouterId right = topo.AddRouter("Right", 800, /*external=*/true);
  topo.AddLink(left, routers.front());
  topo.AddLink(right, routers.back());
  return topo;
}

Topology Ring(int n) {
  NS_ASSERT_MSG(n >= 3, "ring needs at least three routers");
  Topology topo;
  std::vector<RouterId> routers;
  routers.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    routers.push_back(topo.AddRouter("R" + std::to_string(i), 100));
  }
  for (int i = 0; i < n; ++i) {
    topo.AddLink(routers[static_cast<std::size_t>(i)],
                 routers[static_cast<std::size_t>((i + 1) % n)]);
  }
  const RouterId peer_a = topo.AddRouter("PeerA", 500, /*external=*/true);
  const RouterId peer_b = topo.AddRouter("PeerB", 800, /*external=*/true);
  topo.AddLink(peer_a, routers[0]);
  topo.AddLink(peer_b, routers[static_cast<std::size_t>(n / 2)]);
  return topo;
}

Topology Fabric(int spines, int leaves) {
  NS_ASSERT_MSG(spines >= 1 && leaves >= 1, "fabric needs >=1 spine and leaf");
  Topology topo;
  std::vector<RouterId> spine_ids;
  std::vector<RouterId> leaf_ids;
  for (int s = 1; s <= spines; ++s) {
    spine_ids.push_back(topo.AddRouter("S" + std::to_string(s), 100));
  }
  for (int l = 1; l <= leaves; ++l) {
    leaf_ids.push_back(topo.AddRouter("L" + std::to_string(l), 100));
  }
  for (RouterId s : spine_ids) {
    for (RouterId l : leaf_ids) {
      topo.AddLink(s, l);
    }
  }
  for (int l = 1; l <= leaves; ++l) {
    const RouterId peer = topo.AddRouter("Ext" + std::to_string(l),
                                         static_cast<Asn>(500 + l),
                                         /*external=*/true);
    topo.AddLink(peer, leaf_ids[static_cast<std::size_t>(l - 1)]);
  }
  return topo;
}

Topology Clos(const ClosParams& params) {
  NS_ASSERT_MSG(params.pods >= 1, "clos needs >=1 pod");
  NS_ASSERT_MSG(params.edges_per_pod >= 1 && params.aggs_per_pod >= 1,
                "clos pods need >=1 edge and >=1 agg router");
  NS_ASSERT_MSG(params.cores >= 1, "clos needs >=1 core");
  NS_ASSERT_MSG(params.externals_per_pod >= 0, "negative externals");
  Topology topo;
  // Internal routers first so external ids come last (keeps the skeleton's
  // originated-prefix ids compact regardless of fabric size).
  std::vector<std::vector<RouterId>> edges(
      static_cast<std::size_t>(params.pods));
  std::vector<std::vector<RouterId>> aggs(
      static_cast<std::size_t>(params.pods));
  for (int p = 0; p < params.pods; ++p) {
    for (int i = 0; i < params.edges_per_pod; ++i) {
      edges[static_cast<std::size_t>(p)].push_back(topo.AddRouter(
          "T" + std::to_string(p + 1) + "_" + std::to_string(i + 1), 100));
    }
    for (int i = 0; i < params.aggs_per_pod; ++i) {
      aggs[static_cast<std::size_t>(p)].push_back(topo.AddRouter(
          "A" + std::to_string(p + 1) + "_" + std::to_string(i + 1), 100));
    }
  }
  std::vector<RouterId> core_ids;
  for (int c = 0; c < params.cores; ++c) {
    core_ids.push_back(topo.AddRouter("C" + std::to_string(c + 1), 100));
  }
  for (int p = 0; p < params.pods; ++p) {
    for (RouterId edge : edges[static_cast<std::size_t>(p)]) {
      for (RouterId agg : aggs[static_cast<std::size_t>(p)]) {
        topo.AddLink(edge, agg);
      }
    }
  }
  // Core c homes onto agg (c mod aggs_per_pod) in every pod: with
  // cores == aggs_per_pod * groups this is the canonical fat-tree wiring
  // where each agg "column" owns its own core group.
  for (int c = 0; c < params.cores; ++c) {
    const int column = c % params.aggs_per_pod;
    for (int p = 0; p < params.pods; ++p) {
      topo.AddLink(core_ids[static_cast<std::size_t>(c)],
                   aggs[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(column)]);
    }
  }
  int ext = 0;
  for (int p = 0; p < params.pods; ++p) {
    for (int i = 0; i < params.externals_per_pod; ++i) {
      const RouterId peer = topo.AddRouter(
          "X" + std::to_string(p + 1) + "_" + std::to_string(i + 1),
          static_cast<Asn>(500 + ++ext), /*external=*/true);
      // Round-robin over the pod's ToRs.
      const auto& pod_edges = edges[static_cast<std::size_t>(p)];
      topo.AddLink(peer, pod_edges[static_cast<std::size_t>(
                             i % params.edges_per_pod)]);
    }
  }
  return topo;
}

Topology FatTree(int k, int externals_per_pod) {
  NS_ASSERT_MSG(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >=2");
  ClosParams params;
  params.pods = k;
  params.edges_per_pod = k / 2;
  params.aggs_per_pod = k / 2;
  params.cores = (k / 2) * (k / 2);
  params.externals_per_pod = externals_per_pod;
  return Clos(params);
}

Topology Wan(int nodes, int externals, std::uint64_t seed) {
  NS_ASSERT_MSG(nodes >= 2, "wan needs >=2 routers");
  NS_ASSERT_MSG(externals >= 0 && externals <= nodes,
                "wan externals must fit on distinct routers");
  Topology topo;
  util::Rng rng(seed ^ 0x57414eull);  // "WAN" — decouple from caller streams
  std::vector<RouterId> ids;
  std::vector<int> degree;
  ids.push_back(topo.AddRouter("W1", 100));
  degree.push_back(0);
  // Preferential attachment: router n+1 links to an existing router chosen
  // with probability proportional to degree+1, giving the heavy-tailed
  // degree distribution typical of Topology Zoo WANs, and keeping the
  // graph connected by construction.
  for (int n = 2; n <= nodes; ++n) {
    const RouterId id = topo.AddRouter("W" + std::to_string(n), 100);
    int total = 0;
    for (int d : degree) total += d + 1;
    int pick = static_cast<int>(rng.Below(static_cast<std::uint64_t>(total)));
    std::size_t target = 0;
    for (std::size_t i = 0; i < degree.size(); ++i) {
      pick -= degree[i] + 1;
      if (pick < 0) {
        target = i;
        break;
      }
    }
    topo.AddLink(id, ids[target]);
    degree[target] += 1;
    ids.push_back(id);
    degree.push_back(1);
  }
  // Triangle-closing chords: link two neighbors of a common hub. This
  // raises clustering the way shared geography does in real WAN maps.
  const int chords = nodes / 3;
  for (int c = 0; c < chords; ++c) {
    const std::size_t hub = static_cast<std::size_t>(
        rng.Below(static_cast<std::uint64_t>(nodes)));
    const auto& nbrs = topo.Neighbors(ids[hub]);
    if (nbrs.size() < 2) continue;
    const RouterId a = nbrs[static_cast<std::size_t>(rng.Below(nbrs.size()))];
    const RouterId b = nbrs[static_cast<std::size_t>(rng.Below(nbrs.size()))];
    if (a == b || topo.Adjacent(a, b)) continue;
    topo.AddLink(a, b);
    degree[static_cast<std::size_t>(a)] += 1;
    degree[static_cast<std::size_t>(b)] += 1;
  }
  // Attach externals to the highest-degree (most "international") routers,
  // one per router, each in its own AS.
  std::vector<std::size_t> order(ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return degree[a] > degree[b];
                   });
  for (int e = 0; e < externals; ++e) {
    const RouterId peer =
        topo.AddRouter("XW" + std::to_string(e + 1),
                       static_cast<Asn>(500 + 100 * (e + 1)),
                       /*external=*/true);
    topo.AddLink(peer, ids[order[static_cast<std::size_t>(e)]]);
  }
  return topo;
}

Topology ProviderMesh(const MeshParams& params) {
  NS_ASSERT_MSG(params.cores >= 2, "mesh needs >=2 core routers");
  NS_ASSERT_MSG(params.providers >= 1, "mesh needs >=1 provider");
  NS_ASSERT_MSG(params.customers >= 0, "negative customers");
  Topology topo;
  std::vector<RouterId> cores;
  for (int i = 0; i < params.cores; ++i) {
    cores.push_back(topo.AddRouter("M" + std::to_string(i + 1), 100));
  }
  if (params.cores <= 4) {
    for (int i = 0; i < params.cores; ++i) {
      for (int j = i + 1; j < params.cores; ++j) {
        topo.AddLink(cores[static_cast<std::size_t>(i)],
                     cores[static_cast<std::size_t>(j)]);
      }
    }
  } else {
    for (int i = 0; i < params.cores; ++i) {
      topo.AddLink(cores[static_cast<std::size_t>(i)],
                   cores[static_cast<std::size_t>((i + 1) % params.cores)]);
    }
    // Skip-two chords keep the diameter small without the full-mesh
    // path blowup.
    for (int i = 0; i < params.cores; i += 2) {
      const int j = (i + 2) % params.cores;
      if (!topo.Adjacent(cores[static_cast<std::size_t>(i)],
                         cores[static_cast<std::size_t>(j)])) {
        topo.AddLink(cores[static_cast<std::size_t>(i)],
                     cores[static_cast<std::size_t>(j)]);
      }
    }
  }
  // Providers are dual-homed to consecutive cores — the ECMP/multi-path
  // shape the multi-AS specs exercise.
  for (int p = 0; p < params.providers; ++p) {
    const RouterId peer = topo.AddRouter("P" + std::to_string(p + 1),
                                         static_cast<Asn>(2000 + p + 1),
                                         /*external=*/true);
    topo.AddLink(peer, cores[static_cast<std::size_t>(p % params.cores)]);
    if (params.cores >= 2) {
      topo.AddLink(peer,
                   cores[static_cast<std::size_t>((p + 1) % params.cores)]);
    }
  }
  // Customers single-home on the far side of the mesh.
  for (int c = 0; c < params.customers; ++c) {
    const RouterId peer = topo.AddRouter("CU" + std::to_string(c + 1),
                                         static_cast<Asn>(3000 + c + 1),
                                         /*external=*/true);
    topo.AddLink(peer, cores[static_cast<std::size_t>(
                           (c + params.cores / 2) % params.cores)]);
  }
  return topo;
}

}  // namespace ns::net
