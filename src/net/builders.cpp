#include "net/builders.hpp"

#include <string>

#include "util/status.hpp"

namespace ns::net {

Topology PaperFig1b() {
  Topology topo;
  const RouterId r1 = topo.AddRouter("R1", 100);
  const RouterId r2 = topo.AddRouter("R2", 100);
  const RouterId r3 = topo.AddRouter("R3", 100);
  const RouterId p1 = topo.AddRouter("P1", 500, /*external=*/true);
  const RouterId p2 = topo.AddRouter("P2", 800, /*external=*/true);
  const RouterId cust = topo.AddRouter("Cust", 600, /*external=*/true);
  topo.AddLink(r1, r2);
  topo.AddLink(r1, r3);
  topo.AddLink(r2, r3);
  topo.AddLink(p1, r1);
  topo.AddLink(p2, r2);
  topo.AddLink(cust, r3);
  return topo;
}

Topology Chain(int n) {
  NS_ASSERT_MSG(n >= 1, "chain needs at least one router");
  Topology topo;
  std::vector<RouterId> routers;
  routers.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    routers.push_back(topo.AddRouter("R" + std::to_string(i), 100));
  }
  for (int i = 1; i < n; ++i) {
    topo.AddLink(routers[static_cast<std::size_t>(i - 1)],
                 routers[static_cast<std::size_t>(i)]);
  }
  const RouterId left = topo.AddRouter("Left", 500, /*external=*/true);
  const RouterId right = topo.AddRouter("Right", 800, /*external=*/true);
  topo.AddLink(left, routers.front());
  topo.AddLink(right, routers.back());
  return topo;
}

Topology Ring(int n) {
  NS_ASSERT_MSG(n >= 3, "ring needs at least three routers");
  Topology topo;
  std::vector<RouterId> routers;
  routers.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    routers.push_back(topo.AddRouter("R" + std::to_string(i), 100));
  }
  for (int i = 0; i < n; ++i) {
    topo.AddLink(routers[static_cast<std::size_t>(i)],
                 routers[static_cast<std::size_t>((i + 1) % n)]);
  }
  const RouterId peer_a = topo.AddRouter("PeerA", 500, /*external=*/true);
  const RouterId peer_b = topo.AddRouter("PeerB", 800, /*external=*/true);
  topo.AddLink(peer_a, routers[0]);
  topo.AddLink(peer_b, routers[static_cast<std::size_t>(n / 2)]);
  return topo;
}

Topology Fabric(int spines, int leaves) {
  NS_ASSERT_MSG(spines >= 1 && leaves >= 1, "fabric needs >=1 spine and leaf");
  Topology topo;
  std::vector<RouterId> spine_ids;
  std::vector<RouterId> leaf_ids;
  for (int s = 1; s <= spines; ++s) {
    spine_ids.push_back(topo.AddRouter("S" + std::to_string(s), 100));
  }
  for (int l = 1; l <= leaves; ++l) {
    leaf_ids.push_back(topo.AddRouter("L" + std::to_string(l), 100));
  }
  for (RouterId s : spine_ids) {
    for (RouterId l : leaf_ids) {
      topo.AddLink(s, l);
    }
  }
  for (int l = 1; l <= leaves; ++l) {
    const RouterId peer = topo.AddRouter("Ext" + std::to_string(l),
                                         static_cast<Asn>(500 + l),
                                         /*external=*/true);
    topo.AddLink(peer, leaf_ids[static_cast<std::size_t>(l - 1)]);
  }
  return topo;
}

}  // namespace ns::net
