// IPv4 addresses and CIDR prefixes.
//
// Announced destinations, prefix-list entries, and originated networks are
// all `Prefix` values. The representation is canonical: host bits below the
// prefix length are forced to zero, so equality is structural.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ns::net {

/// An IPv4 address as a host-order 32-bit integer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) noexcept : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t bits() const noexcept { return bits_; }

  /// Parses dotted-quad notation ("10.0.0.1").
  static util::Result<Ipv4Addr> Parse(std::string_view text);

  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR prefix, e.g. 128.0.1.0/24. Always stored canonically (host bits
/// cleared), so two prefixes compare equal iff they denote the same set.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Canonicalizes: bits below (32 - length) are cleared.
  constexpr Prefix(Ipv4Addr addr, int length) noexcept
      : addr_(Ipv4Addr(length == 0 ? 0 : (addr.bits() & MaskFor(length)))),
        length_(length) {}

  constexpr Ipv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return length_; }

  /// Network mask for this prefix length (e.g. /24 -> 255.255.255.0).
  constexpr std::uint32_t mask() const noexcept { return MaskFor(length_); }

  /// True if `addr` falls inside this prefix.
  constexpr bool Contains(Ipv4Addr addr) const noexcept {
    return (addr.bits() & mask()) == addr_.bits();
  }

  /// True if `other` is fully contained in this prefix (subnet-of test).
  constexpr bool Covers(const Prefix& other) const noexcept {
    return other.length_ >= length_ && Contains(other.addr_);
  }

  /// True if the two prefixes share any address.
  constexpr bool Overlaps(const Prefix& other) const noexcept {
    return Covers(other) || other.Covers(*this);
  }

  /// Parses "a.b.c.d/len". Rejects length outside [0,32].
  static util::Result<Prefix> Parse(std::string_view text);

  std::string ToString() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  static constexpr std::uint32_t MaskFor(int length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Addr addr_{};
  int length_ = 0;
};

}  // namespace ns::net
