#include "net/prefix.hpp"

#include <charconv>
#include <sstream>

#include "util/strings.hpp"

namespace ns::net {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {
Result<int> ParseOctetOrLength(std::string_view text, int max,
                               std::string_view what) {
  if (!util::IsAllDigits(text) || text.size() > 3) {
    return Error(ErrorCode::kParse,
                 "bad " + std::string(what) + " '" + std::string(text) + "'");
  }
  int value = 0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  if (value > max) {
    return Error(ErrorCode::kParse, std::string(what) + " out of range: " +
                                        std::string(text));
  }
  return value;
}
}  // namespace

Result<Ipv4Addr> Ipv4Addr::Parse(std::string_view text) {
  const auto parts = util::Split(text, '.');
  if (parts.size() != 4) {
    return Error(ErrorCode::kParse,
                 "expected dotted quad, got '" + std::string(text) + "'");
  }
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    auto octet = ParseOctetOrLength(part, 255, "octet");
    if (!octet) return octet.error();
    bits = (bits << 8) | static_cast<std::uint32_t>(octet.value());
  }
  return Ipv4Addr(bits);
}

std::string Ipv4Addr::ToString() const {
  std::ostringstream os;
  os << ((bits_ >> 24) & 0xFF) << '.' << ((bits_ >> 16) & 0xFF) << '.'
     << ((bits_ >> 8) & 0xFF) << '.' << (bits_ & 0xFF);
  return os.str();
}

Result<Prefix> Prefix::Parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Error(ErrorCode::kParse,
                 "prefix missing '/length': '" + std::string(text) + "'");
  }
  auto addr = Ipv4Addr::Parse(text.substr(0, slash));
  if (!addr) return addr.error();
  auto length = ParseOctetOrLength(text.substr(slash + 1), 32, "prefix length");
  if (!length) return length.error();
  return Prefix(addr.value(), length.value());
}

std::string Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(length_);
}

}  // namespace ns::net
