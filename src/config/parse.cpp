#include "config/parse.hpp"

#include <charconv>
#include <map>

#include "util/strings.hpp"

namespace ns::config {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

/// Line-oriented parser with one token of lookahead inside each line.
class ConfigParser {
 public:
  explicit ConfigParser(std::string_view text)
      : lines_(util::Split(text, '\n')) {}

  Result<NetworkConfig> Run() {
    for (line_no_ = 1; line_no_ <= static_cast<int>(lines_.size()); ++line_no_) {
      const std::string_view raw = lines_[static_cast<std::size_t>(line_no_ - 1)];
      const std::string_view line = util::Trim(raw);
      if (line.empty() || line[0] == '!') continue;
      const auto words = util::SplitWhitespace(line);
      Status status = Status::Ok();
      if (words[0] == "hostname") {
        status = OnHostname(words);
      } else if (words[0] == "router") {
        status = OnRouterBgp(words);
      } else if (words[0] == "network") {
        status = OnNetwork(words);
      } else if (words[0] == "neighbor") {
        status = OnNeighbor(words);
      } else if (words[0] == "ip" && words.size() > 1 &&
                 words[1] == "prefix-list") {
        status = OnPrefixList(words);
      } else if (words[0] == "route-map") {
        status = OnRouteMapHeader(words);
      } else if (words[0] == "match") {
        status = OnMatch(words);
      } else if (words[0] == "set") {
        status = OnSet(words);
      } else {
        status = Fail("unrecognized directive '" + words[0] + "'");
      }
      if (!status.ok()) return status.error();
    }
    if (current_ != nullptr) {
      if (Status s = ResolvePending(); !s.ok()) return s.error();
    }
    return std::move(network_);
  }

 private:
  Error Fail(std::string message) const {
    return Error(ErrorCode::kParse, std::move(message), line_no_, 1);
  }

  Status OnHostname(const std::vector<std::string>& words) {
    if (words.size() != 2) return Fail("hostname expects one argument");
    if (current_ != nullptr) {
      if (Status s = ResolvePending(); !s.ok()) return s;
    }
    RouterConfig config;
    config.router = words[1];
    auto [it, inserted] = network_.routers.emplace(words[1], std::move(config));
    if (!inserted) return Fail("duplicate hostname '" + words[1] + "'");
    current_ = &it->second;
    current_entry_ = nullptr;
    prefix_lists_.clear();
    pending_refs_.clear();
    return Status::Ok();
  }

  Status RequireRouter() {
    if (current_ == nullptr) return Fail("directive outside a hostname block");
    return Status::Ok();
  }

  Status OnRouterBgp(const std::vector<std::string>& words) {
    if (Status s = RequireRouter(); !s.ok()) return s;
    if (words.size() != 3 || words[1] != "bgp" || !util::IsAllDigits(words[2])) {
      return Fail("expected 'router bgp <asn>'");
    }
    current_->asn = static_cast<net::Asn>(std::stoul(words[2]));
    current_entry_ = nullptr;
    return Status::Ok();
  }

  Status OnNetwork(const std::vector<std::string>& words) {
    if (Status s = RequireRouter(); !s.ok()) return s;
    if (words.size() != 2) return Fail("expected 'network <prefix>'");
    auto prefix = net::Prefix::Parse(words[1]);
    if (!prefix) return Fail(prefix.error().message());
    current_->networks.push_back(prefix.value());
    return Status::Ok();
  }

  Status OnNeighbor(const std::vector<std::string>& words) {
    if (Status s = RequireRouter(); !s.ok()) return s;
    if (words.size() < 3) return Fail("truncated neighbor line");
    const std::string& peer = words[1];
    Neighbor* neighbor = current_->FindNeighbor(peer);
    if (neighbor == nullptr) {
      current_->neighbors.push_back(Neighbor{peer, std::nullopt, std::nullopt});
      neighbor = &current_->neighbors.back();
    }
    if (words[2] == "remote-as") {
      return Status::Ok();  // informational; the peer's config carries its ASN
    }
    if (words[2] == "route-map") {
      if (words.size() != 5 || (words[4] != "in" && words[4] != "out")) {
        return Fail("expected 'neighbor <peer> route-map <name> in|out'");
      }
      (words[4] == "in" ? neighbor->import_map : neighbor->export_map) =
          words[3];
      return Status::Ok();
    }
    return Fail("unknown neighbor directive '" + words[2] + "'");
  }

  // ip prefix-list <name> seq <n> permit <prefix>
  Status OnPrefixList(const std::vector<std::string>& words) {
    if (Status s = RequireRouter(); !s.ok()) return s;
    if (words.size() != 7 || words[3] != "seq" || words[5] != "permit") {
      return Fail("expected 'ip prefix-list <name> seq <n> permit <prefix>'");
    }
    auto prefix = net::Prefix::Parse(words[6]);
    if (!prefix) return Fail(prefix.error().message());
    prefix_lists_[words[2]] = prefix.value();
    return Status::Ok();
  }

  // route-map <name> <permit|deny|?hole> <seq>
  Status OnRouteMapHeader(const std::vector<std::string>& words) {
    if (Status s = RequireRouter(); !s.ok()) return s;
    if (words.size() != 4 || !util::IsAllDigits(words[3])) {
      return Fail("expected 'route-map <name> <action> <seq>'");
    }
    auto [it, inserted] = current_->route_maps.try_emplace(words[1]);
    if (inserted) it->second.name = words[1];
    RouteMapEntry entry;
    entry.seq = std::stoi(words[3]);
    if (it->second.FindEntry(entry.seq) != nullptr) {
      return Fail("duplicate sequence number " + words[3] + " in route-map " +
                  words[1]);
    }
    // Cisco applies entries in sequence order regardless of declaration
    // order; keep the in-memory order canonical.
    if (!it->second.entries.empty() &&
        it->second.entries.back().seq > entry.seq) {
      // Insert in sorted position (rare: out-of-order input).
      auto pos = it->second.entries.begin();
      while (pos != it->second.entries.end() && pos->seq < entry.seq) ++pos;
      pos = it->second.entries.insert(pos, std::move(entry));
      current_entry_ = &*pos;
      current_map_name_ = words[1];
      return Status::Ok();
    }
    if (words[2] == "permit") {
      entry.action = RmAction::kPermit;
    } else if (words[2] == "deny") {
      entry.action = RmAction::kDeny;
    } else if (words[2].starts_with('?')) {
      entry.action = Field<RmAction>::Hole(words[2].substr(1));
    } else {
      return Fail("bad route-map action '" + words[2] + "'");
    }
    it->second.entries.push_back(std::move(entry));
    current_entry_ = &it->second.entries.back();
    current_map_name_ = words[1];
    return Status::Ok();
  }

  Status RequireEntry() {
    if (current_entry_ == nullptr) {
      return Fail("match/set outside a route-map entry");
    }
    return Status::Ok();
  }

  template <typename T, typename ParseFn>
  Status ParseValueField(const std::string& word, Field<T>& out,
                         ParseFn&& parse) {
    if (word.starts_with('?')) {
      out = Field<T>::Hole(word.substr(1));
      return Status::Ok();
    }
    auto value = parse(word);
    if (!value) return Fail(value.error().message());
    out = Field<T>(std::move(value).value());
    return Status::Ok();
  }

  Status ParseIntField(const std::string& word, Field<int>& out) {
    if (word.starts_with('?')) {
      out = Field<int>::Hole(word.substr(1));
      return Status::Ok();
    }
    if (!util::IsAllDigits(word)) return Fail("expected integer, got " + word);
    out = Field<int>(std::stoi(word));
    return Status::Ok();
  }

  Status OnMatch(const std::vector<std::string>& words) {
    if (Status s = RequireEntry(); !s.ok()) return s;
    MatchClause& match = current_entry_->match;
    if (words.size() >= 2 && words[1].starts_with('?')) {
      // `match ?attrhole prefix <p> community <c> next-hop <a> via <r>`
      if (words.size() != 10 || words[2] != "prefix" ||
          words[4] != "community" || words[6] != "next-hop" ||
          words[8] != "via") {
        return Fail("malformed symbolic match line");
      }
      match.field = Field<MatchField>::Hole(words[1].substr(1));
      if (Status s = ParseValueField(words[3], match.prefix, net::Prefix::Parse);
          !s.ok()) {
        return s;
      }
      if (Status s = ParseValueField(words[5], match.community, ParseCommunity);
          !s.ok()) {
        return s;
      }
      if (Status s =
              ParseValueField(words[7], match.next_hop, net::Ipv4Addr::Parse);
          !s.ok()) {
        return s;
      }
      if (words[9].starts_with('?')) {
        match.via = Field<std::string>::Hole(words[9].substr(1));
      } else {
        match.via = words[9] == "-" ? std::string{} : words[9];
      }
      return Status::Ok();
    }
    if (words.size() == 5 && words[1] == "ip" && words[2] == "address" &&
        words[3] == "prefix-list") {
      match.field = MatchField::kPrefix;
      if (words[4].starts_with('?')) {
        match.prefix = Field<net::Prefix>::Hole(words[4].substr(1));
        return Status::Ok();
      }
      // The prefix-list may not be declared yet; resolve at end of block.
      // Keyed by (map, seq) — entry pointers can dangle as vectors grow.
      pending_refs_.push_back(PendingRef{current_map_name_,
                                         current_entry_->seq, words[4],
                                         line_no_});
      return Status::Ok();
    }
    if (words.size() == 3 && words[1] == "community") {
      match.field = MatchField::kCommunity;
      return ParseValueField(words[2], match.community, ParseCommunity);
    }
    if (words.size() == 4 && words[1] == "ip" && words[2] == "next-hop") {
      match.field = MatchField::kNextHop;
      return ParseValueField(words[3], match.next_hop, net::Ipv4Addr::Parse);
    }
    if (words.size() == 4 && words[1] == "as-path" && words[2] == "contains") {
      match.field = MatchField::kViaContains;
      if (words[3].starts_with('?')) {
        match.via = Field<std::string>::Hole(words[3].substr(1));
      } else {
        match.via = words[3] == "-" ? std::string{} : words[3];
      }
      return Status::Ok();
    }
    return Fail("unrecognized match line");
  }

  Status OnSet(const std::vector<std::string>& words) {
    if (Status s = RequireEntry(); !s.ok()) return s;
    SetClause& sets = current_entry_->sets;
    if (words.size() == 3 && words[1] == "local-preference") {
      sets.local_pref.emplace();
      return ParseIntField(words[2], *sets.local_pref);
    }
    if (words.size() == 4 && words[1] == "community" && words[3] == "additive") {
      sets.add_community.emplace();
      return ParseValueField(words[2], *sets.add_community, ParseCommunity);
    }
    if (words.size() == 4 && words[1] == "ip" && words[2] == "next-hop") {
      sets.next_hop.emplace();
      return ParseValueField(words[3], *sets.next_hop, net::Ipv4Addr::Parse);
    }
    if (words.size() == 3 && words[1] == "metric") {
      sets.med.emplace();
      return ParseIntField(words[2], *sets.med);
    }
    return Fail("unrecognized set line");
  }

  Status ResolvePending() {
    for (const PendingRef& ref : pending_refs_) {
      const auto it = prefix_lists_.find(ref.list_name);
      if (it == prefix_lists_.end()) {
        return Error(ErrorCode::kParse,
                     "route-map references undeclared prefix-list '" +
                         ref.list_name + "'",
                     ref.line, 1);
      }
      RouteMap* map = current_->FindRouteMap(ref.map_name);
      NS_ASSERT(map != nullptr);
      RouteMapEntry* entry = map->FindEntry(ref.seq);
      NS_ASSERT(entry != nullptr);
      entry->match.prefix = Field<net::Prefix>(it->second);
    }
    pending_refs_.clear();
    return Status::Ok();
  }

  struct PendingRef {
    std::string map_name;
    int seq = 0;
    std::string list_name;
    int line = 0;
  };

  std::vector<std::string> lines_;
  int line_no_ = 0;
  NetworkConfig network_;
  RouterConfig* current_ = nullptr;
  RouteMapEntry* current_entry_ = nullptr;
  std::string current_map_name_;
  std::map<std::string, net::Prefix> prefix_lists_;
  std::vector<PendingRef> pending_refs_;
};

}  // namespace

Result<NetworkConfig> ParseNetworkConfig(std::string_view text) {
  return ConfigParser(text).Run();
}

}  // namespace ns::config
