// `Field<T>`: a configuration field that is either a concrete value or a
// named hole (symbolic variable).
//
// This single type carries the whole lifecycle the paper describes:
//  - a *sketch* is a NetworkConfig whose fields may be holes (synthesis
//    input, NetComplete's "configuration sketch");
//  - the *synthesized* configuration has every hole filled with a concrete
//    value from the solver model;
//  - a *partially symbolic configuration* (paper Fig. 6b) is a synthesized
//    configuration in which the fields under explanation were re-opened as
//    holes (Var_Attr, Var_Action, Var_Val, Var_Param).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/status.hpp"

namespace ns::config {

/// Distinct wrapper so Field<std::string> would still be unambiguous.
struct HoleName {
  std::string name;
  friend bool operator==(const HoleName&, const HoleName&) = default;
  friend auto operator<=>(const HoleName&, const HoleName&) = default;
};

template <typename T>
class Field {
 public:
  Field() : storage_(T{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor): `entry.action = RmAction::kDeny`
  Field(T value) : storage_(std::move(value)) {}

  static Field Hole(std::string name) {
    Field f;
    f.storage_ = HoleName{std::move(name)};
    return f;
  }

  bool is_hole() const noexcept {
    return std::holds_alternative<HoleName>(storage_);
  }
  bool is_concrete() const noexcept { return !is_hole(); }

  const T& value() const {
    NS_ASSERT_MSG(is_concrete(), "Field::value() on hole " + DebugName());
    return std::get<T>(storage_);
  }

  const std::string& hole() const {
    NS_ASSERT_MSG(is_hole(), "Field::hole() on concrete field");
    return std::get<HoleName>(storage_).name;
  }

  /// Replaces a hole with a concrete value (used when decoding a model).
  void Fill(T value) { storage_ = std::move(value); }

  /// Replaces a concrete value with a hole (used when symbolizing).
  void Open(std::string hole_name) {
    storage_ = HoleName{std::move(hole_name)};
  }

  friend bool operator==(const Field&, const Field&) = default;

 private:
  std::string DebugName() const {
    return is_hole() ? std::get<HoleName>(storage_).name : std::string("<concrete>");
  }

  std::variant<T, HoleName> storage_;
};

}  // namespace ns::config
