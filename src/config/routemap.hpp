// Route-maps: the per-session routing policies the synthesizer fills in and
// the explainer symbolizes. The model follows the Cisco/NetComplete shape
// visible in the paper's Fig. 1c:
//
//   route-map R1_to_P1 deny 10
//    match ip address prefix-list ip_list_R1_1
//    set next-hop 10.0.0.1
//
// An entry has a sequence number, a permit/deny action, at most one match
// clause, and a set of attribute rewrites. Entries apply first-match-wins;
// a route matching no entry is denied (Cisco default).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/attrs.hpp"
#include "config/field.hpp"
#include "net/prefix.hpp"

namespace ns::config {

/// Which route attribute an entry matches on (the paper's `Var_Attr`).
enum class MatchField {
  kAny,          ///< no match clause: entry applies to every route
  kPrefix,       ///< match ip address prefix-list ...
  kCommunity,    ///< match community ...
  kNextHop,      ///< match ip next-hop ...
  kViaContains,  ///< match as-path contains <router> — NetComplete-style
                 ///< AS-path matching, at router granularity
};

const char* MatchFieldName(MatchField field) noexcept;

/// Permit/deny (the paper's `Var_Action`).
enum class RmAction { kPermit, kDeny };

const char* RmActionName(RmAction action) noexcept;

/// The match side of an entry. `field` selects which of the value slots is
/// consulted; unused slots keep defaults. Each slot can independently be a
/// hole, which is exactly the paper's partially symbolic configuration:
/// `match Var_Attr Var_Val`.
struct MatchClause {
  Field<MatchField> field = MatchField::kAny;
  Field<net::Prefix> prefix{};        ///< used when field == kPrefix
  Field<Community> community = 0;     ///< used when field == kCommunity
  Field<net::Ipv4Addr> next_hop{};    ///< used when field == kNextHop
  Field<std::string> via{};           ///< used when field == kViaContains

  bool HasHole() const noexcept;
  friend bool operator==(const MatchClause&, const MatchClause&) = default;
};

/// Attribute rewrites applied when a permit entry matches (`Var_Action
/// Var_Param` in Fig. 6b). Absent optional = attribute untouched.
struct SetClause {
  std::optional<Field<int>> local_pref;
  std::optional<Field<Community>> add_community;
  std::optional<Field<net::Ipv4Addr>> next_hop;
  std::optional<Field<int>> med;

  bool HasHole() const noexcept;
  bool Empty() const noexcept {
    return !local_pref && !add_community && !next_hop && !med;
  }
  friend bool operator==(const SetClause&, const SetClause&) = default;
};

struct RouteMapEntry {
  int seq = 10;
  Field<RmAction> action = RmAction::kPermit;
  MatchClause match;
  SetClause sets;

  bool HasHole() const noexcept;
  friend bool operator==(const RouteMapEntry&, const RouteMapEntry&) = default;
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapEntry> entries;

  bool HasHole() const noexcept;
  RouteMapEntry* FindEntry(int seq) noexcept;
  const RouteMapEntry* FindEntry(int seq) const noexcept;
  friend bool operator==(const RouteMap&, const RouteMap&) = default;
};

/// Convenience builders used by tests and sketch construction.
RouteMapEntry PermitAll(int seq);
RouteMapEntry DenyAll(int seq);

/// Resets the value slots a concrete match field does not consult back to
/// their defaults. Synthesis fills *every* hole of a symbolic entry, but
/// only the slot selected by the match field is meaningful configuration;
/// normalizing makes rendering canonical (render/parse round-trips).
void NormalizeUnusedMatchSlots(MatchClause& match) noexcept;

}  // namespace ns::config
