#include "config/device.hpp"

namespace ns::config {

using util::Error;
using util::ErrorCode;
using util::Result;

Neighbor* RouterConfig::FindNeighbor(std::string_view peer) noexcept {
  for (Neighbor& n : neighbors) {
    if (n.peer == peer) return &n;
  }
  return nullptr;
}

const Neighbor* RouterConfig::FindNeighbor(std::string_view peer) const noexcept {
  for (const Neighbor& n : neighbors) {
    if (n.peer == peer) return &n;
  }
  return nullptr;
}

RouteMap* RouterConfig::FindRouteMap(std::string_view name) noexcept {
  const auto it = route_maps.find(std::string(name));
  return it == route_maps.end() ? nullptr : &it->second;
}

const RouteMap* RouterConfig::FindRouteMap(std::string_view name) const noexcept {
  const auto it = route_maps.find(std::string(name));
  return it == route_maps.end() ? nullptr : &it->second;
}

const RouteMap* RouterConfig::ImportPolicy(std::string_view peer) const noexcept {
  const Neighbor* n = FindNeighbor(peer);
  if (n == nullptr || !n->import_map) return nullptr;
  return FindRouteMap(*n->import_map);
}

const RouteMap* RouterConfig::ExportPolicy(std::string_view peer) const noexcept {
  const Neighbor* n = FindNeighbor(peer);
  if (n == nullptr || !n->export_map) return nullptr;
  return FindRouteMap(*n->export_map);
}

bool RouterConfig::HasHole() const noexcept {
  for (const auto& [name, map] : route_maps) {
    if (map.HasHole()) return true;
  }
  return false;
}

RouterConfig* NetworkConfig::FindRouter(std::string_view name) noexcept {
  const auto it = routers.find(std::string(name));
  return it == routers.end() ? nullptr : &it->second;
}

const RouterConfig* NetworkConfig::FindRouter(std::string_view name) const noexcept {
  const auto it = routers.find(std::string(name));
  return it == routers.end() ? nullptr : &it->second;
}

Result<const RouterConfig*> NetworkConfig::RequireRouter(
    std::string_view name) const {
  const RouterConfig* config = FindRouter(name);
  if (config == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "no configuration for router '" + std::string(name) + "'");
  }
  return config;
}

bool NetworkConfig::HasHole() const noexcept {
  for (const auto& [name, router] : routers) {
    if (router.HasHole()) return true;
  }
  return false;
}

NetworkConfig SkeletonFor(const net::Topology& topo) {
  NetworkConfig network;
  for (net::RouterId id : topo.AllRouters()) {
    const net::Router& router = topo.GetRouter(id);
    RouterConfig config;
    config.router = router.name;
    config.asn = router.asn;
    if (router.external) {
      // Give each external AS a stable originated prefix so announcements
      // exist without further setup. Ids 0..55 keep the historical
      // 10.(200 + id).0.0/24; beyond that the second octet would wrap past
      // 255 and collide with the auto-assigned 10.x link /30s, so larger
      // ids (fat-tree/WAN-scale topologies) move to 172.16/12 space.
      if (id <= 55) {
        config.networks.push_back(net::Prefix(
            net::Ipv4Addr(10, static_cast<std::uint8_t>(200 + id), 0, 0),
            24));
      } else {
        config.networks.push_back(net::Prefix(
            net::Ipv4Addr(172, static_cast<std::uint8_t>(16 + id / 256),
                          static_cast<std::uint8_t>(id % 256), 0),
            24));
      }
    }
    for (net::RouterId nbr : topo.Neighbors(id)) {
      config.neighbors.push_back(Neighbor{topo.NameOf(nbr), std::nullopt,
                                          std::nullopt});
    }
    network.routers.emplace(router.name, std::move(config));
  }
  return network;
}

std::string ExportMapName(std::string_view router, std::string_view peer) {
  return std::string(router) + "_to_" + std::string(peer);
}

std::string ImportMapName(std::string_view router, std::string_view peer) {
  return std::string(router) + "_from_" + std::string(peer);
}

namespace {
RouteMap& EnsureMap(RouterConfig& config, std::string_view peer,
                    std::string name, bool is_export) {
  Neighbor* neighbor = config.FindNeighbor(peer);
  NS_ASSERT_MSG(neighbor != nullptr,
                config.router + " has no session with " + std::string(peer));
  auto& slot = is_export ? neighbor->export_map : neighbor->import_map;
  if (!slot) slot = name;
  auto [it, inserted] = config.route_maps.try_emplace(*slot);
  if (inserted) it->second.name = *slot;
  return it->second;
}
}  // namespace

RouteMap& EnsureExportMap(RouterConfig& config, std::string_view peer) {
  return EnsureMap(config, peer, ExportMapName(config.router, peer), true);
}

RouteMap& EnsureImportMap(RouterConfig& config, std::string_view peer) {
  return EnsureMap(config, peer, ImportMapName(config.router, peer), false);
}

}  // namespace ns::config
