// Hole discovery and filling. The synthesizer collects every hole in a
// sketch, allocates a solver variable per hole, and writes model values back
// through FillHoles; the explainer opens holes on a solved configuration and
// reuses the same machinery.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "config/device.hpp"
#include "util/status.hpp"

namespace ns::config {

/// The sort of value a hole ranges over.
enum class HoleType {
  kAction,      ///< permit/deny            (paper: Var_Action)
  kMatchField,  ///< which attribute        (paper: Var_Attr)
  kPrefix,      ///< prefix-list entry      (paper: Var_Val, prefix form)
  kCommunity,   ///< community value        (paper: Var_Val, community form)
  kAddress,     ///< next-hop address       (paper: Var_Param)
  kLocalPref,   ///< integer local-pref
  kMed,         ///< integer MED
  kRouter,      ///< router name (as-path / via matching)
};

const char* HoleTypeName(HoleType type) noexcept;

/// Where a hole lives inside the configuration (provenance for reports).
struct HoleInfo {
  std::string name;
  HoleType type = HoleType::kAction;
  std::string router;
  std::string route_map;
  int seq = 0;
  std::string slot;  ///< "action", "match.field", "set.local-pref", ...

  friend bool operator==(const HoleInfo&, const HoleInfo&) = default;
};

/// A concrete value for a hole.
using HoleValue = std::variant<RmAction, MatchField, net::Prefix, Community,
                               net::Ipv4Addr, int, std::string>;

std::string FormatHoleValue(const HoleValue& value);

/// Every hole in the network configuration, in deterministic order
/// (router name, then route-map name, then sequence, then slot).
std::vector<HoleInfo> CollectHoles(const NetworkConfig& network);

/// Fills holes with model values. Fails if a value's type does not match
/// the hole, or a named hole does not exist. Holes absent from `values`
/// are left open.
util::Status FillHoles(NetworkConfig& network,
                       const std::map<std::string, HoleValue>& values);

/// Reads the *concrete* value currently stored at the slot `info`
/// describes (on a solved configuration). Fails if the slot is absent or
/// still a hole. Used by the explainer to evaluate lifted statements
/// against what the synthesized configuration actually does.
util::Result<HoleValue> ReadSlotValue(const NetworkConfig& network,
                                      const HoleInfo& info);

}  // namespace ns::config
