// Rendering configurations as Cisco-style text (the form shown in the
// paper's Fig. 1c). The output is deterministic and round-trips through
// config::ParseNetworkConfig.
//
// Divergences from real IOS, chosen for readability of explanations:
//  - neighbors are referenced by router name instead of interface address
//    (the address appears in a trailing comment);
//  - holes (symbolic fields) render as `?<hole-name>`.
#pragma once

#include <string>

#include "config/device.hpp"
#include "net/topology.hpp"

namespace ns::config {

/// Renders a single router's configuration.
std::string RenderRouter(const RouterConfig& config,
                         const net::Topology* topo = nullptr);

/// Renders every router, separated by banner comments.
std::string RenderNetwork(const NetworkConfig& network,
                          const net::Topology* topo = nullptr);

/// Counts rendered configuration lines (excluding comments/banners) —
/// the "volume of configuration" metric used in scenario 3.
std::size_t CountConfigLines(const NetworkConfig& network);

}  // namespace ns::config
