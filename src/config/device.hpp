// Per-router BGP configuration and the whole-network configuration map.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/routemap.hpp"
#include "net/prefix.hpp"
#include "net/topology.hpp"
#include "util/status.hpp"

namespace ns::config {

/// A BGP session to one peer. Route-maps are referenced by name and live in
/// the owning RouterConfig's `route_maps` table.
struct Neighbor {
  std::string peer;  ///< topology router name
  std::optional<std::string> import_map;  ///< applied to routes received
  std::optional<std::string> export_map;  ///< applied to routes advertised

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

struct RouterConfig {
  std::string router;  ///< topology router name
  net::Asn asn = 0;
  std::vector<net::Prefix> networks;  ///< prefixes originated here
  std::vector<Neighbor> neighbors;
  std::map<std::string, RouteMap> route_maps;

  Neighbor* FindNeighbor(std::string_view peer) noexcept;
  const Neighbor* FindNeighbor(std::string_view peer) const noexcept;
  RouteMap* FindRouteMap(std::string_view name) noexcept;
  const RouteMap* FindRouteMap(std::string_view name) const noexcept;

  /// Fetches the import/export route-map for a peer; nullptr when the
  /// session has no policy in that direction (then everything is permitted
  /// unmodified — the BGP default for sessions without route-maps).
  const RouteMap* ImportPolicy(std::string_view peer) const noexcept;
  const RouteMap* ExportPolicy(std::string_view peer) const noexcept;

  bool HasHole() const noexcept;

  friend bool operator==(const RouterConfig&, const RouterConfig&) = default;
};

struct NetworkConfig {
  std::map<std::string, RouterConfig> routers;

  RouterConfig* FindRouter(std::string_view name) noexcept;
  const RouterConfig* FindRouter(std::string_view name) const noexcept;
  util::Result<const RouterConfig*> RequireRouter(std::string_view name) const;

  bool HasHole() const noexcept;

  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

/// Builds a configuration skeleton for `topo`: every router gets a BGP
/// process with its AS number, a session per link, and empty policy (no
/// route-maps — everything permitted). External routers originate one /24
/// each (10.2xx.<id>.0/24) so announcements exist from the start.
NetworkConfig SkeletonFor(const net::Topology& topo);

/// Route-map naming convention shared by the synthesizer, the renderer and
/// the explainer: "<router>_to_<peer>" (export) and "<router>_from_<peer>"
/// (import). Matches the paper's `R1_to_P1` / `R1_export_to_Provider1`.
std::string ExportMapName(std::string_view router, std::string_view peer);
std::string ImportMapName(std::string_view router, std::string_view peer);

/// Ensures the (import|export) route-map for (router, peer) exists with the
/// conventional name and is referenced by the session; returns it.
RouteMap& EnsureExportMap(RouterConfig& config, std::string_view peer);
RouteMap& EnsureImportMap(RouterConfig& config, std::string_view peer);

}  // namespace ns::config
