#include "config/holes.hpp"

#include <sstream>

namespace ns::config {

using util::Error;
using util::ErrorCode;
using util::Status;

const char* HoleTypeName(HoleType type) noexcept {
  switch (type) {
    case HoleType::kAction: return "action";
    case HoleType::kMatchField: return "match-field";
    case HoleType::kPrefix: return "prefix";
    case HoleType::kCommunity: return "community";
    case HoleType::kAddress: return "address";
    case HoleType::kLocalPref: return "local-pref";
    case HoleType::kMed: return "med";
    case HoleType::kRouter: return "router";
  }
  return "?";
}

std::string FormatHoleValue(const HoleValue& value) {
  std::ostringstream os;
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, RmAction>) {
          os << RmActionName(v);
        } else if constexpr (std::is_same_v<T, MatchField>) {
          os << MatchFieldName(v);
        } else if constexpr (std::is_same_v<T, net::Prefix>) {
          os << v.ToString();
        } else if constexpr (std::is_same_v<T, Community>) {
          os << FormatCommunity(v);
        } else if constexpr (std::is_same_v<T, net::Ipv4Addr>) {
          os << v.ToString();
        } else {
          os << v;  // int or std::string
        }
      },
      value);
  return os.str();
}

namespace {

struct Visitor {
  std::vector<HoleInfo>* out;
  const std::string* router;
  const std::string* map;
  int seq = 0;

  template <typename T>
  void Visit(const Field<T>& field, HoleType type, const char* slot) const {
    if (!field.is_hole()) return;
    out->push_back(HoleInfo{field.hole(), type, *router, *map, seq, slot});
  }

  void VisitEntry(const RouteMapEntry& entry) {
    seq = entry.seq;
    Visit(entry.action, HoleType::kAction, "action");
    Visit(entry.match.field, HoleType::kMatchField, "match.field");
    Visit(entry.match.prefix, HoleType::kPrefix, "match.prefix");
    Visit(entry.match.community, HoleType::kCommunity, "match.community");
    Visit(entry.match.next_hop, HoleType::kAddress, "match.next-hop");
    Visit(entry.match.via, HoleType::kRouter, "match.via");
    if (entry.sets.local_pref) {
      Visit(*entry.sets.local_pref, HoleType::kLocalPref, "set.local-pref");
    }
    if (entry.sets.add_community) {
      Visit(*entry.sets.add_community, HoleType::kCommunity, "set.community");
    }
    if (entry.sets.next_hop) {
      Visit(*entry.sets.next_hop, HoleType::kAddress, "set.next-hop");
    }
    if (entry.sets.med) {
      Visit(*entry.sets.med, HoleType::kMed, "set.med");
    }
  }
};

template <typename T>
Status FillField(Field<T>& field, const HoleInfo& info, const HoleValue& value) {
  const T* typed = std::get_if<T>(&value);
  if (typed == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "hole '" + info.name + "' expects " +
                     HoleTypeName(info.type) + ", got " +
                     FormatHoleValue(value));
  }
  field.Fill(*typed);
  return Status::Ok();
}

}  // namespace

std::vector<HoleInfo> CollectHoles(const NetworkConfig& network) {
  std::vector<HoleInfo> out;
  for (const auto& [router_name, router] : network.routers) {
    for (const auto& [map_name, map] : router.route_maps) {
      Visitor visitor{&out, &router_name, &map_name};
      for (const RouteMapEntry& entry : map.entries) {
        visitor.VisitEntry(entry);
      }
    }
  }
  return out;
}

Status FillHoles(NetworkConfig& network,
                 const std::map<std::string, HoleValue>& values) {
  // Index holes by name, then fill through mutable traversal.
  std::map<std::string, HoleInfo> index;
  for (HoleInfo& info : CollectHoles(network)) {
    const auto [it, inserted] = index.emplace(info.name, info);
    if (!inserted) {
      return Error(ErrorCode::kInvalidArgument,
                   "duplicate hole name '" + info.name + "'");
    }
  }
  for (const auto& [name, value] : values) {
    const auto it = index.find(name);
    if (it == index.end()) {
      return Error(ErrorCode::kNotFound, "no hole named '" + name + "'");
    }
    const HoleInfo& info = it->second;
    RouterConfig* router = network.FindRouter(info.router);
    NS_ASSERT(router != nullptr);
    RouteMap* map = router->FindRouteMap(info.route_map);
    NS_ASSERT(map != nullptr);
    RouteMapEntry* entry = map->FindEntry(info.seq);
    NS_ASSERT(entry != nullptr);

    Status status = Status::Ok();
    if (info.slot == "action") {
      status = FillField(entry->action, info, value);
    } else if (info.slot == "match.field") {
      status = FillField(entry->match.field, info, value);
    } else if (info.slot == "match.prefix") {
      status = FillField(entry->match.prefix, info, value);
    } else if (info.slot == "match.community") {
      status = FillField(entry->match.community, info, value);
    } else if (info.slot == "match.next-hop") {
      status = FillField(entry->match.next_hop, info, value);
    } else if (info.slot == "match.via") {
      status = FillField(entry->match.via, info, value);
    } else if (info.slot == "set.local-pref") {
      status = FillField(*entry->sets.local_pref, info, value);
    } else if (info.slot == "set.community") {
      status = FillField(*entry->sets.add_community, info, value);
    } else if (info.slot == "set.next-hop") {
      status = FillField(*entry->sets.next_hop, info, value);
    } else if (info.slot == "set.med") {
      status = FillField(*entry->sets.med, info, value);
    } else {
      return Error(ErrorCode::kInternal, "unknown hole slot " + info.slot);
    }
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

util::Result<HoleValue> ReadSlotValue(const NetworkConfig& network,
                                      const HoleInfo& info) {
  const RouterConfig* router = network.FindRouter(info.router);
  if (router == nullptr) {
    return Error(ErrorCode::kNotFound, "no router '" + info.router + "'");
  }
  const RouteMap* map = router->FindRouteMap(info.route_map);
  if (map == nullptr) {
    return Error(ErrorCode::kNotFound,
                 info.router + ": no route-map '" + info.route_map + "'");
  }
  const RouteMapEntry* entry = map->FindEntry(info.seq);
  if (entry == nullptr) {
    return Error(ErrorCode::kNotFound, info.route_map + ": no entry seq " +
                                           std::to_string(info.seq));
  }

  const auto read = [&](const auto& field) -> util::Result<HoleValue> {
    if (field.is_hole()) {
      return Error(ErrorCode::kInvalidArgument,
                   "slot " + info.slot + " is still symbolic");
    }
    return HoleValue(field.value());
  };
  const auto read_opt = [&](const auto& opt) -> util::Result<HoleValue> {
    if (!opt) {
      return Error(ErrorCode::kNotFound, "entry has no " + info.slot);
    }
    return read(*opt);
  };

  if (info.slot == "action") return read(entry->action);
  if (info.slot == "match.field") return read(entry->match.field);
  if (info.slot == "match.prefix") return read(entry->match.prefix);
  if (info.slot == "match.community") return read(entry->match.community);
  if (info.slot == "match.next-hop") return read(entry->match.next_hop);
  if (info.slot == "match.via") return read(entry->match.via);
  if (info.slot == "set.local-pref") return read_opt(entry->sets.local_pref);
  if (info.slot == "set.community") return read_opt(entry->sets.add_community);
  if (info.slot == "set.next-hop") return read_opt(entry->sets.next_hop);
  if (info.slot == "set.med") return read_opt(entry->sets.med);
  return Error(ErrorCode::kInvalidArgument, "unknown slot '" + info.slot + "'");
}

}  // namespace ns::config
