#include "config/render.hpp"

#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace ns::config {

namespace {

template <typename T, typename Fn>
std::string RenderField(const Field<T>& field, Fn&& format) {
  if (field.is_hole()) return "?" + field.hole();
  return format(field.value());
}

std::string RenderPrefixField(const Field<net::Prefix>& field) {
  return RenderField(field, [](const net::Prefix& p) { return p.ToString(); });
}

std::string RenderAddrField(const Field<net::Ipv4Addr>& field) {
  return RenderField(field, [](const net::Ipv4Addr& a) { return a.ToString(); });
}

std::string RenderCommunityField(const Field<Community>& field) {
  return RenderField(field, [](Community c) { return FormatCommunity(c); });
}

std::string RenderIntField(const Field<int>& field) {
  return RenderField(field, [](int v) { return std::to_string(v); });
}

std::string RenderNameField(const Field<std::string>& field) {
  // "-" stands for an empty (unused) name so the line stays tokenizable.
  return RenderField(field,
                     [](const std::string& v) { return v.empty() ? "-" : v; });
}

/// Stable prefix-list naming per router: pl_<router>_<index>, first-use
/// order. Mirrors the paper's `ip_list_R1_1`.
class PrefixLists {
 public:
  explicit PrefixLists(std::string router) : router_(std::move(router)) {}

  const std::string& NameFor(const net::Prefix& prefix) {
    auto [it, inserted] = names_.try_emplace(
        prefix, "pl_" + router_ + "_" + std::to_string(names_.size() + 1));
    if (inserted) order_.push_back(prefix);
    return it->second;
  }

  std::string RenderDeclarations() const {
    std::ostringstream os;
    for (const net::Prefix& prefix : order_) {
      os << "ip prefix-list " << names_.at(prefix) << " seq 10 permit "
         << prefix.ToString() << "\n";
    }
    return os.str();
  }

  bool Empty() const noexcept { return order_.empty(); }

 private:
  std::string router_;
  std::map<net::Prefix, std::string> names_;
  std::vector<net::Prefix> order_;
};

void RenderMatch(std::ostringstream& os, const MatchClause& match,
                 PrefixLists& lists) {
  if (match.field.is_hole()) {
    // Partially symbolic `match Var_Attr Var_Val` (paper Fig. 6b): list each
    // candidate value slot.
    os << " match ?" << match.field.hole() << " prefix "
       << RenderPrefixField(match.prefix) << " community "
       << RenderCommunityField(match.community) << " next-hop "
       << RenderAddrField(match.next_hop) << " via "
       << RenderNameField(match.via) << "\n";
    return;
  }
  switch (match.field.value()) {
    case MatchField::kAny:
      break;  // no match line: entry applies to all routes
    case MatchField::kPrefix:
      if (match.prefix.is_hole()) {
        os << " match ip address prefix-list ?" << match.prefix.hole() << "\n";
      } else {
        os << " match ip address prefix-list "
           << lists.NameFor(match.prefix.value()) << "\n";
      }
      break;
    case MatchField::kCommunity:
      os << " match community " << RenderCommunityField(match.community)
         << "\n";
      break;
    case MatchField::kNextHop:
      os << " match ip next-hop " << RenderAddrField(match.next_hop) << "\n";
      break;
    case MatchField::kViaContains:
      os << " match as-path contains " << RenderNameField(match.via) << "\n";
      break;
  }
}

void RenderSets(std::ostringstream& os, const SetClause& sets) {
  if (sets.local_pref) {
    os << " set local-preference " << RenderIntField(*sets.local_pref) << "\n";
  }
  if (sets.add_community) {
    os << " set community " << RenderCommunityField(*sets.add_community)
       << " additive\n";
  }
  if (sets.next_hop) {
    os << " set ip next-hop " << RenderAddrField(*sets.next_hop) << "\n";
  }
  if (sets.med) {
    os << " set metric " << RenderIntField(*sets.med) << "\n";
  }
}

}  // namespace

std::string RenderRouter(const RouterConfig& config,
                         const net::Topology* topo) {
  std::ostringstream maps;
  PrefixLists lists(config.router);

  for (const auto& [name, map] : config.route_maps) {
    for (const RouteMapEntry& entry : map.entries) {
      maps << "route-map " << name << " ";
      if (entry.action.is_hole()) {
        maps << "?" << entry.action.hole();
      } else {
        maps << RmActionName(entry.action.value());
      }
      maps << " " << entry.seq << "\n";
      RenderMatch(maps, entry.match, lists);
      RenderSets(maps, entry.sets);
      maps << "!\n";
    }
  }

  std::ostringstream os;
  os << "! configuration for " << config.router << " (AS " << config.asn
     << ")\n";
  os << "hostname " << config.router << "\n";
  os << "router bgp " << config.asn << "\n";
  for (const net::Prefix& network : config.networks) {
    os << " network " << network.ToString() << "\n";
  }
  for (const Neighbor& neighbor : config.neighbors) {
    // The peer's AS number lives in its own config; when a topology is
    // provided we resolve it for a faithful `remote-as` line.
    std::string remote_as = "?";
    if (topo != nullptr) {
      const net::RouterId id = topo->FindRouter(neighbor.peer);
      if (id != net::kInvalidRouter) {
        remote_as = std::to_string(topo->GetRouter(id).asn);
      }
    }
    os << " neighbor " << neighbor.peer << " remote-as " << remote_as << "\n";
    if (neighbor.import_map) {
      os << " neighbor " << neighbor.peer << " route-map "
         << *neighbor.import_map << " in\n";
    }
    if (neighbor.export_map) {
      os << " neighbor " << neighbor.peer << " route-map "
         << *neighbor.export_map << " out\n";
    }
  }
  os << "!\n";
  if (!lists.Empty()) {
    os << lists.RenderDeclarations() << "!\n";
  }
  os << maps.str();
  return os.str();
}

std::string RenderNetwork(const NetworkConfig& network,
                          const net::Topology* topo) {
  std::ostringstream os;
  for (const auto& [name, router] : network.routers) {
    os << RenderRouter(router, topo);
    os << "\n";
  }
  return os.str();
}

std::size_t CountConfigLines(const NetworkConfig& network) {
  const std::string text = RenderNetwork(network);
  std::size_t count = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '!') continue;
    ++count;
  }
  return count;
}

}  // namespace ns::config
