// Parser for the Cisco-style configuration text produced by
// config::RenderNetwork / RenderRouter. ParseNetworkConfig(RenderNetwork(c))
// reproduces `c` exactly, including holes (`?name` fields).
#pragma once

#include <string_view>

#include "config/device.hpp"
#include "util/status.hpp"

namespace ns::config {

/// Parses one or more rendered router configurations.
util::Result<NetworkConfig> ParseNetworkConfig(std::string_view text);

}  // namespace ns::config
