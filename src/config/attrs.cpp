#include "config/attrs.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace ns::config {

using util::Error;
using util::ErrorCode;
using util::Result;

std::string FormatCommunity(Community community) {
  return std::to_string(community >> 16) + ":" +
         std::to_string(community & 0xFFFF);
}

Result<Community> ParseCommunity(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Error(ErrorCode::kParse,
                 "community missing ':': '" + std::string(text) + "'");
  }
  const std::string_view asn_text = text.substr(0, colon);
  const std::string_view tag_text = text.substr(colon + 1);
  if (!util::IsAllDigits(asn_text) || !util::IsAllDigits(tag_text)) {
    return Error(ErrorCode::kParse,
                 "bad community '" + std::string(text) + "'");
  }
  unsigned asn = 0;
  unsigned tag = 0;
  std::from_chars(asn_text.data(), asn_text.data() + asn_text.size(), asn);
  std::from_chars(tag_text.data(), tag_text.data() + tag_text.size(), tag);
  if (asn > 0xFFFF || tag > 0xFFFF) {
    return Error(ErrorCode::kParse,
                 "community component out of range: '" + std::string(text) + "'");
  }
  return MakeCommunity(static_cast<std::uint16_t>(asn),
                       static_cast<std::uint16_t>(tag));
}

}  // namespace ns::config
