// BGP route attributes shared by the configuration model, the concrete
// simulator, and the SMT encoder.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ns::config {

/// A BGP community value `asn:tag`, packed into 32 bits (RFC 1997 layout).
using Community = std::uint32_t;

constexpr Community MakeCommunity(std::uint16_t asn, std::uint16_t tag) noexcept {
  return (static_cast<Community>(asn) << 16) | tag;
}

/// "100:2" form.
std::string FormatCommunity(Community community);

/// Parses "asn:tag".
util::Result<Community> ParseCommunity(std::string_view text);

/// Set of communities carried by an announcement.
using CommunitySet = std::set<Community>;

/// Default BGP local preference when no policy sets one.
inline constexpr int kDefaultLocalPref = 100;

/// Bounds for synthesized local-preference values. NetComplete similarly
/// restricts the search space to small integers.
inline constexpr int kMinLocalPref = 1;
inline constexpr int kMaxLocalPref = 1000;

}  // namespace ns::config
