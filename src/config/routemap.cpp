#include "config/routemap.hpp"

namespace ns::config {

const char* MatchFieldName(MatchField field) noexcept {
  switch (field) {
    case MatchField::kAny: return "any";
    case MatchField::kPrefix: return "prefix";
    case MatchField::kCommunity: return "community";
    case MatchField::kNextHop: return "next-hop";
    case MatchField::kViaContains: return "via";
  }
  return "?";
}

const char* RmActionName(RmAction action) noexcept {
  switch (action) {
    case RmAction::kPermit: return "permit";
    case RmAction::kDeny: return "deny";
  }
  return "?";
}

bool MatchClause::HasHole() const noexcept {
  return field.is_hole() || prefix.is_hole() || community.is_hole() ||
         next_hop.is_hole() || via.is_hole();
}

bool SetClause::HasHole() const noexcept {
  return (local_pref && local_pref->is_hole()) ||
         (add_community && add_community->is_hole()) ||
         (next_hop && next_hop->is_hole()) || (med && med->is_hole());
}

bool RouteMapEntry::HasHole() const noexcept {
  return action.is_hole() || match.HasHole() || sets.HasHole();
}

bool RouteMap::HasHole() const noexcept {
  for (const RouteMapEntry& entry : entries) {
    if (entry.HasHole()) return true;
  }
  return false;
}

RouteMapEntry* RouteMap::FindEntry(int seq) noexcept {
  for (RouteMapEntry& entry : entries) {
    if (entry.seq == seq) return &entry;
  }
  return nullptr;
}

const RouteMapEntry* RouteMap::FindEntry(int seq) const noexcept {
  for (const RouteMapEntry& entry : entries) {
    if (entry.seq == seq) return &entry;
  }
  return nullptr;
}

RouteMapEntry PermitAll(int seq) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = RmAction::kPermit;
  entry.match.field = MatchField::kAny;
  return entry;
}

RouteMapEntry DenyAll(int seq) {
  RouteMapEntry entry = PermitAll(seq);
  entry.action = RmAction::kDeny;
  return entry;
}

void NormalizeUnusedMatchSlots(MatchClause& match) noexcept {
  if (match.field.is_hole()) return;
  const MatchField field = match.field.value();
  if (field != MatchField::kPrefix && match.prefix.is_concrete()) {
    match.prefix = net::Prefix{};
  }
  if (field != MatchField::kCommunity && match.community.is_concrete()) {
    match.community = Community{0};
  }
  if (field != MatchField::kNextHop && match.next_hop.is_concrete()) {
    match.next_hop = net::Ipv4Addr{};
  }
  if (field != MatchField::kViaContains && match.via.is_concrete()) {
    match.via = std::string{};
  }
}

}  // namespace ns::config
