#include "explain/verify.hpp"

#include <set>
#include <sstream>

#include "smt/eval.hpp"
#include "smt/solver.hpp"
#include "synth/encoder.hpp"
#include "util/strings.hpp"

namespace ns::explain {

using smt::Expr;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// "st.alive|D1|P1.R1.R3" -> "D1: P1 -> R1 -> R3".
std::string PathFromStateVar(const std::string& name) {
  const auto parts = util::Split(name, '|');
  if (parts.size() < 3) return name;
  std::string hops = parts[2];
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i] == '.') {
      hops.replace(i, 1, " -> ");
      i += 3;
    }
  }
  return parts[1] + ": " + hops;
}

}  // namespace

std::string VerificationFinding::ToString() const {
  std::ostringstream os;
  os << requirement << " violated";
  if (!paths.empty()) {
    os << " along " << util::Join(paths, "; ");
  }
  return os.str();
}

std::string VerificationResult::ToString() const {
  if (ok()) return "configuration satisfies the specification";
  std::ostringstream os;
  os << util::Plural(findings.size(), "violated requirement constraint")
     << ":\n";
  for (const VerificationFinding& finding : findings) {
    os << "  " << finding.ToString() << "\n";
  }
  return os.str();
}

Result<VerificationResult> VerifyWithEncoder(
    const net::Topology& topo, const spec::Spec& spec,
    const config::NetworkConfig& network,
    const smt::SolverOptions& solver_options) {
  if (network.HasHole()) {
    return Error(ErrorCode::kInvalidArgument,
                 "verification expects a fully concrete configuration");
  }
  config::NetworkConfig prepared = network;
  auto destinations = synth::BuildDestinations(topo, prepared, spec);
  if (!destinations) return destinations.error();
  synth::EnsureOriginated(prepared, destinations.value());

  smt::ExprPool pool;
  auto encoding = synth::Encode(pool, topo, prepared, spec);
  if (!encoding) return encoding.error();

  // The definitions pin every state variable (the config is concrete), so
  // one model gives the whole control-plane state.
  std::set<Expr> requirement_set(
      encoding.value().requirement_constraints.begin(),
      encoding.value().requirement_constraints.end());
  std::vector<Expr> definitions;
  std::set<std::string> state_var_names;
  for (Expr c : encoding.value().constraints) {
    if (requirement_set.count(c) != 0) continue;
    definitions.push_back(c);
  }
  std::vector<Expr> state_vars;
  for (Expr c : encoding.value().requirement_constraints) {
    for (const Expr var : c.FreeVars()) {
      if (state_var_names.insert(var.name()).second) {
        state_vars.push_back(var);
      }
    }
  }

  smt::Solver solver(solver_options);
  auto session = solver.NewSession();
  auto model = session->Solve(definitions, state_vars);
  if (!model) return model.error();

  VerificationResult result;
  result.solver_stats = solver.stats();
  for (std::size_t i = 0;
       i < encoding.value().requirement_constraints.size(); ++i) {
    const Expr constraint = encoding.value().requirement_constraints[i];
    const auto holds = smt::Eval(constraint, model.value());
    if (!holds) return holds.error();
    if (holds.value() != 0) continue;

    VerificationFinding finding;
    finding.requirement = encoding.value().requirement_names[i];
    finding.constraint = constraint.ToString();
    for (const Expr var : constraint.FreeVars()) {
      if (synth::IsAuxVar(var.name())) {
        finding.paths.push_back(PathFromStateVar(var.name()));
      }
    }
    result.findings.push_back(std::move(finding));
  }
  return result;
}

}  // namespace ns::explain
