// Symbolization (paper §3 step 1): re-opening fields of a *solved*
// configuration as symbolic variables, producing the partially symbolic
// configuration of Fig. 6b.
//
// Explanation variables follow the paper's naming: Var_Action (permit/deny),
// Var_Attr (which attribute is matched), Var_Val_* (the match values), and
// Var_Param_* (set-line parameters), each suffixed with @<map>.<seq> so
// several symbolized entries stay distinguishable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/device.hpp"
#include "config/holes.hpp"
#include "util/status.hpp"

namespace ns::explain {

/// Which fields of the configuration to re-open. Narrower selections are
/// the paper's "one variable at a time" strategy; wider ones explain a
/// whole entry, route-map, or router.
struct Selection {
  std::string router;
  std::optional<std::string> route_map;  ///< all of the router's maps if unset
  std::optional<int> seq;                ///< all entries of the map if unset
  std::optional<std::string> slot;       ///< all slots of the entry if unset;
                                         ///< one of "action", "match",
                                         ///< "set.local-pref", "set.community",
                                         ///< "set.next-hop", "set.med"
  /// Invert the selection: open every field of every router EXCEPT
  /// `router` — the rest-of-network summary of the paper's §5 ("view the
  /// rest of the network as a single component and determine the necessary
  /// actions of other devices").
  bool complement = false;

  static Selection Router(std::string router) {
    return Selection{std::move(router), std::nullopt, std::nullopt,
                     std::nullopt};
  }
  static Selection Map(std::string router, std::string map) {
    return Selection{std::move(router), std::move(map), std::nullopt,
                     std::nullopt};
  }
  static Selection Entry(std::string router, std::string map, int seq) {
    return Selection{std::move(router), std::move(map), seq, std::nullopt};
  }
  static Selection Slot(std::string router, std::string map, int seq,
                        std::string slot) {
    return Selection{std::move(router), std::move(map), seq, std::move(slot)};
  }
  static Selection Rest(std::string router) {
    Selection s{std::move(router), std::nullopt, std::nullopt, std::nullopt};
    s.complement = true;
    return s;
  }

  std::string ToString() const;
};

/// Name of an explanation variable, e.g. "Var_Action@R1_to_P1.10".
std::string ExplainVarName(std::string_view kind, std::string_view map,
                           int seq);

/// Opens the selected fields as holes in place. Returns the holes opened,
/// in deterministic order. Fails (kNotFound) when the selection matches
/// nothing, or (kInvalidArgument) when the configuration already has holes.
util::Result<std::vector<config::HoleInfo>> Symbolize(
    config::NetworkConfig& network, const Selection& selection);

}  // namespace ns::explain
