#include "explain/lift.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "smt/eval.hpp"
#include "spec/matcher.hpp"
#include "smt/solver.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ns::explain {

using smt::Expr;
using smt::ExprPool;
using util::Error;
using util::ErrorCode;
using util::Result;

const char* LiftModeName(LiftMode mode) noexcept {
  return mode == LiftMode::kExact ? "exact" : "faithful";
}

LiftStats& LiftStats::operator+=(const LiftStats& other) noexcept {
  threads = std::max(threads, other.threads);
  portfolio = portfolio || other.portfolio;
  strategies = std::max(strategies, other.strategies);
  winner = std::max(winner, other.winner);
  compile_cache_hits += other.compile_cache_hits;
  compile_cache_misses += other.compile_cache_misses;
  candidates_compiled += other.candidates_compiled;
  strategies_cancelled += other.strategies_cancelled;
  compile_ms += other.compile_ms;
  assemble_ms += other.assemble_ms;
  return *this;
}

namespace {

/// Pulls "R2 to P2"-style scope out of the conventional map names.
std::optional<std::string> PeerFromMapName(const std::string& router,
                                           const std::string& map) {
  const std::string exp = router + "_to_";
  const std::string imp = router + "_from_";
  if (util::StartsWith(map, exp)) return map.substr(exp.size());
  if (util::StartsWith(map, imp)) return map.substr(imp.size());
  return std::nullopt;
}

spec::PathPattern ConcretePattern(const std::vector<std::string>& nodes) {
  spec::PathPattern pattern;
  pattern.elems.reserve(nodes.size());
  for (const std::string& node : nodes) {
    pattern.elems.push_back(spec::PathElem::Node(node));
  }
  return pattern;
}

// ----------------------------------------------------- test-only stalls

std::mutex g_delay_mu;
std::unordered_map<int, int> g_strategy_delays;

void MaybeStallForTest(int strategy) {
  int ms = 0;
  {
    std::lock_guard lock(g_delay_mu);
    const auto it = g_strategy_delays.find(strategy);
    if (it == g_strategy_delays.end()) return;
    ms = it->second;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// -------------------------------------------------- phase A: compilation

/// Supplies candidate residuals (and their conjunction, the "meaning") in
/// deterministic candidate order. Two modes:
///
///  - inline (fresh path, no compile cache): candidates compile directly
///    into the main pool on demand — byte-for-byte the historical
///    sequential pipeline, preserved so residuals stay pointer-identical
///    for the solver-differential oracle.
///  - cached (arena-seeded path): each candidate compiles in a fresh
///    scratch overlay of the frozen arena, keyed through the question's
///    CompileCache, optionally prefetched by a worker pool; the snapshot
///    is materialized into the main pool on first use, strictly in
///    candidate order. Pool state after materializing candidates 0..i is
///    a deterministic function of (arena, candidates, i) — independent of
///    worker count and scheduling — so downstream answers are
///    byte-identical across {1, N} threads.
class CompileStage {
 public:
  CompileStage(ExprPool& pool, const LiftPrefix& prefix, CompileCache* cache,
               const SubspecOptions& options)
      : pool_(pool),
        prefix_(prefix),
        cache_(cache),
        options_(options),
        n_(prefix.candidates.size()) {
    residuals_.resize(n_);
    meanings_.resize(n_);
    if (cache_ != nullptr) flats_.resize(n_);
  }

  ~CompileStage() { Finish(); }
  CompileStage(const CompileStage&) = delete;
  CompileStage& operator=(const CompileStage&) = delete;

  /// Spawns `threads` prefetch workers (cached mode only). Workers only
  /// fill the flat-snapshot slots and the cache; the main thread alone
  /// touches the main pool.
  void StartWorkers(int threads) {
    if (cache_ == nullptr || threads <= 1 || n_ == 0) return;
    const std::size_t count =
        std::min<std::size_t>(static_cast<std::size_t>(threads), n_);
    workers_.reserve(count);
    for (std::size_t w = 0; w < count; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Stops and joins the prefetch workers (idempotent). Must be called
  /// before reading the counters.
  void Finish() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }

  /// Guarantees candidates [0, idx] are materialized (in order).
  void EnsureThrough(std::size_t idx) {
    if (next_ready_ > idx) return;
    const auto start = std::chrono::steady_clock::now();
    while (next_ready_ <= idx) Advance();
    compile_ms_ += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  }

  void EnsureAll() {
    if (n_ > 0) EnsureThrough(n_ - 1);
  }

  const std::vector<Expr>& residual(std::size_t i) const {
    return residuals_[i];
  }
  Expr meaning(std::size_t i) const { return *meanings_[i]; }

  std::uint64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t compiled() const {
    return compiled_.load(std::memory_order_relaxed);
  }
  double compile_ms() const { return compile_ms_; }

 private:
  /// Materializes the next candidate (main thread only).
  void Advance() {
    const std::size_t j = next_ready_;
    if (cache_ == nullptr) {
      CompileInline(j);
      ++next_ready_;
      return;
    }
    std::shared_ptr<const FlatResidual> flat;
    if (workers_.empty()) {
      flat = CompileFlat(j);
    } else {
      std::unique_lock lock(mu_);
      cv_.wait(lock,
               [&] { return flats_[j] != nullptr || failure_ != nullptr; });
      if (failure_ != nullptr) std::rethrow_exception(failure_);
      flat = flats_[j];
    }
    residuals_[j] = MaterializeResidual(pool_, *flat);
    meanings_[j] =
        residuals_[j].empty() ? pool_.True() : pool_.And(residuals_[j]);
    ++next_ready_;
  }

  /// Fresh-path compile, directly into the main pool — the historical
  /// per-candidate pipeline: substitute through the closed definitions,
  /// then simplify to the residual.
  void CompileInline(std::size_t j) {
    const LiftCandidate& candidate = prefix_.candidates[j];
    std::vector<Expr> substituted;
    substituted.reserve(candidate.compiled.size());
    for (Expr c : candidate.compiled) {
      substituted.push_back(smt::Substitute(pool_, c, prefix_.closed));
    }
    simplify::EngineOptions engine_options;
    engine_options.shared_fixpoints = options_.shared_fixpoints;
    simplify::Engine engine(pool_, engine_options);
    residuals_[j] = engine.SimplifyConstraints(std::move(substituted));
    meanings_[j] =
        residuals_[j].empty() ? pool_.True() : pool_.And(residuals_[j]);
    compiled_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Cache-or-compile one candidate's snapshot. Every compile runs in a
  /// fresh scratch overlay so the snapshot is a pure function of (arena,
  /// candidate, closure) — identical no matter which worker produced it
  /// or in which order.
  std::shared_ptr<const FlatResidual> CompileFlat(std::size_t j) {
    const CompileCache::Key key =
        CompileCache::KeyFor(prefix_.candidates[j].compiled);
    if (auto flat = cache_->Lookup(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return flat;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    compiled_.fetch_add(1, std::memory_order_relaxed);
    smt::ExprPool scratch(pool_.arena());
    const LiftCandidate& candidate = prefix_.candidates[j];
    std::vector<Expr> substituted;
    substituted.reserve(candidate.compiled.size());
    for (Expr c : candidate.compiled) {
      substituted.push_back(smt::Substitute(scratch, c, prefix_.closed));
    }
    simplify::EngineOptions engine_options;
    engine_options.shared_fixpoints = options_.shared_fixpoints;
    simplify::Engine engine(scratch, engine_options);
    const std::vector<Expr> residual =
        engine.SimplifyConstraints(std::move(substituted));
    auto flat = std::make_shared<FlatResidual>(
        FlattenResidual(residual, pool_.arena()->NumNodes()));
    return cache_->Insert(key, std::move(flat));
  }

  void WorkerLoop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      const std::size_t j = next_claim_.fetch_add(1, std::memory_order_relaxed);
      if (j >= n_) return;
      try {
        auto flat = CompileFlat(j);
        {
          std::lock_guard lock(mu_);
          flats_[j] = std::move(flat);
        }
      } catch (...) {
        std::lock_guard lock(mu_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
      cv_.notify_all();
    }
  }

  ExprPool& pool_;
  const LiftPrefix& prefix_;
  CompileCache* cache_;  // null => inline mode
  const SubspecOptions& options_;
  const std::size_t n_;

  // Main-thread state.
  std::vector<std::vector<Expr>> residuals_;
  std::vector<std::optional<Expr>> meanings_;
  std::size_t next_ready_ = 0;
  double compile_ms_ = 0;

  // Worker machinery (cached mode).
  std::vector<std::shared_ptr<const FlatResidual>> flats_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr failure_;
  std::atomic<std::size_t> next_claim_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> compiled_{0};
};

// --------------------------------------------- phase B: greedy assembly

struct AssemblyOutcome {
  bool complete = false;
  int candidates_tried = 0;
  std::vector<std::size_t> used;  ///< candidate indices, post-prune
  smt::SolverStats solver_stats;
  bool finished = false;  ///< ran to the end without being interrupted
};

/// One greedy assembly pass over the compiled candidates, in `order`.
///
/// Three sessions over one shared solver, one per reusable prefix:
///   dt: domain ∧ target    — exactness / necessity queries
///   da: domain ∧ accepted  — redundancy / completeness (grows with acc)
///   d:  domain only        — sufficiency / pruning queries
/// Each prefix is asserted (and, on the Z3 backends, translated) once;
/// every candidate query then runs against the warm stack instead of
/// replaying the conjunction from scratch. The sessions never create pool
/// nodes, so the result is the same under every backend — and, since the
/// acceptance criteria are per-candidate (order-independent given the
/// accumulated set is re-checked), every uninterrupted strategy agrees on
/// completeness (DESIGN.md §12).
AssemblyOutcome RunAssembly(smt::Solver& solver, const Subspec& subspec,
                            LiftMode mode, Expr target,
                            const smt::Assignment& solved_values,
                            const std::vector<std::size_t>& order,
                            CompileStage& stage, bool demand_materialize) {
  const auto dt = solver.NewSession();
  const auto da = solver.NewSession();
  const auto d = solver.NewSession();
  for (Expr c : subspec.domains) {
    dt->Assert(c);
    da->Assert(c);
    d->Assert(c);
  }
  for (Expr c : subspec.constraints) dt->Assert(c);

  AssemblyOutcome out;
  for (const std::size_t idx : order) {
    if (solver.interrupted()) {
      out.solver_stats = solver.stats();
      return out;  // cancelled: the outcome is discarded
    }
    ++out.candidates_tried;
    if (demand_materialize) stage.EnsureThrough(idx);
    const Expr meaning = stage.meaning(idx);
    if (meaning.IsTrue()) continue;   // vacuous here
    if (meaning.IsFalse()) continue;  // unenforceable by these fields

    // Soundness per mode.
    if (mode == LiftMode::kExact) {
      if (!dt->Implies(meaning)) continue;
    } else {
      // Faithful: the statement must describe the solved configuration...
      const auto holds = smt::Eval(meaning, solved_values);
      if (!holds.ok() || holds.value() == 0) continue;
      // ...and be on-topic: either sufficient for the subspec by itself
      // (possibly stronger than necessary — Fig. 2's "drop ALL routes"),
      // or a consequence of it (a necessary fragment).
      const std::span<const Expr> meaning_span(&meaning, 1);
      const bool sufficient = d->Implies(meaning_span, target);
      const bool necessary = dt->Implies(meaning);
      if (!sufficient && !necessary) continue;
    }

    // Skip statements already implied by what we have. The accumulated
    // conjunction lives on the `da` stack: accepting a statement asserts
    // it once instead of rebuilding (and re-asserting) the conjunction
    // for every candidate tried after it.
    if (da->Implies(meaning)) continue;

    da->Assert(meaning);
    out.used.push_back(idx);

    if (da->Implies(target)) {
      out.complete = true;
      break;
    }
  }

  if (!out.complete) {
    out.complete = da->Implies(target);
  }

  // Prune redundant statements (longest first) while completeness holds.
  // The rest-of-set conjunction is passed as flattened query-local
  // conjuncts over the domain-only prefix — no pool nodes are built.
  if (out.complete && out.used.size() > 1) {
    for (std::size_t i = out.used.size(); i-- > 0;) {
      std::vector<Expr> rest;
      for (std::size_t j = 0; j < out.used.size(); ++j) {
        if (j == i) continue;
        const auto& residual = stage.residual(out.used[j]);
        rest.insert(rest.end(), residual.begin(), residual.end());
      }
      if (d->Implies(rest, target)) {
        out.used.erase(out.used.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  out.solver_stats = solver.stats();
  out.finished = !solver.interrupted();
  return out;
}

}  // namespace

namespace lift_testing {

void SetStrategyDelayForTest(int index, int ms) {
  std::lock_guard lock(g_delay_mu);
  g_strategy_delays[index] = ms;
}

void ClearStrategyDelaysForTest() {
  std::lock_guard lock(g_delay_mu);
  g_strategy_delays.clear();
}

}  // namespace lift_testing

std::string LiftResult::ToString() const {
  std::ostringstream os;
  os << requirement.ToString();
  if (!complete) {
    os << "\n// (incomplete lift: the low-level constraints carry more "
          "information)";
  }
  return os.str();
}

Result<LiftPrefix> BuildLiftPrefix(ExprPool& pool, const net::Topology& topo,
                                   const spec::Spec& spec,
                                   const config::NetworkConfig& solved,
                                   const Subspec& subspec,
                                   const SubspecOptions& options) {
  const std::string& scope_router = subspec.selection.router;

  // Re-derive the protocol-mechanics encoding for the same partially
  // symbolic configuration (same pool => identical variables).
  config::NetworkConfig partial = solved;
  if (auto holes = Symbolize(partial, subspec.selection); !holes) {
    return holes.error();
  }
  auto destinations = synth::BuildDestinations(topo, partial, spec);
  if (!destinations) return destinations.error();
  synth::EnsureOriginated(partial, destinations.value());

  synth::EncoderOptions encoder_options = options.encoder;
  encoder_options.skip_requirements = true;
  encoder_options.only_requirements.clear();
  auto encoded = synth::Encode(pool, topo, partial, spec, encoder_options);
  if (!encoded) return encoded.error();
  const synth::Encoding& encoding = encoded.value();

  std::vector<Expr> definitions;
  for (Expr c : encoding.constraints) {
    const bool is_domain =
        std::find(encoding.domain_constraints.begin(),
                  encoding.domain_constraints.end(),
                  c) != encoding.domain_constraints.end();
    if (!is_domain) definitions.push_back(c);
  }

  LiftPrefix prefix;

  // One-time closure of the state-variable definitions: each candidate
  // statement is then projected by a single substitution + simplification
  // instead of a fresh run over the whole seed.
  prefix.closed =
      CloseAuxDefinitions(pool, definitions, options.shared_fixpoints);

  // ------------------------------------------------ candidate statements

  const auto dest_of =
      [&](const synth::Candidate& c) -> const synth::Destination& {
    return encoding.destinations[static_cast<std::size_t>(c.dest_index)];
  };

  const auto compile_forbid = [&](const spec::PathPattern& pattern) {
    std::vector<Expr> compiled;
    for (const synth::Candidate& candidate : encoding.candidates) {
      if (!synth::PatternHitsCandidate(spec, pattern, candidate,
                                       dest_of(candidate))) {
        continue;
      }
      compiled.push_back(
          pool.Not(encoding.alive_vars.at(candidate.Label(dest_of(candidate)))));
    }
    return compiled;
  };

  std::vector<LiftCandidate>& pool_candidates = prefix.candidates;
  const auto add_forbid = [&](spec::PathPattern pattern, int priority) {
    auto compiled = compile_forbid(pattern);
    if (compiled.empty()) return;  // pattern matches nothing: vacuous
    spec::Statement stmt{spec::ForbidStmt{std::move(pattern)}};
    std::string rendered = spec::ToString(stmt);
    pool_candidates.push_back(LiftCandidate{std::move(stmt), std::move(compiled),
                                            std::move(rendered), priority});
  };
  const auto add_allow = [&](spec::PathPattern pattern) {
    std::vector<Expr> alive_options;
    for (const synth::Candidate& candidate : encoding.candidates) {
      if (synth::PatternHitsCandidate(spec, pattern, candidate,
                                      dest_of(candidate))) {
        alive_options.push_back(
            encoding.alive_vars.at(candidate.Label(dest_of(candidate))));
      }
    }
    if (alive_options.empty()) return;
    spec::Statement stmt{spec::AllowStmt{std::move(pattern)}};
    std::string rendered = spec::ToString(stmt);
    pool_candidates.push_back(LiftCandidate{std::move(stmt),
                                            {pool.Or(alive_options)},
                                            std::move(rendered), 3});
  };

  // (a) Deny-everything across one adjacency: !(R->N) and !(N->R).
  const net::RouterId scope_id = topo.FindRouter(scope_router);
  if (scope_id == net::kInvalidRouter) {
    return Error(ErrorCode::kNotFound, "unknown router " + scope_router);
  }
  for (const net::RouterId neighbor : topo.Neighbors(scope_id)) {
    const std::string& peer = topo.NameOf(neighbor);
    add_forbid(ConcretePattern({scope_router, peer}), 2);
    add_forbid(ConcretePattern({peer, scope_router}), 2);
  }

  // (b) Per-path forbids for every candidate path that traverses the scope
  // router: announcement form always; traffic form (Fig. 4 style) when the
  // destination is declared.
  std::set<std::vector<std::string>> seen_vias;
  for (const synth::Candidate& candidate : encoding.candidates) {
    const bool through_scope =
        std::find(candidate.via.begin(), candidate.via.end(), scope_router) !=
        candidate.via.end();
    if (!through_scope) continue;
    if (seen_vias.insert(candidate.via).second) {
      add_forbid(ConcretePattern(candidate.via), 2);
      add_allow(ConcretePattern(candidate.via));
    }
    const synth::Destination& dest = dest_of(candidate);
    if (dest.declared) {
      // reverse(via) ++ [..., destname]
      spec::PathPattern pattern =
          ConcretePattern({candidate.via.rbegin(), candidate.via.rend()});
      pattern.elems.push_back(spec::PathElem::Wildcard());
      pattern.elems.push_back(spec::PathElem::Node(dest.name));
      add_allow(pattern);
      add_forbid(std::move(pattern), 1);
    }
  }

  // (c) Local preferences: global `>>` statements truncated at the scope
  // router (Fig. 4's `preference { (R3->...) >> (R3->...) }`).
  for (const spec::Requirement& req : spec.requirements) {
    if (req.IsLocalized()) continue;
    for (const spec::Statement& stmt : req.statements) {
      const auto* prefer = std::get_if<spec::PreferStmt>(&stmt);
      if (prefer == nullptr) continue;
      spec::PreferStmt local;
      bool ok = true;
      for (const spec::PathPattern& pattern : prefer->ranking) {
        spec::PathPattern truncated;
        bool found = false;
        for (const spec::PathElem& elem : pattern.elems) {
          if (!found && !(elem.kind == spec::PathElem::Kind::kNode &&
                          elem.name == scope_router)) {
            continue;
          }
          found = true;
          truncated.elems.push_back(elem);
        }
        if (!found || truncated.elems.size() < 2) {
          ok = false;
          break;
        }
        local.ranking.push_back(std::move(truncated));
      }
      if (!ok) continue;

      // Compile: pairwise decision ordering between candidates realizing
      // differently ranked truncated patterns (matched at the scope
      // router, where the routes are compared).
      std::vector<std::vector<const synth::Candidate*>> classes(
          local.ranking.size());
      for (const synth::Candidate& candidate : encoding.candidates) {
        if (candidate.via.back() != scope_router) continue;
        const synth::Destination& dest = dest_of(candidate);
        const auto traffic = candidate.TrafficSeq(dest);
        for (std::size_t i = 0; i < local.ranking.size(); ++i) {
          if (spec::MatchesExactly(local.ranking[i], traffic)) {
            classes[i].push_back(&candidate);
            break;
          }
        }
      }
      std::vector<Expr> compiled;
      // "Prefer p1 over p2" presumes the ranked paths are available:
      // every matched ranked candidate must be alive...
      for (const auto& cls : classes) {
        for (const synth::Candidate* c : cls) {
          compiled.push_back(encoding.alive_vars.at(c->Label(dest_of(*c))));
        }
      }
      // ...and the decision process must order them.
      for (std::size_t hi = 0; hi < classes.size(); ++hi) {
        for (std::size_t lo = hi + 1; lo < classes.size(); ++lo) {
          for (const synth::Candidate* a : classes[hi]) {
            for (const synth::Candidate* b : classes[lo]) {
              const std::string la = a->Label(dest_of(*a));
              const std::string lb = b->Label(dest_of(*b));
              const Expr alive_a = encoding.alive_vars.at(la);
              const Expr alive_b = encoding.alive_vars.at(lb);
              const Expr lp_a = encoding.lp_vars.at(la);
              const Expr lp_b = encoding.lp_vars.at(lb);
              const Expr med_a = encoding.med_vars.at(la);
              const Expr med_b = encoding.med_vars.at(lb);
              const Expr len_a = encoding.len_vars.at(la);
              const Expr len_b = encoding.len_vars.at(lb);
              const Expr lex = pool.Bool(a->via < b->via);
              const Expr med_tie = pool.Or(
                  {pool.Lt(med_a, med_b),
                   pool.And({pool.Eq(med_a, med_b), lex})});
              const Expr len_tie = pool.Or(
                  {pool.Lt(len_a, len_b),
                   pool.And({pool.Eq(len_a, len_b), med_tie})});
              const Expr better =
                  pool.Or({pool.Gt(lp_a, lp_b),
                           pool.And({pool.Eq(lp_a, lp_b), len_tie})});
              compiled.push_back(
                  pool.Implies(pool.And({alive_a, alive_b}), better));
            }
          }
        }
      }
      if (compiled.empty()) continue;
      spec::Statement local_stmt{std::move(local)};
      std::string rendered = spec::ToString(local_stmt);
      pool_candidates.push_back(LiftCandidate{std::move(local_stmt),
                                              std::move(compiled),
                                              std::move(rendered), 0});
    }
  }

  // Priority groups first, shortest statements within a group ("!(R1->P1)"
  // before an enumeration of paths).
  std::stable_sort(pool_candidates.begin(), pool_candidates.end(),
                   [](const LiftCandidate& a, const LiftCandidate& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.rendered.size() < b.rendered.size();
                   });

  return prefix;
}

Result<LiftResult> Lifter::Lift(const Subspec& subspec, LiftMode mode,
                                const SubspecOptions& options) {
  if (subspec.selection.complement) {
    return Error(ErrorCode::kUnsupported,
                 "lifting a rest-of-network summary is not supported: its "
                 "scope spans several components (present the low-level "
                 "constraints instead)");
  }
  const std::string& scope_router = subspec.selection.router;

  LiftResult result;
  result.requirement.name = scope_router;
  result.requirement.scope_router = scope_router;
  if (subspec.selection.route_map) {
    result.requirement.scope_peer =
        PeerFromMapName(scope_router, *subspec.selection.route_map);
  }

  if (subspec.IsUnsatisfiable()) {
    // Nothing the component can do satisfies the projected spec; there is
    // no statement set to lift.
    result.complete = false;
    return result;
  }

  if (subspec.IsEmpty()) {
    // "Can do anything" (paper scenario 3): the empty statement set is the
    // complete answer in both modes. Without this exit the faithful-mode
    // search would decorate the answer with statements the configuration
    // happens to satisfy but the specification never demanded.
    result.complete = true;
    return result;
  }

  // ------------------------------------------- phase A: compile stage

  // The deterministic prefix: supplied frozen (arena-seeded path) or
  // built inline into the pool (fresh path — same creation sequence).
  const LiftPrefix* prefix = context_.prefix;
  LiftPrefix local_prefix;
  if (prefix == nullptr) {
    auto built = BuildLiftPrefix(pool_, topo_, spec_, solved_, subspec,
                                 options);
    if (!built) return built.error();
    local_prefix = std::move(built.value());
    prefix = &local_prefix;
  }

  // The memoized scratch-compile route needs every prefix expression at a
  // stable arena id; otherwise candidates compile inline.
  const bool cached = context_.cache != nullptr && context_.prefix != nullptr &&
                      pool_.arena() != nullptr;
  CompileStage stage(pool_, *prefix, cached ? context_.cache : nullptr,
                     options);
  const int threads = cached ? std::max(1, options.lift_threads) : 1;
  result.stats.threads = threads;

  // Target before any candidate compiles: node-creation order must match
  // the sequential pipeline.
  const Expr target = subspec.constraints.empty()
                          ? pool_.True()
                          : pool_.And(subspec.constraints);

  // Faithful mode evaluates candidate residuals on the solved values of
  // the symbolized fields.
  smt::Assignment solved_values;
  if (mode == LiftMode::kFaithful) {
    for (const config::HoleInfo& info : subspec.holes) {
      auto value = config::ReadSlotValue(solved_, info);
      if (!value) return value.error();
      solved_values[info.name] = subspec.values.EncodeValue(value.value());
    }
  }

  std::vector<std::size_t> canonical(prefix->candidates.size());
  std::iota(canonical.begin(), canonical.end(), std::size_t{0});

  if (threads > 1) stage.StartWorkers(threads);

  // ------------------------------------------- phase B: greedy assembly

  const auto phase_b_start = std::chrono::steady_clock::now();
  AssemblyOutcome winner;
  if (!options.lift_portfolio) {
    smt::Solver solver(options.solver);
    winner = RunAssembly(solver, subspec, mode, target, solved_values,
                         canonical, stage, /*demand_materialize=*/true);
    stage.Finish();
  } else {
    // Portfolio race. Materialize every candidate and settle the pool's
    // lazy node caches first: the racing strategies read the pool
    // concurrently and must never write. The canonical strategy's answer
    // is the deterministic winner by construction — any complete
    // strategy implies the canonical one is complete too (acceptance is
    // order-independent; DESIGN.md §12) — so the others act as a live
    // cross-check and are cancelled once it finishes.
    stage.EnsureAll();
    stage.Finish();
    pool_.SettleCaches();

    struct Strategy {
      std::vector<std::size_t> order;
      smt::SolverOptions solver;
    };
    std::vector<Strategy> strategies;
    strategies.push_back({canonical, options.solver});
    {
      smt::SolverOptions alt = options.solver;
      alt.backend = alt.backend == smt::SolverBackend::kIncrementalZ3
                        ? smt::SolverBackend::kFastPath
                        : smt::SolverBackend::kIncrementalZ3;
      strategies.push_back({canonical, alt});
    }
    strategies.push_back(
        {{canonical.rbegin(), canonical.rend()}, options.solver});
    {
      std::vector<std::size_t> by_size = canonical;
      std::stable_sort(by_size.begin(), by_size.end(),
                       [&](std::size_t a, std::size_t b) {
                         return prefix->candidates[a].rendered.size() <
                                prefix->candidates[b].rendered.size();
                       });
      strategies.push_back({std::move(by_size), options.solver});
    }

    const std::size_t num = strategies.size();
    std::vector<std::unique_ptr<smt::Solver>> solvers;
    solvers.reserve(num);
    for (const Strategy& strategy : strategies) {
      solvers.push_back(std::make_unique<smt::Solver>(strategy.solver));
    }
    std::vector<AssemblyOutcome> outcomes(num);
    std::vector<std::thread> racers;
    racers.reserve(num - 1);
    for (std::size_t s = 1; s < num; ++s) {
      racers.emplace_back([&, s] {
        MaybeStallForTest(static_cast<int>(s));
        outcomes[s] =
            RunAssembly(*solvers[s], subspec, mode, target, solved_values,
                        strategies[s].order, stage,
                        /*demand_materialize=*/false);
      });
    }
    MaybeStallForTest(0);
    outcomes[0] =
        RunAssembly(*solvers[0], subspec, mode, target, solved_values,
                    strategies[0].order, stage, /*demand_materialize=*/false);
    // The canonical strategy finished: the race is decided; stop the
    // stragglers cooperatively.
    for (std::size_t s = 1; s < num; ++s) solvers[s]->Interrupt();
    for (std::thread& racer : racers) racer.join();

    for (std::size_t s = 1; s < num; ++s) {
      if (!outcomes[s].finished) {
        ++result.stats.strategies_cancelled;
        continue;
      }
      if (outcomes[s].complete != outcomes[0].complete) {
        NS_WARN << "portfolio lift strategy " << s
                << " disagrees on completeness with the canonical pass ("
                << outcomes[s].complete << " vs " << outcomes[0].complete
                << ") — order-independence violated";
      }
    }
    result.stats.portfolio = true;
    result.stats.strategies = static_cast<int>(num);
    winner = std::move(outcomes[0]);
  }

  const double phase_b_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                phase_b_start)
                                .count();

  result.complete = winner.complete;
  result.candidates_tried = winner.candidates_tried;
  result.solver_stats = winner.solver_stats;
  result.used.reserve(winner.used.size());
  for (const std::size_t idx : winner.used) {
    result.used.push_back(LiftedStatement{prefix->candidates[idx].statement,
                                          stage.residual(idx)});
  }
  result.stats.compile_cache_hits = stage.cache_hits();
  result.stats.compile_cache_misses = stage.cache_misses();
  result.stats.candidates_compiled = stage.compiled();
  result.stats.compile_ms = stage.compile_ms();
  result.stats.assemble_ms = std::max(0.0, phase_b_ms - stage.compile_ms());

  // Assemble the requirement: preferences first (Fig. 4 layout).
  for (const LiftedStatement& lifted : result.used) {
    if (std::holds_alternative<spec::PreferStmt>(lifted.statement)) {
      result.requirement.statements.push_back(lifted.statement);
    }
  }
  for (const LiftedStatement& lifted : result.used) {
    if (!std::holds_alternative<spec::PreferStmt>(lifted.statement)) {
      result.requirement.statements.push_back(lifted.statement);
    }
  }

  NS_INFO << "lift (" << LiftModeName(mode) << ") for " << scope_router
          << ": " << result.used.size() << " statements from "
          << result.candidates_tried << " candidates, complete="
          << (result.complete ? "yes" : "no");
  return result;
}

}  // namespace ns::explain
