#include "explain/lift.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "smt/eval.hpp"
#include "spec/matcher.hpp"
#include "smt/solver.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ns::explain {

using smt::Expr;
using smt::ExprPool;
using util::Error;
using util::ErrorCode;
using util::Result;

const char* LiftModeName(LiftMode mode) noexcept {
  return mode == LiftMode::kExact ? "exact" : "faithful";
}

namespace {

/// A candidate statement with its compiled (pre-projection) constraints.
/// Priority groups order the greedy pass so the output takes the paper's
/// presentation forms: preferences (Fig. 4) first, then traffic-direction
/// forbids for declared destinations (Fig. 4's drops), then announcement-
/// direction forbids (Figs. 2/5), then allows; length breaks ties.
struct RawCandidate {
  spec::Statement statement;
  std::vector<Expr> compiled;
  std::string rendered;
  int priority = 2;
};

/// Pulls "R2 to P2"-style scope out of the conventional map names.
std::optional<std::string> PeerFromMapName(const std::string& router,
                                           const std::string& map) {
  const std::string exp = router + "_to_";
  const std::string imp = router + "_from_";
  if (util::StartsWith(map, exp)) return map.substr(exp.size());
  if (util::StartsWith(map, imp)) return map.substr(imp.size());
  return std::nullopt;
}

spec::PathPattern ConcretePattern(const std::vector<std::string>& nodes) {
  spec::PathPattern pattern;
  pattern.elems.reserve(nodes.size());
  for (const std::string& node : nodes) {
    pattern.elems.push_back(spec::PathElem::Node(node));
  }
  return pattern;
}

}  // namespace

std::string LiftResult::ToString() const {
  std::ostringstream os;
  os << requirement.ToString();
  if (!complete) {
    os << "\n// (incomplete lift: the low-level constraints carry more "
          "information)";
  }
  return os.str();
}

Result<LiftResult> Lifter::Lift(const Subspec& subspec, LiftMode mode,
                                const SubspecOptions& options) {
  if (subspec.selection.complement) {
    return Error(ErrorCode::kUnsupported,
                 "lifting a rest-of-network summary is not supported: its "
                 "scope spans several components (present the low-level "
                 "constraints instead)");
  }
  const std::string& scope_router = subspec.selection.router;

  LiftResult result;
  result.requirement.name = scope_router;
  result.requirement.scope_router = scope_router;
  if (subspec.selection.route_map) {
    result.requirement.scope_peer =
        PeerFromMapName(scope_router, *subspec.selection.route_map);
  }

  if (subspec.IsUnsatisfiable()) {
    // Nothing the component can do satisfies the projected spec; there is
    // no statement set to lift.
    result.complete = false;
    return result;
  }

  if (subspec.IsEmpty()) {
    // "Can do anything" (paper scenario 3): the empty statement set is the
    // complete answer in both modes. Without this exit the faithful-mode
    // search would decorate the answer with statements the configuration
    // happens to satisfy but the specification never demanded.
    result.complete = true;
    return result;
  }

  // Re-derive the protocol-mechanics encoding for the same partially
  // symbolic configuration (same pool => identical variables).
  config::NetworkConfig partial = solved_;
  if (auto holes = Symbolize(partial, subspec.selection); !holes) {
    return holes.error();
  }
  auto destinations = synth::BuildDestinations(topo_, partial, spec_);
  if (!destinations) return destinations.error();
  synth::EnsureOriginated(partial, destinations.value());

  synth::EncoderOptions encoder_options = options.encoder;
  encoder_options.skip_requirements = true;
  encoder_options.only_requirements.clear();
  auto encoded = synth::Encode(pool_, topo_, partial, spec_, encoder_options);
  if (!encoded) return encoded.error();
  const synth::Encoding& encoding = encoded.value();

  std::vector<Expr> definitions;
  for (Expr c : encoding.constraints) {
    const bool is_domain =
        std::find(encoding.domain_constraints.begin(),
                  encoding.domain_constraints.end(),
                  c) != encoding.domain_constraints.end();
    if (!is_domain) definitions.push_back(c);
  }

  // One-time closure of the state-variable definitions: each candidate
  // statement is then projected by a single substitution + simplification
  // instead of a fresh run over the whole seed.
  const std::unordered_map<std::string, Expr> closed =
      CloseAuxDefinitions(pool_, definitions, options.shared_fixpoints);

  // ------------------------------------------------ candidate statements

  const auto dest_of = [&](const synth::Candidate& c) -> const synth::Destination& {
    return encoding.destinations[static_cast<std::size_t>(c.dest_index)];
  };

  const auto compile_forbid = [&](const spec::PathPattern& pattern) {
    std::vector<Expr> compiled;
    for (const synth::Candidate& candidate : encoding.candidates) {
      if (!synth::PatternHitsCandidate(spec_, pattern, candidate,
                                       dest_of(candidate))) {
        continue;
      }
      compiled.push_back(
          pool_.Not(encoding.alive_vars.at(candidate.Label(dest_of(candidate)))));
    }
    return compiled;
  };

  std::vector<RawCandidate> pool_candidates;
  const auto add_forbid = [&](spec::PathPattern pattern, int priority) {
    auto compiled = compile_forbid(pattern);
    if (compiled.empty()) return;  // pattern matches nothing: vacuous
    spec::Statement stmt{spec::ForbidStmt{std::move(pattern)}};
    std::string rendered = spec::ToString(stmt);
    pool_candidates.push_back(RawCandidate{std::move(stmt), std::move(compiled),
                                           std::move(rendered), priority});
  };
  const auto add_allow = [&](spec::PathPattern pattern) {
    std::vector<Expr> alive_options;
    for (const synth::Candidate& candidate : encoding.candidates) {
      if (synth::PatternHitsCandidate(spec_, pattern, candidate,
                                      dest_of(candidate))) {
        alive_options.push_back(
            encoding.alive_vars.at(candidate.Label(dest_of(candidate))));
      }
    }
    if (alive_options.empty()) return;
    spec::Statement stmt{spec::AllowStmt{std::move(pattern)}};
    std::string rendered = spec::ToString(stmt);
    pool_candidates.push_back(RawCandidate{std::move(stmt),
                                           {pool_.Or(alive_options)},
                                           std::move(rendered), 3});
  };

  // (a) Deny-everything across one adjacency: !(R->N) and !(N->R).
  const net::RouterId scope_id = topo_.FindRouter(scope_router);
  if (scope_id == net::kInvalidRouter) {
    return Error(ErrorCode::kNotFound, "unknown router " + scope_router);
  }
  for (const net::RouterId neighbor : topo_.Neighbors(scope_id)) {
    const std::string& peer = topo_.NameOf(neighbor);
    add_forbid(ConcretePattern({scope_router, peer}), 2);
    add_forbid(ConcretePattern({peer, scope_router}), 2);
  }

  // (b) Per-path forbids for every candidate path that traverses the scope
  // router: announcement form always; traffic form (Fig. 4 style) when the
  // destination is declared.
  std::set<std::vector<std::string>> seen_vias;
  for (const synth::Candidate& candidate : encoding.candidates) {
    const bool through_scope =
        std::find(candidate.via.begin(), candidate.via.end(), scope_router) !=
        candidate.via.end();
    if (!through_scope) continue;
    if (seen_vias.insert(candidate.via).second) {
      add_forbid(ConcretePattern(candidate.via), 2);
      add_allow(ConcretePattern(candidate.via));
    }
    const synth::Destination& dest = dest_of(candidate);
    if (dest.declared) {
      // reverse(via) ++ [..., destname]
      spec::PathPattern pattern =
          ConcretePattern({candidate.via.rbegin(), candidate.via.rend()});
      pattern.elems.push_back(spec::PathElem::Wildcard());
      pattern.elems.push_back(spec::PathElem::Node(dest.name));
      add_allow(pattern);
      add_forbid(std::move(pattern), 1);
    }
  }

  // (c) Local preferences: global `>>` statements truncated at the scope
  // router (Fig. 4's `preference { (R3->...) >> (R3->...) }`).
  for (const spec::Requirement& req : spec_.requirements) {
    if (req.IsLocalized()) continue;
    for (const spec::Statement& stmt : req.statements) {
      const auto* prefer = std::get_if<spec::PreferStmt>(&stmt);
      if (prefer == nullptr) continue;
      spec::PreferStmt local;
      bool ok = true;
      for (const spec::PathPattern& pattern : prefer->ranking) {
        spec::PathPattern truncated;
        bool found = false;
        for (const spec::PathElem& elem : pattern.elems) {
          if (!found && !(elem.kind == spec::PathElem::Kind::kNode &&
                          elem.name == scope_router)) {
            continue;
          }
          found = true;
          truncated.elems.push_back(elem);
        }
        if (!found || truncated.elems.size() < 2) {
          ok = false;
          break;
        }
        local.ranking.push_back(std::move(truncated));
      }
      if (!ok) continue;

      // Compile: pairwise decision ordering between candidates realizing
      // differently ranked truncated patterns (matched at the scope
      // router, where the routes are compared).
      std::vector<std::vector<const synth::Candidate*>> classes(
          local.ranking.size());
      for (const synth::Candidate& candidate : encoding.candidates) {
        if (candidate.via.back() != scope_router) continue;
        const synth::Destination& dest = dest_of(candidate);
        const auto traffic = candidate.TrafficSeq(dest);
        for (std::size_t i = 0; i < local.ranking.size(); ++i) {
          if (spec::MatchesExactly(local.ranking[i], traffic)) {
            classes[i].push_back(&candidate);
            break;
          }
        }
      }
      std::vector<Expr> compiled;
      // "Prefer p1 over p2" presumes the ranked paths are available:
      // every matched ranked candidate must be alive...
      for (const auto& cls : classes) {
        for (const synth::Candidate* c : cls) {
          compiled.push_back(encoding.alive_vars.at(c->Label(dest_of(*c))));
        }
      }
      // ...and the decision process must order them.
      for (std::size_t hi = 0; hi < classes.size(); ++hi) {
        for (std::size_t lo = hi + 1; lo < classes.size(); ++lo) {
          for (const synth::Candidate* a : classes[hi]) {
            for (const synth::Candidate* b : classes[lo]) {
              const std::string la = a->Label(dest_of(*a));
              const std::string lb = b->Label(dest_of(*b));
              const Expr alive_a = encoding.alive_vars.at(la);
              const Expr alive_b = encoding.alive_vars.at(lb);
              const Expr lp_a = encoding.lp_vars.at(la);
              const Expr lp_b = encoding.lp_vars.at(lb);
              const Expr med_a = encoding.med_vars.at(la);
              const Expr med_b = encoding.med_vars.at(lb);
              const Expr len_a = encoding.len_vars.at(la);
              const Expr len_b = encoding.len_vars.at(lb);
              const Expr lex = pool_.Bool(a->via < b->via);
              const Expr med_tie = pool_.Or(
                  {pool_.Lt(med_a, med_b),
                   pool_.And({pool_.Eq(med_a, med_b), lex})});
              const Expr len_tie = pool_.Or(
                  {pool_.Lt(len_a, len_b),
                   pool_.And({pool_.Eq(len_a, len_b), med_tie})});
              const Expr better =
                  pool_.Or({pool_.Gt(lp_a, lp_b),
                            pool_.And({pool_.Eq(lp_a, lp_b), len_tie})});
              compiled.push_back(
                  pool_.Implies(pool_.And({alive_a, alive_b}), better));
            }
          }
        }
      }
      if (compiled.empty()) continue;
      spec::Statement local_stmt{std::move(local)};
      std::string rendered = spec::ToString(local_stmt);
      pool_candidates.push_back(RawCandidate{std::move(local_stmt),
                                             std::move(compiled),
                                             std::move(rendered), 0});
    }
  }

  // Priority groups first, shortest statements within a group ("!(R1->P1)"
  // before an enumeration of paths).
  std::stable_sort(pool_candidates.begin(), pool_candidates.end(),
                   [](const RawCandidate& a, const RawCandidate& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.rendered.size() < b.rendered.size();
                   });

  // --------------------------------------------------- greedy assembly
  //
  // Three sessions over one shared solver, one per reusable prefix:
  //   dt: domain ∧ target    — exactness / necessity queries
  //   da: domain ∧ accepted  — redundancy / completeness (grows with acc)
  //   d:  domain only        — sufficiency / pruning queries
  // Each prefix is asserted (and, on the Z3 backends, translated) once;
  // every candidate query then runs against the warm stack instead of
  // replaying the conjunction from scratch. The sessions never create
  // pool nodes, so the projection pipeline below sees the exact same pool
  // state — and produces byte-identical residuals — under every backend.
  smt::Solver solver(options.solver);
  const auto dt = solver.NewSession();
  const auto da = solver.NewSession();
  const auto d = solver.NewSession();
  for (Expr c : subspec.domains) {
    dt->Assert(c);
    da->Assert(c);
    d->Assert(c);
  }
  for (Expr c : subspec.constraints) dt->Assert(c);
  const Expr target = subspec.constraints.empty()
                          ? pool_.True()
                          : pool_.And(subspec.constraints);

  // Faithful mode evaluates candidate residuals on the solved values of
  // the symbolized fields.
  smt::Assignment solved_values;
  if (mode == LiftMode::kFaithful) {
    for (const config::HoleInfo& info : subspec.holes) {
      auto value = config::ReadSlotValue(solved_, info);
      if (!value) return value.error();
      solved_values[info.name] = subspec.values.EncodeValue(value.value());
    }
  }

  for (const RawCandidate& candidate : pool_candidates) {
    ++result.candidates_tried;

    // Project the candidate onto the explanation variables via the closed
    // definitions.
    std::vector<Expr> substituted;
    substituted.reserve(candidate.compiled.size());
    for (Expr c : candidate.compiled) {
      substituted.push_back(smt::Substitute(pool_, c, closed));
    }
    simplify::EngineOptions engine_options;
    engine_options.shared_fixpoints = options.shared_fixpoints;
    simplify::Engine engine(pool_, engine_options);
    std::vector<Expr> residual =
        engine.SimplifyConstraints(std::move(substituted));
    const Expr meaning = residual.empty() ? pool_.True() : pool_.And(residual);
    if (meaning.IsTrue()) continue;  // vacuous here
    if (meaning.IsFalse()) continue;  // unenforceable by these fields

    // Soundness per mode.
    if (mode == LiftMode::kExact) {
      if (!dt->Implies(meaning)) continue;
    } else {
      // Faithful: the statement must describe the solved configuration...
      const auto holds = smt::Eval(meaning, solved_values);
      if (!holds.ok() || holds.value() == 0) continue;
      // ...and be on-topic: either sufficient for the subspec by itself
      // (possibly stronger than necessary — Fig. 2's "drop ALL routes"),
      // or a consequence of it (a necessary fragment).
      const std::span<const Expr> meaning_span(&meaning, 1);
      const bool sufficient = d->Implies(meaning_span, target);
      const bool necessary = dt->Implies(meaning);
      if (!sufficient && !necessary) continue;
    }

    // Skip statements already implied by what we have. The accumulated
    // conjunction lives on the `da` stack: accepting a statement asserts
    // it once instead of rebuilding (and re-asserting) the conjunction
    // for every candidate tried after it.
    if (da->Implies(meaning)) continue;

    da->Assert(meaning);
    result.used.push_back(LiftedStatement{candidate.statement, residual});

    if (da->Implies(target)) {
      result.complete = true;
      break;
    }
  }

  if (!result.complete) {
    result.complete = da->Implies(target);
  }

  // Prune redundant statements (longest first) while completeness holds.
  // The rest-of-set conjunction is passed as flattened query-local
  // conjuncts over the domain-only prefix — no pool nodes are built.
  if (result.complete && result.used.size() > 1) {
    for (std::size_t i = result.used.size(); i-- > 0;) {
      std::vector<Expr> rest;
      for (std::size_t j = 0; j < result.used.size(); ++j) {
        if (j == i) continue;
        const auto& residual = result.used[j].residual;
        rest.insert(rest.end(), residual.begin(), residual.end());
      }
      if (d->Implies(rest, target)) {
        result.used.erase(result.used.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  result.solver_stats = solver.stats();

  // Assemble the requirement: preferences first (Fig. 4 layout).
  for (const LiftedStatement& lifted : result.used) {
    if (std::holds_alternative<spec::PreferStmt>(lifted.statement)) {
      result.requirement.statements.push_back(lifted.statement);
    }
  }
  for (const LiftedStatement& lifted : result.used) {
    if (!std::holds_alternative<spec::PreferStmt>(lifted.statement)) {
      result.requirement.statements.push_back(lifted.statement);
    }
  }

  NS_INFO << "lift (" << LiftModeName(mode) << ") for " << scope_router
          << ": " << result.used.size() << " statements from "
          << result.candidates_tried << " candidates, complete="
          << (result.complete ? "yes" : "no");
  return result;
}

}  // namespace ns::explain
