#include "explain/batch.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "explain/arena.hpp"

namespace ns::explain {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<BatchAnswer> AnswerRequest(const net::Topology& topo,
                                  const spec::Spec& spec,
                                  const config::NetworkConfig& solved,
                                  const BatchRequest& request) {
  return AnswerRequest(topo, spec, solved, request, nullptr);
}

Result<BatchAnswer> AnswerRequest(const net::Topology& topo,
                                  const spec::Spec& spec,
                                  const config::NetworkConfig& solved,
                                  const BatchRequest& request,
                                  const std::shared_ptr<ArenaRegistry>& registry) {
  // Fresh Session (fresh ExprPool + Engine) per request; see batch.hpp for
  // why this is both the thread-safety story and the determinism story.
  // The registry, if any, only shares immutable frozen arenas.
  try {
    Session session(topo, spec, solved);
    if (registry != nullptr) session.UseArenaRegistry(registry);
    session.SetLiftOptions(request.lift_threads, request.lift_portfolio);
    auto explanation = session.Ask(request.selection, request.mode,
                                   request.requirements,
                                   request.compute_baselines, request.solver);
    if (!explanation) return explanation.error();

    BatchAnswer answer;
    answer.report = explanation.value().Report();
    answer.subspec_text = explanation.value().SubspecText();
    answer.metrics = explanation.value().subspec.metrics;
    answer.stats = explanation.value().stats;
    answer.empty = explanation.value().subspec.IsEmpty();
    answer.unsat = explanation.value().subspec.IsUnsatisfiable();
    return answer;
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what());
  }
}

BatchOutcome BatchExplain(const net::Topology& topo, const spec::Spec& spec,
                          const config::NetworkConfig& solved,
                          const std::vector<BatchRequest>& requests,
                          const BatchOptions& options) {
  BatchOutcome outcome;
  if (requests.empty()) return outcome;  // threads_used = 0: no worker ran
  outcome.items.reserve(requests.size());
  for (const BatchRequest& request : requests) {
    outcome.items.push_back(BatchItem{request});
  }

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > static_cast<int>(requests.size())) {
    threads = static_cast<int>(requests.size());
  }
  if (threads < 1) threads = 1;
  outcome.threads_used = threads;

  const auto batch_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};

  auto worker = [&](int worker_id) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= outcome.items.size()) return;
      BatchItem& item = outcome.items[i];
      item.worker = worker_id;
      const auto start = std::chrono::steady_clock::now();
      item.result =
          AnswerRequest(topo, spec, solved, item.request, options.registry);
      item.wall_ms = MsSince(start);
    }
  };

  if (threads == 1) {
    worker(0);  // in-caller: keeps single-threaded runs trivially debuggable
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& t : pool) t.join();
  }

  outcome.wall_ms = MsSince(batch_start);
  return outcome;
}

std::vector<BatchRequest> RequestsForAllRouters(
    const config::NetworkConfig& solved, LiftMode mode,
    std::vector<std::string> requirements) {
  std::vector<BatchRequest> requests;
  // NetworkConfig::routers is an ordered map — name order, deterministic.
  for (const auto& [router, cfg] : solved.routers) {
    if (cfg.route_maps.empty()) continue;  // nothing to ask about
    BatchRequest request;
    request.selection = Selection::Router(router);
    request.mode = mode;
    request.requirements = requirements;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace ns::explain
