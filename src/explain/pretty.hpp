// Pretty-printing of residual constraints: integer-coded values are
// rendered back in configuration terms, so the low-level subspecification
// reads like the paper's Fig. 6c —
//
//   (Var_Attr@R1_to_P1.10 = next-hop ∧ Var_Val_nexthop@R1_to_P1.10 =
//    10.2.0.2 ∧ Var_Action@R1_to_P1.10 = deny)
//
// instead of `(= Var_Val_nexthop@R1_to_P1.10 167903234)`.
#pragma once

#include <string>
#include <vector>

#include "config/holes.hpp"
#include "smt/expr.hpp"
#include "synth/vartable.hpp"

namespace ns::explain {

/// Renders `e` with constants appearing next to a known explanation
/// variable decoded through the value table (prefix ids, packed
/// addresses/communities, action/attribute codes). Unknown contexts fall
/// back to plain integers.
std::string PrettyConstraint(smt::Expr e,
                             const std::vector<config::HoleInfo>& holes,
                             const synth::ValueTable& values);

}  // namespace ns::explain
