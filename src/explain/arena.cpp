#include "explain/arena.hpp"

#include <utility>

#include "util/logging.hpp"

namespace ns::explain {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

void AppendField(std::string& key, const std::string& field) {
  key += std::to_string(field.size());
  key += ':';
  key += field;
}

/// Replays the deterministic prefix on a fresh root pool and freezes it.
Result<std::shared_ptr<const FrozenQuestion>> BuildQuestion(
    const net::Topology& topo, const spec::Spec& spec,
    const config::NetworkConfig& solved, const Selection& selection,
    const std::vector<std::string>& requirements) {
  Explainer explainer(topo, spec, solved);
  SubspecOptions options;
  options.requirements = requirements;
  auto subspec = explainer.Explain(selection, options);
  if (!subspec) return subspec.error();

  auto question = std::make_shared<FrozenQuestion>();
  question->subspec = std::move(subspec).value();

  // Replay the lift's deterministic front half into the same root pool
  // before freezing, so candidate expressions get stable arena ids and
  // warm lifts start straight at the compile stage. Skipped when the
  // lifter answers without a search (empty/unsatisfiable subspecs) or
  // refuses the question (complement scopes) — exactly the cases the
  // fresh path never builds a prefix for, keeping the node-creation
  // sequence identical. `shared_fixpoints` stays null here: the memo is
  // keyed by arena node and the arena does not exist yet.
  if (!selection.complement && !question->subspec.IsEmpty() &&
      !question->subspec.IsUnsatisfiable()) {
    auto prefix = BuildLiftPrefix(explainer.pool(), topo, spec, solved,
                                  question->subspec, options);
    if (!prefix) return prefix.error();
    question->lift_prefix = std::move(prefix).value();
    question->compile_cache = std::make_shared<CompileCache>();
  }

  question->arena = explainer.pool().Freeze();
  question->fixpoints =
      std::make_shared<simplify::FixpointCache>(question->arena->NumNodes());
  NS_INFO << "froze arena for " << selection.ToString() << ": "
          << question->arena->NumNodes() << " nodes, "
          << question->arena->NumSymbols() << " symbols";
  return Result<std::shared_ptr<const FrozenQuestion>>(std::move(question));
}

}  // namespace

std::string ArenaRegistry::KeyOf(
    const Selection& selection,
    const std::vector<std::string>& requirements) {
  // Length-prefixed fields (same idea as the serve cache key): unambiguous
  // whatever characters router/map/requirement names contain. Requirement
  // order is part of the key — the encoder projects in the given order.
  std::string key;
  AppendField(key, selection.router);
  AppendField(key, selection.route_map ? *selection.route_map : "\x01");
  AppendField(key, selection.seq ? std::to_string(*selection.seq) : "\x01");
  AppendField(key, selection.slot ? *selection.slot : "\x01");
  AppendField(key, selection.complement ? "1" : "0");
  for (const std::string& requirement : requirements) {
    AppendField(key, requirement);
  }
  return key;
}

Result<std::shared_ptr<const FrozenQuestion>> ArenaRegistry::GetOrBuild(
    const net::Topology& topo, const spec::Spec& spec,
    const config::NetworkConfig& solved, const Selection& selection,
    const std::vector<std::string>& requirements) {
  const std::string key = KeyOf(selection, requirements);

  std::shared_ptr<Slot> slot;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      builder = true;
      ++builds_;
    } else {
      slot = it->second;
      ++reuses_;
    }
  }

  if (builder) {
    auto built = BuildQuestion(topo, spec, solved, selection, requirements);
    const bool failed = !built.ok();
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slot->result = std::move(built);
      slot->ready = true;
    }
    slot->cv.notify_all();
    if (failed) {
      // Don't pin memory for keys that can't build (each retry fails
      // identically anyway): drop the slot so the map holds only arenas.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = slots_.find(key);
      if (it != slots_.end() && it->second == slot) slots_.erase(it);
      --builds_;
    }
    std::lock_guard<std::mutex> lock(slot->mu);
    return slot->result;
  }

  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&] { return slot->ready; });
  return slot->result;
}

ArenaRegistryStats ArenaRegistry::stats() const {
  ArenaRegistryStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  stats.builds = builds_;
  stats.reuses = reuses_;
  for (const auto& [key, slot] : slots_) {
    // Slots in the map are either ready successes or still building;
    // sample only the landed ones (ready is guarded by the slot mutex).
    std::lock_guard<std::mutex> slot_lock(slot->mu);
    if (!slot->ready || !slot->result.ok()) continue;
    const FrozenQuestion& question = *slot->result.value();
    ++stats.entries;
    stats.frozen_nodes += question.arena->NumNodes();
    stats.frozen_symbols += question.arena->NumSymbols();
    stats.memo_entries += question.fixpoints->size();
    stats.memo_hits += question.fixpoints->hits();
    stats.memo_misses += question.fixpoints->misses();
    if (question.compile_cache != nullptr) {
      const CompileCacheStats compile = question.compile_cache->stats();
      stats.compile_entries += compile.entries;
      stats.compile_hits += compile.hits;
      stats.compile_misses += compile.misses;
    }
  }
  return stats;
}

}  // namespace ns::explain
