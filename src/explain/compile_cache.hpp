// Memoized candidate compilation for the lift search (DESIGN.md §12).
//
// Per-candidate compilation — substitute through the closed definitions,
// then simplify to the residual — dominates end-to-end lift time
// (BENCH_LIFT.json's lift_total columns). Once a question's prefix is
// frozen into an ExprArena (arena.hpp), that work becomes cacheable and
// parallelizable: every candidate's inputs (its compiled constraints and
// the closure) are frozen nodes with stable arena ids, so a residual can
// be compiled once in a scratch overlay pool, snapshotted in a
// pool-independent form, and replayed into any later overlay of the same
// arena — across exact/faithful modes, across the redundancy-prune pass,
// and across repeated lifts of the scenario via ArenaRegistry.
//
// The snapshot (FlatResidual) references frozen nodes by arena id and
// copies only the overlay structure. Materializing replays it through the
// ordinary ExprPool constructors, so the rebuilt expressions are interned
// and canonically oriented in the target pool: pool state after
// materializing candidates 0..i in order is a deterministic function of
// (arena, candidates, i) — independent of which worker compiled what and
// of the thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"
#include "spec/ast.hpp"

namespace ns::explain {

/// A candidate statement with its compiled (pre-projection) constraints.
/// Priority groups order the greedy pass so the output takes the paper's
/// presentation forms: preferences (Fig. 4) first, then traffic-direction
/// forbids for declared destinations (Fig. 4's drops), then announcement-
/// direction forbids (Figs. 2/5), then allows; length breaks ties.
struct LiftCandidate {
  spec::Statement statement;
  std::vector<smt::Expr> compiled;
  std::string rendered;
  int priority = 2;
};

/// The deterministic front half of a lift over one question: the closed
/// st.* definitions and the generated + sorted candidate statements.
/// Built once per question (inline on the fresh path; replayed into the
/// frozen arena by ArenaRegistry so every warm lift reuses it and the
/// compiled expressions carry stable arena ids).
struct LiftPrefix {
  std::unordered_map<std::string, smt::Expr> closed;
  std::vector<LiftCandidate> candidates;
};

/// A pool-independent snapshot of one compiled candidate residual.
/// Frozen nodes (id < the arena's NumNodes()) appear as references;
/// overlay structure is copied instruction by instruction in child-first
/// order.
struct FlatResidual {
  struct Instr {
    smt::Op op = smt::Op::kBoolConst;
    smt::Sort sort = smt::Sort::kBool;
    /// kBoolConst/kIntConst payload — or, when `ref`, the arena node id.
    std::int64_t value = 0;
    std::string name;  ///< kVar only
    bool ref = false;  ///< true: reference to frozen node `value`
    std::vector<std::uint32_t> args;  ///< indices of earlier instrs
  };
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> roots;  ///< one per residual constraint
};

/// Flattens `residual` into a pool-independent snapshot: nodes with
/// id < frozen_limit become arena references, everything else is copied
/// structurally.
FlatResidual FlattenResidual(std::span<const smt::Expr> residual,
                             std::size_t frozen_limit);

/// Replays a snapshot into `pool` (an overlay of the arena the snapshot
/// was taken against) through the ordinary constructors, so the rebuilt
/// expressions are interned and canonically oriented for that pool.
std::vector<smt::Expr> MaterializeResidual(smt::ExprPool& pool,
                                           const FlatResidual& flat);

struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

/// Thread-safe memo of compiled candidate residuals for one frozen
/// question. Keyed by the candidate's compiled root ids — stable arena
/// ids, so the key is identical across sessions, modes, threads, and
/// repeated lifts of the scenario. First insert wins; all entries are
/// immutable snapshots behind shared_ptr, so lookups can outlive the
/// overlay that compiled them.
class CompileCache {
 public:
  using Key = std::vector<std::uint64_t>;

  /// The cache key of a candidate: its compiled constraints' arena ids.
  /// Requires every compiled root to be a frozen node (the prefix was
  /// built into the arena).
  static Key KeyFor(const std::vector<smt::Expr>& compiled);

  /// The cached snapshot, or nullptr.
  std::shared_ptr<const FlatResidual> Lookup(const Key& key) const;

  /// Inserts (first writer wins) and returns the entry that ended up in
  /// the cache — callers continue with the returned snapshot so racing
  /// inserters converge on one object.
  std::shared_ptr<const FlatResidual> Insert(
      const Key& key, std::shared_ptr<const FlatResidual> flat);

  CompileCacheStats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (std::uint64_t word : key) {
        h ^= word;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const FlatResidual>, KeyHash>
      entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ns::explain
