// Scenario-level registry of frozen expression arenas (DESIGN.md §11).
//
// A loaded scenario answers the same questions over and over (serve cache
// misses on new selections, batch fans out across routers, fuzz drivers
// re-ask). The deterministic prefix of every answer — symbolize → encode →
// simplify → eliminate, i.e. everything before the lift search — depends
// only on (scenario, selection, requirements). The registry replays that
// prefix exactly once per key on a fresh root pool, freezes the pool into
// an immutable smt::ExprArena, and stores the resulting Subspec (whose
// Exprs point into the arena) plus a shared simplify::FixpointCache.
// Subsequent requests attach a thin copy-on-write overlay pool and run
// only the lift suffix.
//
// Determinism contract: the frozen prefix is the *same node-creation
// sequence* a fresh pool would have produced, so overlay node ids continue
// exactly where the fresh path's would — Eq/Add/Mul orientation, rendered
// constraints, and lifted reports are byte-identical to the fresh-pool
// path. Requests that compute baselines bypass the registry entirely
// (baseline engines create pool nodes *before* the main simplify, changing
// the creation order), which callers enforce by falling back to the fresh
// path; see Session::Ask.
//
// One registry per loaded scenario: keys do not include the scenario
// itself. Thread-safe; concurrent requests for one key build it once
// (first builder wins, the rest wait). Failed builds are not cached.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "explain/lift.hpp"
#include "explain/subspec.hpp"
#include "simplify/engine.hpp"
#include "util/status.hpp"

namespace ns::explain {

/// One question's frozen prefix: the arena holding the replayed seed
/// encoding, the Subspec computed over it, and the shared clean-node memo
/// for simplify runs on overlays of this arena. Since PR 9 the lift's own
/// deterministic front half rides along: the candidate prefix (closed
/// definitions + sorted candidates, all at stable arena ids) and the
/// residual compile cache shared by every lift of this question
/// (DESIGN.md §12). `lift_prefix` is absent for questions the lifter
/// answers without a search (empty or unsatisfiable subspecs).
struct FrozenQuestion {
  std::shared_ptr<const smt::ExprArena> arena;
  Subspec subspec;  ///< constraints/domains point into *arena
  std::shared_ptr<simplify::FixpointCache> fixpoints;
  std::optional<LiftPrefix> lift_prefix;  ///< candidates point into *arena
  std::shared_ptr<CompileCache> compile_cache;
};

/// Aggregate registry counters (serve stats endpoint, batch summaries).
/// These are scheduling-dependent — which request builds, who hits the
/// shared memo — and therefore deliberately NOT part of any per-answer
/// output that determinism tests compare.
struct ArenaRegistryStats {
  std::uint64_t builds = 0;  ///< questions whose prefix was replayed+frozen
  std::uint64_t reuses = 0;  ///< requests served from an existing arena
  std::uint64_t entries = 0;
  std::uint64_t frozen_nodes = 0;    ///< summed over entries
  std::uint64_t frozen_symbols = 0;  ///< summed over entries
  std::uint64_t memo_entries = 0;    ///< clean nodes published, summed
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t compile_entries = 0;  ///< memoized lift residuals, summed
  std::uint64_t compile_hits = 0;
  std::uint64_t compile_misses = 0;

  /// Shared-memo hit rate in [0,1]; 0 when nothing was looked up.
  double MemoHitRate() const noexcept {
    const std::uint64_t total = memo_hits + memo_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(total);
  }
};

class ArenaRegistry {
 public:
  ArenaRegistry() = default;
  ArenaRegistry(const ArenaRegistry&) = delete;
  ArenaRegistry& operator=(const ArenaRegistry&) = delete;

  /// Returns the frozen prefix for (selection, requirements), replaying
  /// and freezing it first if this is the key's first request. Concurrent
  /// first requests build once; the others block until the build lands.
  /// Build failures are returned verbatim (byte-identical to the fresh
  /// path's error) and are not cached.
  util::Result<std::shared_ptr<const FrozenQuestion>> GetOrBuild(
      const net::Topology& topo, const spec::Spec& spec,
      const config::NetworkConfig& solved, const Selection& selection,
      const std::vector<std::string>& requirements);

  ArenaRegistryStats stats() const;

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;  // guarded by mu
    util::Result<std::shared_ptr<const FrozenQuestion>> result =
        util::Error(util::ErrorCode::kInternal, "arena build pending");
  };

  static std::string KeyOf(const Selection& selection,
                           const std::vector<std::string>& requirements);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
  std::uint64_t builds_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace ns::explain
