// Session-level API: answers the administrator's questions about a
// synthesized configuration (the dialogue of the paper's Fig. 1d) and
// renders the full explanation — seed sizes, simplified constraints, the
// lifted subspecification — as a readable report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "explain/lift.hpp"
#include "explain/subspec.hpp"

namespace ns::explain {

class ArenaRegistry;

/// Frozen-arena counters for one answered question. Only fields that are
/// a pure function of (scenario, request) live here, so per-answer stats
/// stay deterministic wherever they are compared (batch JSON rows, the
/// 1-vs-N-thread determinism tests). Scheduling-dependent aggregates —
/// which request built an arena, shared-memo hit rates — live on the
/// registry (ArenaRegistryStats) instead.
struct ArenaAnswerStats {
  bool used = false;  ///< answered via a frozen arena + overlay pool
  std::uint64_t frozen_nodes = 0;    ///< nodes in the question's arena
  std::uint64_t frozen_symbols = 0;  ///< symbols in the question's arena
  std::uint64_t overlay_nodes = 0;   ///< request-local nodes allocated
};

/// Solver-layer counters for one answered question. Deliberately NOT part
/// of Report() — the report text is byte-pinned by tests/golden/ and must
/// stay independent of the backend; stats travel separately (CLI --stats,
/// batch JSON, the serve stats endpoint).
struct ExplainStats {
  smt::SolverBackend backend = smt::SolverOptions{}.backend;
  smt::SolverStats lift;  ///< lift-search query counters
  ArenaAnswerStats arena;
  LiftStats pipeline;  ///< two-phase lift pipeline counters (DESIGN.md §12)

  /// One-line "solver: backend=... queries=..." summary; an "arena: ..."
  /// line is appended when the answer used a frozen arena, and a
  /// "lift: ..." line when the two-phase pipeline did any work.
  std::string ToString() const;
};

/// One answered question.
struct Explanation {
  Selection selection;
  std::vector<std::string> requirements;  ///< projection (empty = all)
  Subspec subspec;
  LiftResult lifted;
  LiftMode mode = LiftMode::kExact;
  ExplainStats stats;

  /// Full report: pipeline metrics, low-level constraints, lifted DSL.
  std::string Report() const;
  /// Just the DSL block (Figs. 2/4/5 form).
  std::string SubspecText() const { return lifted.ToString(); }
};

/// One row of a per-router survey.
struct SurveyRow {
  std::string router;
  SubspecMetrics metrics;
  bool unconstrained = false;  ///< empty subspecification

  std::string ToString() const;
};

/// Binds a solved configuration to its topology/spec and answers
/// questions about it.
class Session {
 public:
  Session(const net::Topology& topo, const spec::Spec& spec,
          config::NetworkConfig solved)
      : topo_(topo),
        spec_(spec),
        explainer_(topo, spec, std::move(solved)) {}

  /// Seed answers from a shared frozen-arena registry (DESIGN.md §11):
  /// Ask attaches a copy-on-write overlay pool to the question's frozen
  /// prefix and runs only the lift suffix. Answers are byte-identical to
  /// the fresh-pool path; baseline-computing asks fall back to it
  /// automatically (baselines change the node-creation order). The
  /// registry must belong to this Session's scenario.
  void UseArenaRegistry(std::shared_ptr<ArenaRegistry> registry);

  /// Configures the lift's two-phase pipeline (DESIGN.md §12) for
  /// subsequent Asks: `threads` compile workers (effective only on the
  /// arena-seeded path) and the portfolio race of assembly strategies.
  /// Answers are byte-identical across every setting.
  void SetLiftOptions(int threads, bool portfolio) {
    lift_threads_ = threads;
    lift_portfolio_ = portfolio;
  }

  /// "If I want to make changes to <selection>, what should I keep in
  /// mind?" — optionally restricted to some requirements (scenario 3).
  util::Result<Explanation> Ask(const Selection& selection,
                                LiftMode mode = LiftMode::kExact,
                                std::vector<std::string> requirements = {},
                                bool compute_baselines = false,
                                const smt::SolverOptions& solver = {});

  /// Scenario 3's triage: for every router that carries routing policy,
  /// how constrained is it by the given requirements? Routers with an
  /// empty subspecification can be skipped during review.
  util::Result<std::vector<SurveyRow>> Survey(
      std::vector<std::string> requirements = {});

  const config::NetworkConfig& solved() const noexcept {
    return explainer_.solved();
  }

 private:
  util::Result<Explanation> AskViaArena(const Selection& selection,
                                        LiftMode mode,
                                        std::vector<std::string> requirements,
                                        const smt::SolverOptions& solver);

  const net::Topology& topo_;
  const spec::Spec& spec_;
  Explainer explainer_;
  std::shared_ptr<ArenaRegistry> registry_;
  int lift_threads_ = 1;
  bool lift_portfolio_ = false;
  /// Overlay pools backing arena-seeded answers. Retained so returned
  /// Explanations (which hold Exprs into their overlay) stay valid for
  /// the Session's lifetime — the same contract as the fresh pool.
  std::vector<std::unique_ptr<smt::ExprPool>> overlays_;
};

/// Renders pipeline metrics as an aligned table fragment.
std::string FormatMetrics(const SubspecMetrics& metrics);

/// Renders survey rows as an aligned table (scenario 3's "which routers
/// matter for this requirement?" view).
std::string FormatSurvey(const std::vector<SurveyRow>& rows);

}  // namespace ns::explain
