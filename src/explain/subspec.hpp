// The explanation pipeline (paper §3, Fig. 6):
//
//   solved config --Symbolize--> partially symbolic config
//     --Encode (same encoder as synthesis)--> seed specification
//     --15 rewrite rules to fixpoint-->        simplified constraints
//     --auxiliary-variable elimination-->      residual constraints over the
//                                              Var_* explanation variables
//                                              (the low-level subspecification,
//                                               Fig. 6c)
//
// Auxiliary-variable elimination is sound existential projection: every
// `st.*` route-state variable has exactly one defining equation, so
// substituting the definition and dropping it preserves the constraint on
// the explanation variables.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "explain/symbolize.hpp"
#include "net/topology.hpp"
#include "simplify/engine.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "spec/ast.hpp"
#include "synth/encoder.hpp"
#include "util/status.hpp"

namespace ns::explain {

struct SubspecOptions {
  /// Restrict the question to these requirement blocks (scenario 3's
  /// per-requirement questions). Empty = the whole specification.
  std::vector<std::string> requirements;
  synth::EncoderOptions encoder;
  /// Also compute the generic-baseline metrics (E8): Z3 `simplify` on the
  /// monolithic seed, and the rule engine without the conjunction-context
  /// rules (no partial evaluation across constraints).
  bool compute_baselines = false;
  /// Backend + budget for every solver query the pipeline discharges
  /// (lift search, baseline metrics). All backends are verdict-identical;
  /// the default (boolean fast path over incremental Z3) is the fast one.
  smt::SolverOptions solver;
  /// Shared clean-node memo for the frozen arena the working pool
  /// overlays, if any (non-owning; see simplify::FixpointCache). Set by
  /// the arena-seeded answer path so lift-time simplification skips
  /// re-traversing frozen subtrees other requests already settled.
  simplify::FixpointCache* shared_fixpoints = nullptr;
  /// Worker threads for the lift's candidate-compile stage (DESIGN.md
  /// §12). Only effective on the arena-seeded path, where candidates
  /// compile in scratch overlay pools; >1 prefetches residuals in
  /// parallel. Answers are byte-identical across thread counts.
  int lift_threads = 1;
  /// Race the portfolio of greedy-assembly strategies (candidate
  /// orderings × solver backends) after compiling all candidates. The
  /// canonical strategy's answer is always the one returned (deterministic
  /// winner); the others serve as a live cross-check and are cancelled
  /// cooperatively once it finishes.
  bool lift_portfolio = false;
};

/// Size/effort measurements across the pipeline stages.
struct SubspecMetrics {
  std::size_t seed_constraints = 0;
  std::size_t seed_size = 0;  ///< total tree size (paper's size notion)
  std::size_t simplified_constraints = 0;
  std::size_t simplified_size = 0;
  std::size_t residual_constraints = 0;
  std::size_t residual_size = 0;
  int simplify_passes = 0;
  simplify::RuleStats rule_stats{};

  // Baselines (populated when compute_baselines is set):
  std::size_t baseline_z3_size = 0;          ///< Z3 generic simplify
  std::size_t baseline_local_rules_size = 0; ///< rules w/o unit propagation
};

/// A low-level subspecification: the residual constraints over the Var_*
/// explanation variables.
struct Subspec {
  Selection selection;
  std::vector<config::HoleInfo> holes;   ///< the symbolized fields
  std::vector<smt::Expr> constraints;    ///< residual (empty = unconstrained)
  std::vector<smt::Expr> domains;        ///< hole-domain side conditions
  SubspecMetrics metrics;

  /// "R3 can do anything to meet this requirement" (scenario 3).
  bool IsEmpty() const noexcept { return constraints.empty(); }
  /// The question has no answer: no values of the symbolized fields can
  /// satisfy the (projected) specification.
  bool IsUnsatisfiable() const noexcept {
    return constraints.size() == 1 && constraints.front().IsFalse();
  }

  /// Human-readable rendering (Fig. 6c style), with encoded integer values
  /// translated back to prefixes/addresses/communities where possible.
  std::string ToString() const;

  /// The value tables used to pretty-print and to lift.
  synth::ValueTable values;
};

/// Drives explanations against one solved configuration.
class Explainer {
 public:
  /// `solved` must be hole-free and satisfy `spec` (synthesizer output).
  Explainer(const net::Topology& topo, const spec::Spec& spec,
            config::NetworkConfig solved);

  /// Runs the full pipeline for one question.
  util::Result<Subspec> Explain(const Selection& selection,
                                const SubspecOptions& options = {});

  const config::NetworkConfig& solved() const noexcept { return solved_; }
  /// Pool backing the most recent Explain call (lift reuses it).
  smt::ExprPool& pool() noexcept { return pool_; }

 private:
  const net::Topology& topo_;
  const spec::Spec& spec_;
  config::NetworkConfig solved_;
  smt::ExprPool pool_;
};

/// Existentially eliminates `st.*` route-state variables from a simplified
/// constraint set by inlining their (unique) definitions; re-simplifies
/// after each substitution round. Exposed for tests and the lifter.
std::vector<smt::Expr> EliminateAuxVars(smt::ExprPool& pool,
                                        std::vector<smt::Expr> constraints);

/// Closes the `st.*` definition chain: maps every route-state variable to
/// a simplified expression over the Var_* explanation variables only.
/// Computed once per partially symbolic configuration, it lets the lifter
/// project a candidate statement in one substitution instead of a full
/// simplification run over the whole seed. `shared_fixpoints` (optional)
/// is consulted for frozen nodes when the pool overlays an arena.
std::unordered_map<std::string, smt::Expr> CloseAuxDefinitions(
    smt::ExprPool& pool, const std::vector<smt::Expr>& definitions,
    simplify::FixpointCache* shared_fixpoints = nullptr);

}  // namespace ns::explain
