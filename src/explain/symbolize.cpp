#include "explain/symbolize.hpp"

#include <sstream>

namespace ns::explain {

using config::Field;
using config::MatchField;
using config::RouteMapEntry;
using util::Error;
using util::ErrorCode;
using util::Result;

std::string Selection::ToString() const {
  std::ostringstream os;
  if (complement) os << "the rest of the network besides ";
  os << router;
  if (route_map) os << " / " << *route_map;
  if (seq) os << " seq " << *seq;
  if (slot) os << " [" << *slot << "]";
  return os.str();
}

std::string ExplainVarName(std::string_view kind, std::string_view map,
                           int seq) {
  return "Var_" + std::string(kind) + "@" + std::string(map) + "." +
         std::to_string(seq);
}

namespace {

/// Opens the whole match clause: Var_Attr plus every value slot. A
/// symbolic attribute makes every slot relevant, so they open together —
/// the paper's `match Var_Attr Var_Val`.
void OpenMatch(RouteMapEntry& entry, const std::string& map) {
  entry.match.field.Open(ExplainVarName("Attr", map, entry.seq));
  entry.match.prefix.Open(ExplainVarName("Val_prefix", map, entry.seq));
  entry.match.community.Open(ExplainVarName("Val_community", map, entry.seq));
  entry.match.next_hop.Open(ExplainVarName("Val_nexthop", map, entry.seq));
  entry.match.via.Open(ExplainVarName("Val_via", map, entry.seq));
}

/// Opens the slots of one entry per the (optional) slot filter. Returns
/// false if the filter named a slot the entry does not have.
bool OpenEntry(RouteMapEntry& entry, const std::string& map,
               const std::optional<std::string>& slot) {
  const int seq = entry.seq;
  const bool all = !slot.has_value();
  bool any = false;
  if (all || *slot == "action") {
    entry.action.Open(ExplainVarName("Action", map, seq));
    any = true;
  }
  if (all || *slot == "match") {
    OpenMatch(entry, map);
    any = true;
  }
  if ((all || *slot == "set.local-pref") && entry.sets.local_pref) {
    entry.sets.local_pref->Open(ExplainVarName("Param_lp", map, seq));
    any = true;
  }
  if ((all || *slot == "set.community") && entry.sets.add_community) {
    entry.sets.add_community->Open(ExplainVarName("Param_community", map, seq));
    any = true;
  }
  if ((all || *slot == "set.next-hop") && entry.sets.next_hop) {
    entry.sets.next_hop->Open(ExplainVarName("Param_nexthop", map, seq));
    any = true;
  }
  if ((all || *slot == "set.med") && entry.sets.med) {
    entry.sets.med->Open(ExplainVarName("Param_med", map, seq));
    any = true;
  }
  return any;
}

}  // namespace

Result<std::vector<config::HoleInfo>> Symbolize(
    config::NetworkConfig& network, const Selection& selection) {
  if (network.HasHole()) {
    return Error(ErrorCode::kInvalidArgument,
                 "symbolization expects a fully solved configuration");
  }
  if (network.FindRouter(selection.router) == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "no router '" + selection.router + "' in the configuration");
  }

  bool opened = false;
  for (auto& [router_name, router] : network.routers) {
    const bool selected = selection.complement
                              ? router_name != selection.router
                              : router_name == selection.router;
    if (!selected) continue;
    for (auto& [map_name, map] : router.route_maps) {
      if (selection.route_map && *selection.route_map != map_name) continue;
      for (RouteMapEntry& entry : map.entries) {
        if (selection.seq && *selection.seq != entry.seq) continue;
        opened = OpenEntry(entry, map_name, selection.slot) || opened;
      }
    }
  }
  if (!opened) {
    return Error(ErrorCode::kNotFound, "selection matched no field: " +
                                           selection.ToString());
  }
  return config::CollectHoles(network);
}

}  // namespace ns::explain
