// Parallel batch-explain driver: answers many questions about one solved
// configuration by fanning the requests across a thread pool.
//
// Threading model — ExprPool (and everything above it) is single-threaded
// by design: hash-consing, the lazy per-node caches, and the simplify
// engine's memo are all unsynchronized. Instead of locking the hot path we
// give every *request* its own fresh `Session` (hence its own ExprPool and
// Engine), so no two threads ever touch the same pool. Requests are
// independent questions, so nothing is shared but the immutable inputs
// (topology, spec, solved configuration) — and, when an ArenaRegistry is
// supplied, the frozen arenas it holds, which are immutable after their
// one-time build and safe to read concurrently (DESIGN.md §11). Overlay
// pools on top of a frozen arena stay strictly request-local.
//
// Determinism — Eq/Add/Mul orientation depends on node *creation order*
// inside a pool, so reusing one warm pool for several requests would make
// answer N depend on answers 1..N-1. A fresh pool per request makes every
// answer a pure function of (inputs, request): the parallel batch is
// byte-identical to running the requests sequentially, whatever the thread
// count or scheduling order. The batch tests assert exactly this.
//
// Results carry *rendered* strings and POD metrics, never smt::Expr
// handles: the per-request pool dies with the worker's Session.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "explain/report.hpp"
#include "util/status.hpp"

namespace ns::explain {

class ArenaRegistry;

/// One question: mirrors the parameters of Session::Ask.
struct BatchRequest {
  Selection selection;
  LiftMode mode = LiftMode::kExact;
  std::vector<std::string> requirements;  ///< projection (empty = all)
  bool compute_baselines = false;
  /// Solver backend for this question. All backends answer byte-
  /// identically; the choice affects only speed (and the stats).
  smt::SolverOptions solver;
  /// Compile workers for the lift's phase A (effective on arena-seeded
  /// answers; see SubspecOptions::lift_threads). Byte-identical answers.
  int lift_threads = 1;
  /// Race the phase-B strategy portfolio (SubspecOptions::lift_portfolio).
  bool lift_portfolio = false;
};

/// One answer, fully rendered (safe to keep after the worker's pool died).
struct BatchAnswer {
  std::string report;        ///< Explanation::Report()
  std::string subspec_text;  ///< lifted DSL block
  SubspecMetrics metrics;
  ExplainStats stats;  ///< solver-layer counters (POD; outlives the pool)
  bool empty = false;  ///< unconstrained component
  bool unsat = false;  ///< over-constrained question
};

/// A request paired with its outcome.
struct BatchItem {
  BatchRequest request;
  util::Result<BatchAnswer> result =
      util::Error(util::ErrorCode::kInternal, "request was not run");
  double wall_ms = 0;  ///< time spent answering this request
  int worker = -1;     ///< worker thread that answered it
};

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency (capped by request count).
  int num_threads = 0;
  /// Frozen-arena registry shared across the batch's workers. When set,
  /// each request seeds from the registry's frozen encoding instead of
  /// re-encoding (baseline-computing requests fall back automatically).
  /// Answers stay byte-identical either way.
  std::shared_ptr<ArenaRegistry> registry;
};

struct BatchOutcome {
  std::vector<BatchItem> items;  ///< same order as the requests
  int threads_used = 0;  ///< 0 when the batch was empty (no worker ran)
  double wall_ms = 0;  ///< whole-batch wall time
};

/// Answers one request with a fresh Session (fresh ExprPool + Engine) and
/// renders the result — the unit of work BatchExplain fans out, exposed so
/// other drivers (the explanation service) answer byte-identically to the
/// sequential path. Internal errors escaping as exceptions are caught and
/// returned as kInternal.
util::Result<BatchAnswer> AnswerRequest(const net::Topology& topo,
                                        const spec::Spec& spec,
                                        const config::NetworkConfig& solved,
                                        const BatchRequest& request);

/// Same, but seeds the Session from a shared frozen-arena registry when
/// `registry` is non-null (nullptr behaves exactly like the 4-arg form).
util::Result<BatchAnswer> AnswerRequest(
    const net::Topology& topo, const spec::Spec& spec,
    const config::NetworkConfig& solved, const BatchRequest& request,
    const std::shared_ptr<ArenaRegistry>& registry);

/// Answers every request. Per-request failures (unknown router, unsat
/// synthesis artifacts) land in the item's `result`; the batch itself
/// always completes.
BatchOutcome BatchExplain(const net::Topology& topo, const spec::Spec& spec,
                          const config::NetworkConfig& solved,
                          const std::vector<BatchRequest>& requests,
                          const BatchOptions& options = {});

/// One whole-router request per router that carries routing policy, in
/// deterministic (name) order — the batch analogue of Session::Survey's
/// iteration.
std::vector<BatchRequest> RequestsForAllRouters(
    const config::NetworkConfig& solved, LiftMode mode = LiftMode::kExact,
    std::vector<std::string> requirements = {});

}  // namespace ns::explain
