// Lifting (paper §3 step 4, left as future work there; implemented here):
// searching the specification language for a localized subspecification
// consistent with the simplified low-level constraints.
//
// The lifter enumerates candidate local statements (deny-all towards a
// neighbor, per-path forbids, truncated preferences), compiles each through
// the *same* pipeline as the seed specification (encode -> simplify ->
// project onto the Var_* variables), and assembles a statement set whose
// compiled meaning matches the low-level subspecification:
//
//  - kExact    : conjunction of lifted statements  <=>  subspec
//                (the minimal necessary-and-sufficient local contract;
//                 paper Figs. 4 and 5)
//  - kFaithful : conjunction  =>  subspec, and the solved configuration
//                satisfies every lifted statement (describes what the
//                config actually guarantees; paper Fig. 2's
//                "drop ALL routes to Provider1")
//
// Since PR 9 the search is an explicit two-phase pipeline (DESIGN.md §12):
// phase A compiles candidate residuals — in parallel scratch overlays
// through the question's CompileCache when an arena-seeded LiftContext is
// supplied, inline into the pool otherwise — and phase B assembles the
// statement set greedily, optionally racing a portfolio of strategies.
// Answers are byte-identical across thread counts, strategies and solver
// backends.
#pragma once

#include <string>
#include <vector>

#include "explain/compile_cache.hpp"
#include "explain/subspec.hpp"
#include "spec/ast.hpp"

namespace ns::explain {

enum class LiftMode { kExact, kFaithful };

const char* LiftModeName(LiftMode mode) noexcept;

struct LiftedStatement {
  spec::Statement statement;
  /// The statement's compiled meaning over the explanation variables.
  std::vector<smt::Expr> residual;
};

/// Counters for the two-phase lift pipeline (DESIGN.md §12). The
/// configuration fields (threads, portfolio, strategies, winner) are
/// deterministic. The compile-cache and cancellation counters depend on
/// scheduling once prefetch workers or the portfolio are on (workers may
/// compile past the greedy break point; cancellation lands wherever the
/// race stood), so — like ArenaRegistryStats — they are reported but
/// excluded from determinism comparisons.
struct LiftStats {
  int threads = 1;         ///< compile workers used by phase A
  bool portfolio = false;  ///< phase B raced the strategy portfolio
  int strategies = 1;      ///< assembly strategies run (1 = plain greedy)
  int winner = 0;  ///< answering strategy — always 0, the canonical one
  std::uint64_t compile_cache_hits = 0;
  std::uint64_t compile_cache_misses = 0;
  std::uint64_t candidates_compiled = 0;   ///< residuals compiled this lift
  std::uint64_t strategies_cancelled = 0;  ///< losers interrupted mid-run
  double compile_ms = 0;   ///< phase A wall on the answering path
  double assemble_ms = 0;  ///< phase B wall (greedy assembly + prune)

  /// Aggregation across answers (batch --stats, serve): counters sum,
  /// configuration fields take the maximum seen.
  LiftStats& operator+=(const LiftStats& other) noexcept;
};

struct LiftResult {
  /// The localized subspecification in the DSL (paper Figs. 2/4/5).
  spec::Requirement requirement;
  /// Whether the lifted statements fully capture the low-level subspec
  /// (in exact mode: equivalence; in faithful mode: sufficiency). When
  /// false the paper's open problem bit — "generating high-level
  /// subspecifications ... remains a challenge" — showed up; callers
  /// should fall back to presenting Subspec::ToString().
  bool complete = false;
  std::vector<LiftedStatement> used;
  int candidates_tried = 0;
  /// Per-query solver counters for this lift run (see SolverStats).
  /// Under the portfolio these are the canonical strategy's alone.
  smt::SolverStats solver_stats;
  /// Two-phase pipeline counters (see LiftStats).
  LiftStats stats;

  std::string ToString() const;
};

/// Builds the deterministic front half of a lift over one explained
/// question: re-derives the protocol-mechanics encoding, closes the st.*
/// definition chain, and generates + sorts the candidate statements.
/// ArenaRegistry replays this into the question's root pool before
/// freezing, so warm lifts skip it entirely and every compiled candidate
/// carries stable arena ids.
util::Result<LiftPrefix> BuildLiftPrefix(smt::ExprPool& pool,
                                         const net::Topology& topo,
                                         const spec::Spec& spec,
                                         const config::NetworkConfig& solved,
                                         const Subspec& subspec,
                                         const SubspecOptions& options);

/// Frozen-prefix context for arena-seeded lifts: the question's replayed
/// prefix and its residual memo, both owned by the FrozenQuestion and
/// shared across every lift of the question. When absent, the lifter
/// builds the prefix inline and compiles candidates directly into the
/// pool (the fresh path — byte-for-byte the historical sequential
/// pipeline).
struct LiftContext {
  const LiftPrefix* prefix = nullptr;
  CompileCache* cache = nullptr;
};

class Lifter {
 public:
  /// `pool` must be the pool the subspec's expressions live in — i.e. the
  /// Explainer's pool (Explainer::pool()), or the overlay pool of the
  /// question's arena. `context` (optional) enables the memoized parallel
  /// compile stage; its prefix/cache must belong to the arena `pool`
  /// overlays.
  Lifter(smt::ExprPool& pool, const net::Topology& topo,
         const spec::Spec& spec, const config::NetworkConfig& solved,
         LiftContext context = {})
      : pool_(pool),
        topo_(topo),
        spec_(spec),
        solved_(solved),
        context_(context) {}

  /// Lifts `subspec` (produced by Explainer::Explain with `options` —
  /// pass the same options so the projection matches).
  util::Result<LiftResult> Lift(const Subspec& subspec, LiftMode mode,
                                const SubspecOptions& options = {});

 private:
  smt::ExprPool& pool_;
  const net::Topology& topo_;
  const spec::Spec& spec_;
  const config::NetworkConfig& solved_;
  LiftContext context_;
};

namespace lift_testing {

/// Test-only: stalls the start of portfolio strategy `index` by `ms`
/// milliseconds on subsequent lifts, to pin that the answer does not
/// depend on which strategy finishes first.
void SetStrategyDelayForTest(int index, int ms);
void ClearStrategyDelaysForTest();

}  // namespace lift_testing

}  // namespace ns::explain
