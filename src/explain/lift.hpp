// Lifting (paper §3 step 4, left as future work there; implemented here):
// searching the specification language for a localized subspecification
// consistent with the simplified low-level constraints.
//
// The lifter enumerates candidate local statements (deny-all towards a
// neighbor, per-path forbids, truncated preferences), compiles each through
// the *same* pipeline as the seed specification (encode -> simplify ->
// project onto the Var_* variables), and assembles a statement set whose
// compiled meaning matches the low-level subspecification:
//
//  - kExact    : conjunction of lifted statements  <=>  subspec
//                (the minimal necessary-and-sufficient local contract;
//                 paper Figs. 4 and 5)
//  - kFaithful : conjunction  =>  subspec, and the solved configuration
//                satisfies every lifted statement (describes what the
//                config actually guarantees; paper Fig. 2's
//                "drop ALL routes to Provider1")
#pragma once

#include <string>
#include <vector>

#include "explain/subspec.hpp"
#include "spec/ast.hpp"

namespace ns::explain {

enum class LiftMode { kExact, kFaithful };

const char* LiftModeName(LiftMode mode) noexcept;

struct LiftedStatement {
  spec::Statement statement;
  /// The statement's compiled meaning over the explanation variables.
  std::vector<smt::Expr> residual;
};

struct LiftResult {
  /// The localized subspecification in the DSL (paper Figs. 2/4/5).
  spec::Requirement requirement;
  /// Whether the lifted statements fully capture the low-level subspec
  /// (in exact mode: equivalence; in faithful mode: sufficiency). When
  /// false the paper's open problem bit — "generating high-level
  /// subspecifications ... remains a challenge" — showed up; callers
  /// should fall back to presenting Subspec::ToString().
  bool complete = false;
  std::vector<LiftedStatement> used;
  int candidates_tried = 0;
  /// Per-query solver counters for this lift run (see SolverStats).
  smt::SolverStats solver_stats;

  std::string ToString() const;
};

class Lifter {
 public:
  /// `pool` must be the pool the subspec's expressions live in — i.e. the
  /// Explainer's pool (Explainer::pool()).
  Lifter(smt::ExprPool& pool, const net::Topology& topo,
         const spec::Spec& spec, const config::NetworkConfig& solved)
      : pool_(pool), topo_(topo), spec_(spec), solved_(solved) {}

  /// Lifts `subspec` (produced by Explainer::Explain with `options` —
  /// pass the same options so the projection matches).
  util::Result<LiftResult> Lift(const Subspec& subspec, LiftMode mode,
                                const SubspecOptions& options = {});

 private:
  smt::ExprPool& pool_;
  const net::Topology& topo_;
  const spec::Spec& spec_;
  const config::NetworkConfig& solved_;
};

}  // namespace ns::explain
