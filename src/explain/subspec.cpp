#include "explain/subspec.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "explain/pretty.hpp"
#include "smt/solver.hpp"
#include "util/logging.hpp"

namespace ns::explain {

using smt::Expr;
using smt::ExprPool;
using smt::Op;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

bool ContainsAuxVar(Expr e) {
  for (const smt::Node* var : e.FreeVarNodes()) {
    if (synth::IsAuxVar(var->name)) return true;
  }
  return false;
}

/// If `e` pins down an aux variable, returns (v, rhs):
///   v = rhs / rhs = v   — definitional equation;
///   v / ¬v              — boolean literal (v := true / false). Literals
///                         arise when unit propagation rewrites a state
///                         definition away but keeps the unit.
/// Existentially projecting v with [v := rhs] is sound in all three forms.
std::optional<std::pair<Expr, Expr>> AsAuxDefinition(ExprPool& pool, Expr e) {
  if (e.IsVar() && synth::IsAuxVar(e.name()) && e.sort() == smt::Sort::kBool) {
    return std::make_pair(e, pool.True());
  }
  if (e.op() == Op::kNot && e.Child(0).IsVar() &&
      synth::IsAuxVar(e.Child(0).name())) {
    return std::make_pair(e.Child(0), pool.False());
  }
  if (e.op() != Op::kEq) return std::nullopt;
  for (int side = 0; side < 2; ++side) {
    const Expr v = e.Child(static_cast<std::size_t>(side));
    const Expr rhs = e.Child(static_cast<std::size_t>(1 - side));
    if (!v.IsVar() || !synth::IsAuxVar(v.name())) continue;
    bool self = false;
    for (const smt::Node* var : rhs.FreeVarNodes()) {
      if (var == v.raw()) {
        self = true;
        break;
      }
    }
    if (!self) return std::make_pair(v, rhs);
  }
  return std::nullopt;
}

}  // namespace

std::vector<Expr> EliminateAuxVars(ExprPool& pool,
                                   std::vector<Expr> constraints) {
  // Each round: collect one definition per aux variable, substitute into
  // everything else, drop the definitions (existential projection), and
  // re-simplify. Definitions may reference other aux variables, so iterate;
  // the definition graph is acyclic (state variables are defined along
  // paths), hence this terminates.
  //
  // One engine serves every round: its cross-pass memo carries simplified
  // subtrees from round to round, so later rounds only pay for what the
  // substitutions actually changed.
  simplify::Engine engine(pool);
  for (int round = 0; round < 64; ++round) {
    std::unordered_map<std::string, Expr> env;
    std::vector<Expr> rest;
    for (Expr c : constraints) {
      if (const auto def = AsAuxDefinition(pool, c)) {
        const bool fresh =
            env.emplace(def->first.name(), def->second).second;
        if (fresh) continue;  // consumed as a definition
      }
      rest.push_back(c);
    }
    if (env.empty()) break;

    // Close the environment under itself: a definition's right-hand side
    // may reference other defined variables (state chains along paths).
    // The definition graph is acyclic, so this converges.
    for (std::size_t iter = 0; iter < env.size() + 1; ++iter) {
      bool changed = false;
      for (auto& [name, rhs] : env) {
        const Expr next = smt::Substitute(pool, rhs, env);
        if (next != rhs) {
          rhs = next;
          changed = true;
        }
      }
      if (!changed) break;
    }

    std::vector<Expr> substituted;
    substituted.reserve(rest.size());
    for (Expr c : rest) {
      substituted.push_back(smt::Substitute(pool, c, env));
    }
    constraints = engine.SimplifyConstraints(std::move(substituted));
  }

  // Whatever still mentions an aux variable at this point had no usable
  // definition — that would be an encoder invariant violation.
  for (Expr c : constraints) {
    NS_ASSERT_MSG(!ContainsAuxVar(c),
                  "aux variable survived elimination: " + c.ToString());
  }
  return constraints;
}

std::unordered_map<std::string, Expr> CloseAuxDefinitions(
    ExprPool& pool, const std::vector<Expr>& definitions,
    simplify::FixpointCache* shared_fixpoints) {
  std::unordered_map<std::string, Expr> env;
  for (Expr c : definitions) {
    // An equation between two state variables (e.g. `lp_new = lp_prev`,
    // oriented arbitrarily by hash-consing) must bind the side that is
    // still undefined, or a variable would silently lose its only
    // definition.
    if (c.op() == Op::kEq) {
      bool bound = false;
      for (int side = 0; side < 2 && !bound; ++side) {
        const Expr v = c.Child(static_cast<std::size_t>(side));
        const Expr rhs = c.Child(static_cast<std::size_t>(1 - side));
        if (!v.IsVar() || !synth::IsAuxVar(v.name())) continue;
        if (env.count(v.name()) > 0) continue;
        bool self = false;
        for (const smt::Node* var : rhs.FreeVarNodes()) {
          if (var == v.raw()) {
            self = true;
            break;
          }
        }
        if (self) continue;
        env.emplace(v.name(), rhs);
        bound = true;
      }
      continue;
    }
    if (const auto def = AsAuxDefinition(pool, c)) {
      env.emplace(def->first.name(), def->second);
    }
  }
  // Close under itself; keep right-hand sides small by simplifying as we
  // go (everything concrete folds away immediately).
  simplify::EngineOptions engine_options;
  engine_options.shared_fixpoints = shared_fixpoints;
  simplify::Engine engine(pool, engine_options);
  for (std::size_t iter = 0; iter < env.size() + 1; ++iter) {
    bool changed = false;
    for (auto& [name, rhs] : env) {
      Expr next = smt::Substitute(pool, rhs, env);
      if (next != rhs) {
        next = engine.Simplify(next).expr;
        changed = changed || next != rhs;
        rhs = next;
      }
    }
    if (!changed) break;
  }
  for (auto& [name, rhs] : env) {
    rhs = engine.Simplify(rhs).expr;
    NS_ASSERT_MSG(!ContainsAuxVar(rhs),
                  "definition closure left an aux variable in " + name);
  }
  return env;
}

Explainer::Explainer(const net::Topology& topo, const spec::Spec& spec,
                     config::NetworkConfig solved)
    : topo_(topo), spec_(spec), solved_(std::move(solved)) {
  NS_ASSERT_MSG(!solved_.HasHole(),
                "Explainer expects a fully solved configuration");
}

Result<Subspec> Explainer::Explain(const Selection& selection,
                                   const SubspecOptions& options) {
  // (1) Partially symbolic configuration.
  config::NetworkConfig partial = solved_;
  auto holes = Symbolize(partial, selection);
  if (!holes) return holes.error();

  // Keep the two views consistent: originate declared destinations.
  auto destinations = synth::BuildDestinations(topo_, partial, spec_);
  if (!destinations) return destinations.error();
  synth::EnsureOriginated(partial, destinations.value());

  // (2) Seed specification via the synthesizer's encoder.
  synth::EncoderOptions encoder_options = options.encoder;
  encoder_options.only_requirements = options.requirements;
  auto encoding = synth::Encode(pool_, topo_, partial, spec_, encoder_options);
  if (!encoding) return encoding.error();

  Subspec subspec;
  subspec.selection = selection;
  subspec.holes = std::move(holes).value();
  subspec.domains = encoding.value().domain_constraints;
  subspec.values = encoding.value().values;

  // The seed proper: state definitions + requirement assertions. Domains
  // are side conditions (kept separately so the subspecification is not
  // cluttered by `0 <= Var_Action <= 1` bounds).
  std::vector<Expr> seed;
  seed.reserve(encoding.value().constraints.size());
  for (Expr c : encoding.value().constraints) {
    const bool is_domain =
        std::find(encoding.value().domain_constraints.begin(),
                  encoding.value().domain_constraints.end(),
                  c) != encoding.value().domain_constraints.end();
    if (!is_domain) seed.push_back(c);
  }
  subspec.metrics.seed_constraints = seed.size();
  subspec.metrics.seed_size = simplify::ConstraintSetSize(seed);

  if (options.compute_baselines) {
    smt::Solver solver(options.solver);
    subspec.metrics.baseline_z3_size = solver.GenericSimplifiedSize(seed);
    simplify::Engine local_only(
        pool_, simplify::EngineOptions{.max_passes = 64,
                                       .propagate_units = false});
    const auto local = local_only.SimplifyConstraints(seed);
    subspec.metrics.baseline_local_rules_size =
        simplify::ConstraintSetSize(local);
  }

  // (3) Rewrite rules to fixpoint — partial evaluation does the heavy
  // lifting because every other router's fields are concrete.
  simplify::Engine engine(pool_);
  std::vector<Expr> simplified = engine.SimplifyConstraints(std::move(seed));
  subspec.metrics.simplified_constraints = simplified.size();
  subspec.metrics.simplified_size = simplify::ConstraintSetSize(simplified);
  subspec.metrics.rule_stats = engine.stats();
  subspec.metrics.simplify_passes = engine.last_passes();

  // (4) Project away the route-state variables; what remains speaks only
  // about the Var_* fields — the low-level subspecification.
  subspec.constraints = EliminateAuxVars(pool_, std::move(simplified));
  subspec.metrics.residual_constraints = subspec.constraints.size();
  subspec.metrics.residual_size =
      simplify::ConstraintSetSize(subspec.constraints);

  NS_INFO << "subspec for " << selection.ToString() << ": "
          << subspec.metrics.seed_constraints << " seed constraints -> "
          << subspec.metrics.residual_constraints << " residual";
  return subspec;
}

std::string Subspec::ToString() const {
  std::ostringstream os;
  os << "subspecification for " << selection.ToString() << ":\n";
  if (IsEmpty()) {
    os << "  (empty — any values satisfy the specification)\n";
    return os.str();
  }
  if (IsUnsatisfiable()) {
    os << "  (unsatisfiable — no values can satisfy the specification)\n";
    return os.str();
  }
  for (const smt::Expr& c : constraints) {
    os << "  " << PrettyConstraint(c, holes, values) << "\n";
  }
  return os.str();
}

}  // namespace ns::explain
