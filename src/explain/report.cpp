#include "explain/report.hpp"

#include <iomanip>
#include <sstream>

#include "explain/arena.hpp"
#include "explain/pretty.hpp"
#include "util/strings.hpp"

namespace ns::explain {

using util::Result;

std::string ExplainStats::ToString() const {
  std::ostringstream os;
  os << "solver: backend=" << smt::SolverBackendName(backend)
     << " queries=" << lift.queries << " fast_path=" << lift.fast_path_hits
     << "/" << lift.fast_path_fallbacks << "/" << lift.fast_path_ineligible
     << " memo=" << lift.memo_hits
     << " z3=" << lift.z3_queries << " frame_reuse=" << lift.frame_reuse
     << " asserts=" << lift.assertions << " wall_ms=" << std::fixed
     << std::setprecision(2) << lift.wall_ms;
  if (arena.used) {
    os << "\narena: frozen_nodes=" << arena.frozen_nodes
       << " frozen_symbols=" << arena.frozen_symbols
       << " overlay_nodes=" << arena.overlay_nodes;
  }
  if (pipeline.threads > 1 || pipeline.portfolio ||
      pipeline.compile_cache_hits + pipeline.compile_cache_misses > 0) {
    os << "\nlift: threads=" << pipeline.threads
       << " portfolio=" << (pipeline.portfolio ? "on" : "off")
       << " strategies=" << pipeline.strategies
       << " cancelled=" << pipeline.strategies_cancelled
       << " compile_cache=" << pipeline.compile_cache_hits << "/"
       << pipeline.compile_cache_misses
       << " compiled=" << pipeline.candidates_compiled
       << " compile_ms=" << std::fixed << std::setprecision(2)
       << pipeline.compile_ms << " assemble_ms=" << pipeline.assemble_ms;
  }
  return os.str();
}

std::string FormatMetrics(const SubspecMetrics& metrics) {
  std::ostringstream os;
  os << "  seed specification : " << metrics.seed_constraints
     << " constraints (size " << metrics.seed_size << ")\n";
  os << "  after rewriting    : " << metrics.simplified_constraints
     << " constraints (size " << metrics.simplified_size << ", "
     << metrics.simplify_passes << " passes)\n";
  os << "  residual (Var_*)   : " << metrics.residual_constraints
     << " constraints (size " << metrics.residual_size << ")\n";
  if (metrics.baseline_z3_size != 0 || metrics.baseline_local_rules_size != 0) {
    os << "  baseline Z3 simplify        : size " << metrics.baseline_z3_size
       << "\n";
    os << "  baseline local-rules only   : size "
       << metrics.baseline_local_rules_size << "\n";
  }
  return os.str();
}

std::string Explanation::Report() const {
  std::ostringstream os;
  os << "================================================================\n";
  os << "Q: I want to make changes to " << selection.ToString()
     << ". What should I keep in mind";
  if (!requirements.empty()) {
    os << " (regarding " << util::Join(requirements, ", ") << ")";
  }
  os << "?\n";
  os << "----------------------------------------------------------------\n";
  os << FormatMetrics(subspec.metrics);
  os << "----------------------------------------------------------------\n";
  if (subspec.IsEmpty()) {
    os << "A: nothing — this component is unconstrained by the "
       << (requirements.empty() ? "specification"
                                : "selected requirements")
       << ".\n";
    return os.str();
  }
  if (subspec.IsUnsatisfiable()) {
    os << "A: no assignment of these fields can satisfy the selected "
          "requirements (over-constrained question).\n";
    return os.str();
  }
  os << "low-level subspecification (simplified seed constraints):\n";
  for (const smt::Expr& c : subspec.constraints) {
    os << "  " << PrettyConstraint(c, subspec.holes, subspec.values) << "\n";
  }
  os << "----------------------------------------------------------------\n";
  if (lifted.requirement.statements.empty() && !lifted.complete) {
    os << "A: (could not lift to the specification language; inspect the "
          "low-level constraints above)\n";
    return os.str();
  }
  os << "A: " << lifted.ToString() << "\n";
  return os.str();
}

std::string SurveyRow::ToString() const {
  std::ostringstream os;
  os << router << ": seed " << metrics.seed_size << ", residual "
     << metrics.residual_size
     << (unconstrained ? " (unconstrained)" : " (carries requirements)");
  return os.str();
}

std::string FormatSurvey(const std::vector<SurveyRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(10) << "router" << std::setw(12) << "seed size"
     << std::setw(15) << "residual size" << "verdict\n";
  for (const SurveyRow& row : rows) {
    os << std::left << std::setw(10) << row.router << std::setw(12)
       << row.metrics.seed_size << std::setw(15) << row.metrics.residual_size
       << (row.unconstrained ? "unconstrained — skip it"
                             : "carries the requirements")
       << "\n";
  }
  return os.str();
}

Result<std::vector<SurveyRow>> Session::Survey(
    std::vector<std::string> requirements) {
  SubspecOptions options;
  options.requirements = requirements;
  std::vector<SurveyRow> rows;
  for (const auto& [router, cfg] : explainer_.solved().routers) {
    if (cfg.route_maps.empty()) continue;  // nothing to ask about
    auto subspec = explainer_.Explain(Selection::Router(router), options);
    if (!subspec) return subspec.error();
    rows.push_back(SurveyRow{router, subspec.value().metrics,
                             subspec.value().IsEmpty()});
  }
  return rows;
}

void Session::UseArenaRegistry(std::shared_ptr<ArenaRegistry> registry) {
  registry_ = std::move(registry);
}

Result<Explanation> Session::AskViaArena(
    const Selection& selection, LiftMode mode,
    std::vector<std::string> requirements, const smt::SolverOptions& solver) {
  auto question = registry_->GetOrBuild(topo_, spec_, explainer_.solved(),
                                        selection, requirements);
  if (!question) return question.error();
  const FrozenQuestion& frozen = *question.value();

  // The overlay continues the frozen prefix's node-id sequence exactly
  // where a fresh pool's would be after Explain, so the lift suffix below
  // replays the fresh path's creation order node for node.
  auto overlay = std::make_unique<smt::ExprPool>(frozen.arena);

  Explanation explanation;
  explanation.selection = selection;
  explanation.requirements = std::move(requirements);
  explanation.mode = mode;
  explanation.stats.backend = solver.backend;
  explanation.stats.arena.used = true;
  explanation.stats.arena.frozen_nodes = frozen.arena->NumNodes();
  explanation.stats.arena.frozen_symbols = frozen.arena->NumSymbols();
  explanation.subspec = frozen.subspec;

  if (selection.complement) {
    // Rest-of-network summaries span several components; no single-scope
    // lift exists — present the low-level constraints.
    explanation.lifted.requirement.name = "rest-of-network";
    explanation.lifted.complete = false;
  } else {
    SubspecOptions options;
    options.requirements = explanation.requirements;
    options.solver = solver;
    options.shared_fixpoints = frozen.fixpoints.get();
    options.lift_threads = lift_threads_;
    options.lift_portfolio = lift_portfolio_;
    LiftContext context;
    if (frozen.lift_prefix.has_value()) {
      context.prefix = &*frozen.lift_prefix;
      context.cache = frozen.compile_cache.get();
    }
    Lifter lifter(*overlay, topo_, spec_, explainer_.solved(), context);
    auto lifted = lifter.Lift(explanation.subspec, mode, options);
    if (!lifted) return lifted.error();
    explanation.lifted = std::move(lifted).value();
    explanation.stats.lift = explanation.lifted.solver_stats;
    explanation.stats.pipeline = explanation.lifted.stats;
  }

  explanation.stats.arena.overlay_nodes = overlay->NumOverlayNodes();
  overlays_.push_back(std::move(overlay));
  return explanation;
}

Result<Explanation> Session::Ask(const Selection& selection, LiftMode mode,
                                 std::vector<std::string> requirements,
                                 bool compute_baselines,
                                 const smt::SolverOptions& solver) {
  // Arena-seeded fast path: skip the re-encode entirely. Baselines bypass
  // it — their engines create pool nodes before the main simplify, so the
  // frozen prefix would not match the fresh path's creation order.
  if (registry_ != nullptr && !compute_baselines) {
    return AskViaArena(selection, mode, std::move(requirements), solver);
  }
  SubspecOptions options;
  options.requirements = requirements;
  options.compute_baselines = compute_baselines;
  options.solver = solver;

  auto subspec = explainer_.Explain(selection, options);
  if (!subspec) return subspec.error();

  Explanation explanation;
  explanation.selection = selection;
  explanation.requirements = std::move(requirements);
  explanation.mode = mode;
  explanation.stats.backend = solver.backend;

  if (selection.complement) {
    // Rest-of-network summaries span several components; no single-scope
    // lift exists — present the low-level constraints.
    explanation.lifted.requirement.name = "rest-of-network";
    explanation.lifted.complete = false;
    explanation.subspec = std::move(subspec).value();
    return explanation;
  }

  options.lift_threads = lift_threads_;
  options.lift_portfolio = lift_portfolio_;
  Lifter lifter(explainer_.pool(), topo_, spec_, explainer_.solved());
  auto lifted = lifter.Lift(subspec.value(), mode, options);
  if (!lifted) return lifted.error();

  explanation.subspec = std::move(subspec).value();
  explanation.lifted = std::move(lifted).value();
  explanation.stats.lift = explanation.lifted.solver_stats;
  explanation.stats.pipeline = explanation.lifted.stats;
  return explanation;
}

}  // namespace ns::explain
