// Explainable verification (paper §5, "Implication for explainable
// network verification"): instead of a black-box yes/no, verify a concrete
// configuration against the specification through the *encoder* and report
// which requirement fails and along which candidate paths.
//
// This is also the third, SMT-based implementation of the semantics — the
// property tests cross-check it against the concrete simulator + checker
// pair, closing the loop on the paper's "verifiers and synthesizers can
// contain bugs" concern.
#pragma once

#include <string>
#include <vector>

#include "config/device.hpp"
#include "net/topology.hpp"
#include "smt/solver.hpp"
#include "spec/ast.hpp"
#include "util/status.hpp"

namespace ns::explain {

struct VerificationFinding {
  std::string requirement;  ///< requirement block name
  std::string constraint;   ///< rendered violated constraint
  /// Candidate announcement paths the violated constraint talks about
  /// (extracted from the route-state variables it mentions).
  std::vector<std::string> paths;

  std::string ToString() const;
};

struct VerificationResult {
  std::vector<VerificationFinding> findings;
  /// Solver counters for the model-extraction query.
  smt::SolverStats solver_stats;
  bool ok() const noexcept { return findings.empty(); }
  std::string ToString() const;
};

/// Verifies `network` (hole-free) against `spec` by encoding, solving the
/// protocol-mechanics definitions (which have a unique model for a
/// concrete configuration), and evaluating every requirement constraint.
/// The definitions pin the model uniquely, so the findings are independent
/// of the solver backend.
util::Result<VerificationResult> VerifyWithEncoder(
    const net::Topology& topo, const spec::Spec& spec,
    const config::NetworkConfig& network,
    const smt::SolverOptions& solver_options = {});

}  // namespace ns::explain
