#include "explain/compile_cache.hpp"

#include <mutex>
#include <utility>

#include "util/status.hpp"

namespace ns::explain {

using smt::Expr;
using smt::Node;
using smt::Op;

FlatResidual FlattenResidual(std::span<const Expr> residual,
                             std::size_t frozen_limit) {
  FlatResidual flat;
  std::unordered_map<const Node*, std::uint32_t> index;

  const auto emit = [&](const Node* root) -> std::uint32_t {
    struct Frame {
      const Node* node;
      bool expanded;
    };
    std::vector<Frame> stack;
    stack.push_back({root, false});
    while (!stack.empty()) {
      const Node* node = stack.back().node;
      if (index.count(node) != 0) {
        stack.pop_back();
        continue;
      }
      if (node->id < frozen_limit) {
        FlatResidual::Instr instr;
        instr.ref = true;
        instr.value = node->id;
        index.emplace(node, static_cast<std::uint32_t>(flat.instrs.size()));
        flat.instrs.push_back(std::move(instr));
        stack.pop_back();
        continue;
      }
      if (!stack.back().expanded) {
        stack.back().expanded = true;
        for (const Node* child : node->children) {
          if (index.count(child) == 0) stack.push_back({child, false});
        }
        continue;
      }
      FlatResidual::Instr instr;
      instr.op = node->op;
      instr.sort = node->sort;
      instr.value = node->value;
      instr.name = node->name;
      instr.args.reserve(node->children.size());
      for (const Node* child : node->children) {
        instr.args.push_back(index.at(child));
      }
      index.emplace(node, static_cast<std::uint32_t>(flat.instrs.size()));
      flat.instrs.push_back(std::move(instr));
      stack.pop_back();
    }
    return index.at(root);
  };

  flat.roots.reserve(residual.size());
  for (Expr e : residual) flat.roots.push_back(emit(e.raw()));
  return flat;
}

std::vector<Expr> MaterializeResidual(smt::ExprPool& pool,
                                      const FlatResidual& flat) {
  std::vector<Expr> built;
  built.reserve(flat.instrs.size());
  for (const FlatResidual::Instr& instr : flat.instrs) {
    if (instr.ref) {
      built.push_back(Expr::FromRaw(
          pool.NodeById(static_cast<std::size_t>(instr.value))));
      continue;
    }
    const auto arg = [&](std::size_t i) { return built[instr.args[i]]; };
    switch (instr.op) {
      case Op::kBoolConst:
        built.push_back(pool.Bool(instr.value != 0));
        break;
      case Op::kIntConst:
        built.push_back(pool.Int(instr.value));
        break;
      case Op::kVar:
        built.push_back(pool.Var(instr.name, instr.sort));
        break;
      case Op::kNot:
        built.push_back(pool.Not(arg(0)));
        break;
      case Op::kAnd:
      case Op::kOr: {
        std::vector<Expr> operands;
        operands.reserve(instr.args.size());
        for (std::size_t i = 0; i < instr.args.size(); ++i) {
          operands.push_back(arg(i));
        }
        built.push_back(instr.op == Op::kAnd ? pool.And(operands)
                                             : pool.Or(operands));
        break;
      }
      case Op::kImplies:
        built.push_back(pool.Implies(arg(0), arg(1)));
        break;
      case Op::kIte:
        built.push_back(pool.Ite(arg(0), arg(1), arg(2)));
        break;
      case Op::kEq:
        built.push_back(pool.Eq(arg(0), arg(1)));
        break;
      case Op::kLt:
        built.push_back(pool.Lt(arg(0), arg(1)));
        break;
      case Op::kLe:
        built.push_back(pool.Le(arg(0), arg(1)));
        break;
      case Op::kAdd:
        built.push_back(pool.Add(arg(0), arg(1)));
        break;
      case Op::kSub:
        built.push_back(pool.Sub(arg(0), arg(1)));
        break;
      case Op::kMul:
        built.push_back(pool.Mul(arg(0), arg(1)));
        break;
    }
  }
  std::vector<Expr> out;
  out.reserve(flat.roots.size());
  for (std::uint32_t root : flat.roots) out.push_back(built[root]);
  return out;
}

CompileCache::Key CompileCache::KeyFor(const std::vector<Expr>& compiled) {
  Key key;
  key.reserve(compiled.size());
  for (Expr e : compiled) key.push_back(e.raw()->id);
  return key;
}

std::shared_ptr<const FlatResidual> CompileCache::Lookup(
    const Key& key) const {
  std::shared_lock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const FlatResidual> CompileCache::Insert(
    const Key& key, std::shared_ptr<const FlatResidual> flat) {
  NS_ASSERT(flat != nullptr);
  std::unique_lock lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  return entries_.emplace(key, std::move(flat)).first->second;
}

CompileCacheStats CompileCache::stats() const {
  CompileCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  {
    std::shared_lock lock(mu_);
    stats.entries = entries_.size();
  }
  return stats;
}

}  // namespace ns::explain
