#include "explain/pretty.hpp"

#include <map>
#include <sstream>

namespace ns::explain {

using smt::Expr;
using smt::Op;

namespace {

class Printer {
 public:
  Printer(const std::vector<config::HoleInfo>& holes,
          const synth::ValueTable& values)
      : values_(values) {
    for (const config::HoleInfo& info : holes) {
      types_.emplace(info.name, info.type);
    }
  }

  std::string Print(Expr e) {
    std::ostringstream os;
    Visit(os, e);
    return os.str();
  }

 private:
  /// The hole type of `e` if it is an explanation variable we know.
  std::optional<config::HoleType> TypeOf(Expr e) const {
    if (!e.IsVar()) return std::nullopt;
    const auto it = types_.find(e.name());
    if (it == types_.end()) return std::nullopt;
    return it->second;
  }

  /// Renders an integer constant in the value language of `type`.
  std::string Decode(config::HoleType type, std::int64_t value) const {
    auto decoded = values_.DecodeValue(type, value);
    if (!decoded.ok()) return std::to_string(value);  // out-of-domain
    return config::FormatHoleValue(decoded.value());
  }

  void Visit(std::ostringstream& os, Expr e) {
    switch (e.op()) {
      case Op::kBoolConst:
        os << (e.IsTrue() ? "true" : "false");
        return;
      case Op::kIntConst:
        os << e.value();
        return;
      case Op::kVar:
        os << e.name();
        return;
      case Op::kEq:
      case Op::kLt:
      case Op::kLe: {
        // If one side is a typed explanation variable and the other a
        // constant, decode the constant.
        const Expr a = e.Child(0);
        const Expr b = e.Child(1);
        const auto type_a = TypeOf(a);
        const auto type_b = TypeOf(b);
        if (type_a && b.IsIntConst()) {
          os << '(' << OpName(e.op()) << ' ' << a.name() << ' '
             << Decode(*type_a, b.value()) << ')';
          return;
        }
        if (type_b && a.IsIntConst()) {
          os << '(' << OpName(e.op()) << ' ' << Decode(*type_b, a.value())
             << ' ' << b.name() << ')';
          return;
        }
        break;
      }
      default:
        break;
    }
    os << '(' << OpName(e.op());
    for (std::size_t i = 0; i < e.NumChildren(); ++i) {
      os << ' ';
      Visit(os, e.Child(i));
    }
    os << ')';
  }

  const synth::ValueTable& values_;
  std::map<std::string, config::HoleType> types_;
};

}  // namespace

std::string PrettyConstraint(Expr e,
                             const std::vector<config::HoleInfo>& holes,
                             const synth::ValueTable& values) {
  return Printer(holes, values).Print(e);
}

}  // namespace ns::explain
