// RAII bridge from the expression IR to the native Z3 C++ API.
//
// One `Z3Session` wraps one z3::context plus a translation cache. All Z3
// types stay behind this interface — the rest of the library never includes
// z3++.h, so the solver could be swapped without touching the pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "util/status.hpp"

namespace ns::smt {

enum class Outcome { kSat, kUnsat, kUnknown };

const char* OutcomeName(Outcome outcome) noexcept;

class Z3Session {
 public:
  Z3Session();
  ~Z3Session();
  Z3Session(const Z3Session&) = delete;
  Z3Session& operator=(const Z3Session&) = delete;

  /// Checks satisfiability of the conjunction of `constraints`.
  Outcome CheckSat(std::span<const Expr> constraints);

  /// Checks satisfiability and, if sat, extracts values for `vars`
  /// (variables the model does not mention default to 0).
  util::Result<Assignment> Solve(std::span<const Expr> constraints,
                                 std::span<const Expr> vars);

  /// True iff `e` holds under every assignment.
  bool IsValid(Expr e);

  /// True iff `a` and `b` agree under every assignment.
  bool AreEquivalent(Expr a, Expr b);

  /// True iff `antecedent` implies `consequent` under every assignment.
  bool Implies(Expr antecedent, Expr consequent);

  /// Checks `hard ∧ labeled` and, when unsatisfiable, returns the labels
  /// of a conflicting subset of the labeled constraints (Z3 unsat core via
  /// assumption tracking; not guaranteed minimal). Returns an empty vector
  /// when satisfiable.
  util::Result<std::vector<std::string>> UnsatCore(
      std::span<const Expr> hard,
      std::span<const std::pair<std::string, Expr>> labeled);

  /// Baseline metric for E8: translates the conjunction to Z3, applies
  /// Z3's generic `simplify`, and reports the resulting AST node count.
  std::size_t GenericSimplifiedSize(std::span<const Expr> constraints);

  /// Same, but returns the textual form (for reports).
  std::string GenericSimplifiedText(std::span<const Expr> constraints);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ns::smt
