// Hash-consed two-sorted (Bool/Int) expression DAG.
//
// This IR is what the synthesizer's encoder emits, what the rewrite-rule
// simplifier operates on, and what the Z3 bridge translates for solving.
// Construction is deliberately *not* simplifying (beyond structural
// sharing): the paper's metric is "constraints before vs. after applying
// the rewrite rules", so building must preserve the raw encoded form.
//
// Nodes are owned by an ExprPool; `Expr` is a cheap value handle valid for
// the pool's lifetime. Structural equality is pointer equality.
//
// Hot-path caches: every node eagerly carries a 64-bit bloom mask of the
// free-variable symbols below it, and lazily caches its tree size, DAG
// size, and exact free-variable set. The caches live on the (pool-owned)
// nodes, so they share the pool's lifetime and its single-threaded
// discipline: one pool — and therefore one set of caches — per worker.
//
// Two-tier sharing (DESIGN.md §11): a finished pool can be Freeze()-d into
// an immutable, shareable ExprArena whose nodes are safe for lock-free
// concurrent reads (tree sizes and free-var sets are settled at freeze
// time; the DAG-size cache is a relaxed atomic). Per-request pools are
// then constructed as thin copy-on-write overlays over one arena: their
// intern tables consult the frozen tier first and allocate only
// request-local nodes, with node ids and symbol ids continuing exactly
// where the arena's stop — so an overlay replays the same id sequence a
// fresh pool would, and downstream output stays byte-identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"

namespace ns::smt {

enum class Sort : std::uint8_t { kBool, kInt };

enum class Op : std::uint8_t {
  // leaves
  kBoolConst,  // payload: value 0/1
  kIntConst,   // payload: value
  kVar,        // payload: symbol id (value) + name, sort
  // boolean connectives
  kNot,
  kAnd,  // n-ary, n >= 2
  kOr,   // n-ary, n >= 2
  kImplies,
  kIte,  // ite(cond, then, else); then/else share a sort
  // atoms
  kEq,  // polymorphic over the children's (equal) sort
  kLt,
  kLe,
  // integer arithmetic
  kAdd,
  kSub,
  kMul,
};

const char* OpName(Op op) noexcept;

class ExprPool;
class Expr;

/// Bit of symbol `id` in a node's free-variable bloom mask. A clear bit
/// guarantees the variable does not occur below the node; a set bit may be
/// a collision (ids are folded mod 64).
constexpr std::uint64_t VarMaskBit(std::uint32_t symbol) noexcept {
  return std::uint64_t{1} << (symbol & 63u);
}

struct Node {
  Op op;
  Sort sort;
  std::int64_t value = 0;      // kBoolConst / kIntConst; kVar: symbol id
  std::string name;            // kVar
  std::vector<const Node*> children;
  std::uint64_t hash = 0;      // precomputed structural hash
  std::uint32_t id = 0;        // creation index within the pool
  // Bloom mask over free-variable symbol ids, computed at intern time.
  std::uint64_t var_mask = 0;
  // Lazily computed caches (0 / null = not yet computed). Overlay-owned
  // nodes are single-threaded, so plain mutable members suffice there;
  // frozen (arena-owned) nodes have tree_size and free_vars settled at
  // freeze time and are never written again. dag_size is the one cache
  // still computed lazily on frozen nodes under concurrency: it is a
  // relaxed atomic, and the write is idempotent (every racer stores the
  // same deterministic value).
  mutable std::uint64_t tree_size = 0;
  mutable std::atomic<std::uint64_t> dag_size{0};
  mutable std::shared_ptr<const std::vector<const Node*>> free_vars;
};

/// Value handle to a pool-owned node.
class Expr {
 public:
  Expr() = default;

  bool IsNull() const noexcept { return node_ == nullptr; }
  Op op() const noexcept { return node_->op; }
  Sort sort() const noexcept { return node_->sort; }
  std::int64_t value() const noexcept { return node_->value; }
  const std::string& name() const noexcept { return node_->name; }
  std::uint32_t id() const noexcept { return node_->id; }
  /// Interned symbol id of a kVar node (pool-unique per variable name).
  std::uint32_t symbol() const noexcept {
    return static_cast<std::uint32_t>(node_->value);
  }
  /// Free-variable bloom mask (see VarMaskBit).
  std::uint64_t VarMask() const noexcept { return node_->var_mask; }

  std::size_t NumChildren() const noexcept { return node_->children.size(); }
  Expr Child(std::size_t i) const noexcept { return Expr(node_->children[i]); }
  /// Raw children view — no vector materialization; wrap entries with
  /// Expr::FromRaw. Preferred in hot loops over Children().
  std::span<const Node* const> ChildrenSpan() const noexcept {
    return node_->children;
  }
  std::vector<Expr> Children() const;

  bool IsBoolConst() const noexcept { return node_->op == Op::kBoolConst; }
  bool IsIntConst() const noexcept { return node_->op == Op::kIntConst; }
  bool IsConst() const noexcept { return IsBoolConst() || IsIntConst(); }
  bool IsVar() const noexcept { return node_->op == Op::kVar; }
  bool IsTrue() const noexcept { return IsBoolConst() && value() != 0; }
  bool IsFalse() const noexcept { return IsBoolConst() && value() == 0; }

  /// Structural equality == identity thanks to hash-consing.
  friend bool operator==(Expr a, Expr b) noexcept { return a.node_ == b.node_; }
  friend bool operator!=(Expr a, Expr b) noexcept { return a.node_ != b.node_; }
  /// Stable order by creation index (deterministic across runs).
  friend bool operator<(Expr a, Expr b) noexcept {
    return a.node_->id < b.node_->id;
  }

  const Node* raw() const noexcept { return node_; }
  /// Re-wraps a raw node pointer obtained from raw()/ChildrenSpan()/
  /// FreeVarNodes(). The node must belong to a live pool.
  static Expr FromRaw(const Node* node) noexcept { return Expr(node); }

  /// Number of nodes in the DAG reachable from this expression (shared
  /// nodes counted once). Cached per node after the first call.
  std::size_t DagSize() const;
  /// Number of nodes of the expression viewed as a tree (shared nodes
  /// counted at every occurrence). This is the "constraint size" metric.
  /// Cached per node after the first call.
  std::size_t TreeSize() const;
  /// Free variables, sorted by name (legacy contract; duplicate names are
  /// collapsed). Prefer FreeVarNodes() in hot paths — this copies + sorts.
  std::vector<Expr> FreeVars() const;
  /// Free-variable nodes below this expression, sorted by creation index
  /// and cached on the node: O(1) after the first call per node.
  std::span<const Node* const> FreeVarNodes() const;

  std::string ToString() const;  // SMT-LIB-ish, defined in printer.cpp

 private:
  friend class ExprPool;
  explicit Expr(const Node* node) noexcept : node_(node) {}
  const Node* node_ = nullptr;
};

struct ExprHash {
  std::size_t operator()(Expr e) const noexcept {
    return std::hash<const void*>{}(e.raw());
  }
};

namespace detail {

struct NodeKeyHash {
  std::size_t operator()(const Node* node) const noexcept {
    return node->hash;
  }
};
struct NodeKeyEq {
  // Variable identity is the interned symbol id carried in `value`, so
  // no std::string compares happen on the intern hot path.
  bool operator()(const Node* a, const Node* b) const noexcept {
    return a->op == b->op && a->sort == b->sort && a->value == b->value &&
           a->children == b->children;
  }
};
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace detail

/// Frozen tier of the two-tier pool design: an immutable snapshot of a
/// finished ExprPool, produced by ExprPool::Freeze(). Owns its nodes for
/// as long as any overlay (or stored Expr) references them; all accessors
/// are const and safe for lock-free concurrent reads. Node ids are the
/// dense range [0, NumNodes()) and symbol ids the dense range
/// [0, NumSymbols()), which overlay pools continue from.
class ExprArena {
 public:
  ExprArena(const ExprArena&) = delete;
  ExprArena& operator=(const ExprArena&) = delete;
  ~ExprArena();

  Expr True() const noexcept { return true_; }
  Expr False() const noexcept { return false_; }

  std::size_t NumNodes() const noexcept { return nodes_.size(); }
  std::size_t NumSymbols() const noexcept { return vars_by_symbol_.size(); }

  /// Frozen-tier intern lookup for a probe node whose hash/children are
  /// already set. Returns nullptr when the shape is not frozen here.
  const Node* Lookup(const Node* probe) const {
    const auto it = interned_.find(probe);
    return it == interned_.end() ? nullptr : it->second;
  }
  /// Symbol id for a variable name interned in the frozen tier, if any.
  std::optional<std::uint32_t> FindSymbol(std::string_view name) const {
    const auto it = symbol_ids_.find(name);
    if (it == symbol_ids_.end()) return std::nullopt;
    return it->second;
  }
  /// The frozen kVar node for (symbol, sort), or nullptr when that sort
  /// was never interned for the symbol before the freeze.
  const Node* VarSlot(std::uint32_t symbol, Sort sort) const {
    return vars_by_symbol_[symbol][static_cast<std::size_t>(sort)];
  }
  /// The frozen node with creation index `id`; requires id < NumNodes().
  /// Node ids are dense, so this is how pool-independent snapshots (the
  /// lift compile cache's flattened residuals) resolve frozen references.
  const Node* NodeById(std::size_t id) const noexcept {
    return nodes_[id].get();
  }

 private:
  friend class ExprPool;
  ExprArena();

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<const Node*, const Node*, detail::NodeKeyHash,
                     detail::NodeKeyEq>
      interned_;
  std::unordered_map<std::string, std::uint32_t, detail::StringHash,
                     std::equal_to<>>
      symbol_ids_;
  std::vector<std::array<const Node*, 2>> vars_by_symbol_;
  Expr true_;
  Expr false_;
};

/// Owns nodes and guarantees structural uniqueness (hash-consing).
/// Not thread-safe; one pool per pipeline run / per worker thread.
/// An overlay pool (constructed over a frozen ExprArena) adds only the
/// single-threaded request-local tier on top of the arena's lock-free
/// frozen tier.
class ExprPool {
 public:
  ExprPool();
  /// Copy-on-write overlay over a frozen arena: interning consults the
  /// frozen tier first and allocates only nodes (and symbols) the arena
  /// does not already hold, with ids continuing from the arena's. The
  /// overlay keeps the arena alive.
  explicit ExprPool(std::shared_ptr<const ExprArena> arena);
  ExprPool(const ExprPool&) = delete;
  ExprPool& operator=(const ExprPool&) = delete;
  ~ExprPool();

  Expr True() noexcept { return true_; }
  Expr False() noexcept { return false_; }
  Expr Bool(bool value) noexcept { return value ? true_ : false_; }
  Expr Int(std::int64_t value);
  Expr Var(std::string_view name, Sort sort);

  Expr Not(Expr a);
  /// N-ary conjunction/disjunction. Requires >= 1 operand; a single operand
  /// is returned unchanged (no unary And nodes).
  Expr And(std::span<const Expr> operands);
  Expr And(std::initializer_list<Expr> operands);
  Expr Or(std::span<const Expr> operands);
  Expr Or(std::initializer_list<Expr> operands);
  Expr Implies(Expr a, Expr b);
  Expr Ite(Expr cond, Expr then_e, Expr else_e);

  Expr Eq(Expr a, Expr b);
  Expr Ne(Expr a, Expr b) { return Not(Eq(a, b)); }
  Expr Lt(Expr a, Expr b);
  Expr Le(Expr a, Expr b);
  Expr Gt(Expr a, Expr b) { return Lt(b, a); }
  Expr Ge(Expr a, Expr b) { return Le(b, a); }

  Expr Add(Expr a, Expr b);
  Expr Sub(Expr a, Expr b);
  Expr Mul(Expr a, Expr b);

  /// Symbol id for a variable name already interned in this pool (or, for
  /// an overlay, in its frozen arena), if any.
  std::optional<std::uint32_t> FindSymbol(std::string_view name) const;
  /// Number of distinct variable names interned (frozen + local tiers).
  std::size_t NumSymbols() const noexcept {
    return base_symbols_ + vars_by_symbol_.size();
  }

  /// Capacity introspection (bench metrics): total nodes reachable through
  /// this pool — for an overlay, frozen + request-local.
  std::size_t NumNodes() const noexcept {
    return base_nodes_ + nodes_.size();
  }
  /// Nodes owned by this pool itself (excluding any frozen arena's).
  std::size_t NumOverlayNodes() const noexcept { return nodes_.size(); }
  /// Nodes held by the frozen arena under this overlay (0 for root pools).
  std::size_t NumFrozenNodes() const noexcept { return base_nodes_; }

  /// The frozen arena this overlay reads through (null for root pools).
  const std::shared_ptr<const ExprArena>& arena() const noexcept {
    return arena_;
  }

  /// The node with creation index `id` across both tiers (frozen arena
  /// first, then local); requires id < NumNodes().
  const Node* NodeById(std::size_t id) const noexcept {
    if (id < base_nodes_) return arena_->NodeById(id);
    return nodes_[id - base_nodes_].get();
  }

  /// Settles the lazy per-node caches (tree sizes, free-var sets) of the
  /// local tier — the same in-order sweep Freeze() runs — so this pool's
  /// nodes can be read from multiple threads afterwards, provided nothing
  /// interns further nodes while those readers run. Used by the portfolio
  /// lift driver before racing solver strategies over one overlay.
  void SettleCaches() const;

  /// Freezes a root pool into an immutable, shareable arena. Moves the
  /// node store out: this pool must not be used afterwards. Settles every
  /// lazy per-node cache (tree sizes, free-var sets) so concurrent
  /// readers of the frozen tier never write.
  std::shared_ptr<const ExprArena> Freeze();

 private:
  Expr Intern(Op op, Sort sort, std::int64_t value, std::string name,
              std::vector<const Node*> children);

  std::shared_ptr<const ExprArena> arena_;  // null for root pools
  std::size_t base_nodes_ = 0;              // arena_->NumNodes() or 0
  std::uint32_t base_symbols_ = 0;          // arena_->NumSymbols() or 0
  bool frozen_ = false;                     // Freeze() was called

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<const Node*, const Node*, detail::NodeKeyHash,
                     detail::NodeKeyEq>
      interned_;
  // Variable-name interning: name -> dense symbol id, plus a per-sort
  // fast path so repeated Var() calls skip hashing a probe node. An
  // overlay's tables hold only symbols the arena does not know;
  // vars_by_symbol_ is indexed by (symbol - base_symbols_).
  std::unordered_map<std::string, std::uint32_t, detail::StringHash,
                     std::equal_to<>>
      symbol_ids_;
  std::vector<std::array<const Node*, 2>> vars_by_symbol_;
  // Per-sort var slots for *arena* symbols whose other sort was never
  // frozen (rare: the overlay interns a new sort for a frozen name).
  std::unordered_map<std::uint64_t, const Node*> arena_symbol_slots_;
  Expr true_;
  Expr false_;
};

/// Substitution environment keyed by interned symbol id (see Expr::symbol).
using SymbolEnv = std::unordered_map<std::uint32_t, Expr>;

/// Substitutes variables by expressions throughout `e` (parallel
/// substitution; results are pool-interned). Used by partial evaluation.
/// Subtrees whose variable mask is disjoint from the environment are
/// returned untouched without being traversed.
Expr Substitute(ExprPool& pool, Expr e, const SymbolEnv& env);

/// Name-keyed convenience overload: names unknown to the pool cannot occur
/// in `e` and are ignored.
Expr Substitute(ExprPool& pool, Expr e,
                const std::unordered_map<std::string, Expr>& env);

}  // namespace ns::smt
