#include "smt/z3bridge.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <unordered_map>

#include <z3++.h>

namespace ns::smt {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* OutcomeName(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kSat: return "sat";
    case Outcome::kUnsat: return "unsat";
    case Outcome::kUnknown: return "unknown";
  }
  return "?";
}

struct Z3Session::Impl {
  z3::context ctx;
  std::unordered_map<const Node*, z3::expr> cache;

  z3::expr Translate(Expr e) {
    const auto it = cache.find(e.raw());
    if (it != cache.end()) return it->second;

    z3::expr result(ctx);
    switch (e.op()) {
      case Op::kBoolConst:
        result = ctx.bool_val(e.IsTrue());
        break;
      case Op::kIntConst:
        result = ctx.int_val(static_cast<std::int64_t>(e.value()));
        break;
      case Op::kVar:
        result = e.sort() == Sort::kBool
                     ? ctx.bool_const(e.name().c_str())
                     : ctx.int_const(e.name().c_str());
        break;
      case Op::kNot:
        result = !Translate(e.Child(0));
        break;
      case Op::kAnd: {
        z3::expr_vector parts(ctx);
        for (std::size_t i = 0; i < e.NumChildren(); ++i) {
          parts.push_back(Translate(e.Child(i)));
        }
        result = z3::mk_and(parts);
        break;
      }
      case Op::kOr: {
        z3::expr_vector parts(ctx);
        for (std::size_t i = 0; i < e.NumChildren(); ++i) {
          parts.push_back(Translate(e.Child(i)));
        }
        result = z3::mk_or(parts);
        break;
      }
      case Op::kImplies:
        result = z3::implies(Translate(e.Child(0)), Translate(e.Child(1)));
        break;
      case Op::kIte:
        result = z3::ite(Translate(e.Child(0)), Translate(e.Child(1)),
                         Translate(e.Child(2)));
        break;
      case Op::kEq:
        result = Translate(e.Child(0)) == Translate(e.Child(1));
        break;
      case Op::kLt:
        result = Translate(e.Child(0)) < Translate(e.Child(1));
        break;
      case Op::kLe:
        result = Translate(e.Child(0)) <= Translate(e.Child(1));
        break;
      case Op::kAdd:
        result = Translate(e.Child(0)) + Translate(e.Child(1));
        break;
      case Op::kSub:
        result = Translate(e.Child(0)) - Translate(e.Child(1));
        break;
      case Op::kMul:
        result = Translate(e.Child(0)) * Translate(e.Child(1));
        break;
    }
    cache.emplace(e.raw(), result);
    return result;
  }

  z3::expr Conjunction(std::span<const Expr> constraints) {
    z3::expr_vector parts(ctx);
    for (Expr e : constraints) parts.push_back(Translate(e));
    return parts.empty() ? ctx.bool_val(true) : z3::mk_and(parts);
  }

  static std::size_t AstSize(const z3::expr& e) {
    // Tree-size over the Z3 AST, memoized on node ids (DAG-aware walk,
    // tree-size metric to match Expr::TreeSize).
    std::unordered_map<unsigned, std::size_t> memo;
    std::function<std::size_t(const z3::expr&)> go =
        [&](const z3::expr& cur) -> std::size_t {
      const unsigned id = Z3_get_ast_id(cur.ctx(), cur);
      const auto it = memo.find(id);
      if (it != memo.end()) return it->second;
      std::size_t total = 1;
      if (cur.is_app()) {
        for (unsigned i = 0; i < cur.num_args(); ++i) {
          total += go(cur.arg(i));
        }
      }
      memo.emplace(id, total);
      return total;
    };
    return go(e);
  }
};

Z3Session::Z3Session() : impl_(std::make_unique<Impl>()) {}
Z3Session::~Z3Session() = default;

Outcome Z3Session::CheckSat(std::span<const Expr> constraints) {
  z3::solver solver(impl_->ctx);
  for (Expr e : constraints) solver.add(impl_->Translate(e));
  switch (solver.check()) {
    case z3::sat: return Outcome::kSat;
    case z3::unsat: return Outcome::kUnsat;
    default: return Outcome::kUnknown;
  }
}

Result<Assignment> Z3Session::Solve(std::span<const Expr> constraints,
                                    std::span<const Expr> vars) {
  z3::solver solver(impl_->ctx);
  for (Expr e : constraints) solver.add(impl_->Translate(e));
  const auto verdict = solver.check();
  if (verdict == z3::unsat) {
    return Error(ErrorCode::kUnsat, "constraints are unsatisfiable");
  }
  if (verdict != z3::sat) {
    return Error(ErrorCode::kInternal, "Z3 returned unknown");
  }
  const z3::model model = solver.get_model();
  Assignment assignment;
  for (Expr var : vars) {
    NS_ASSERT(var.IsVar());
    const z3::expr value = model.eval(impl_->Translate(var),
                                      /*model_completion=*/true);
    std::int64_t out = 0;
    if (value.is_bool()) {
      out = value.bool_value() == Z3_L_TRUE ? 1 : 0;
    } else {
      out = value.get_numeral_int64();
    }
    assignment[var.name()] = out;
  }
  return assignment;
}

bool Z3Session::IsValid(Expr e) {
  z3::solver solver(impl_->ctx);
  solver.add(!impl_->Translate(e));
  return solver.check() == z3::unsat;
}

bool Z3Session::AreEquivalent(Expr a, Expr b) {
  z3::solver solver(impl_->ctx);
  solver.add(impl_->Translate(a) != impl_->Translate(b));
  return solver.check() == z3::unsat;
}

bool Z3Session::Implies(Expr antecedent, Expr consequent) {
  z3::solver solver(impl_->ctx);
  solver.add(impl_->Translate(antecedent));
  solver.add(!impl_->Translate(consequent));
  return solver.check() == z3::unsat;
}

Result<std::vector<std::string>> Z3Session::UnsatCore(
    std::span<const Expr> hard,
    std::span<const std::pair<std::string, Expr>> labeled) {
  z3::solver solver(impl_->ctx);
  for (Expr e : hard) solver.add(impl_->Translate(e));

  // Assumption tracking: label_i => constraint_i, check under the labels.
  z3::expr_vector assumptions(impl_->ctx);
  std::map<unsigned, std::string> by_id;
  for (const auto& [label, constraint] : labeled) {
    const std::string marker = "!core!" + label;
    const z3::expr tracker = impl_->ctx.bool_const(marker.c_str());
    solver.add(z3::implies(tracker, impl_->Translate(constraint)));
    assumptions.push_back(tracker);
    by_id.emplace(Z3_get_ast_id(impl_->ctx, tracker), label);
  }

  const auto verdict = solver.check(assumptions);
  if (verdict == z3::sat) return std::vector<std::string>{};
  if (verdict != z3::unsat) {
    return Error(ErrorCode::kInternal, "Z3 returned unknown during core "
                                       "extraction");
  }
  std::set<std::string> labels;
  const z3::expr_vector core = solver.unsat_core();
  for (unsigned i = 0; i < core.size(); ++i) {
    const auto it = by_id.find(Z3_get_ast_id(impl_->ctx, core[i]));
    if (it != by_id.end()) labels.insert(it->second);
  }
  return std::vector<std::string>(labels.begin(), labels.end());
}

std::size_t Z3Session::GenericSimplifiedSize(std::span<const Expr> constraints) {
  const z3::expr simplified = impl_->Conjunction(constraints).simplify();
  return Impl::AstSize(simplified);
}

std::string Z3Session::GenericSimplifiedText(std::span<const Expr> constraints) {
  const z3::expr simplified = impl_->Conjunction(constraints).simplify();
  std::ostringstream os;
  os << simplified;
  return os.str();
}

}  // namespace ns::smt
