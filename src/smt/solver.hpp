// Incremental, multi-backend solver layer.
//
// `Z3Session` (z3bridge.hpp) answers one-shot questions: every call stands
// up a fresh z3::solver and re-asserts everything. That is the right shape
// for single queries (verification's one model extraction) but the wrong
// shape for the lift search, which discharges O(candidates) implication
// checks against the same `domain ∧ target` prefix. This header abstracts
// the solver behind a session interface with an explicit assertion stack —
// the percy pattern of composing interchangeable encoders and solvers —
// and provides three backends:
//
//   kFreshZ3        a fresh z3::solver per query over the shared
//                   translation cache: byte-for-byte the behavior of the
//                   pre-interface code, kept as the differential baseline.
//   kIncrementalZ3  one z3::solver per session; the assertion stack maps
//                   onto Z3 push/pop frames, so the shared prefix is
//                   translated and asserted once and every query runs
//                   under a cheap scoped frame.
//   kFastPath       a memoizing DPLL-style boolean engine over the pool IR
//                   (reusing the interned symbol ids, per-node bloom masks
//                   and cached free-variable sets) discharges purely
//                   boolean queries — the residues the simplifier usually
//                   leaves — without entering Z3 at all; anything with an
//                   integer atom, plus searches that exhaust the decision
//                   budget (kUnknown), falls back to a mirrored
//                   kIncrementalZ3 session.
//
// All three backends are *verdict-identical* on the repo's fragment
// (quantifier-free booleans + linear integer arithmetic is decidable):
// the lift/verify answers must not depend on the backend, and the
// equivalence tests plus the netfuzz `solver-differential` oracle pin
// that down.
//
// Threading: a Solver and its sessions are single-threaded, tied to the
// pool whose expressions they receive (same discipline as ExprPool — one
// solver per worker). Sessions share the owning Solver's z3 context,
// translation cache and memo tables; per-query stats aggregate on the
// Solver.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "smt/expr.hpp"
#include "smt/z3bridge.hpp"  // Outcome, Assignment
#include "util/status.hpp"

namespace ns::smt {

enum class SolverBackend {
  kFreshZ3,        ///< fresh z3::solver per query (pre-interface baseline)
  kIncrementalZ3,  ///< one z3::solver, assertion stack = push/pop frames
  kFastPath,       ///< boolean DPLL over the IR, kIncrementalZ3 fallback
};

const char* SolverBackendName(SolverBackend backend) noexcept;
util::Result<SolverBackend> ParseSolverBackend(std::string_view name);

struct SolverOptions {
  SolverBackend backend = SolverBackend::kFastPath;
  /// Decision budget for one boolean fast-path search; exhausting it
  /// yields kUnknown and the query falls back to Z3. The residues the
  /// lift search discharges are tiny (a handful of variables), so the
  /// default is generous.
  std::uint32_t max_decisions = 4096;
};

/// Per-query counters, aggregated on the owning Solver across all of its
/// sessions. POD so callers can copy them into reports after the solver
/// (and the pool) are gone.
struct SolverStats {
  std::uint64_t queries = 0;         ///< CheckSat/Implies/Solve discharged
  std::uint64_t assertions = 0;      ///< persistent Assert() calls
  std::uint64_t fast_path_hits = 0;  ///< answered by the boolean engine
  std::uint64_t fast_path_fallbacks = 0;  ///< tried the engine, punted to
                                          ///< Z3 (decision budget, unknown
                                          ///< impure slice)
  std::uint64_t fast_path_ineligible = 0;  ///< never tried: impure query
                                           ///< operands, or the stack's
                                           ///< integer slice shares
                                           ///< variables with the boolean
                                           ///< part
  std::uint64_t memo_hits = 0;       ///< boolean queries answered from memo
  std::uint64_t z3_queries = 0;      ///< checks that reached a Z3 solver
  std::uint64_t frame_reuse = 0;     ///< queries discharged on a session
                                     ///< with a warm (non-empty) assertion
                                     ///< stack — the push/pop savings
  double wall_ms = 0;                ///< total time inside the solver layer

  SolverStats& operator+=(const SolverStats& other) noexcept;
  friend bool operator==(const SolverStats&, const SolverStats&) = default;
};

/// One assertion stack. Queries are answered against the conjunction of
/// everything asserted on the stack plus the query's own operands; the
/// stack survives between queries, which is the whole point.
class SolverSession {
 public:
  virtual ~SolverSession() = default;

  /// Opens / closes a scoped frame; Pop retracts every Assert since the
  /// matching Push.
  virtual void Push() = 0;
  virtual void Pop() = 0;

  /// Asserts `e` at the current frame.
  virtual void Assert(Expr e) = 0;

  /// Satisfiability of stack ∧ extra.
  virtual Outcome CheckSat(std::span<const Expr> extra) = 0;
  Outcome CheckSat() { return CheckSat({}); }

  /// True iff stack ∧ antecedent implies `consequent` (i.e. stack ∧
  /// antecedent ∧ ¬consequent is unsat). kUnknown counts as "not implied",
  /// matching Z3Session::Implies.
  virtual bool Implies(std::span<const Expr> antecedent, Expr consequent) = 0;
  bool Implies(Expr consequent) { return Implies({}, consequent); }

  /// Solves stack ∧ extra and extracts values for `vars` (variables the
  /// model does not mention default to 0, like Z3Session::Solve). Always
  /// answered by Z3 — model extraction is not on the fast path.
  virtual util::Result<Assignment> Solve(std::span<const Expr> extra,
                                         std::span<const Expr> vars) = 0;
};

/// Owns the backend state shared by its sessions: one z3 context, the
/// IR→Z3 translation cache, the boolean engine's purity and query memos.
class Solver {
 public:
  explicit Solver(const SolverOptions& options = {});
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// New empty assertion stack sharing this solver's caches. The session
  /// must not outlive the Solver.
  std::unique_ptr<SolverSession> NewSession();

  const SolverOptions& options() const noexcept;
  /// Counters aggregated across every session of this solver.
  const SolverStats& stats() const noexcept;

  /// Cooperative cancellation (thread-safe, callable from another thread):
  /// in-flight and future queries on this solver return conservative
  /// verdicts (kUnknown / "not implied") as soon as possible, and the
  /// boolean memo stops recording so an interrupted search never poisons
  /// it. Once interrupted a solver's answers are only good for abandoning
  /// the work — the portfolio lift driver uses this to stop losing
  /// strategies; a solver whose verdicts still matter must never be
  /// interrupted.
  void Interrupt();
  bool interrupted() const noexcept;

  /// Baseline metric for E8 (kept API-compatible with Z3Session): Z3's
  /// generic `simplify` over the conjunction, measured as tree size.
  std::size_t GenericSimplifiedSize(std::span<const Expr> constraints);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ns::smt
