#include "smt/eval.hpp"

#include <functional>
#include <unordered_map>

namespace ns::smt {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<std::int64_t> Eval(Expr e, const Assignment& env) {
  std::unordered_map<const Node*, std::int64_t> memo;
  std::optional<Error> failure;

  std::function<std::int64_t(Expr)> go = [&](Expr cur) -> std::int64_t {
    if (failure) return 0;
    const auto it = memo.find(cur.raw());
    if (it != memo.end()) return it->second;

    std::int64_t result = 0;
    switch (cur.op()) {
      case Op::kBoolConst:
      case Op::kIntConst:
        result = cur.value();
        break;
      case Op::kVar: {
        const auto env_it = env.find(cur.name());
        if (env_it == env.end()) {
          failure = Error(ErrorCode::kNotFound,
                          "unassigned variable '" + cur.name() + "'");
          return 0;
        }
        result = env_it->second;
        break;
      }
      case Op::kNot:
        result = go(cur.Child(0)) == 0 ? 1 : 0;
        break;
      case Op::kAnd: {
        result = 1;
        for (std::size_t i = 0; i < cur.NumChildren(); ++i) {
          if (go(cur.Child(i)) == 0) {
            result = 0;
            break;
          }
        }
        break;
      }
      case Op::kOr: {
        result = 0;
        for (std::size_t i = 0; i < cur.NumChildren(); ++i) {
          if (go(cur.Child(i)) != 0) {
            result = 1;
            break;
          }
        }
        break;
      }
      case Op::kImplies:
        result = (go(cur.Child(0)) == 0 || go(cur.Child(1)) != 0) ? 1 : 0;
        break;
      case Op::kIte:
        result = go(cur.Child(0)) != 0 ? go(cur.Child(1)) : go(cur.Child(2));
        break;
      case Op::kEq:
        result = go(cur.Child(0)) == go(cur.Child(1)) ? 1 : 0;
        break;
      case Op::kLt:
        result = go(cur.Child(0)) < go(cur.Child(1)) ? 1 : 0;
        break;
      case Op::kLe:
        result = go(cur.Child(0)) <= go(cur.Child(1)) ? 1 : 0;
        break;
      case Op::kAdd:
        result = go(cur.Child(0)) + go(cur.Child(1));
        break;
      case Op::kSub:
        result = go(cur.Child(0)) - go(cur.Child(1));
        break;
      case Op::kMul:
        result = go(cur.Child(0)) * go(cur.Child(1));
        break;
    }
    memo.emplace(cur.raw(), result);
    return result;
  };

  const std::int64_t value = go(e);
  if (failure) return *failure;
  return value;
}

}  // namespace ns::smt
