// Concrete evaluation of expressions under a full assignment. Used by
// property tests to cross-check the simplifier and the Z3 bridge.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "smt/expr.hpp"
#include "util/status.hpp"

namespace ns::smt {

/// Assignment: variable name -> value (bools as 0/1).
using Assignment = std::map<std::string, std::int64_t>;

/// Evaluates `e` under `env`. Fails (kNotFound) on an unassigned variable.
util::Result<std::int64_t> Eval(Expr e, const Assignment& env);

}  // namespace ns::smt
