#include <sstream>

#include "smt/expr.hpp"

namespace ns::smt {

namespace {
void Print(std::ostringstream& os, Expr e) {
  switch (e.op()) {
    case Op::kBoolConst:
      os << (e.IsTrue() ? "true" : "false");
      return;
    case Op::kIntConst:
      os << e.value();
      return;
    case Op::kVar:
      os << e.name();
      return;
    default:
      break;
  }
  os << '(' << OpName(e.op());
  for (std::size_t i = 0; i < e.NumChildren(); ++i) {
    os << ' ';
    Print(os, e.Child(i));
  }
  os << ')';
}
}  // namespace

std::string Expr::ToString() const {
  std::ostringstream os;
  Print(os, *this);
  return os.str();
}

}  // namespace ns::smt
