#include "smt/expr.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace ns::smt {

const char* OpName(Op op) noexcept {
  switch (op) {
    case Op::kBoolConst: return "bool";
    case Op::kIntConst: return "int";
    case Op::kVar: return "var";
    case Op::kNot: return "not";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kImplies: return "=>";
    case Op::kIte: return "ite";
    case Op::kEq: return "=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
  }
  return "?";
}

namespace {

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

std::uint64_t NodeHash(const Node& node) noexcept {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(node.op),
                                static_cast<std::uint64_t>(node.sort) + 17);
  h = HashCombine(h, static_cast<std::uint64_t>(node.value));
  h = HashCombine(h, std::hash<std::string>{}(node.name));
  for (const Node* child : node.children) {
    h = HashCombine(h, child->hash);
  }
  return h;
}

}  // namespace

ExprPool::ExprPool() {
  true_ = Intern(Op::kBoolConst, Sort::kBool, 1, {}, {});
  false_ = Intern(Op::kBoolConst, Sort::kBool, 0, {}, {});
}

ExprPool::~ExprPool() = default;

Expr ExprPool::Intern(Op op, Sort sort, std::int64_t value, std::string name,
                      std::vector<const Node*> children) {
  auto node = std::make_unique<Node>();
  node->op = op;
  node->sort = sort;
  node->value = value;
  node->name = std::move(name);
  node->children = std::move(children);
  node->hash = NodeHash(*node);

  const auto it = interned_.find(node.get());
  if (it != interned_.end()) return Expr(it->second);

  node->id = static_cast<std::uint32_t>(nodes_.size());
  const Node* raw = node.get();
  nodes_.push_back(std::move(node));
  interned_.emplace(raw, raw);
  return Expr(raw);
}

Expr ExprPool::Int(std::int64_t value) {
  return Intern(Op::kIntConst, Sort::kInt, value, {}, {});
}

Expr ExprPool::Var(std::string_view name, Sort sort) {
  return Intern(Op::kVar, sort, 0, std::string(name), {});
}

Expr ExprPool::Not(Expr a) {
  NS_ASSERT(a.sort() == Sort::kBool);
  return Intern(Op::kNot, Sort::kBool, 0, {}, {a.raw()});
}

Expr ExprPool::And(std::span<const Expr> operands) {
  NS_ASSERT_MSG(!operands.empty(), "And of zero operands");
  if (operands.size() == 1) return operands.front();
  std::vector<const Node*> children;
  children.reserve(operands.size());
  for (Expr e : operands) {
    NS_ASSERT(e.sort() == Sort::kBool);
    children.push_back(e.raw());
  }
  return Intern(Op::kAnd, Sort::kBool, 0, {}, std::move(children));
}

Expr ExprPool::And(std::initializer_list<Expr> operands) {
  return And(std::span<const Expr>(operands.begin(), operands.size()));
}

Expr ExprPool::Or(std::span<const Expr> operands) {
  NS_ASSERT_MSG(!operands.empty(), "Or of zero operands");
  if (operands.size() == 1) return operands.front();
  std::vector<const Node*> children;
  children.reserve(operands.size());
  for (Expr e : operands) {
    NS_ASSERT(e.sort() == Sort::kBool);
    children.push_back(e.raw());
  }
  return Intern(Op::kOr, Sort::kBool, 0, {}, std::move(children));
}

Expr ExprPool::Or(std::initializer_list<Expr> operands) {
  return Or(std::span<const Expr>(operands.begin(), operands.size()));
}

Expr ExprPool::Implies(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kBool && b.sort() == Sort::kBool);
  return Intern(Op::kImplies, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Ite(Expr cond, Expr then_e, Expr else_e) {
  NS_ASSERT(cond.sort() == Sort::kBool);
  NS_ASSERT(then_e.sort() == else_e.sort());
  return Intern(Op::kIte, then_e.sort(), 0, {},
                {cond.raw(), then_e.raw(), else_e.raw()});
}

Expr ExprPool::Eq(Expr a, Expr b) {
  NS_ASSERT(a.sort() == b.sort());
  // Orient commutative atoms by node id so `x = y` and `y = x` intern to
  // the same node (this is canonicalization of *identity*, not rewriting —
  // it does not change sizes).
  if (b < a) std::swap(a, b);
  return Intern(Op::kEq, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Lt(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kLt, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Le(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kLe, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Add(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  if (b < a) std::swap(a, b);
  return Intern(Op::kAdd, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Sub(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kSub, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Mul(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  if (b < a) std::swap(a, b);
  return Intern(Op::kMul, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

std::vector<Expr> Expr::Children() const {
  std::vector<Expr> out;
  out.reserve(node_->children.size());
  for (const Node* child : node_->children) out.push_back(Expr(child));
  return out;
}

std::size_t Expr::DagSize() const {
  std::set<const Node*> seen;
  std::vector<const Node*> stack{node_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const Node* child : n->children) stack.push_back(child);
  }
  return seen.size();
}

std::size_t Expr::TreeSize() const {
  // Memoized over the DAG: tree size of a node = 1 + sum of children's.
  std::map<const Node*, std::size_t> memo;
  std::function<std::size_t(const Node*)> go = [&](const Node* n) -> std::size_t {
    const auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    std::size_t total = 1;
    for (const Node* child : n->children) total += go(child);
    memo[n] = total;
    return total;
  };
  return go(node_);
}

std::vector<Expr> Expr::FreeVars() const {
  std::set<const Node*> seen;
  std::map<std::string, Expr> vars;
  std::vector<const Node*> stack{node_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->op == Op::kVar) vars.emplace(n->name, Expr(n));
    for (const Node* child : n->children) stack.push_back(child);
  }
  std::vector<Expr> out;
  out.reserve(vars.size());
  for (const auto& [name, e] : vars) out.push_back(e);
  return out;
}

Expr Substitute(ExprPool& pool, Expr e,
                const std::unordered_map<std::string, Expr>& env) {
  std::unordered_map<const Node*, Expr> memo;
  std::function<Expr(Expr)> go = [&](Expr cur) -> Expr {
    const auto it = memo.find(cur.raw());
    if (it != memo.end()) return it->second;
    Expr result = cur;
    if (cur.IsVar()) {
      const auto env_it = env.find(cur.name());
      if (env_it != env.end()) {
        NS_ASSERT_MSG(env_it->second.sort() == cur.sort(),
                      "substitution changes sort of " + cur.name());
        result = env_it->second;
      }
    } else if (cur.NumChildren() > 0) {
      std::vector<Expr> children;
      children.reserve(cur.NumChildren());
      bool changed = false;
      for (std::size_t i = 0; i < cur.NumChildren(); ++i) {
        Expr child = go(cur.Child(i));
        changed = changed || child != cur.Child(i);
        children.push_back(child);
      }
      if (changed) {
        switch (cur.op()) {
          case Op::kNot: result = pool.Not(children[0]); break;
          case Op::kAnd: result = pool.And(children); break;
          case Op::kOr: result = pool.Or(children); break;
          case Op::kImplies:
            result = pool.Implies(children[0], children[1]);
            break;
          case Op::kIte:
            result = pool.Ite(children[0], children[1], children[2]);
            break;
          case Op::kEq: result = pool.Eq(children[0], children[1]); break;
          case Op::kLt: result = pool.Lt(children[0], children[1]); break;
          case Op::kLe: result = pool.Le(children[0], children[1]); break;
          case Op::kAdd: result = pool.Add(children[0], children[1]); break;
          case Op::kSub: result = pool.Sub(children[0], children[1]); break;
          case Op::kMul: result = pool.Mul(children[0], children[1]); break;
          default:
            NS_ASSERT_MSG(false, "substitute: unexpected op");
        }
      }
    }
    memo.emplace(cur.raw(), result);
    return result;
  };
  return go(e);
}

}  // namespace ns::smt
