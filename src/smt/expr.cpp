#include "smt/expr.hpp"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace ns::smt {

const char* OpName(Op op) noexcept {
  switch (op) {
    case Op::kBoolConst: return "bool";
    case Op::kIntConst: return "int";
    case Op::kVar: return "var";
    case Op::kNot: return "not";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kImplies: return "=>";
    case Op::kIte: return "ite";
    case Op::kEq: return "=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
  }
  return "?";
}

namespace {

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

std::uint64_t NodeHash(const Node& node) noexcept {
  // Variables hash through their interned symbol id (in `value`), never
  // through the name string.
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(node.op),
                                static_cast<std::uint64_t>(node.sort) + 17);
  h = HashCombine(h, static_cast<std::uint64_t>(node.value));
  for (const Node* child : node.children) {
    h = HashCombine(h, child->hash);
  }
  return h;
}

}  // namespace

ExprArena::ExprArena() = default;

ExprArena::~ExprArena() = default;

ExprPool::ExprPool() {
  true_ = Intern(Op::kBoolConst, Sort::kBool, 1, {}, {});
  false_ = Intern(Op::kBoolConst, Sort::kBool, 0, {}, {});
}

ExprPool::ExprPool(std::shared_ptr<const ExprArena> arena)
    : arena_(std::move(arena)),
      base_nodes_(arena_->NumNodes()),
      base_symbols_(static_cast<std::uint32_t>(arena_->NumSymbols())),
      true_(arena_->True()),
      false_(arena_->False()) {}

ExprPool::~ExprPool() = default;

void ExprPool::SettleCaches() const {
  // Node ids order children before parents (frozen-tier children were
  // settled at Freeze() time), so one in-order pass over the local tier
  // computes each node's tree size and free-var set in O(children).
  for (const auto& node : nodes_) {
    const Expr e = Expr::FromRaw(node.get());
    e.TreeSize();
    e.FreeVarNodes();
  }
}

std::shared_ptr<const ExprArena> ExprPool::Freeze() {
  NS_ASSERT_MSG(arena_ == nullptr, "cannot freeze an overlay pool");
  NS_ASSERT_MSG(!frozen_, "pool was already frozen");
  // Settle the lazy caches while still single-threaded.
  SettleCaches();
  auto arena = std::shared_ptr<ExprArena>(new ExprArena());
  arena->nodes_ = std::move(nodes_);
  arena->interned_ = std::move(interned_);
  arena->symbol_ids_ = std::move(symbol_ids_);
  arena->vars_by_symbol_ = std::move(vars_by_symbol_);
  arena->true_ = true_;
  arena->false_ = false_;
  nodes_.clear();
  interned_.clear();
  symbol_ids_.clear();
  vars_by_symbol_.clear();
  frozen_ = true;
  return arena;
}

Expr ExprPool::Intern(Op op, Sort sort, std::int64_t value, std::string name,
                      std::vector<const Node*> children) {
  NS_ASSERT_MSG(!frozen_, "pool was frozen into an arena");
  auto node = std::make_unique<Node>();
  node->op = op;
  node->sort = sort;
  node->value = value;
  node->name = std::move(name);
  node->children = std::move(children);
  node->hash = NodeHash(*node);

  if (arena_ != nullptr) {
    if (const Node* hit = arena_->Lookup(node.get())) return Expr(hit);
  }
  const auto it = interned_.find(node.get());
  if (it != interned_.end()) return Expr(it->second);

  node->id = static_cast<std::uint32_t>(base_nodes_ + nodes_.size());
  if (op == Op::kVar) {
    node->var_mask = VarMaskBit(static_cast<std::uint32_t>(value));
  } else {
    for (const Node* child : node->children) node->var_mask |= child->var_mask;
  }
  const Node* raw = node.get();
  nodes_.push_back(std::move(node));
  interned_.emplace(raw, raw);
  return Expr(raw);
}

Expr ExprPool::Int(std::int64_t value) {
  return Intern(Op::kIntConst, Sort::kInt, value, {}, {});
}

Expr ExprPool::Var(std::string_view name, Sort sort) {
  // Frozen tier first: a name the arena knows keeps its frozen symbol id
  // (and, usually, its frozen node).
  if (arena_ != nullptr) {
    if (const auto frozen = arena_->FindSymbol(name)) {
      if (const Node* slot = arena_->VarSlot(*frozen, sort)) {
        return Expr(slot);
      }
      // Frozen name, unfrozen sort: intern a request-local var node that
      // reuses the frozen symbol id.
      const std::uint64_t key =
          (std::uint64_t{*frozen} << 1) | static_cast<std::uint64_t>(sort);
      const Node*& slot = arena_symbol_slots_[key];
      if (slot == nullptr) {
        slot = Intern(Op::kVar, sort, *frozen, std::string(name), {}).raw();
      }
      return Expr(slot);
    }
  }
  std::uint32_t symbol;
  const auto it = symbol_ids_.find(name);
  if (it != symbol_ids_.end()) {
    symbol = it->second;
  } else {
    symbol = base_symbols_ + static_cast<std::uint32_t>(vars_by_symbol_.size());
    symbol_ids_.emplace(std::string(name), symbol);
    vars_by_symbol_.push_back({nullptr, nullptr});
  }
  const Node*& slot =
      vars_by_symbol_[symbol - base_symbols_][static_cast<std::size_t>(sort)];
  if (slot == nullptr) {
    slot = Intern(Op::kVar, sort, symbol, std::string(name), {}).raw();
  }
  return Expr(slot);
}

std::optional<std::uint32_t> ExprPool::FindSymbol(
    std::string_view name) const {
  if (arena_ != nullptr) {
    if (const auto frozen = arena_->FindSymbol(name)) return frozen;
  }
  const auto it = symbol_ids_.find(name);
  if (it == symbol_ids_.end()) return std::nullopt;
  return it->second;
}

Expr ExprPool::Not(Expr a) {
  NS_ASSERT(a.sort() == Sort::kBool);
  return Intern(Op::kNot, Sort::kBool, 0, {}, {a.raw()});
}

Expr ExprPool::And(std::span<const Expr> operands) {
  NS_ASSERT_MSG(!operands.empty(), "And of zero operands");
  if (operands.size() == 1) return operands.front();
  std::vector<const Node*> children;
  children.reserve(operands.size());
  for (Expr e : operands) {
    NS_ASSERT(e.sort() == Sort::kBool);
    children.push_back(e.raw());
  }
  return Intern(Op::kAnd, Sort::kBool, 0, {}, std::move(children));
}

Expr ExprPool::And(std::initializer_list<Expr> operands) {
  return And(std::span<const Expr>(operands.begin(), operands.size()));
}

Expr ExprPool::Or(std::span<const Expr> operands) {
  NS_ASSERT_MSG(!operands.empty(), "Or of zero operands");
  if (operands.size() == 1) return operands.front();
  std::vector<const Node*> children;
  children.reserve(operands.size());
  for (Expr e : operands) {
    NS_ASSERT(e.sort() == Sort::kBool);
    children.push_back(e.raw());
  }
  return Intern(Op::kOr, Sort::kBool, 0, {}, std::move(children));
}

Expr ExprPool::Or(std::initializer_list<Expr> operands) {
  return Or(std::span<const Expr>(operands.begin(), operands.size()));
}

Expr ExprPool::Implies(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kBool && b.sort() == Sort::kBool);
  return Intern(Op::kImplies, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Ite(Expr cond, Expr then_e, Expr else_e) {
  NS_ASSERT(cond.sort() == Sort::kBool);
  NS_ASSERT(then_e.sort() == else_e.sort());
  return Intern(Op::kIte, then_e.sort(), 0, {},
                {cond.raw(), then_e.raw(), else_e.raw()});
}

Expr ExprPool::Eq(Expr a, Expr b) {
  NS_ASSERT(a.sort() == b.sort());
  // Orient commutative atoms by node id so `x = y` and `y = x` intern to
  // the same node (this is canonicalization of *identity*, not rewriting —
  // it does not change sizes).
  if (b < a) std::swap(a, b);
  return Intern(Op::kEq, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Lt(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kLt, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Le(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kLe, Sort::kBool, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Add(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  if (b < a) std::swap(a, b);
  return Intern(Op::kAdd, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Sub(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  return Intern(Op::kSub, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

Expr ExprPool::Mul(Expr a, Expr b) {
  NS_ASSERT(a.sort() == Sort::kInt && b.sort() == Sort::kInt);
  if (b < a) std::swap(a, b);
  return Intern(Op::kMul, Sort::kInt, 0, {}, {a.raw(), b.raw()});
}

std::vector<Expr> Expr::Children() const {
  std::vector<Expr> out;
  out.reserve(node_->children.size());
  for (const Node* child : node_->children) out.push_back(Expr(child));
  return out;
}

std::size_t Expr::DagSize() const {
  // Relaxed atomics: frozen nodes may be sized concurrently, and every
  // racer computes (and stores) the same value.
  const std::uint64_t cached =
      node_->dag_size.load(std::memory_order_relaxed);
  if (cached != 0) {
    return static_cast<std::size_t>(cached);
  }
  std::unordered_set<const Node*> seen;
  std::vector<const Node*> stack{node_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const Node* child : n->children) stack.push_back(child);
  }
  node_->dag_size.store(seen.size(), std::memory_order_relaxed);
  return seen.size();
}

std::size_t Expr::TreeSize() const {
  // Cached bottom-up over the DAG: tree size = 1 + sum of children's.
  // Iterative so deep chains cannot overflow the call stack; every node is
  // computed at most once over the pool's lifetime.
  if (node_->tree_size != 0) {
    return static_cast<std::size_t>(node_->tree_size);
  }
  std::vector<const Node*> stack{node_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    if (n->tree_size != 0) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const Node* child : n->children) {
      if (child->tree_size == 0) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) continue;
    std::uint64_t total = 1;
    for (const Node* child : n->children) total += child->tree_size;
    n->tree_size = total;
    stack.pop_back();
  }
  return static_cast<std::size_t>(node_->tree_size);
}

namespace {

const std::shared_ptr<const std::vector<const Node*>>& EmptyVarSet() {
  static const auto empty =
      std::make_shared<const std::vector<const Node*>>();
  return empty;
}

/// Computes (and caches) the sorted-by-id free-variable node set.
void EnsureFreeVars(const Node* root) {
  if (root->free_vars != nullptr) return;
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    if (n->free_vars != nullptr) {
      stack.pop_back();
      continue;
    }
    if (n->op == Op::kVar) {
      n->free_vars = std::make_shared<const std::vector<const Node*>>(
          std::vector<const Node*>{n});
      stack.pop_back();
      continue;
    }
    if (n->children.empty()) {
      n->free_vars = EmptyVarSet();
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const Node* child : n->children) {
      if (child->free_vars == nullptr) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) continue;
    // Merge the children's sorted sets. Sharing a child's set (very common
    // for wrapper nodes) avoids quadratic memory in chain-shaped DAGs.
    std::vector<const Node*> merged;
    for (const Node* child : n->children) {
      merged.insert(merged.end(), child->free_vars->begin(),
                    child->free_vars->end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Node* a, const Node* b) { return a->id < b->id; });
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    const auto shareable = [&](const Node* child) {
      return child->free_vars->size() == merged.size();
    };
    const Node* donor = nullptr;
    for (const Node* child : n->children) {
      if (shareable(child)) {
        donor = child;  // equal size + subset relation => equal set
        break;
      }
    }
    if (donor != nullptr) {
      n->free_vars = donor->free_vars;
    } else {
      n->free_vars =
          std::make_shared<const std::vector<const Node*>>(std::move(merged));
    }
    stack.pop_back();
  }
}

}  // namespace

std::span<const Node* const> Expr::FreeVarNodes() const {
  EnsureFreeVars(node_);
  return *node_->free_vars;
}

std::vector<Expr> Expr::FreeVars() const {
  const auto nodes = FreeVarNodes();
  std::vector<Expr> out;
  out.reserve(nodes.size());
  for (const Node* n : nodes) out.push_back(Expr(n));
  std::stable_sort(out.begin(), out.end(),
                   [](Expr a, Expr b) { return a.name() < b.name(); });
  out.erase(std::unique(out.begin(), out.end(),
                        [](Expr a, Expr b) { return a.name() == b.name(); }),
            out.end());
  return out;
}

Expr Substitute(ExprPool& pool, Expr e, const SymbolEnv& env) {
  if (env.empty()) return e;
  std::uint64_t env_mask = 0;
  for (const auto& [symbol, unused] : env) env_mask |= VarMaskBit(symbol);

  std::unordered_map<const Node*, Expr> memo;
  std::function<Expr(Expr)> go = [&](Expr cur) -> Expr {
    // A disjoint variable mask proves no bound variable occurs below —
    // the whole subtree is returned untraversed.
    if ((cur.VarMask() & env_mask) == 0) return cur;
    const auto it = memo.find(cur.raw());
    if (it != memo.end()) return it->second;
    Expr result = cur;
    if (cur.IsVar()) {
      const auto env_it = env.find(cur.symbol());
      if (env_it != env.end()) {
        NS_ASSERT_MSG(env_it->second.sort() == cur.sort(),
                      "substitution changes sort of " + cur.name());
        result = env_it->second;
      }
    } else if (cur.NumChildren() > 0) {
      std::vector<Expr> children;
      children.reserve(cur.NumChildren());
      bool changed = false;
      for (std::size_t i = 0; i < cur.NumChildren(); ++i) {
        Expr child = go(cur.Child(i));
        changed = changed || child != cur.Child(i);
        children.push_back(child);
      }
      if (changed) {
        switch (cur.op()) {
          case Op::kNot: result = pool.Not(children[0]); break;
          case Op::kAnd: result = pool.And(children); break;
          case Op::kOr: result = pool.Or(children); break;
          case Op::kImplies:
            result = pool.Implies(children[0], children[1]);
            break;
          case Op::kIte:
            result = pool.Ite(children[0], children[1], children[2]);
            break;
          case Op::kEq: result = pool.Eq(children[0], children[1]); break;
          case Op::kLt: result = pool.Lt(children[0], children[1]); break;
          case Op::kLe: result = pool.Le(children[0], children[1]); break;
          case Op::kAdd: result = pool.Add(children[0], children[1]); break;
          case Op::kSub: result = pool.Sub(children[0], children[1]); break;
          case Op::kMul: result = pool.Mul(children[0], children[1]); break;
          default:
            NS_ASSERT_MSG(false, "substitute: unexpected op");
        }
      }
    }
    memo.emplace(cur.raw(), result);
    return result;
  };
  return go(e);
}

Expr Substitute(ExprPool& pool, Expr e,
                const std::unordered_map<std::string, Expr>& env) {
  SymbolEnv symbol_env;
  symbol_env.reserve(env.size());
  for (const auto& [name, replacement] : env) {
    if (const auto symbol = pool.FindSymbol(name)) {
      symbol_env.emplace(*symbol, replacement);
    }
  }
  return Substitute(pool, e, symbol_env);
}

}  // namespace ns::smt
