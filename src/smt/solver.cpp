#include "smt/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <z3++.h>

namespace ns::smt {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* SolverBackendName(SolverBackend backend) noexcept {
  switch (backend) {
    case SolverBackend::kFreshZ3: return "fresh";
    case SolverBackend::kIncrementalZ3: return "incremental";
    case SolverBackend::kFastPath: return "fastpath";
  }
  return "?";
}

Result<SolverBackend> ParseSolverBackend(std::string_view name) {
  if (name == "fresh") return SolverBackend::kFreshZ3;
  if (name == "incremental") return SolverBackend::kIncrementalZ3;
  if (name == "fastpath") return SolverBackend::kFastPath;
  return Error(ErrorCode::kInvalidArgument,
               "unknown solver backend '" + std::string(name) +
                   "' (expected fresh, incremental, or fastpath)");
}

SolverStats& SolverStats::operator+=(const SolverStats& other) noexcept {
  queries += other.queries;
  assertions += other.assertions;
  fast_path_hits += other.fast_path_hits;
  fast_path_fallbacks += other.fast_path_fallbacks;
  fast_path_ineligible += other.fast_path_ineligible;
  memo_hits += other.memo_hits;
  z3_queries += other.z3_queries;
  frame_reuse += other.frame_reuse;
  wall_ms += other.wall_ms;
  return *this;
}

namespace {

Outcome FromZ3(z3::check_result verdict) {
  switch (verdict) {
    case z3::sat: return Outcome::kSat;
    case z3::unsat: return Outcome::kUnsat;
    default: return Outcome::kUnknown;
  }
}

/// Accumulates wall time into SolverStats::wall_ms. Only the outermost
/// public entry point of a query instantiates one (pass nullptr on
/// secondary sessions), so fast-path fallbacks are not double-counted.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* acc) noexcept
      : acc_(acc), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (acc_ == nullptr) return;
    *acc_ += std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// A constraint literal: a pool node plus a polarity. The solver layer
/// never builds pool nodes — negation lives here (or on the Z3 side), so
/// running a query can never perturb the pool's node-creation order.
struct Lit {
  const Node* node = nullptr;
  bool neg = false;
};

/// Hash for the canonical boolean-query key (sorted `id << 1 | neg`).
struct QueryKeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (std::uint64_t word : key) {
      h ^= word;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// Three-valued evaluation lattice.
constexpr std::int8_t kF = 0;
constexpr std::int8_t kT = 1;
constexpr std::int8_t kU = -1;

/// One boolean satisfiability search over purely-boolean pool nodes: a
/// DPLL-style loop of three-valued evaluation, structural unit
/// propagation, and deterministic branching. All state is per-query; the
/// cross-query memo lives on Solver::Impl.
///
/// Determinedness is monotone under assignment extension, so node values
/// memoize on a trail (entries retract on backtrack) and a constraint
/// whose variables are disjoint from everything assigned or unassigned
/// since its last evaluation (tracked with the pool's bloom masks) is
/// skipped without re-walking it.
class BoolEngine {
 public:
  BoolEngine(std::vector<Lit> lits, std::uint32_t max_decisions,
             const std::atomic<bool>* cancel)
      : lits_(std::move(lits)), max_decisions_(max_decisions),
        cancel_(cancel) {
    settled_.assign(lits_.size(), 0);
    seen_.assign(lits_.size(), 0);
  }

  Outcome Solve() { return Search(); }

 private:
  std::int8_t ValueOf(std::uint32_t sym) const {
    return sym < model_.size() ? model_[sym] : kU;
  }

  void Assign(std::uint32_t sym, std::int8_t value) {
    if (sym >= model_.size()) model_.resize(sym + 1, kU);
    model_[sym] = value;
    assign_trail_.push_back(sym);
    delta_mask_ |= VarMaskBit(sym);
    progress_ = true;
  }

  struct Mark {
    std::size_t assigns, memos, settles;
  };
  Mark Snapshot() const {
    return {assign_trail_.size(), memo_trail_.size(), settled_trail_.size()};
  }
  void Rewind(const Mark& mark) {
    while (assign_trail_.size() > mark.assigns) {
      const std::uint32_t sym = assign_trail_.back();
      assign_trail_.pop_back();
      model_[sym] = kU;
      // The variable changed value: anything depending on it must be
      // re-evaluated, so its bit goes back into the dirty mask.
      delta_mask_ |= VarMaskBit(sym);
    }
    while (memo_trail_.size() > mark.memos) {
      memo_.erase(memo_trail_.back());
      memo_trail_.pop_back();
    }
    while (settled_trail_.size() > mark.settles) {
      settled_[settled_trail_.back()] = 0;
      settled_trail_.pop_back();
    }
  }

  std::int8_t Eval(const Node* n) {
    const auto it = memo_.find(n);
    if (it != memo_.end()) return it->second;
    std::int8_t v = kU;
    switch (n->op) {
      case Op::kBoolConst:
        v = n->value != 0 ? kT : kF;
        break;
      case Op::kVar:
        v = ValueOf(static_cast<std::uint32_t>(n->value));
        break;
      case Op::kNot: {
        const std::int8_t c = Eval(n->children[0]);
        v = c == kU ? kU : (c == kT ? kF : kT);
        break;
      }
      case Op::kAnd: {
        v = kT;
        for (const Node* c : n->children) {
          const std::int8_t cv = Eval(c);
          if (cv == kF) {
            v = kF;
            break;
          }
          if (cv == kU) v = kU;
        }
        break;
      }
      case Op::kOr: {
        v = kF;
        for (const Node* c : n->children) {
          const std::int8_t cv = Eval(c);
          if (cv == kT) {
            v = kT;
            break;
          }
          if (cv == kU) v = kU;
        }
        break;
      }
      case Op::kImplies: {
        const std::int8_t a = Eval(n->children[0]);
        const std::int8_t b = Eval(n->children[1]);
        if (a == kF || b == kT) {
          v = kT;
        } else if (a == kT && b == kF) {
          v = kF;
        }
        break;
      }
      case Op::kIte: {
        const std::int8_t c = Eval(n->children[0]);
        if (c == kT) {
          v = Eval(n->children[1]);
        } else if (c == kF) {
          v = Eval(n->children[2]);
        } else {
          const std::int8_t t = Eval(n->children[1]);
          if (t != kU && t == Eval(n->children[2])) v = t;
        }
        break;
      }
      case Op::kEq: {
        const std::int8_t a = Eval(n->children[0]);
        const std::int8_t b = Eval(n->children[1]);
        if (a != kU && b != kU) v = a == b ? kT : kF;
        break;
      }
      default:
        // Arithmetic cannot occur below a pure node (purity gate).
        break;
    }
    if (v != kU) {
      memo_.emplace(n, v);
      memo_trail_.push_back(n);
    }
    return v;
  }

  std::int8_t EvalLit(const Lit& lit) {
    const std::int8_t v = Eval(lit.node);
    if (v == kU || !lit.neg) return v;
    return v == kT ? kF : kT;
  }

  /// Unit rule for n-ary And(want=false) / Or(want=true): when every
  /// child but one already has the neutral value, force the open child.
  void ForceAllButOne(const std::vector<const Node*>& children,
                      std::int8_t neutral, bool want) {
    const Node* open = nullptr;
    for (const Node* c : children) {
      const std::int8_t v = Eval(c);
      if (v == kU) {
        if (open != nullptr) return;  // two open children: no unit
        open = c;
      } else if (v != neutral) {
        return;  // already satisfied without forcing
      }
    }
    if (open != nullptr) Force(open, want);
  }

  /// Structural unit propagation: `n` is required to evaluate to `want`;
  /// descend through connectives whose remaining freedom is a single
  /// child and assign forced variables. Never overwrites an assigned
  /// variable — a contradiction surfaces as a false constraint on the
  /// next evaluation pass.
  void Force(const Node* n, bool want) {
    switch (n->op) {
      case Op::kVar: {
        const auto sym = static_cast<std::uint32_t>(n->value);
        if (ValueOf(sym) == kU) Assign(sym, want ? kT : kF);
        return;
      }
      case Op::kNot:
        Force(n->children[0], !want);
        return;
      case Op::kAnd:
        if (want) {
          for (const Node* c : n->children) Force(c, true);
        } else {
          ForceAllButOne(n->children, kT, false);
        }
        return;
      case Op::kOr:
        if (!want) {
          for (const Node* c : n->children) Force(c, false);
        } else {
          ForceAllButOne(n->children, kF, true);
        }
        return;
      case Op::kImplies: {
        const Node* a = n->children[0];
        const Node* b = n->children[1];
        if (!want) {
          Force(a, true);
          Force(b, false);
          return;
        }
        if (Eval(a) == kT) {
          Force(b, true);
        } else if (Eval(b) == kF) {
          Force(a, false);
        }
        return;
      }
      case Op::kIte: {
        const std::int8_t c = Eval(n->children[0]);
        if (c == kT) {
          Force(n->children[1], want);
        } else if (c == kF) {
          Force(n->children[2], want);
        } else {
          const std::int8_t t = Eval(n->children[1]);
          const std::int8_t e = Eval(n->children[2]);
          if (t != kU && e != kU && t != e) {
            // Determined, distinct branches: the condition is decided.
            Force(n->children[0], (t == kT) == want);
          }
        }
        return;
      }
      case Op::kEq: {
        const std::int8_t a = Eval(n->children[0]);
        const std::int8_t b = Eval(n->children[1]);
        if (a != kU && b == kU) {
          Force(n->children[1], want == (a == kT));
        } else if (b != kU && a == kU) {
          Force(n->children[0], want == (b == kT));
        }
        return;
      }
      default:
        return;  // constants: nothing to force
    }
  }

  Outcome Search() {
    // Cooperative cancellation: an interrupted search is abandoned work,
    // so kUnknown (never memoized by the caller) is the honest verdict.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return Outcome::kUnknown;
    }
    // Propagate to fixpoint: evaluate every live constraint, settle the
    // satisfied ones, force units from the undetermined ones.
    while (true) {
      const std::uint64_t delta = delta_mask_;
      delta_mask_ = 0;
      progress_ = false;
      bool all_true = true;
      for (std::size_t i = 0; i < lits_.size(); ++i) {
        if (settled_[i]) continue;
        const Lit& lit = lits_[i];
        if (seen_[i] && (lit.node->var_mask & delta) == 0) {
          // No variable below this constraint changed since its last
          // evaluation: still undetermined, and the same units were
          // already forced.
          all_true = false;
          continue;
        }
        seen_[i] = 1;
        const std::int8_t v = EvalLit(lit);
        if (v == kF) return Outcome::kUnsat;
        if (v == kT) {
          settled_[i] = 1;
          settled_trail_.push_back(i);
          continue;
        }
        all_true = false;
        Force(lit.node, !lit.neg);
      }
      if (all_true) return Outcome::kSat;
      if (!progress_) break;
    }

    // Pick the first genuinely undetermined constraint (a mask-skipped
    // one may have been settled by unrelated-looking collisions — the
    // bloom mask is may-intersect, so confirm by evaluating).
    std::size_t branch_idx = lits_.size();
    for (std::size_t i = 0; i < lits_.size(); ++i) {
      if (settled_[i]) continue;
      const std::int8_t v = EvalLit(lits_[i]);
      if (v == kF) return Outcome::kUnsat;
      if (v == kT) {
        settled_[i] = 1;
        settled_trail_.push_back(i);
        continue;
      }
      branch_idx = i;
      break;
    }
    if (branch_idx == lits_.size()) return Outcome::kSat;

    if (decisions_ >= max_decisions_) return Outcome::kUnknown;

    // Deterministic branch variable: the lowest-creation-index unassigned
    // free variable of that constraint (FreeVarNodes is sorted and cached
    // on the pool node).
    const Node* branch_var = nullptr;
    for (const Node* var :
         Expr::FromRaw(lits_[branch_idx].node).FreeVarNodes()) {
      if (ValueOf(static_cast<std::uint32_t>(var->value)) == kU) {
        branch_var = var;
        break;
      }
    }
    if (branch_var == nullptr) return Outcome::kUnknown;  // unreachable

    const auto sym = static_cast<std::uint32_t>(branch_var->value);
    bool unknown = false;
    for (const std::int8_t value : {kT, kF}) {
      ++decisions_;
      const Mark mark = Snapshot();
      Assign(sym, value);
      const Outcome out = Search();
      if (out == Outcome::kSat) return Outcome::kSat;
      if (out == Outcome::kUnknown) unknown = true;
      Rewind(mark);
    }
    return unknown ? Outcome::kUnknown : Outcome::kUnsat;
  }

  std::vector<Lit> lits_;
  std::vector<std::uint8_t> settled_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::size_t> settled_trail_;
  std::vector<std::int8_t> model_;  // indexed by interned symbol id
  std::vector<std::uint32_t> assign_trail_;
  std::unordered_map<const Node*, std::int8_t> memo_;
  std::vector<const Node*> memo_trail_;
  std::uint64_t delta_mask_ = ~std::uint64_t{0};
  bool progress_ = false;
  std::uint32_t decisions_ = 0;
  std::uint32_t max_decisions_;
  const std::atomic<bool>* cancel_;
};

}  // namespace

struct Solver::Impl {
  SolverOptions options;
  SolverStats stats;
  z3::context ctx;
  std::unordered_map<const Node*, z3::expr> cache;
  std::unordered_map<const Node*, bool> pure;
  std::unordered_map<std::vector<std::uint64_t>, Outcome, QueryKeyHash>
      bool_memo;
  /// Satisfiability of the impure (integer-touching) slice of a session's
  /// stack, keyed by its node ids. The lift sessions re-query against one
  /// fixed impure prefix (the integer domain constraints), so this is one
  /// Z3 check per session, not per query.
  std::unordered_map<std::vector<std::uint64_t>, Outcome, QueryKeyHash>
      impure_sat_memo;
  /// Set by Solver::Interrupt() (possibly from another thread): queries
  /// return conservative verdicts and the memo tables stop recording.
  std::atomic<bool> interrupted{false};

  class FreshSession;
  class IncrementalSession;
  class FastPathSession;

  // Same translation as Z3Session (z3bridge.cpp), against this solver's
  // shared context: every session of this Solver reuses one cache entry
  // per pool node.
  z3::expr Translate(Expr e) {
    const auto it = cache.find(e.raw());
    if (it != cache.end()) return it->second;

    z3::expr result(ctx);
    switch (e.op()) {
      case Op::kBoolConst:
        result = ctx.bool_val(e.IsTrue());
        break;
      case Op::kIntConst:
        result = ctx.int_val(static_cast<std::int64_t>(e.value()));
        break;
      case Op::kVar:
        result = e.sort() == Sort::kBool ? ctx.bool_const(e.name().c_str())
                                         : ctx.int_const(e.name().c_str());
        break;
      case Op::kNot:
        result = !Translate(e.Child(0));
        break;
      case Op::kAnd: {
        z3::expr_vector parts(ctx);
        for (std::size_t i = 0; i < e.NumChildren(); ++i) {
          parts.push_back(Translate(e.Child(i)));
        }
        result = z3::mk_and(parts);
        break;
      }
      case Op::kOr: {
        z3::expr_vector parts(ctx);
        for (std::size_t i = 0; i < e.NumChildren(); ++i) {
          parts.push_back(Translate(e.Child(i)));
        }
        result = z3::mk_or(parts);
        break;
      }
      case Op::kImplies:
        result = z3::implies(Translate(e.Child(0)), Translate(e.Child(1)));
        break;
      case Op::kIte:
        result = z3::ite(Translate(e.Child(0)), Translate(e.Child(1)),
                         Translate(e.Child(2)));
        break;
      case Op::kEq:
        result = Translate(e.Child(0)) == Translate(e.Child(1));
        break;
      case Op::kLt:
        result = Translate(e.Child(0)) < Translate(e.Child(1));
        break;
      case Op::kLe:
        result = Translate(e.Child(0)) <= Translate(e.Child(1));
        break;
      case Op::kAdd:
        result = Translate(e.Child(0)) + Translate(e.Child(1));
        break;
      case Op::kSub:
        result = Translate(e.Child(0)) - Translate(e.Child(1));
        break;
      case Op::kMul:
        result = Translate(e.Child(0)) * Translate(e.Child(1));
        break;
    }
    cache.emplace(e.raw(), result);
    return result;
  }

  z3::expr Conjunction(std::span<const Expr> constraints) {
    z3::expr_vector parts(ctx);
    for (Expr e : constraints) parts.push_back(Translate(e));
    return parts.empty() ? ctx.bool_val(true) : z3::mk_and(parts);
  }

  static std::size_t AstSize(const z3::expr& e) {
    std::unordered_map<unsigned, std::size_t> memo;
    std::function<std::size_t(const z3::expr&)> go =
        [&](const z3::expr& cur) -> std::size_t {
      const unsigned id = Z3_get_ast_id(cur.ctx(), cur);
      const auto it = memo.find(id);
      if (it != memo.end()) return it->second;
      std::size_t total = 1;
      if (cur.is_app()) {
        for (unsigned i = 0; i < cur.num_args(); ++i) {
          total += go(cur.arg(i));
        }
      }
      memo.emplace(id, total);
      return total;
    };
    return go(e);
  }

  /// Purely boolean: no integer-sorted leaf or arithmetic atom anywhere
  /// below. Pure nodes are exactly what the boolean engine can decide.
  bool IsPure(const Node* n) {
    const auto it = pure.find(n);
    if (it != pure.end()) return it->second;
    bool p = false;
    switch (n->op) {
      case Op::kBoolConst:
        p = true;
        break;
      case Op::kIntConst:
        p = false;
        break;
      case Op::kVar:
        p = n->sort == Sort::kBool;
        break;
      case Op::kLt:
      case Op::kLe:
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
        p = false;
        break;
      default:
        p = true;
        for (const Node* c : n->children) {
          if (!IsPure(c)) {
            p = false;
            break;
          }
        }
        break;
    }
    pure.emplace(n, p);
    return p;
  }

  /// Decides satisfiability of a conjunction of pure boolean literals, or
  /// kUnknown if the decision budget runs out. Canonicalizes the literal
  /// set (constants resolved, duplicates dropped, complementary pair =>
  /// unsat) and memoizes on the canonical key across queries & sessions.
  Outcome TryBool(std::vector<Lit> lits) {
    std::size_t kept = 0;
    for (const Lit& lit : lits) {
      if (lit.node->op == Op::kBoolConst) {
        if ((lit.node->value != 0) == lit.neg) return Outcome::kUnsat;
        continue;  // trivially-true literal
      }
      lits[kept++] = lit;
    }
    lits.resize(kept);
    if (lits.empty()) return Outcome::kSat;

    std::sort(lits.begin(), lits.end(), [](const Lit& a, const Lit& b) {
      return a.node->id != b.node->id ? a.node->id < b.node->id
                                      : a.neg < b.neg;
    });
    lits.erase(std::unique(lits.begin(), lits.end(),
                           [](const Lit& a, const Lit& b) {
                             return a.node == b.node && a.neg == b.neg;
                           }),
               lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].node == lits[i + 1].node) return Outcome::kUnsat;  // p ∧ ¬p
    }

    std::vector<std::uint64_t> key;
    key.reserve(lits.size());
    for (const Lit& lit : lits) {
      key.push_back((std::uint64_t{lit.node->id} << 1) | (lit.neg ? 1 : 0));
    }
    const auto it = bool_memo.find(key);
    if (it != bool_memo.end()) {
      ++stats.memo_hits;
      return it->second;
    }

    BoolEngine engine(std::move(lits), options.max_decisions, &interrupted);
    const Outcome out = engine.Solve();
    // kUnknown is memoizable too: the budget is fixed per solver, so the
    // search is deterministic. An interrupted search is not — its
    // kUnknown reflects where the cancellation landed, so it must never
    // reach the memo.
    if (!interrupted.load(std::memory_order_relaxed)) {
      bool_memo.emplace(std::move(key), out);
    }
    return out;
  }

  /// Satisfiability of the impure slice of a stack, memoized on its node
  /// ids. One Z3 query per distinct slice.
  Outcome ImpureSat(const std::vector<Expr>& impure) {
    std::vector<std::uint64_t> key;
    key.reserve(impure.size());
    for (Expr e : impure) key.push_back(e.raw()->id);
    const auto it = impure_sat_memo.find(key);
    if (it != impure_sat_memo.end()) {
      ++stats.memo_hits;
      return it->second;
    }
    ++stats.z3_queries;
    Outcome out = Outcome::kUnknown;
    try {
      z3::solver solver(ctx);
      for (Expr e : impure) solver.add(Translate(e));
      out = FromZ3(solver.check());
    } catch (const z3::exception&) {
      // Interrupt() cancels whatever Z3 call is in flight on this context;
      // the abandoned session answers conservatively instead of throwing.
      if (!interrupted.load(std::memory_order_relaxed)) throw;
      return Outcome::kUnknown;
    }
    if (out != Outcome::kUnknown &&
        !interrupted.load(std::memory_order_relaxed)) {
      impure_sat_memo.emplace(std::move(key), out);
    }
    return out;
  }
};

/// Baseline backend: replays the assertion stack into a fresh z3::solver
/// on every query — exactly the behavior of the pre-interface code, kept
/// as the differential reference.
class Solver::Impl::FreshSession final : public SolverSession {
 public:
  explicit FreshSession(Impl& impl) : impl_(impl) {}

  void Push() override { marks_.push_back(stack_.size()); }
  void Pop() override {
    stack_.resize(marks_.back());
    marks_.pop_back();
  }
  void Assert(Expr e) override {
    ++impl_.stats.assertions;
    stack_.push_back(e);
  }

  Outcome CheckSat(std::span<const Expr> extra) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return Outcome::kUnknown;
    }
    ScopedTimer timer(&impl_.stats.wall_ms);
    ++impl_.stats.queries;
    ++impl_.stats.z3_queries;
    try {
      z3::solver solver(impl_.ctx);
      for (Expr e : stack_) solver.add(impl_.Translate(e));
      for (Expr e : extra) solver.add(impl_.Translate(e));
      return FromZ3(solver.check());
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return Outcome::kUnknown;  // cancelled mid-call by Interrupt()
    }
  }

  bool Implies(std::span<const Expr> antecedent, Expr consequent) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return false;  // conservative: "not implied"
    }
    ScopedTimer timer(&impl_.stats.wall_ms);
    ++impl_.stats.queries;
    ++impl_.stats.z3_queries;
    try {
      z3::solver solver(impl_.ctx);
      for (Expr e : stack_) solver.add(impl_.Translate(e));
      for (Expr e : antecedent) solver.add(impl_.Translate(e));
      solver.add(!impl_.Translate(consequent));
      return solver.check() == z3::unsat;
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return false;  // conservative: "not implied"
    }
  }

  Result<Assignment> Solve(std::span<const Expr> extra,
                           std::span<const Expr> vars) override {
    ScopedTimer timer(&impl_.stats.wall_ms);
    ++impl_.stats.queries;
    ++impl_.stats.z3_queries;
    try {
      z3::solver solver(impl_.ctx);
      for (Expr e : stack_) solver.add(impl_.Translate(e));
      for (Expr e : extra) solver.add(impl_.Translate(e));
      return ExtractModel(impl_, solver, vars);
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return Error(ErrorCode::kInternal, "solver interrupted");
    }
  }

  /// Shared model extraction; error behavior matches Z3Session::Solve.
  static Result<Assignment> ExtractModel(Impl& impl, z3::solver& solver,
                                         std::span<const Expr> vars) {
    const auto verdict = solver.check();
    if (verdict == z3::unsat) {
      return Error(ErrorCode::kUnsat, "constraints are unsatisfiable");
    }
    if (verdict != z3::sat) {
      return Error(ErrorCode::kInternal, "Z3 returned unknown");
    }
    const z3::model model = solver.get_model();
    Assignment assignment;
    for (Expr var : vars) {
      NS_ASSERT(var.IsVar());
      const z3::expr value = model.eval(impl.Translate(var),
                                        /*model_completion=*/true);
      std::int64_t out = 0;
      if (value.is_bool()) {
        out = value.bool_value() == Z3_L_TRUE ? 1 : 0;
      } else {
        out = value.get_numeral_int64();
      }
      assignment[var.name()] = out;
    }
    return assignment;
  }

 private:
  Impl& impl_;
  std::vector<Expr> stack_;
  std::vector<std::size_t> marks_;
};

/// Incremental backend: one z3::solver for the session's whole lifetime.
/// The assertion stack maps directly onto Z3 push/pop frames; query-local
/// operands go in under a scoped frame, so the shared prefix is asserted
/// (and its lemmas learned) exactly once.
class Solver::Impl::IncrementalSession final : public SolverSession {
 public:
  IncrementalSession(Impl& impl, bool secondary)
      : impl_(impl), solver_(impl.ctx), secondary_(secondary) {}

  // Push/Pop/Assert swallow Z3 cancellation artifacts: Interrupt() makes
  // the shared context throw from whatever call is in flight (e.g. "push
  // canceled"), and an interrupted session is abandoned wholesale — its
  // Z3 frame bookkeeping no longer needs to stay balanced.
  void Push() override {
    frames_.push_back(num_asserted_);
    try {
      solver_.push();
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
    }
  }
  void Pop() override {
    num_asserted_ = frames_.back();
    frames_.pop_back();
    try {
      solver_.pop();
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
    }
  }
  void Assert(Expr e) override {
    if (!secondary_) ++impl_.stats.assertions;
    ++num_asserted_;
    try {
      solver_.add(impl_.Translate(e));
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
    }
  }

  Outcome CheckSat(std::span<const Expr> extra) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return Outcome::kUnknown;
    }
    ScopedTimer timer(secondary_ ? nullptr : &impl_.stats.wall_ms);
    Enter();
    ++impl_.stats.z3_queries;
    try {
      if (extra.empty()) return FromZ3(solver_.check());
      solver_.push();
      for (Expr e : extra) solver_.add(impl_.Translate(e));
      const Outcome out = FromZ3(solver_.check());
      solver_.pop();
      return out;
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return Outcome::kUnknown;
    }
  }

  bool Implies(std::span<const Expr> antecedent, Expr consequent) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return false;  // conservative: "not implied"
    }
    ScopedTimer timer(secondary_ ? nullptr : &impl_.stats.wall_ms);
    Enter();
    ++impl_.stats.z3_queries;
    try {
      solver_.push();
      for (Expr e : antecedent) solver_.add(impl_.Translate(e));
      solver_.add(!impl_.Translate(consequent));
      const bool implied = solver_.check() == z3::unsat;
      solver_.pop();
      return implied;
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return false;  // conservative: "not implied"
    }
  }

  Result<Assignment> Solve(std::span<const Expr> extra,
                           std::span<const Expr> vars) override {
    ScopedTimer timer(secondary_ ? nullptr : &impl_.stats.wall_ms);
    Enter();
    ++impl_.stats.z3_queries;
    try {
      solver_.push();
      for (Expr e : extra) solver_.add(impl_.Translate(e));
      auto result = FreshSession::ExtractModel(impl_, solver_, vars);
      solver_.pop();
      return result;
    } catch (const z3::exception&) {
      if (!impl_.interrupted.load(std::memory_order_relaxed)) throw;
      return Error(ErrorCode::kInternal, "solver interrupted");
    }
  }

 private:
  /// Per-query counters owned by the outermost session: a secondary
  /// (fallback target of a FastPathSession) skips them — its owner
  /// already counted the query.
  void Enter() {
    if (secondary_) return;
    ++impl_.stats.queries;
    if (num_asserted_ > 0) ++impl_.stats.frame_reuse;
  }

  Impl& impl_;
  z3::solver solver_;
  bool secondary_;
  std::size_t num_asserted_ = 0;
  std::vector<std::size_t> frames_;
};

/// Boolean fast path: purely-boolean queries go to the in-process DPLL
/// engine; anything touching an integer atom — or a search that exhausts
/// its decision budget (kUnknown) — falls back to an inner incremental Z3
/// session that eagerly mirrors the assertion stack, so the fallback pays
/// no catch-up cost.
class Solver::Impl::FastPathSession final : public SolverSession {
 public:
  explicit FastPathSession(Impl& impl)
      : impl_(impl), inner_(impl, /*secondary=*/true) {}

  void Push() override {
    marks_.push_back({stack_.size(), impure_});
    inner_.Push();
  }
  void Pop() override {
    stack_.resize(marks_.back().size);
    impure_ = marks_.back().impure;
    marks_.pop_back();
    inner_.Pop();
  }
  void Assert(Expr e) override {
    ++impl_.stats.assertions;
    stack_.push_back(e);
    if (!impl_.IsPure(e.raw())) ++impure_;
    inner_.Assert(e);
  }

  Outcome CheckSat(std::span<const Expr> extra) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return Outcome::kUnknown;
    }
    ScopedTimer timer(&impl_.stats.wall_ms);
    Enter();
    bool ineligible = !AllPure(extra);
    if (!ineligible) {
      const Outcome out = TrySplit(extra, /*neg_consequent=*/nullptr,
                                   &ineligible);
      if (out != Outcome::kUnknown) {
        ++impl_.stats.fast_path_hits;
        return out;
      }
    }
    if (ineligible) {
      ++impl_.stats.fast_path_ineligible;
    } else {
      ++impl_.stats.fast_path_fallbacks;
    }
    return inner_.CheckSat(extra);
  }

  bool Implies(std::span<const Expr> antecedent, Expr consequent) override {
    if (impl_.interrupted.load(std::memory_order_relaxed)) {
      return false;  // conservative: "not implied"
    }
    ScopedTimer timer(&impl_.stats.wall_ms);
    Enter();
    bool ineligible =
        !AllPure(antecedent) || !impl_.IsPure(consequent.raw());
    if (!ineligible) {
      const Outcome out = TrySplit(antecedent, consequent.raw(), &ineligible);
      if (out != Outcome::kUnknown) {
        ++impl_.stats.fast_path_hits;
        return out == Outcome::kUnsat;
      }
    }
    if (ineligible) {
      ++impl_.stats.fast_path_ineligible;
    } else {
      ++impl_.stats.fast_path_fallbacks;
    }
    return inner_.Implies(antecedent, consequent);
  }

  Result<Assignment> Solve(std::span<const Expr> extra,
                           std::span<const Expr> vars) override {
    ScopedTimer timer(&impl_.stats.wall_ms);
    Enter();
    // Model extraction is not on the fast path (and not a "fallback" —
    // it is Z3 work by design).
    return inner_.Solve(extra, vars);
  }

 private:
  void Enter() {
    ++impl_.stats.queries;
    if (!stack_.empty()) ++impl_.stats.frame_reuse;
  }

  bool AllPure(std::span<const Expr> exprs) {
    for (Expr e : exprs) {
      if (!impl_.IsPure(e.raw())) return false;
    }
    return true;
  }

  /// Attempts stack ∧ operands (∧ ¬consequent) through the boolean engine
  /// by splitting the stack into its pure and impure slices. The split is
  /// sound when the slices share no variables: the conjunction is then
  /// satisfiable iff both slices are, so with the impure slice known SAT
  /// (one memoized Z3 check, shared across every query of the session),
  /// the pure slice alone decides the query. This is exactly the lift
  /// search's shape — integer preference domains in the stack, boolean
  /// residuals as operands — which a whole-stack purity gate rejects
  /// wholesale. Returns kUnknown when undecided (decision budget, unknown
  /// impure slice); sets *ineligible when the split does not apply
  /// (shared variables across the slices).
  Outcome TrySplit(std::span<const Expr> operands, const Node* neg_consequent,
                   bool* ineligible) {
    std::vector<Lit> lits;
    lits.reserve(stack_.size() + operands.size() + 1);
    std::vector<Expr> impure;
    impure.reserve(impure_);
    std::uint64_t pure_mask = 0;
    std::uint64_t impure_mask = 0;
    for (Expr e : stack_) {
      if (impl_.IsPure(e.raw())) {
        lits.push_back({e.raw(), false});
        pure_mask |= e.raw()->var_mask;
      } else {
        impure.push_back(e);
        impure_mask |= e.raw()->var_mask;
      }
    }
    for (Expr e : operands) {
      lits.push_back({e.raw(), false});
      pure_mask |= e.raw()->var_mask;
    }
    if (neg_consequent != nullptr) {
      lits.push_back({neg_consequent, /*neg=*/true});
      pure_mask |= neg_consequent->var_mask;
    }
    if (!impure.empty()) {
      // Bloom masks first; the exact free-var sets only on a
      // may-intersect collision.
      if ((pure_mask & impure_mask) != 0 && SharesVariables(lits, impure)) {
        *ineligible = true;
        return Outcome::kUnknown;
      }
      const Outcome impure_sat = impl_.ImpureSat(impure);
      if (impure_sat == Outcome::kUnknown) return Outcome::kUnknown;
      // An unsat impure slice sinks the whole conjunction, pure part
      // regardless.
      if (impure_sat == Outcome::kUnsat) return Outcome::kUnsat;
    }
    return impl_.TryBool(std::move(lits));
  }

  bool SharesVariables(const std::vector<Lit>& pure_lits,
                       const std::vector<Expr>& impure) {
    std::unordered_set<std::int64_t> impure_syms;
    for (Expr e : impure) {
      for (const Node* var : e.FreeVarNodes()) {
        impure_syms.insert(var->value);
      }
    }
    for (const Lit& lit : pure_lits) {
      for (const Node* var : Expr::FromRaw(lit.node).FreeVarNodes()) {
        if (impure_syms.count(var->value) != 0) return true;
      }
    }
    return false;
  }

  struct Mark {
    std::size_t size, impure;
  };

  Impl& impl_;
  IncrementalSession inner_;
  std::vector<Expr> stack_;
  std::vector<Mark> marks_;
  std::size_t impure_ = 0;
};

Solver::Solver(const SolverOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

Solver::~Solver() = default;

std::unique_ptr<SolverSession> Solver::NewSession() {
  switch (impl_->options.backend) {
    case SolverBackend::kFreshZ3:
      return std::make_unique<Impl::FreshSession>(*impl_);
    case SolverBackend::kIncrementalZ3:
      return std::make_unique<Impl::IncrementalSession>(*impl_,
                                                        /*secondary=*/false);
    case SolverBackend::kFastPath:
      return std::make_unique<Impl::FastPathSession>(*impl_);
  }
  return nullptr;
}

const SolverOptions& Solver::options() const noexcept {
  return impl_->options;
}

const SolverStats& Solver::stats() const noexcept { return impl_->stats; }

void Solver::Interrupt() {
  impl_->interrupted.store(true, std::memory_order_relaxed);
  // Aborts any check already inside Z3 (the next result comes back
  // unknown). Z3_interrupt is documented safe to call from another
  // thread.
  impl_->ctx.interrupt();
}

bool Solver::interrupted() const noexcept {
  return impl_->interrupted.load(std::memory_order_relaxed);
}

std::size_t Solver::GenericSimplifiedSize(std::span<const Expr> constraints) {
  return Impl::AstSize(impl_->Conjunction(constraints).simplify());
}

}  // namespace ns::smt
