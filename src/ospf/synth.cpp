#include "ospf/synth.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "simplify/engine.hpp"
#include "synth/encoder.hpp"  // kAuxPrefix / IsAuxVar convention
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ns::ospf {

using smt::Expr;
using smt::ExprPool;
using spec::PathPattern;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Resolves a (must-be-concrete) pattern to a topology path.
Result<net::Path> ResolvePattern(const net::Topology& topo,
                                 const PathPattern& pattern) {
  if (pattern.HasWildcard()) {
    return Error(ErrorCode::kUnsupported,
                 "OSPF requirements need concrete paths (no '...'): " +
                     pattern.ToString());
  }
  net::Path path;
  for (const spec::PathElem& elem : pattern.elems) {
    const net::RouterId id = topo.FindRouter(elem.name);
    if (id == net::kInvalidRouter) {
      return Error(ErrorCode::kNotFound,
                   "unknown router '" + elem.name + "' in " +
                       pattern.ToString());
    }
    path.push_back(id);
  }
  if (!topo.IsSimplePath(path)) {
    return Error(ErrorCode::kInvalidArgument,
                 "not a simple path in the topology: " + pattern.ToString());
  }
  return path;
}

class OspfEncoder {
 public:
  OspfEncoder(ExprPool& pool, const net::Topology& topo,
              const WeightConfig& weights, const spec::Spec& spec,
              OspfEncoderOptions options)
      : pool_(pool),
        topo_(topo),
        weights_(weights),
        spec_(spec),
        options_(options) {}

  Result<OspfEncoding> Run() {
    for (const spec::Requirement& req : spec_.requirements) {
      if (req.IsLocalized()) continue;
      if (!options_.only_requirements.empty() &&
          std::find(options_.only_requirements.begin(),
                    options_.only_requirements.end(),
                    req.name) == options_.only_requirements.end()) {
        continue;
      }
      for (const spec::Statement& stmt : req.statements) {
        util::Status status = std::visit(
            [&](const auto& s) { return EncodeStmt(req.name, s); }, stmt);
        if (!status.ok()) return status.error();
      }
    }
    // Domains for every weight hole (also the untouched ones).
    for (const auto& [edge, weight] : weights_.weights()) {
      if (weight.is_hole()) WeightTerm(edge);
    }

    encoding_.constraints = definitions_;
    encoding_.constraints.insert(encoding_.constraints.end(),
                                 requirements_.begin(), requirements_.end());
    encoding_.constraints.insert(encoding_.constraints.end(),
                                 domains_.begin(), domains_.end());
    encoding_.requirement_constraints = std::move(requirements_);
    encoding_.requirement_names = std::move(names_);
    encoding_.domain_constraints = std::move(domains_);
    return std::move(encoding_);
  }

 private:
  Expr WeightTerm(const EdgeKey& edge) {
    const config::Field<int>& weight = weights_.weights().at(edge);
    if (weight.is_concrete()) return pool_.Int(weight.value());
    const auto it = encoding_.weight_vars.find(weight.hole());
    if (it != encoding_.weight_vars.end()) return it->second;
    const Expr var = pool_.Var(weight.hole(), smt::Sort::kInt);
    encoding_.weight_vars.emplace(weight.hole(), var);
    domains_.push_back(pool_.And({pool_.Le(pool_.Int(kMinWeight), var),
                                  pool_.Le(var, pool_.Int(kMaxWeight))}));
    return var;
  }

  /// Cost variable for a path, defined once as the sum of its weights
  /// (NetComplete-style auxiliary-variable encoding).
  Expr CostVar(const net::Path& path) {
    std::vector<std::string> names;
    for (net::RouterId id : path) names.push_back(topo_.NameOf(id));
    const std::string key =
        std::string(synth::kAuxPrefix) + "cost|" + util::Join(names, ".");
    const auto it = cost_vars_.find(key);
    if (it != cost_vars_.end()) return it->second;

    Expr sum = pool_.Int(0);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      sum = pool_.Add(sum, WeightTerm(MakeEdge(path[i], path[i + 1])));
    }
    const Expr var = pool_.Var(key, smt::Sort::kInt);
    definitions_.push_back(pool_.Eq(var, sum));
    ++encoding_.num_cost_vars;
    cost_vars_.emplace(key, var);
    return var;
  }

  std::vector<net::Path> Alternatives(const net::Path& path) {
    const int max_hops = options_.max_hops > 0
                             ? options_.max_hops
                             : static_cast<int>(topo_.NumRouters());
    std::vector<net::Path> out;
    for (net::Path& candidate :
         topo_.SimplePaths(path.front(), path.back(), max_hops)) {
      if (candidate != path) out.push_back(std::move(candidate));
    }
    return out;
  }

  void AddRequirement(const std::string& name, Expr constraint) {
    requirements_.push_back(constraint);
    names_.push_back(name);
  }

  // Required path: strictly cheaper than every alternative (unique
  // shortest path, so Dijkstra picks it regardless of tie-breaking).
  util::Status EncodeStmt(const std::string& name,
                          const spec::AllowStmt& allow) {
    auto path = ResolvePattern(topo_, allow.path);
    if (!path) return path.error();
    const Expr cost = CostVar(path.value());
    for (const net::Path& alternative : Alternatives(path.value())) {
      AddRequirement(name, pool_.Lt(cost, CostVar(alternative)));
    }
    return util::Status::Ok();
  }

  // Forbidden path: some alternative is strictly cheaper.
  util::Status EncodeStmt(const std::string& name,
                          const spec::ForbidStmt& forbid) {
    auto path = ResolvePattern(topo_, forbid.path);
    if (!path) return path.error();
    const Expr cost = CostVar(path.value());
    std::vector<Expr> cheaper;
    for (const net::Path& alternative : Alternatives(path.value())) {
      cheaper.push_back(pool_.Lt(CostVar(alternative), cost));
    }
    if (cheaper.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   name + ": cannot forbid the only path between its "
                          "endpoints: " + forbid.path.ToString());
    }
    AddRequirement(name, pool_.Or(cheaper));
    return util::Status::Ok();
  }

  // Ordered paths: strictly increasing cost along the ranking.
  util::Status EncodeStmt(const std::string& name,
                          const spec::PreferStmt& prefer) {
    std::vector<Expr> costs;
    for (const PathPattern& pattern : prefer.ranking) {
      auto path = ResolvePattern(topo_, pattern);
      if (!path) return path.error();
      costs.push_back(CostVar(path.value()));
    }
    for (std::size_t i = 0; i + 1 < costs.size(); ++i) {
      AddRequirement(name, pool_.Lt(costs[i], costs[i + 1]));
    }
    return util::Status::Ok();
  }

  ExprPool& pool_;
  const net::Topology& topo_;
  const WeightConfig& weights_;
  const spec::Spec& spec_;
  OspfEncoderOptions options_;

  OspfEncoding encoding_;
  std::map<std::string, Expr> cost_vars_;
  std::vector<Expr> definitions_;
  std::vector<Expr> requirements_;
  std::vector<std::string> names_;
  std::vector<Expr> domains_;
};

}  // namespace

std::vector<Expr> OspfEncoding::WeightVarList() const {
  std::vector<Expr> out;
  out.reserve(weight_vars.size());
  for (const auto& [name, var] : weight_vars) out.push_back(var);
  return out;
}

Result<OspfEncoding> EncodeOspf(ExprPool& pool, const net::Topology& topo,
                                const WeightConfig& weights,
                                const spec::Spec& spec,
                                OspfEncoderOptions options) {
  return OspfEncoder(pool, topo, weights, spec, options).Run();
}

Result<spec::CheckResult> ValidateOspf(const net::Topology& topo,
                                       const WeightConfig& weights,
                                       const spec::Spec& spec) {
  spec::CheckResult result;
  const auto violate = [&](const spec::Requirement& req,
                           const spec::Statement& stmt, std::string detail) {
    result.violations.push_back(
        spec::Violation{req.name, spec::ToString(stmt), std::move(detail)});
  };

  for (const spec::Requirement& req : spec.requirements) {
    if (req.IsLocalized()) continue;
    for (const spec::Statement& stmt : req.statements) {
      if (const auto* allow = std::get_if<spec::AllowStmt>(&stmt)) {
        auto path = ResolvePattern(topo, allow->path);
        if (!path) return path.error();
        auto tree = ShortestPaths(topo, weights, path.value().front());
        if (!tree) return tree.error();
        const auto it = tree.value().path.find(path.value().back());
        if (it == tree.value().path.end() || it->second != path.value()) {
          violate(req, stmt,
                  "shortest path is " +
                      (it == tree.value().path.end()
                           ? std::string("absent")
                           : topo.FormatPath(it->second)));
        }
      } else if (const auto* forbid = std::get_if<spec::ForbidStmt>(&stmt)) {
        auto path = ResolvePattern(topo, forbid->path);
        if (!path) return path.error();
        auto tree = ShortestPaths(topo, weights, path.value().front());
        if (!tree) return tree.error();
        const auto it = tree.value().path.find(path.value().back());
        if (it != tree.value().path.end() && it->second == path.value()) {
          violate(req, stmt, "the forbidden path IS the shortest path");
        }
      } else if (const auto* prefer = std::get_if<spec::PreferStmt>(&stmt)) {
        int previous = -1;
        for (const PathPattern& pattern : prefer->ranking) {
          auto path = ResolvePattern(topo, pattern);
          if (!path) return path.error();
          auto cost = PathCost(topo, weights, path.value());
          if (!cost) return cost.error();
          if (previous >= 0 && previous >= cost.value()) {
            violate(req, stmt, "costs are not strictly increasing along the "
                               "ranking");
            break;
          }
          previous = cost.value();
        }
      }
    }
  }
  return result;
}

Result<WeightConfig> OspfSynthesizer::Synthesize(WeightConfig sketch) {
  auto encoding = EncodeOspf(pool_, topo_, sketch, spec_, options_);
  if (!encoding) return encoding.error();

  const std::vector<Expr> vars = encoding.value().WeightVarList();
  auto model = z3_.Solve(encoding.value().constraints, vars);
  if (!model) {
    if (model.error().code() == ErrorCode::kUnsat) {
      return Error(ErrorCode::kUnsat,
                   "no weight assignment satisfies the path requirements");
    }
    return model.error();
  }

  std::vector<EdgeKey> edges;
  for (const auto& [edge, weight] : sketch.weights()) {
    if (weight.is_hole()) edges.push_back(edge);
  }
  for (const EdgeKey& edge : edges) {
    config::Field<int>& weight = sketch.GetMutable(edge.first, edge.second);
    const auto it = model.value().find(weight.hole());
    if (it == model.value().end()) {
      // Unconstrained weight: any in-range value works; pick the default.
      weight.Fill(10);
    } else {
      weight.Fill(static_cast<int>(it->second));
    }
  }

  auto check = ValidateOspf(topo_, sketch, spec_);
  if (!check) return check.error();
  if (!check.value().ok()) {
    return Error(ErrorCode::kInternal,
                 "synthesized weights fail Dijkstra validation: " +
                     check.value().ToString());
  }
  return sketch;
}

std::string OspfSubspec::ToString() const {
  std::ostringstream os;
  if (IsEmpty()) {
    os << "(empty — these weights are unconstrained)\n";
    return os.str();
  }
  for (const Expr& c : constraints) os << c.ToString() << "\n";
  return os.str();
}

Result<OspfSubspec> ExplainWeights(ExprPool& pool, const net::Topology& topo,
                                   const spec::Spec& spec,
                                   const WeightConfig& solved,
                                   const std::vector<EdgeKey>& edges,
                                   OspfEncoderOptions options) {
  if (solved.HasHole()) {
    return Error(ErrorCode::kInvalidArgument,
                 "weight explanation expects a solved configuration");
  }
  // Symbolize the selected links as Var_-prefixed weight variables.
  WeightConfig partial = solved;
  OspfSubspec subspec;
  for (const EdgeKey& edge : edges) {
    const std::string name =
        "Var_" + WeightConfig::HoleName(topo, edge.first, edge.second);
    partial.GetMutable(edge.first, edge.second).Open(name);
    subspec.holes.push_back(name);
  }

  auto encoding = EncodeOspf(pool, topo, partial, spec, options);
  if (!encoding) return encoding.error();
  subspec.domains = encoding.value().domain_constraints;

  std::vector<Expr> seed;
  for (Expr c : encoding.value().constraints) {
    const bool is_domain =
        std::find(encoding.value().domain_constraints.begin(),
                  encoding.value().domain_constraints.end(),
                  c) != encoding.value().domain_constraints.end();
    if (!is_domain) seed.push_back(c);
  }
  subspec.metrics.seed_constraints = seed.size();
  subspec.metrics.seed_size = simplify::ConstraintSetSize(seed);

  simplify::Engine engine(pool);
  std::vector<Expr> simplified = engine.SimplifyConstraints(std::move(seed));
  subspec.metrics.simplified_constraints = simplified.size();
  subspec.metrics.simplified_size = simplify::ConstraintSetSize(simplified);
  subspec.metrics.rule_stats = engine.stats();
  subspec.metrics.simplify_passes = engine.last_passes();

  subspec.constraints = explain::EliminateAuxVars(pool, std::move(simplified));
  subspec.metrics.residual_constraints = subspec.constraints.size();
  subspec.metrics.residual_size =
      simplify::ConstraintSetSize(subspec.constraints);
  return subspec;
}

}  // namespace ns::ospf
