// OSPF weight synthesis and localized weight explanations.
//
// Requirements reuse the specification DSL, interpreted over shortest
// paths (all patterns must be concrete router paths):
//
//   Req1 {
//     (A->B->C)              // required path: the unique shortest A~>C
//                            // path is exactly A->B->C
//     (A->B->C) >> (A->D->C) // ordered: cost(A->B->C) < cost(A->D->C)
//     !(A->D->C)             // forbidden: A->D->C is not the shortest
//   }
//
// The encoding mirrors the BGP side's architecture: one `st.cost|…`
// auxiliary variable per candidate path defined as the sum of its link
// weights, requirement inequalities over those variables, and weight-hole
// domains. Explanation = re-open solved weights as `Var_w_*`, re-encode,
// simplify with the 15 rules, and project out the cost variables.
#pragma once

#include <string>
#include <vector>

#include "explain/subspec.hpp"
#include "ospf/weights.hpp"
#include "smt/expr.hpp"
#include "smt/z3bridge.hpp"
#include "spec/ast.hpp"
#include "spec/checker.hpp"

namespace ns::ospf {

struct OspfEncoding {
  std::vector<smt::Expr> constraints;  ///< definitions + requirements + domains
  std::vector<smt::Expr> requirement_constraints;
  std::vector<std::string> requirement_names;
  std::vector<smt::Expr> domain_constraints;
  std::map<std::string, smt::Expr> weight_vars;  ///< hole name -> variable
  std::size_t num_cost_vars = 0;

  std::vector<smt::Expr> WeightVarList() const;
};

struct OspfEncoderOptions {
  /// Bound on candidate-path edges between requirement endpoints;
  /// 0 = #routers.
  int max_hops = 0;
  /// Restrict to these requirement blocks (projection); empty = all.
  std::vector<std::string> only_requirements;
};

/// Builds the weight-constraint encoding. Fails (kUnsupported) on patterns
/// with wildcards or non-router names, (kInvalidArgument) on paths absent
/// from the topology.
util::Result<OspfEncoding> EncodeOspf(smt::ExprPool& pool,
                                      const net::Topology& topo,
                                      const WeightConfig& weights,
                                      const spec::Spec& spec,
                                      OspfEncoderOptions options = {});

/// Checks a concrete weight assignment against the spec via the Dijkstra
/// semantics (independent of the encoder).
util::Result<spec::CheckResult> ValidateOspf(const net::Topology& topo,
                                             const WeightConfig& weights,
                                             const spec::Spec& spec);

class OspfSynthesizer {
 public:
  OspfSynthesizer(const net::Topology& topo, const spec::Spec& spec,
                  OspfEncoderOptions options = {})
      : topo_(topo), spec_(spec), options_(options) {}

  /// Fills every weight hole so the spec holds; validates via Dijkstra.
  util::Result<WeightConfig> Synthesize(WeightConfig sketch);

 private:
  const net::Topology& topo_;
  const spec::Spec& spec_;
  OspfEncoderOptions options_;
  smt::ExprPool pool_;
  smt::Z3Session z3_;
};

/// Localized weight explanation: re-opens the weights of `edges` on the
/// solved configuration and runs the paper's pipeline. The residual
/// constraints (over `Var_w_*` variables) are the subspecification for
/// those links — e.g. "Var_w_R1_R2 < 12".
struct OspfSubspec {
  std::vector<std::string> holes;
  std::vector<smt::Expr> constraints;
  std::vector<smt::Expr> domains;
  explain::SubspecMetrics metrics;

  bool IsEmpty() const noexcept { return constraints.empty(); }
  std::string ToString() const;
};

util::Result<OspfSubspec> ExplainWeights(
    smt::ExprPool& pool, const net::Topology& topo, const spec::Spec& spec,
    const WeightConfig& solved, const std::vector<EdgeKey>& edges,
    OspfEncoderOptions options = {});

}  // namespace ns::ospf
