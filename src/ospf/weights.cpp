#include "ospf/weights.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/strings.hpp"

namespace ns::ospf {

using util::Error;
using util::ErrorCode;
using util::Result;

EdgeKey MakeEdge(net::RouterId a, net::RouterId b) noexcept {
  return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
}

WeightConfig WeightConfig::DefaultsFor(const net::Topology& topo) {
  WeightConfig config;
  for (const net::Link& link : topo.links()) {
    config.weights_.emplace(MakeEdge(link.a, link.b), config::Field<int>(10));
  }
  return config;
}

WeightConfig WeightConfig::SketchFor(const net::Topology& topo) {
  WeightConfig config;
  for (const net::Link& link : topo.links()) {
    config.weights_.emplace(
        MakeEdge(link.a, link.b),
        config::Field<int>::Hole(HoleName(topo, link.a, link.b)));
  }
  return config;
}

void WeightConfig::Set(net::RouterId a, net::RouterId b,
                       config::Field<int> weight) {
  weights_[MakeEdge(a, b)] = std::move(weight);
}

const config::Field<int>& WeightConfig::Get(net::RouterId a,
                                            net::RouterId b) const {
  const auto it = weights_.find(MakeEdge(a, b));
  NS_ASSERT_MSG(it != weights_.end(), "no weight for that link");
  return it->second;
}

config::Field<int>& WeightConfig::GetMutable(net::RouterId a,
                                             net::RouterId b) {
  const auto it = weights_.find(MakeEdge(a, b));
  NS_ASSERT_MSG(it != weights_.end(), "no weight for that link");
  return it->second;
}

bool WeightConfig::HasHole() const noexcept {
  for (const auto& [edge, weight] : weights_) {
    if (weight.is_hole()) return true;
  }
  return false;
}

std::string WeightConfig::HoleName(const net::Topology& topo, net::RouterId a,
                                   net::RouterId b) {
  const EdgeKey edge = MakeEdge(a, b);
  return "w_" + topo.NameOf(edge.first) + "_" + topo.NameOf(edge.second);
}

std::string WeightConfig::ToText(const net::Topology& topo) const {
  std::ostringstream os;
  for (const auto& [edge, weight] : weights_) {
    os << "weight " << topo.NameOf(edge.first) << " "
       << topo.NameOf(edge.second) << " ";
    if (weight.is_hole()) {
      os << "?" << weight.hole();
    } else {
      os << weight.value();
    }
    os << "\n";
  }
  return os.str();
}

Result<WeightConfig> WeightConfig::Parse(const net::Topology& topo,
                                         std::string_view text) {
  WeightConfig config = DefaultsFor(topo);
  int line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto words = util::SplitWhitespace(line);
    if (words.empty()) continue;
    if (words[0] != "weight" || words.size() != 4) {
      return Error(ErrorCode::kParse, "expected 'weight <a> <b> <value>'",
                   line_no, 1);
    }
    const net::RouterId a = topo.FindRouter(words[1]);
    const net::RouterId b = topo.FindRouter(words[2]);
    if (a == net::kInvalidRouter || b == net::kInvalidRouter ||
        !topo.Adjacent(a, b)) {
      return Error(ErrorCode::kParse,
                   "weight references a non-existent link", line_no, 1);
    }
    if (words[3].starts_with('?')) {
      config.Set(a, b, config::Field<int>::Hole(words[3].substr(1)));
    } else if (util::IsAllDigits(words[3])) {
      config.Set(a, b, config::Field<int>(std::stoi(words[3])));
    } else {
      return Error(ErrorCode::kParse, "bad weight value", line_no, 1);
    }
  }
  return config;
}

Result<ShortestPathTree> ShortestPaths(const net::Topology& topo,
                                       const WeightConfig& weights,
                                       net::RouterId source) {
  if (weights.HasHole()) {
    return Error(ErrorCode::kInvalidArgument,
                 "shortest paths need concrete weights; synthesize first");
  }

  ShortestPathTree tree;
  tree.source = source;

  // Dijkstra keyed by (cost, path) so equal-cost ties break towards the
  // lexicographically smallest router-id sequence — deterministic, and
  // mirrored exactly by the encoder's strict-inequality requirements.
  using Entry = std::pair<int, net::Path>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0, net::Path{source}});

  while (!queue.empty()) {
    const auto [cost, path] = queue.top();
    queue.pop();
    const net::RouterId node = path.back();
    if (tree.cost.count(node) > 0) continue;  // already settled
    tree.cost.emplace(node, cost);
    tree.path.emplace(node, path);
    for (net::RouterId next : topo.Neighbors(node)) {
      if (tree.cost.count(next) > 0) continue;
      const int weight = weights.Get(node, next).value();
      net::Path extended = path;
      extended.push_back(next);
      queue.push({cost + weight, std::move(extended)});
    }
  }
  return tree;
}

Result<int> PathCost(const net::Topology& topo, const WeightConfig& weights,
                     const net::Path& path) {
  if (!topo.IsSimplePath(path) || path.size() < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "not a simple topology path: " + topo.FormatPath(path));
  }
  int total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& weight = weights.Get(path[i], path[i + 1]);
    if (weight.is_hole()) {
      return Error(ErrorCode::kInvalidArgument,
                   "path crosses a symbolic weight: " + weight.hole());
    }
    total += weight.value();
  }
  return total;
}

}  // namespace ns::ospf
