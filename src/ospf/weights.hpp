// OSPF substrate: link weights and shortest-path routing.
//
// NetComplete's synthesis surface covers both BGP policies and IGP link
// weights; the paper's explanation pipeline applies unchanged to either
// ("our approach is based on constraint-based configuration synthesizers").
// This module provides the weight configuration model (weights may be
// holes, like every other configuration field) and the concrete
// shortest-path semantics used to validate synthesized weights.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "config/field.hpp"
#include "net/topology.hpp"
#include "util/status.hpp"

namespace ns::ospf {

/// Canonical undirected edge key: endpoints ordered by router id.
using EdgeKey = std::pair<net::RouterId, net::RouterId>;

EdgeKey MakeEdge(net::RouterId a, net::RouterId b) noexcept;

/// OSPF weight range (Cisco: 1..65535).
inline constexpr int kMinWeight = 1;
inline constexpr int kMaxWeight = 65535;

/// Per-link weights; symmetric (one weight per undirected link). Any
/// weight may be a hole for the synthesizer to fill.
class WeightConfig {
 public:
  /// Every link of `topo` gets the default weight (concrete 10).
  static WeightConfig DefaultsFor(const net::Topology& topo);

  /// Every link of `topo` gets a weight hole named "w_<A>_<B>".
  static WeightConfig SketchFor(const net::Topology& topo);

  void Set(net::RouterId a, net::RouterId b, config::Field<int> weight);
  const config::Field<int>& Get(net::RouterId a, net::RouterId b) const;
  config::Field<int>& GetMutable(net::RouterId a, net::RouterId b);

  const std::map<EdgeKey, config::Field<int>>& weights() const noexcept {
    return weights_;
  }
  bool HasHole() const noexcept;

  /// Conventional hole/variable name for a link weight.
  static std::string HoleName(const net::Topology& topo, net::RouterId a,
                              net::RouterId b);

  /// Text rendering ("weight R1 R2 10" lines); parse round-trips.
  std::string ToText(const net::Topology& topo) const;
  static util::Result<WeightConfig> Parse(const net::Topology& topo,
                                          std::string_view text);

 private:
  std::map<EdgeKey, config::Field<int>> weights_;
};

/// Result of a concrete shortest-path computation from one source.
struct ShortestPathTree {
  net::RouterId source = net::kInvalidRouter;
  /// Per destination: total cost (absent = unreachable).
  std::map<net::RouterId, int> cost;
  /// Per destination: the (deterministically tie-broken) shortest path,
  /// source first.
  std::map<net::RouterId, net::Path> path;
};

/// Dijkstra with deterministic tie-breaking: among equal-cost paths the
/// lexicographically smallest router-id sequence wins. Requires a
/// hole-free weight configuration.
util::Result<ShortestPathTree> ShortestPaths(const net::Topology& topo,
                                             const WeightConfig& weights,
                                             net::RouterId source);

/// Total cost of `path` under `weights` (concrete); kInvalidArgument if the
/// path is not a simple topology path.
util::Result<int> PathCost(const net::Topology& topo,
                           const WeightConfig& weights, const net::Path& path);

}  // namespace ns::ospf
