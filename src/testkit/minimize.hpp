// Delta-debugging minimizer for failing netfuzz scenarios (ddmin-style
// greedy reduction to a fixpoint). Every reduction move produces a whole
// candidate scenario which is re-run through the oracle runner; a move is
// kept only when the candidate still *violates* an oracle — unsat,
// skipped and passing candidates are reverted, so the failure is
// preserved by construction.
//
// Moves, coarse to fine: drop requirement blocks, drop statements, drop
// destinations, drop routers (externals first; never the selection's
// router), drop links, drop sketch route-map entries, narrow the
// symbolization selection.
#pragma once

#include "testkit/gen.hpp"
#include "testkit/oracles.hpp"

namespace ns::testkit {

struct MinimizeOptions {
  /// Oracle set used for the failure predicate. The default disables the
  /// expensive cross-checks (Z3/batch/rename) — the cheap eval oracles
  /// catch rewrite bugs and keep each probe fast; pass the full set when
  /// minimizing a failure only a specific oracle sees.
  RunOptions run{.with_z3 = false, .with_batch = false, .with_rename = false,
                 .with_lift = false};
  /// Upper bound on oracle-runner invocations.
  int max_tests = 400;
};

struct MinimizeResult {
  FuzzScenario scenario;  ///< the smallest still-failing scenario found
  int tests_run = 0;
  /// False when the input scenario did not fail in the first place (then
  /// `scenario` is the unmodified input).
  bool failing = false;
};

MinimizeResult Minimize(const FuzzScenario& scenario,
                        const MinimizeOptions& options = {});

}  // namespace ns::testkit
