#include "testkit/transform.hpp"

#include <vector>

#include "util/strings.hpp"

namespace ns::testkit {

namespace {

std::string Renamed(const std::string& name, const RenameMap& renames) {
  const auto it = renames.find(name);
  return it == renames.end() ? name : it->second;
}

void RenameMatch(config::MatchClause& match, const RenameMap& renames) {
  if (match.via.is_concrete() && !match.via.value().empty()) {
    match.via = Renamed(match.via.value(), renames);
  }
}

}  // namespace

net::Topology RenameTopology(const net::Topology& topo,
                             const RenameMap& renames) {
  net::Topology out;
  for (const net::RouterId id : topo.AllRouters()) {
    const net::Router& router = topo.GetRouter(id);
    out.AddRouter(Renamed(router.name, renames), router.asn, router.external);
  }
  for (const net::Link& link : topo.links()) {
    out.AddLink(link.a, link.b, link.addr_a, link.addr_b);
  }
  return out;
}

spec::Spec RenameSpec(const spec::Spec& spec, const RenameMap& renames) {
  spec::Spec out = spec;
  for (spec::DestDecl& dest : out.destinations) {
    for (std::string& origin : dest.origins) origin = Renamed(origin, renames);
  }
  const auto rename_pattern = [&](spec::PathPattern& pattern) {
    for (spec::PathElem& elem : pattern.elems) {
      if (!elem.IsWildcard()) elem.name = Renamed(elem.name, renames);
    }
  };
  for (spec::Requirement& req : out.requirements) {
    if (req.scope_router.has_value()) {
      req.scope_router = Renamed(*req.scope_router, renames);
    }
    if (req.scope_peer.has_value()) {
      req.scope_peer = Renamed(*req.scope_peer, renames);
    }
    for (spec::Statement& stmt : req.statements) {
      std::visit(
          [&](auto& s) {
            using S = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<S, spec::PreferStmt>) {
              for (spec::PathPattern& p : s.ranking) rename_pattern(p);
            } else {
              rename_pattern(s.path);
            }
          },
          stmt);
    }
  }
  return out;
}

std::string RenameMapName(const std::string& name, const RenameMap& renames) {
  // Router names may themselves contain underscores (the fat-tree family's
  // "T2_1"), so token-wise renaming would silently miss them inside
  // "T2_1_to_X2_1". Greedily match the longest run of tokens that joins
  // back into a renamed router name.
  const std::vector<std::string> tokens = util::Split(name, '_');
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < tokens.size()) {
    std::size_t matched = 0;
    std::string replacement;
    std::string joined;
    for (std::size_t j = i; j < tokens.size(); ++j) {
      if (j > i) joined += '_';
      joined += tokens[j];
      const auto it = renames.find(joined);
      if (it != renames.end()) {
        matched = j - i + 1;
        replacement = it->second;
      }
    }
    if (matched > 0) {
      out.push_back(std::move(replacement));
      i += matched;
    } else {
      out.push_back(tokens[i]);
      ++i;
    }
  }
  return util::Join(out, "_");
}

config::NetworkConfig RenameConfig(const config::NetworkConfig& network,
                                   const RenameMap& renames) {
  config::NetworkConfig out;
  for (const auto& [name, cfg] : network.routers) {
    config::RouterConfig renamed = cfg;
    renamed.router = Renamed(cfg.router, renames);
    for (config::Neighbor& session : renamed.neighbors) {
      session.peer = Renamed(session.peer, renames);
      if (session.import_map.has_value()) {
        session.import_map = RenameMapName(*session.import_map, renames);
      }
      if (session.export_map.has_value()) {
        session.export_map = RenameMapName(*session.export_map, renames);
      }
    }
    std::map<std::string, config::RouteMap> maps;
    for (const auto& [map_name, map] : cfg.route_maps) {
      config::RouteMap renamed_map = map;
      renamed_map.name = RenameMapName(map.name, renames);
      for (config::RouteMapEntry& entry : renamed_map.entries) {
        RenameMatch(entry.match, renames);
      }
      maps.emplace(RenameMapName(map_name, renames), std::move(renamed_map));
    }
    renamed.route_maps = std::move(maps);
    out.routers.emplace(renamed.router, std::move(renamed));
  }
  return out;
}

explain::Selection RenameSelection(const explain::Selection& selection,
                                   const RenameMap& renames) {
  explain::Selection out = selection;
  out.router = Renamed(selection.router, renames);
  if (selection.route_map.has_value()) {
    out.route_map = RenameMapName(*selection.route_map, renames);
  }
  return out;
}

net::Topology SubTopology(const net::Topology& topo,
                          const std::set<std::string>& keep) {
  net::Topology out;
  for (const net::RouterId id : topo.AllRouters()) {
    const net::Router& router = topo.GetRouter(id);
    if (keep.count(router.name) > 0) {
      out.AddRouter(router.name, router.asn, router.external);
    }
  }
  for (const net::Link& link : topo.links()) {
    const net::RouterId a = out.FindRouter(topo.NameOf(link.a));
    const net::RouterId b = out.FindRouter(topo.NameOf(link.b));
    if (a != net::kInvalidRouter && b != net::kInvalidRouter) {
      out.AddLink(a, b, link.addr_a, link.addr_b);
    }
  }
  return out;
}

spec::Spec PruneSpec(const spec::Spec& spec,
                     const std::set<std::string>& keep) {
  spec::Spec out;
  std::set<std::string> known = keep;  // routers + surviving dest names
  for (const spec::DestDecl& dest : spec.destinations) {
    spec::DestDecl pruned = dest;
    std::erase_if(pruned.origins, [&](const std::string& origin) {
      return keep.count(origin) == 0;
    });
    if (!pruned.origins.empty()) {
      known.insert(pruned.name);
      out.destinations.push_back(std::move(pruned));
    }
  }
  const auto pattern_survives = [&](const spec::PathPattern& pattern) {
    for (const spec::PathElem& elem : pattern.elems) {
      if (!elem.IsWildcard() && known.count(elem.name) == 0) return false;
    }
    return true;
  };
  for (const spec::Requirement& req : spec.requirements) {
    if (req.scope_router.has_value() && keep.count(*req.scope_router) == 0) {
      continue;
    }
    if (req.scope_peer.has_value() && keep.count(*req.scope_peer) == 0) {
      continue;
    }
    spec::Requirement pruned;
    pruned.name = req.name;
    pruned.scope_router = req.scope_router;
    pruned.scope_peer = req.scope_peer;
    for (const spec::Statement& stmt : req.statements) {
      const bool survives = std::visit(
          [&](const auto& s) {
            using S = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<S, spec::PreferStmt>) {
              for (const spec::PathPattern& p : s.ranking) {
                if (!pattern_survives(p)) return false;
              }
              return true;
            } else {
              return pattern_survives(s.path);
            }
          },
          stmt);
      if (survives) pruned.statements.push_back(stmt);
    }
    if (!pruned.statements.empty()) out.requirements.push_back(std::move(pruned));
  }
  return out;
}

config::NetworkConfig PruneConfig(const config::NetworkConfig& network,
                                  const std::set<std::string>& keep) {
  config::NetworkConfig out;
  for (const auto& [name, cfg] : network.routers) {
    if (keep.count(name) == 0) continue;
    config::RouterConfig pruned = cfg;
    std::erase_if(pruned.neighbors, [&](const config::Neighbor& session) {
      return keep.count(session.peer) == 0;
    });
    // Keep only route-maps some surviving session still references.
    std::set<std::string> referenced;
    for (const config::Neighbor& session : pruned.neighbors) {
      if (session.import_map.has_value()) referenced.insert(*session.import_map);
      if (session.export_map.has_value()) referenced.insert(*session.export_map);
    }
    std::erase_if(pruned.route_maps, [&](const auto& entry) {
      return referenced.count(entry.first) == 0;
    });
    // Via-matches naming a dropped router can never match; drop the clause
    // down to match-any so the config stays self-contained.
    for (auto& [map_name, map] : pruned.route_maps) {
      for (config::RouteMapEntry& entry : map.entries) {
        if (entry.match.field.is_concrete() &&
            entry.match.field.value() == config::MatchField::kViaContains &&
            entry.match.via.is_concrete() &&
            keep.count(entry.match.via.value()) == 0) {
          entry.match = config::MatchClause{};
        }
      }
    }
    out.routers.emplace(name, std::move(pruned));
  }
  return out;
}

}  // namespace ns::testkit
