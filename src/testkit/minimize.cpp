#include "testkit/minimize.hpp"

#include <set>
#include <string>
#include <vector>

#include "testkit/transform.hpp"

namespace ns::testkit {

namespace {

std::set<std::string> RouterNames(const net::Topology& topo) {
  std::set<std::string> names;
  for (const net::RouterId id : topo.AllRouters()) {
    names.insert(topo.NameOf(id));
  }
  return names;
}

/// Drops the spec destination `name` plus every statement whose pattern
/// mentions it.
spec::Spec DropDestination(const spec::Spec& spec, const std::string& name) {
  spec::Spec out = spec;
  std::erase_if(out.destinations,
                [&](const spec::DestDecl& d) { return d.name == name; });
  const auto mentions = [&](const spec::PathPattern& pattern) {
    for (const spec::PathElem& elem : pattern.elems) {
      if (!elem.IsWildcard() && elem.name == name) return true;
    }
    return false;
  };
  for (spec::Requirement& req : out.requirements) {
    std::erase_if(req.statements, [&](const spec::Statement& stmt) {
      return std::visit(
          [&](const auto& s) {
            using S = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<S, spec::PreferStmt>) {
              for (const spec::PathPattern& p : s.ranking) {
                if (mentions(p)) return true;
              }
              return false;
            } else {
              return mentions(s.path);
            }
          },
          stmt);
    });
  }
  std::erase_if(out.requirements, [](const spec::Requirement& req) {
    return req.statements.empty();
  });
  return out;
}

/// Removes the BGP session between `a` and `b` from the configuration
/// (both directions) along with route-maps nothing references anymore.
void RemoveSession(config::NetworkConfig& network, const std::string& a,
                   const std::string& b) {
  for (const auto& [owner, peer] :
       {std::pair{a, b}, std::pair{b, a}}) {
    config::RouterConfig* cfg = network.FindRouter(owner);
    if (cfg == nullptr) continue;
    std::erase_if(cfg->neighbors, [&](const config::Neighbor& session) {
      return session.peer == peer;
    });
    std::set<std::string> referenced;
    for (const config::Neighbor& session : cfg->neighbors) {
      if (session.import_map.has_value()) referenced.insert(*session.import_map);
      if (session.export_map.has_value()) referenced.insert(*session.export_map);
    }
    std::erase_if(cfg->route_maps, [&](const auto& entry) {
      return referenced.count(entry.first) == 0;
    });
  }
}

struct Shrinker {
  const MinimizeOptions& options;
  FuzzScenario current;
  int tests = 0;
  /// Oracles that failed on the input scenario; a reduction move is only
  /// kept when one of *these* still fails, so shrinking cannot wander off
  /// to a different (possibly spurious) failure.
  std::set<std::string> expected;

  bool Budget() const { return tests < options.max_tests; }

  /// The failure predicate: does `candidate` still fail the same way?
  bool Fails(const FuzzScenario& candidate) {
    ++tests;
    const RunReport report = RunScenario(candidate, options.run);
    if (!report.Violated()) return false;
    if (expected.empty()) return true;
    for (const OracleFailure& failure : report.failures) {
      if (expected.count(failure.oracle) > 0) return true;
    }
    return false;
  }

  /// Tries `candidate`; adopts it when the failure is preserved.
  bool Accept(FuzzScenario candidate) {
    if (!Budget() || !Fails(candidate)) return false;
    current = std::move(candidate);
    return true;
  }

  bool DropRequirements() {
    bool changed = false;
    for (std::size_t i = 0; i < current.spec.requirements.size() && Budget();) {
      FuzzScenario candidate = current;
      candidate.spec.requirements.erase(
          candidate.spec.requirements.begin() +
          static_cast<std::ptrdiff_t>(i));
      if (Accept(std::move(candidate))) {
        changed = true;  // same index now names the next block
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool DropStatements() {
    bool changed = false;
    for (std::size_t r = 0; r < current.spec.requirements.size(); ++r) {
      for (std::size_t s = 0;
           s < current.spec.requirements[r].statements.size() && Budget();) {
        FuzzScenario candidate = current;
        spec::Requirement& req = candidate.spec.requirements[r];
        req.statements.erase(req.statements.begin() +
                             static_cast<std::ptrdiff_t>(s));
        if (req.statements.empty()) {
          candidate.spec.requirements.erase(
              candidate.spec.requirements.begin() +
              static_cast<std::ptrdiff_t>(r));
        }
        if (Accept(std::move(candidate))) {
          changed = true;
          if (r >= current.spec.requirements.size() ||
              s >= current.spec.requirements[r].statements.size()) {
            break;
          }
        } else {
          ++s;
        }
      }
      if (r >= current.spec.requirements.size()) break;
    }
    return changed;
  }

  bool DropDestinations() {
    bool changed = false;
    for (std::size_t i = 0; i < current.spec.destinations.size() && Budget();) {
      FuzzScenario candidate = current;
      candidate.spec =
          DropDestination(candidate.spec, candidate.spec.destinations[i].name);
      if (Accept(std::move(candidate))) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool DropRouters() {
    bool changed = false;
    // Externals first (they fall away easily), then internals; never the
    // router the question is about.
    std::vector<std::string> order;
    for (const bool externals : {true, false}) {
      for (const net::RouterId id : current.topo.AllRouters()) {
        const net::Router& router = current.topo.GetRouter(id);
        if (router.external == externals &&
            router.name != current.selection.router) {
          order.push_back(router.name);
        }
      }
    }
    for (const std::string& name : order) {
      if (!Budget()) break;
      if (current.topo.FindRouter(name) == net::kInvalidRouter) continue;
      std::set<std::string> keep = RouterNames(current.topo);
      keep.erase(name);
      FuzzScenario candidate = current;
      candidate.topo = SubTopology(current.topo, keep);
      candidate.spec = PruneSpec(current.spec, keep);
      candidate.sketch = PruneConfig(current.sketch, keep);
      changed |= Accept(std::move(candidate));
    }
    return changed;
  }

  bool DropLinks() {
    bool changed = false;
    for (std::size_t i = 0; i < current.topo.links().size() && Budget();) {
      const net::Link& link = current.topo.links()[i];
      const std::string a = current.topo.NameOf(link.a);
      const std::string b = current.topo.NameOf(link.b);
      FuzzScenario candidate = current;
      net::Topology topo;
      for (const net::RouterId id : current.topo.AllRouters()) {
        const net::Router& router = current.topo.GetRouter(id);
        topo.AddRouter(router.name, router.asn, router.external);
      }
      for (std::size_t j = 0; j < current.topo.links().size(); ++j) {
        if (j == i) continue;
        const net::Link& kept = current.topo.links()[j];
        topo.AddLink(kept.a, kept.b, kept.addr_a, kept.addr_b);
      }
      candidate.topo = std::move(topo);
      RemoveSession(candidate.sketch, a, b);
      if (Accept(std::move(candidate))) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool DropSketchEntries() {
    bool changed = false;
    // Snapshot the (router, map) keys up front: Accept() replaces
    // `current` wholesale, so never iterate its containers directly.
    std::vector<std::pair<std::string, std::string>> keys;
    for (const auto& [router, cfg] : current.sketch.routers) {
      for (const auto& [map_name, map] : cfg.route_maps) {
        keys.emplace_back(router, map_name);
      }
    }
    for (const auto& [router, map_name] : keys) {
      for (std::size_t i = 0; Budget();) {
        const config::RouterConfig* cfg = current.sketch.FindRouter(router);
        const config::RouteMap* map =
            cfg == nullptr ? nullptr : cfg->FindRouteMap(map_name);
        if (map == nullptr || i >= map->entries.size()) break;
        FuzzScenario candidate = current;
        config::RouteMap* target =
            candidate.sketch.FindRouter(router)->FindRouteMap(map_name);
        target->entries.erase(target->entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
        if (target->entries.empty()) {
          // Unhook the now-empty map from its sessions and drop it.
          for (config::Neighbor& session :
               candidate.sketch.FindRouter(router)->neighbors) {
            if (session.import_map == map_name) session.import_map.reset();
            if (session.export_map == map_name) session.export_map.reset();
          }
          candidate.sketch.FindRouter(router)->route_maps.erase(map_name);
        }
        if (Accept(std::move(candidate))) {
          changed = true;
        } else {
          ++i;
        }
      }
    }
    return changed;
  }

  bool NarrowSelection() {
    if (!Budget()) return false;
    const explain::Selection& sel = current.selection;
    std::vector<explain::Selection> narrower;
    if (sel.complement) {
      explain::Selection direct = sel;
      direct.complement = false;
      narrower.push_back(std::move(direct));
    }
    const config::RouterConfig* cfg = current.sketch.FindRouter(sel.router);
    if (cfg != nullptr && !sel.route_map.has_value()) {
      for (const auto& [map_name, map] : cfg->route_maps) {
        narrower.push_back(explain::Selection::Map(sel.router, map_name));
      }
    }
    if (cfg != nullptr && sel.route_map.has_value() && !sel.seq.has_value()) {
      const config::RouteMap* map = cfg->FindRouteMap(*sel.route_map);
      if (map != nullptr) {
        for (const config::RouteMapEntry& entry : map->entries) {
          narrower.push_back(
              explain::Selection::Entry(sel.router, *sel.route_map,
                                        entry.seq));
        }
      }
    }
    for (explain::Selection& candidate_sel : narrower) {
      if (!Budget()) break;
      FuzzScenario candidate = current;
      candidate.selection = candidate_sel;
      if (Accept(std::move(candidate))) return true;
    }
    return false;
  }
};

}  // namespace

MinimizeResult Minimize(const FuzzScenario& scenario,
                        const MinimizeOptions& options) {
  Shrinker shrinker{options, scenario};
  {
    ++shrinker.tests;
    const RunReport initial = RunScenario(scenario, options.run);
    if (!initial.Violated()) {
      return MinimizeResult{scenario, shrinker.tests, false};
    }
    for (const OracleFailure& failure : initial.failures) {
      shrinker.expected.insert(failure.oracle);
    }
  }
  bool changed = true;
  while (changed && shrinker.Budget()) {
    changed = false;
    changed |= shrinker.DropRequirements();
    changed |= shrinker.DropStatements();
    changed |= shrinker.DropDestinations();
    changed |= shrinker.DropRouters();
    changed |= shrinker.DropLinks();
    changed |= shrinker.DropSketchEntries();
    changed |= shrinker.NarrowSelection();
  }
  return MinimizeResult{std::move(shrinker.current), shrinker.tests, true};
}

}  // namespace ns::testkit
