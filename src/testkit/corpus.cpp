#include "testkit/corpus.hpp"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "config/parse.hpp"
#include "config/render.hpp"
#include "net/topo_text.hpp"
#include "spec/parser.hpp"
#include "util/strings.hpp"

namespace ns::testkit {

namespace {

constexpr std::string_view kHeader = "# netfuzz scenario v1";

util::Error ParseError(std::string message) {
  return util::Error(util::ErrorCode::kParse, std::move(message));
}

std::string FormatSelection(const explain::Selection& s) {
  std::string out = "select router " + s.router;
  if (s.route_map.has_value()) out += " map " + *s.route_map;
  if (s.seq.has_value()) out += " seq " + std::to_string(*s.seq);
  if (s.slot.has_value()) out += " slot " + *s.slot;
  if (s.complement) out += " rest";
  return out;
}

util::Result<explain::Selection> ParseSelection(
    const std::vector<std::string>& tokens) {
  // tokens: "select" "router" <name> [map <m>] [seq <n>] [slot <s>] [rest]
  if (tokens.size() < 3 || tokens[1] != "router") {
    return ParseError("select line must start with 'select router <name>'");
  }
  explain::Selection s;
  s.router = tokens[2];
  std::size_t i = 3;
  while (i < tokens.size()) {
    const std::string& key = tokens[i];
    if (key == "rest") {
      s.complement = true;
      ++i;
      continue;
    }
    if (i + 1 >= tokens.size()) {
      return ParseError("select: missing value after '" + key + "'");
    }
    const std::string& value = tokens[i + 1];
    if (key == "map") {
      s.route_map = value;
    } else if (key == "seq") {
      if (!util::IsAllDigits(value)) {
        return ParseError("select: seq wants a number, got '" + value + "'");
      }
      s.seq = std::stoi(value);
    } else if (key == "slot") {
      s.slot = value;
    } else {
      return ParseError("select: unknown key '" + key + "'");
    }
    i += 2;
  }
  return s;
}

}  // namespace

std::string SaveScenario(const FuzzScenario& scenario) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "seed " << scenario.seed << "\n";
  out << "mode "
      << (scenario.mode == explain::LiftMode::kExact ? "exact" : "faithful")
      << "\n";
  out << FormatSelection(scenario.selection) << "\n";
  out << "--- topology\n" << net::ToText(scenario.topo);
  out << "--- spec\n" << scenario.spec.ToString();
  out << "--- sketch\n"
      << config::RenderNetwork(scenario.sketch, &scenario.topo);
  return out.str();
}

util::Result<FuzzScenario> LoadScenario(std::string_view text) {
  FuzzScenario scenario;
  bool saw_header = false;
  bool saw_selection = false;

  // Split into the header block and the three sections. Sections may be
  // empty (a fully minimized repro can have an empty spec).
  std::string topo_text;
  std::string spec_text;
  std::string sketch_text;
  bool saw_topo = false;
  bool saw_spec = false;
  bool saw_sketch = false;
  std::string* section = nullptr;

  for (const std::string& raw : util::Split(text, '\n')) {
    const std::string_view line = util::Trim(raw);
    if (section == nullptr && (line.empty() || line == kHeader)) {
      saw_header = saw_header || line == kHeader;
      continue;
    }
    if (line == "--- topology") {
      section = &topo_text;
      saw_topo = true;
      continue;
    }
    if (line == "--- spec") {
      section = &spec_text;
      saw_spec = true;
      continue;
    }
    if (line == "--- sketch") {
      section = &sketch_text;
      saw_sketch = true;
      continue;
    }
    if (section != nullptr) {
      *section += raw;
      *section += '\n';
      continue;
    }
    const std::vector<std::string> tokens = util::SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "seed" && tokens.size() == 2) {
      scenario.seed = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (tokens[0] == "mode" && tokens.size() == 2) {
      if (tokens[1] == "exact") {
        scenario.mode = explain::LiftMode::kExact;
      } else if (tokens[1] == "faithful") {
        scenario.mode = explain::LiftMode::kFaithful;
      } else {
        return ParseError("unknown lift mode '" + tokens[1] + "'");
      }
    } else if (tokens[0] == "select") {
      auto selection = ParseSelection(tokens);
      if (!selection.ok()) return selection.error();
      scenario.selection = std::move(selection).value();
      saw_selection = true;
    } else {
      return ParseError("unrecognized header line '" + std::string(line) +
                        "'");
    }
  }

  if (!saw_header) return ParseError("missing '# netfuzz scenario v1' header");
  if (!saw_selection) return ParseError("missing 'select' line");
  if (!saw_topo || !saw_spec || !saw_sketch) {
    return ParseError("scenario needs --- topology, --- spec and --- sketch");
  }

  auto topo = net::ParseTopology(topo_text);
  if (!topo.ok()) return topo.error();
  scenario.topo = std::move(topo).value();

  auto spec = spec::ParseSpec(spec_text);
  if (!spec.ok()) return spec.error();
  scenario.spec = std::move(spec).value();

  auto sketch = config::ParseNetworkConfig(sketch_text);
  if (!sketch.ok()) return sketch.error();
  scenario.sketch = std::move(sketch).value();

  return scenario;
}

}  // namespace ns::testkit
