// Structure-preserving scenario transformations. Two consumers:
//
//  - the rename-isomorphism oracle (oracles.cpp) renames every router
//    through an order-preserving map and expects the pipeline's answer to
//    be the same modulo the renaming;
//  - the delta-debugging minimizer (minimize.cpp) projects a scenario onto
//    a surviving router subset while keeping everything else intact.
#pragma once

#include <map>
#include <set>
#include <string>

#include "testkit/gen.hpp"

namespace ns::testkit {

/// old router name -> new router name. Routers absent from the map keep
/// their names. Destination names (D*) are never renamed.
using RenameMap = std::map<std::string, std::string>;

/// Rebuilds the topology with renamed routers; router and link insertion
/// order (and therefore ids and interface addresses) are preserved.
net::Topology RenameTopology(const net::Topology& topo,
                             const RenameMap& renames);

/// Renames router references in path patterns and destination origins.
spec::Spec RenameSpec(const spec::Spec& spec, const RenameMap& renames);

/// Renames router references in a configuration: router keys, neighbor
/// peers, route-map names (`<router>_to_<peer>` tokens), and via-matches.
config::NetworkConfig RenameConfig(const config::NetworkConfig& network,
                                   const RenameMap& renames);

explain::Selection RenameSelection(const explain::Selection& selection,
                                   const RenameMap& renames);

/// Renames an underscore-delimited identifier like `R1_to_E2` token-wise.
std::string RenameMapName(const std::string& name, const RenameMap& renames);

/// Projects the topology onto `keep` (names): surviving routers in their
/// original insertion order, surviving links in their original order.
net::Topology SubTopology(const net::Topology& topo,
                          const std::set<std::string>& keep);

/// Drops destinations whose origins all vanished, origins that vanished,
/// and statements mentioning a dropped router.
spec::Spec PruneSpec(const spec::Spec& spec, const std::set<std::string>& keep);

/// Drops configuration for routers outside `keep`, sessions to dropped
/// peers, and route-maps no session references anymore.
config::NetworkConfig PruneConfig(const config::NetworkConfig& network,
                                  const std::set<std::string>& keep);

}  // namespace ns::testkit
