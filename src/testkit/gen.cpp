#include "testkit/gen.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "config/routemap.hpp"
#include "synth/sketch.hpp"

namespace ns::testkit {

namespace {

using net::RouterId;

// ------------------------------------------------------------- topology

/// Internal routers R1..Rn (AS 100) in one of three shapes, plus external
/// peers E1..Em (one AS each) attached to distinct internal routers where
/// possible — the Fig. 1b family, scaled and randomized.
net::Topology RandomTopology(util::Rng& rng, const GenOptions& options,
                             int* num_internal, int* num_external) {
  const int n = rng.Range(options.min_internal, options.max_internal);
  const int m = rng.Range(options.min_external, options.max_external);
  *num_internal = n;
  *num_external = m;

  net::Topology topo;
  std::vector<RouterId> internal;
  for (int i = 0; i < n; ++i) {
    internal.push_back(topo.AddRouter("R" + std::to_string(i + 1), 100));
  }

  const int shape = n >= 3 ? rng.Range(0, 2) : 0;
  switch (shape) {
    case 1:  // ring
      for (int i = 0; i < n; ++i) {
        topo.AddLink(internal[static_cast<std::size_t>(i)],
                     internal[static_cast<std::size_t>((i + 1) % n)]);
      }
      break;
    case 2:  // random spanning tree + extra chords
      for (int i = 1; i < n; ++i) {
        topo.AddLink(internal[static_cast<std::size_t>(i)],
                     internal[rng.Below(static_cast<std::uint64_t>(i))]);
      }
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
          if (!topo.Adjacent(internal[static_cast<std::size_t>(a)],
                             internal[static_cast<std::size_t>(b)]) &&
              rng.Chance(1, 3)) {
            topo.AddLink(internal[static_cast<std::size_t>(a)],
                         internal[static_cast<std::size_t>(b)]);
          }
        }
      }
      break;
    default:  // chain
      for (int i = 0; i + 1 < n; ++i) {
        topo.AddLink(internal[static_cast<std::size_t>(i)],
                     internal[static_cast<std::size_t>(i + 1)]);
      }
      break;
  }

  // Externals: spread the attachment points so transit paths exist.
  std::vector<int> attach;
  for (int i = 0; i < m; ++i) {
    int at = static_cast<int>(rng.Below(static_cast<std::uint64_t>(n)));
    if (i > 0 && n > 1 && at == attach.back()) at = (at + 1) % n;
    attach.push_back(at);
    const RouterId ext =
        topo.AddRouter("E" + std::to_string(i + 1),
                       static_cast<net::Asn>(500 + 100 * i),
                       /*external=*/true);
    topo.AddLink(ext, internal[static_cast<std::size_t>(at)]);
  }
  return topo;
}

// ----------------------------------------------------------------- spec

spec::PathPattern WildcardPattern(const std::string& from,
                                  const std::string& to) {
  spec::PathPattern pattern;
  pattern.elems.push_back(spec::PathElem::Node(from));
  pattern.elems.push_back(spec::PathElem::Wildcard());
  pattern.elems.push_back(spec::PathElem::Node(to));
  return pattern;
}

spec::PathPattern ConcretePattern(const net::Topology& topo,
                                  const net::Path& path) {
  spec::PathPattern pattern;
  for (const RouterId id : path) {
    pattern.elems.push_back(spec::PathElem::Node(topo.NameOf(id)));
  }
  return pattern;
}

/// Traffic-direction preference pattern: concrete source->...->origin hops
/// followed by `...->Dk` (the Fig. 3 shape).
spec::PathPattern PreferencePattern(const net::Topology& topo,
                                    const net::Path& traffic_path,
                                    const std::string& dest) {
  spec::PathPattern pattern = ConcretePattern(topo, traffic_path);
  pattern.elems.push_back(spec::PathElem::Wildcard());
  pattern.elems.push_back(spec::PathElem::Node(dest));
  return pattern;
}

struct SpecBuilder {
  util::Rng& rng;
  const net::Topology& topo;
  const GenOptions& options;
  std::vector<std::string> externals;
  std::vector<std::string> everyone;

  // Conflict avoidance: the linter rejects a pattern both forbidden and
  // allowed/ranked, so track pattern renderings per polarity.
  std::set<std::string> forbidden;
  std::set<std::string> permitted;

  spec::Spec Build() {
    spec::Spec spec;
    DeclareDestinations(spec);

    const int blocks = rng.Range(1, options.max_requirements);
    for (int b = 0; b < blocks; ++b) {
      spec::Requirement req;
      req.name = "Req" + std::to_string(b + 1);
      const int statements =
          rng.Range(1, options.max_statements_per_requirement);
      for (int i = 0; i < statements; ++i) {
        if (auto stmt = RandomStatement(spec)) {
          req.statements.push_back(std::move(*stmt));
        }
      }
      if (!req.statements.empty()) spec.requirements.push_back(std::move(req));
    }
    if (spec.requirements.empty()) {
      // Never emit an empty specification: fall back to one no-transit
      // forbid between the first two externals (always well-formed).
      spec::Requirement req;
      req.name = "Req1";
      req.statements.push_back(
          spec::ForbidStmt{WildcardPattern(externals[0], externals[1])});
      spec.requirements.push_back(std::move(req));
    }
    // Drop destinations no statement ended up referencing — they only
    // produce linter warnings and noise in the corpus.
    std::set<std::string> mentioned;
    for (const spec::Requirement& req : spec.requirements) {
      for (const spec::Statement& stmt : req.statements) {
        std::visit(
            [&](const auto& s) {
              using S = std::decay_t<decltype(s)>;
              if constexpr (std::is_same_v<S, spec::PreferStmt>) {
                for (const spec::PathPattern& p : s.ranking) {
                  for (const spec::PathElem& e : p.elems) {
                    if (!e.IsWildcard()) mentioned.insert(e.name);
                  }
                }
              } else {
                for (const spec::PathElem& e : s.path.elems) {
                  if (!e.IsWildcard()) mentioned.insert(e.name);
                }
              }
            },
            stmt);
      }
    }
    std::erase_if(spec.destinations, [&](const spec::DestDecl& dest) {
      return mentioned.count(dest.name) == 0;
    });
    return spec;
  }

  void DeclareDestinations(spec::Spec& spec) {
    const int dests =
        static_cast<int>(rng.Below(
            static_cast<std::uint64_t>(options.max_destinations + 1)));
    for (int d = 0; d < dests; ++d) {
      spec::DestDecl decl;
      decl.name = "D" + std::to_string(d + 1);
      decl.prefix = net::Prefix(
          net::Ipv4Addr(128, 0, static_cast<std::uint8_t>(d + 1), 0), 24);
      // One or two external origins (multi-homing like the paper's D1).
      std::vector<std::string> pool = externals;
      const int origins =
          std::min<int>(rng.Range(1, 2), static_cast<int>(pool.size()));
      for (int i = 0; i < origins; ++i) {
        const std::size_t pick = rng.Below(pool.size());
        decl.origins.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      std::sort(decl.origins.begin(), decl.origins.end());
      spec.destinations.push_back(std::move(decl));
    }
  }

  std::optional<spec::Statement> RandomStatement(const spec::Spec& spec) {
    // Preferences weighted highest: they are the paper's flagship
    // requirement style and (unlike stacked forbids) rarely make the
    // sketch unsatisfiable.
    switch (rng.Below(4)) {
      case 0: return Forbid();
      case 1: return Allow();
      default: {
        auto prefer = Prefer(spec);
        if (prefer.has_value()) return prefer;
        return Allow();  // no viable ranking; fall back
      }
    }
  }

  std::optional<spec::Statement> Forbid() {
    // Either the classic no-transit wildcard form between two externals,
    // or one fully concrete simple path.
    const std::string a = externals[rng.Below(externals.size())];
    spec::PathPattern pattern;
    if (rng.Chance(2, 3)) {
      std::string b = externals[rng.Below(externals.size())];
      if (b == a) b = externals[(rng.Below(externals.size()) + 1) %
                               externals.size()];
      if (a == b) return std::nullopt;  // single-external topologies
      pattern = WildcardPattern(a, b);
    } else {
      const RouterId src = topo.FindRouter(a);
      const auto paths = topo.SimplePathsFrom(
          src, static_cast<int>(topo.NumRouters()));
      // Skip the trivial single-node path at index 0.
      if (paths.size() <= 1) return std::nullopt;
      const net::Path& path =
          paths[1 + rng.Below(paths.size() - 1)];
      pattern = ConcretePattern(topo, path);
    }
    const std::string key = pattern.ToString();
    if (permitted.count(key) > 0) return std::nullopt;
    forbidden.insert(key);
    return spec::Statement{spec::ForbidStmt{std::move(pattern)}};
  }

  std::optional<spec::Statement> Allow() {
    // Announcement direction: routes from external `a` must reach `b`.
    const std::string a = externals[rng.Below(externals.size())];
    const std::string b = everyone[rng.Below(everyone.size())];
    if (a == b) return std::nullopt;
    spec::PathPattern pattern = WildcardPattern(a, b);
    const std::string key = pattern.ToString();
    if (forbidden.count(key) > 0) return std::nullopt;
    permitted.insert(key);
    return spec::Statement{spec::AllowStmt{std::move(pattern)}};
  }

  std::optional<spec::Statement> Prefer(const spec::Spec& spec) {
    if (spec.destinations.empty()) return std::nullopt;
    const spec::DestDecl& dest =
        spec.destinations[rng.Below(spec.destinations.size())];
    // Source: any router that is not an origin of the destination.
    std::vector<std::string> sources;
    for (const std::string& name : everyone) {
      if (std::find(dest.origins.begin(), dest.origins.end(), name) ==
          dest.origins.end()) {
        sources.push_back(name);
      }
    }
    if (sources.empty()) return std::nullopt;
    const std::string source = sources[rng.Below(sources.size())];
    // All concrete traffic paths source -> origin, each a viable ranked
    // pattern (its reverse is a candidate announcement path).
    std::vector<spec::PathPattern> viable;
    for (const std::string& origin : dest.origins) {
      for (const net::Path& path : topo.SimplePaths(
               topo.FindRouter(source), topo.FindRouter(origin),
               static_cast<int>(topo.NumRouters()))) {
        viable.push_back(PreferencePattern(topo, path, dest.name));
      }
    }
    if (viable.size() < 2) return std::nullopt;
    // Rank 2 (or 3) distinct paths, order randomized.
    spec::PreferStmt prefer;
    const int ranks = std::min<int>(rng.Range(2, 3),
                                    static_cast<int>(viable.size()));
    for (int i = 0; i < ranks; ++i) {
      const std::size_t pick = rng.Below(viable.size());
      const std::string key = viable[pick].ToString();
      if (forbidden.count(key) > 0) return std::nullopt;
      permitted.insert(key);
      prefer.ranking.push_back(viable[pick]);
      viable.erase(viable.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    return spec::Statement{std::move(prefer)};
  }
};

}  // namespace

// ----------------------------------------------------------------- spec

spec::Spec RandomSpecFor(util::Rng& rng, const net::Topology& topo,
                         const GenOptions& options) {
  SpecBuilder builder{rng, topo, options, {}, {}, {}, {}};
  for (const net::RouterId id : topo.AllRouters()) {
    const net::Router& router = topo.GetRouter(id);
    builder.everyone.push_back(router.name);
    if (router.external) builder.externals.push_back(router.name);
  }
  return builder.Build();
}

// --------------------------------------------------------------- sketch

config::NetworkConfig RandomSketchFor(util::Rng& rng,
                                      const net::Topology& topo,
                                      const spec::Spec& spec,
                                      const SketchStyle& style) {
  config::NetworkConfig network = config::SkeletonFor(topo);

  const auto random_dest_prefix = [&]() -> net::Prefix {
    if (!spec.destinations.empty() && rng.Coin()) {
      return spec.destinations[rng.Below(spec.destinations.size())].prefix;
    }
    // An originated external network.
    std::vector<net::Prefix> nets;
    for (const auto& [name, cfg] : network.routers) {
      for (const net::Prefix& p : cfg.networks) nets.push_back(p);
    }
    return nets[rng.Below(nets.size())];
  };

  int symbolic_maps = 0;
  for (auto& [name, cfg] : network.routers) {
    const net::RouterId id = topo.FindRouter(name);
    if (topo.GetRouter(id).external) continue;  // policy on the AS only
    for (const config::Neighbor& session :
         std::vector<config::Neighbor>(cfg.neighbors)) {
      const bool peer_external =
          topo.GetRouter(topo.FindRouter(session.peer)).external;
      if (peer_external && rng.Chance(1, 2)) {
        // Export sketch: symbolic blocking entry + random tail.
        config::RouteMap& map = config::EnsureExportMap(cfg, session.peer);
        synth::AddSymbolicEntry(
            map, 10,
            synth::SymbolicEntryOptions{
                .with_set_next_hop = rng.Chance(1, 3),
                .with_set_local_pref = rng.Chance(1, 4),
                .with_set_community = false});
        switch (rng.Below(3)) {
          case 0: map.entries.push_back(config::DenyAll(100)); break;
          case 1: map.entries.push_back(config::PermitAll(100)); break;
          default:
            synth::AddActionHoleEntry(map, 100, random_dest_prefix());
            map.entries.push_back(config::PermitAll(200));
            break;
        }
        ++symbolic_maps;
      }
      if (peer_external && rng.Chance(1, 3)) {
        // Import sketch: screening and/or preference knobs.
        config::RouteMap& map = config::EnsureImportMap(cfg, session.peer);
        if (rng.Coin()) synth::AddViaScreenEntry(map, 10);
        synth::AddPrefixEntry(map, 20, config::RmAction::kPermit,
                              random_dest_prefix(),
                              /*symbolic_local_pref=*/true);
        map.entries.push_back(config::PermitAll(100));
        ++symbolic_maps;
      }
      if (!peer_external && rng.Chance(1, 4)) {
        // Internal-session import: a local-pref knob (the scenario 2 shape).
        config::RouteMap& map = config::EnsureImportMap(cfg, session.peer);
        synth::AddPrefixEntry(map, 10, config::RmAction::kPermit,
                              random_dest_prefix(),
                              /*symbolic_local_pref=*/true);
        map.entries.push_back(config::PermitAll(100));
        ++symbolic_maps;
      }
    }
  }

  if (symbolic_maps == 0) {
    // Guarantee at least one symbolic map: sketch the first external-facing
    // export (every generated topology has one).
    bool guaranteed = false;
    for (auto& [name, cfg] : network.routers) {
      if (guaranteed) break;
      if (topo.GetRouter(topo.FindRouter(name)).external) continue;
      for (const config::Neighbor& session : cfg.neighbors) {
        if (!topo.GetRouter(topo.FindRouter(session.peer)).external) continue;
        config::RouteMap& map = config::EnsureExportMap(cfg, session.peer);
        synth::AddSymbolicEntry(map, 10);
        map.entries.push_back(config::PermitAll(100));
        guaranteed = true;
        break;
      }
    }
  }

  if (style.communities) {
    // Community pass (runs strictly after the base pass so the default
    // style reproduces the historical rng stream byte for byte). First tag
    // routes where they enter the AS: permit-all + add-community entries
    // on external imports the base pass left unsketched.
    std::vector<config::Community> tags;
    for (auto& [name, cfg] : network.routers) {
      if (topo.GetRouter(topo.FindRouter(name)).external) continue;
      for (config::Neighbor& session : cfg.neighbors) {
        const net::Router& peer =
            topo.GetRouter(topo.FindRouter(session.peer));
        if (!peer.external || session.import_map) continue;
        if (!rng.Chance(2, 3)) continue;
        const auto tag = config::MakeCommunity(
            100, static_cast<std::uint16_t>(peer.asn & 0xffff));
        synth::AddCommunityTagEntry(
            config::EnsureImportMap(cfg, session.peer), 10, tag);
        tags.push_back(tag);
      }
    }
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    if (!tags.empty()) {
      // Then screen on the way out: action-hole entries over the tagged
      // communities on unsketched external exports — synthesis decides
      // which tags are released to which peer (community no-transit).
      for (auto& [name, cfg] : network.routers) {
        if (topo.GetRouter(topo.FindRouter(name)).external) continue;
        for (config::Neighbor& session : cfg.neighbors) {
          const net::Router& peer =
              topo.GetRouter(topo.FindRouter(session.peer));
          if (!peer.external || session.export_map) continue;
          if (!rng.Chance(1, 2)) continue;
          config::RouteMap& map =
              config::EnsureExportMap(cfg, session.peer);
          synth::AddCommunityScreenEntry(
              map, 10, tags[static_cast<std::size_t>(rng.Below(tags.size()))]);
          map.entries.push_back(config::PermitAll(100));
        }
      }
    }
  }
  return network;
}

// ------------------------------------------------------------ selection

explain::Selection RandomSelectionFor(util::Rng& rng,
                                      const config::NetworkConfig& sketch) {
  // Candidate (router, map) pairs, in deterministic map order.
  std::vector<std::pair<std::string, std::string>> maps;
  std::set<std::string> routers_with_maps;
  for (const auto& [name, cfg] : sketch.routers) {
    for (const auto& [map_name, map] : cfg.route_maps) {
      maps.emplace_back(name, map_name);
      routers_with_maps.insert(name);
    }
  }
  const auto& [router, map_name] = maps[rng.Below(maps.size())];
  const config::RouteMap& map =
      *sketch.FindRouter(router)->FindRouteMap(map_name);
  switch (rng.Below(5)) {
    case 0: return explain::Selection::Router(router);
    case 1: return explain::Selection::Map(router, map_name);
    case 2: {
      const int seq = map.entries[rng.Below(map.entries.size())].seq;
      return explain::Selection::Entry(router, map_name, seq);
    }
    case 3: {
      const int seq = map.entries[rng.Below(map.entries.size())].seq;
      return explain::Selection::Slot(router, map_name, seq, "action");
    }
    default:
      // Rest-of-network needs somebody else to carry policy.
      if (routers_with_maps.size() >= 2) {
        return explain::Selection::Rest(router);
      }
      return explain::Selection::Map(router, map_name);
  }
}

std::vector<std::string> FuzzScenario::RoutersWithMaps() const {
  std::vector<std::string> out;
  for (const auto& [name, cfg] : sketch.routers) {
    if (!cfg.route_maps.empty()) out.push_back(name);
  }
  return out;
}

FuzzScenario GenerateScenario(std::uint64_t seed, const GenOptions& options) {
  util::Rng rng(seed);
  FuzzScenario scenario;
  scenario.seed = seed;

  int num_internal = 0;
  int num_external = 0;
  scenario.topo = RandomTopology(rng, options, &num_internal, &num_external);

  scenario.spec = RandomSpecFor(rng, scenario.topo, options);
  scenario.sketch = RandomSketchFor(rng, scenario.topo, scenario.spec);
  scenario.selection = RandomSelectionFor(rng, scenario.sketch);
  scenario.mode =
      rng.Coin() ? explain::LiftMode::kExact : explain::LiftMode::kFaithful;
  return scenario;
}

}  // namespace ns::testkit
