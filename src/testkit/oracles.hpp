// Metamorphic and differential oracles over the whole explain pipeline,
// plus the runner that drives one generated scenario end to end:
//
//   synthesize (sketch -> solved, self-validated against the simulator)
//     -> symbolize + encode (the seed specification)
//     -> oracle: optimized engine bit-identical to the reference engine
//     -> oracle: simplified set eval-equivalent to the seed under random
//                concrete models
//     -> oracle: conjunct order does not change semantics
//     -> explain (subspec) + oracle: residual+domains equisatisfiable with
//                the seed under random hole pinnings (Z3)
//     -> lift + oracle: lifted meaning implies the subspec (Z3; and the
//                converse in exact mode when the lift is complete)
//     -> oracle: solver-differential — every solver backend (fresh Z3
//                session per query, incremental push/pop session, boolean
//                fast path) produces byte-identical lift and verify
//                answers
//     -> oracle: parallel batch-explain byte-identical to sequential
//     -> oracle: arena-differential — answering through a frozen arena +
//                copy-on-write overlay (cold build and warm reuse) is
//                byte-identical to the fresh-pool path
//     -> oracle: portfolio-differential — the two-phase lift pipeline
//                racing 4 compile threads and the full strategy
//                portfolio answers byte-identically to the sequential
//                1-thread plain-greedy path
//     -> oracle: serve-differential — replaying the scenario through a
//                live epoll serve front end over a real socket (with
//                randomized chunking and pipelining) yields exactly the
//                explain::AnswerRequest answers
//     -> oracle: order-preserving router renaming yields an isomorphic
//                answer
//
// A scenario that cannot be synthesized is not a failure: unsat sketches
// and generator over-approximations (lint rejections, unrealizable ranked
// paths) are reported as kUnsatScenario / kSkipped so the fuzz loop can
// keep statistics honest while only *oracle violations* fail the run.
#pragma once

#include <string>
#include <vector>

#include "testkit/gen.hpp"

namespace ns::testkit {

enum class RunStatus {
  kOk,             ///< all applicable oracles passed
  kUnsatScenario,  ///< sketch unsatisfiable for the spec (valid outcome)
  kSkipped,        ///< generator over-approximation (lint/encoding reject)
  kViolation,      ///< at least one oracle failed — a real bug repro
};

const char* RunStatusName(RunStatus status) noexcept;

struct OracleFailure {
  std::string oracle;  ///< catalog name, e.g. "simplify-eval-equivalence"
  std::string detail;
};

struct RunOptions {
  /// Run the Z3-backed oracles (subspec equisatisfiability, lift
  /// implication). Cheap scenarios only take a few solver calls each.
  bool with_z3 = true;
  /// Run the batch-explain determinism oracle.
  bool with_batch = true;
  /// Run the arena-differential oracle: answer each question via the
  /// fresh-pool path and via a shared frozen-arena registry (cold build,
  /// then warm reuse) and fail unless all three answers are byte-identical
  /// — report, subspec text, verdict flags, and error text alike.
  bool with_arena_diff = true;
  /// Run the rename-isomorphism oracle (re-runs the explain pipeline).
  bool with_rename = true;
  /// Run the lifter and its implication oracle.
  bool with_lift = true;
  /// Run the solver-differential oracle: re-lift with the fresh-session
  /// and incremental Z3 backends and fail on any divergence from the
  /// default (fast-path) answer — text, completeness, statement order,
  /// candidate count; plus fresh-vs-fastpath encoder verification.
  bool with_solver_diff = true;
  /// Run the serve-differential oracle: boot an epoll `netsubspec serve`
  /// server in-process, replay the scenario over a real loopback socket
  /// with randomized chunking/pipelining, and fail if any served answer
  /// differs from explain::AnswerRequest on the same texts.
  bool with_serve_diff = true;
  /// Run the portfolio-differential oracle: answer each question through
  /// a shared frozen-arena registry sequentially (1 compile thread, plain
  /// greedy) and racing (4 threads, full strategy portfolio) and fail
  /// unless the answers agree — report, subspec text, completeness, and
  /// candidates_tried accounting alike.
  bool with_portfolio_diff = true;
  /// Random full models for the eval-equivalence oracles.
  int eval_models = 6;
};

struct RunReport {
  RunStatus status = RunStatus::kSkipped;
  /// Pipeline stage reached: synthesize, encode, simplify, explain, lift,
  /// batch, rename, done.
  std::string stage;
  std::string note;  ///< why we skipped / the unsat message
  std::vector<OracleFailure> failures;

  bool Violated() const noexcept { return status == RunStatus::kViolation; }
  std::string Summary() const;
};

/// Runs every applicable oracle against the scenario.
RunReport RunScenario(const FuzzScenario& scenario,
                      const RunOptions& options = {});

}  // namespace ns::testkit
