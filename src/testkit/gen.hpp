// Seeded random scenario generation for the netfuzz harness: random
// topologies within paper-scale bounds, random path-preference /
// forbidden-path / allow specifications grown from *actual* topology
// paths (so generated specs always pass the linter), random sketches,
// and a random symbolization choice — everything derived from one
// printable util::Rng seed, so any run reproduces from its seed alone.
#pragma once

#include <cstdint>
#include <string>

#include "config/device.hpp"
#include "explain/symbolize.hpp"
#include "explain/lift.hpp"
#include "net/topology.hpp"
#include "spec/ast.hpp"
#include "util/rng.hpp"

namespace ns::testkit {

/// Size bounds for generated scenarios. Defaults stay within the paper's
/// scale (a handful of routers, a few requirement blocks) so every
/// pipeline stage — including Z3-backed oracles — stays fast per run.
struct GenOptions {
  int min_internal = 2;
  int max_internal = 4;
  int min_external = 2;
  int max_external = 3;
  int max_destinations = 2;
  int max_requirements = 3;
  int max_statements_per_requirement = 2;
};

/// One generated end-to-end problem instance: everything the explain
/// pipeline consumes, plus the question asked of it.
struct FuzzScenario {
  std::uint64_t seed = 0;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig sketch;
  explain::Selection selection;
  explain::LiftMode mode = explain::LiftMode::kExact;

  /// Routers (by name) that carry at least one route-map in the sketch.
  std::vector<std::string> RoutersWithMaps() const;
};

/// Deterministically generates the scenario for `seed`. The same seed and
/// options always produce the same scenario (byte-identical when
/// serialized through testkit::SaveScenario).
FuzzScenario GenerateScenario(std::uint64_t seed,
                              const GenOptions& options = {});

// Building blocks of GenerateScenario, exposed so the topology-family
// generators (testkit/families.hpp) can grow specs, sketches, and
// selections over *their* topologies with the same machinery. All three
// are pure functions of the rng stream and their inputs.

/// Random specification grown from actual paths of `topo` (so it always
/// passes the linter): destination declarations plus forbid / allow /
/// preference requirement blocks within `options`' bounds. Never empty.
spec::Spec RandomSpecFor(util::Rng& rng, const net::Topology& topo,
                         const GenOptions& options);

/// Flavor knobs for RandomSketchFor beyond the historical default.
struct SketchStyle {
  /// Additionally grow community machinery: tag-on-import entries on
  /// otherwise unsketched external imports, and community screening
  /// entries (action holes over the tagged communities) on otherwise
  /// unsketched external exports — the provider-mesh idiom.
  bool communities = false;
};

/// Random sketch over a skeleton of `topo`: symbolic blocking entries on
/// external-facing exports, screening/preference entries on imports,
/// occasional internal-session policy; at least one symbolic map is
/// guaranteed. With `style.communities` the community pass runs after the
/// base pass (the default style draws exactly the historical rng stream).
config::NetworkConfig RandomSketchFor(util::Rng& rng,
                                      const net::Topology& topo,
                                      const spec::Spec& spec,
                                      const SketchStyle& style = {});

/// Random explain question over a sketch with at least one route-map.
explain::Selection RandomSelectionFor(util::Rng& rng,
                                      const config::NetworkConfig& sketch);

}  // namespace ns::testkit
