// Scenario (de)serialization for the netfuzz corpus. A corpus file is a
// plain-text, self-contained repro: header lines (seed, lift mode, the
// symbolization selection) followed by `--- topology` / `--- spec` /
// `--- sketch` sections in the formats the repo already round-trips
// (net::ToText, spec::Spec::ToString, config::RenderNetwork — the last
// renders holes as `?name`, so sketches survive unchanged).
#pragma once

#include <string>

#include "testkit/gen.hpp"
#include "util/status.hpp"

namespace ns::testkit {

/// Renders `scenario` in the corpus text format (version 1).
std::string SaveScenario(const FuzzScenario& scenario);

/// Parses a corpus file. Errors (kParse) carry a line-level message.
util::Result<FuzzScenario> LoadScenario(std::string_view text);

}  // namespace ns::testkit
