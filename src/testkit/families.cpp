#include "testkit/families.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "config/routemap.hpp"
#include "net/builders.hpp"
#include "ospf/synth.hpp"
#include "spec/parser.hpp"
#include "synth/sketch.hpp"

namespace ns::testkit {

namespace {

using net::RouterId;

spec::PathPattern WildcardPattern(const std::string& from,
                                  const std::string& to) {
  spec::PathPattern pattern;
  pattern.elems.push_back(spec::PathElem::Node(from));
  pattern.elems.push_back(spec::PathElem::Wildcard());
  pattern.elems.push_back(spec::PathElem::Node(to));
  return pattern;
}

spec::PathPattern ConcretePattern(const net::Topology& topo,
                                  const net::Path& path) {
  spec::PathPattern pattern;
  for (const RouterId id : path) {
    pattern.elems.push_back(spec::PathElem::Node(topo.NameOf(id)));
  }
  return pattern;
}

/// Traffic-direction preference pattern: concrete source->...->origin hops
/// followed by `...->Dk` (the Fig. 3 shape, same as gen.cpp's).
spec::PathPattern PreferencePattern(const net::Topology& topo,
                                    const net::Path& traffic_path,
                                    const std::string& dest) {
  spec::PathPattern pattern = ConcretePattern(topo, traffic_path);
  pattern.elems.push_back(spec::PathElem::Wildcard());
  pattern.elems.push_back(spec::PathElem::Node(dest));
  return pattern;
}

std::vector<std::string> ExternalNames(const net::Topology& topo) {
  std::vector<std::string> out;
  for (RouterId id : topo.AllRouters()) {
    if (topo.GetRouter(id).external) out.push_back(topo.NameOf(id));
  }
  return out;
}

std::vector<std::string> InternalNames(const net::Topology& topo) {
  std::vector<std::string> out;
  for (RouterId id : topo.AllRouters()) {
    if (!topo.GetRouter(id).external) out.push_back(topo.NameOf(id));
  }
  return out;
}

/// Ensures every session towards `peer` carries an export sketch (a fully
/// symbolic blocking entry + permit tail). The family specs anchor on
/// no-transit forbids towards specific peers; without a knob on those
/// sessions the anchor is trivially unsynthesizable and the fuzz run
/// degenerates to unsat statistics.
void EnsureExportSketch(FuzzScenario& scenario, const std::string& peer) {
  const RouterId id = scenario.topo.FindRouter(peer);
  for (RouterId nbr : scenario.topo.Neighbors(id)) {
    config::RouterConfig& cfg =
        *scenario.sketch.FindRouter(scenario.topo.NameOf(nbr));
    if (cfg.FindNeighbor(peer)->export_map) continue;
    config::RouteMap& map = config::EnsureExportMap(cfg, peer);
    synth::AddSymbolicEntry(map, 10);
    map.entries.push_back(config::PermitAll(100));
  }
}

/// Finishes a family scenario: random sketch over the family topology
/// (with export knobs guaranteed on the sessions towards `anchor_peers`),
/// random question, random lift mode — the shared back half of every
/// family generator.
void FinishScenario(util::Rng& rng, FuzzScenario& scenario,
                    const SketchStyle& style,
                    const std::vector<std::string>& anchor_peers) {
  scenario.sketch = RandomSketchFor(rng, scenario.topo, scenario.spec, style);
  for (const std::string& peer : anchor_peers) {
    EnsureExportSketch(scenario, peer);
  }
  scenario.selection = RandomSelectionFor(rng, scenario.sketch);
  scenario.mode =
      rng.Coin() ? explain::LiftMode::kExact : explain::LiftMode::kFaithful;
}

// ------------------------------------------------- fuzz-scale generators

/// Tiny Clos: two pods, 1-2 ToRs and one agg each, 1-2 cores, one external
/// per pod. Spec anchors on the family structure: cross-pod no-transit
/// between the pod externals, plus an occasional cross-pod reachability
/// allow.
FuzzScenario FatTreeScenario(util::Rng& rng, std::uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  net::ClosParams params;
  params.pods = 2;
  params.edges_per_pod = rng.Range(1, 2);
  params.aggs_per_pod = 1;
  params.cores = rng.Range(1, 2);
  params.externals_per_pod = 1;
  scenario.topo = net::Clos(params);

  spec::Requirement req;
  req.name = "Req1";
  req.statements.push_back(
      spec::ForbidStmt{WildcardPattern("X1_1", "X2_1")});
  if (rng.Coin()) {
    req.statements.push_back(
        spec::ForbidStmt{WildcardPattern("X2_1", "X1_1")});
  }
  scenario.spec.requirements.push_back(std::move(req));
  if (rng.Coin()) {
    // Reachability across pods: routes from pod 2's peer must still reach
    // a fabric router (the no-transit forbids must not overshoot).
    const std::vector<std::string> internal = InternalNames(scenario.topo);
    spec::Requirement reach;
    reach.name = "Req2";
    reach.statements.push_back(spec::AllowStmt{WildcardPattern(
        "X2_1",
        internal[static_cast<std::size_t>(rng.Below(internal.size()))])});
    scenario.spec.requirements.push_back(std::move(reach));
  }
  FinishScenario(rng, scenario, SketchStyle{}, {"X1_1", "X2_1"});
  return scenario;
}

/// Small Topology-Zoo-style WAN with the generic random spec machinery:
/// the family's value is the degree-skewed, clustered wiring under every
/// statement shape the paper generator produces.
FuzzScenario WanScenario(util::Rng& rng, std::uint64_t seed,
                         const GenOptions& options) {
  FuzzScenario scenario;
  scenario.seed = seed;
  const int nodes = rng.Range(3, 5);
  const int externals = rng.Range(2, 3);
  scenario.topo = net::Wan(nodes, externals, rng.Next());
  scenario.spec = RandomSpecFor(rng, scenario.topo, options);
  FinishScenario(rng, scenario, SketchStyle{}, {});
  return scenario;
}

/// Tiny provider mesh: no-transit between the dual-homed providers,
/// customer reachability, and (coin) an ECMP-shaped preference over the
/// two provider attachment paths. The sketch gets the community pass, so
/// synthesis can solve the no-transit with tag+screen entries.
FuzzScenario MultiAsScenario(util::Rng& rng, std::uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  net::MeshParams params;
  params.cores = rng.Range(2, 3);
  params.providers = 2;
  params.customers = rng.Range(0, 1);
  scenario.topo = net::ProviderMesh(params);

  spec::Requirement req;
  req.name = "Req1";
  req.statements.push_back(spec::ForbidStmt{WildcardPattern("P1", "P2")});
  if (rng.Coin()) {
    req.statements.push_back(spec::ForbidStmt{WildcardPattern("P2", "P1")});
  }
  scenario.spec.requirements.push_back(std::move(req));
  if (params.customers >= 1 && rng.Coin()) {
    spec::Requirement reach;
    reach.name = "Req2";
    reach.statements.push_back(
        spec::AllowStmt{WildcardPattern("P1", "CU1")});
    scenario.spec.requirements.push_back(std::move(reach));
  }
  if (rng.Coin()) {
    // ECMP-shaped multi-path preference: rank the concrete paths from a
    // far vantage point to dual-homed P1's destination.
    spec::DestDecl decl;
    decl.name = "D1";
    decl.prefix = net::Prefix(net::Ipv4Addr(128, 0, 1, 0), 24);
    decl.origins.push_back("P1");
    const std::string source = params.customers >= 1
                                   ? "CU1"
                                   : "M" + std::to_string(params.cores);
    std::vector<spec::PathPattern> viable;
    for (const net::Path& path : scenario.topo.SimplePaths(
             scenario.topo.FindRouter(source), scenario.topo.FindRouter("P1"),
             static_cast<int>(scenario.topo.NumRouters()))) {
      viable.push_back(PreferencePattern(scenario.topo, path, decl.name));
    }
    if (viable.size() >= 2) {
      scenario.spec.destinations.push_back(std::move(decl));
      spec::PreferStmt prefer;
      const std::size_t first =
          static_cast<std::size_t>(rng.Below(viable.size()));
      prefer.ranking.push_back(viable[first]);
      viable.erase(viable.begin() + static_cast<std::ptrdiff_t>(first));
      prefer.ranking.push_back(
          viable[static_cast<std::size_t>(rng.Below(viable.size()))]);
      spec::Requirement pref_req;
      pref_req.name =
          "Req" + std::to_string(scenario.spec.requirements.size() + 1);
      pref_req.statements.push_back(std::move(prefer));
      scenario.spec.requirements.push_back(std::move(pref_req));
    }
  }
  FinishScenario(rng, scenario, SketchStyle{.communities = true}, {"P1", "P2"});
  return scenario;
}

/// Ring with OSPF in the loop: synthesize link weights making one arc
/// between the two attachment routers the unique shortest path, then spec
/// the BGP side along that IGP corridor (a concrete no-transit forbid).
/// The weights only inform generation — the scenario itself stays within
/// the corpus v1 format.
FuzzScenario OspfMixScenario(util::Rng& rng, std::uint64_t seed) {
  FuzzScenario scenario;
  scenario.seed = seed;
  const int n = rng.Range(3, 5);
  scenario.topo = net::Ring(n);

  // The ring's externals attach at R1 and R(n/2+1); the required arc walks
  // one side of the ring between them.
  net::Path arc;
  for (int i = 0; i <= n / 2; ++i) {
    arc.push_back(scenario.topo.FindRouter("R" + std::to_string(i + 1)));
  }
  spec::Spec ospf_spec;
  spec::Requirement ospf_req;
  ospf_req.name = "Igp1";
  ospf_req.statements.push_back(
      spec::AllowStmt{ConcretePattern(scenario.topo, arc)});
  ospf_spec.requirements.push_back(std::move(ospf_req));

  net::Path corridor = arc;
  ospf::OspfSynthesizer synthesizer(scenario.topo, ospf_spec);
  auto weights =
      synthesizer.Synthesize(ospf::WeightConfig::SketchFor(scenario.topo));
  if (weights.ok()) {
    auto tree = ospf::ShortestPaths(scenario.topo, weights.value(),
                                    arc.front());
    if (tree.ok()) {
      const auto it = tree.value().path.find(arc.back());
      if (it != tree.value().path.end()) corridor = it->second;
    }
  }

  spec::Requirement req;
  req.name = "Req1";
  net::Path forbidden;
  forbidden.push_back(scenario.topo.FindRouter("PeerA"));
  forbidden.insert(forbidden.end(), corridor.begin(), corridor.end());
  forbidden.push_back(scenario.topo.FindRouter("PeerB"));
  req.statements.push_back(
      spec::ForbidStmt{ConcretePattern(scenario.topo, forbidden)});
  if (rng.Coin()) {
    req.statements.push_back(
        spec::ForbidStmt{WildcardPattern("PeerB", "PeerA")});
  }
  scenario.spec.requirements.push_back(std::move(req));
  if (rng.Coin()) {
    spec::Requirement reach;
    reach.name = "Req2";
    reach.statements.push_back(spec::AllowStmt{WildcardPattern(
        "PeerA", "R" + std::to_string(rng.Range(1, n)))});
    scenario.spec.requirements.push_back(std::move(reach));
  }
  FinishScenario(rng, scenario, SketchStyle{}, {"PeerA", "PeerB"});
  return scenario;
}

// ------------------------------------------------ bench-scale problems

/// The bench_scaling MakeProblem pattern: a no-transit spec between `e1`
/// and `e2` solved by deny-all exports at their attachment routers.
/// Renders `dest` declarations for the externals' skeleton-originated
/// prefixes so both the encoder and the independent simulator checker
/// project routes for them (the checker only sees declared destinations).
std::string DestDecls(const config::NetworkConfig& solved,
                      std::initializer_list<std::string> externals) {
  std::string text;
  int index = 0;
  for (const std::string& ext : externals) {
    ++index;
    const config::RouterConfig* cfg = solved.FindRouter(ext);
    NS_ASSERT(cfg != nullptr && !cfg->networks.empty());
    text += "dest D" + std::to_string(index) + " = " +
            cfg->networks.front().ToString() + " at " + ext + "\n";
  }
  return text;
}

void SolveNoTransit(FamilyProblem& problem, const std::string& e1,
                    const std::string& e2) {
  problem.solved = config::SkeletonFor(problem.topo);
  auto spec = spec::ParseSpec(DestDecls(problem.solved, {e1, e2}) +
                              "Req1 {\n  !(" + e1 + "->...->" + e2 +
                              ")\n  !(" + e2 + "->...->" + e1 + ")\n}");
  NS_ASSERT(spec.ok());
  problem.spec = std::move(spec).value();
  for (const std::string& ext : {e1, e2}) {
    const RouterId ext_id = problem.topo.FindRouter(ext);
    for (RouterId nbr : problem.topo.Neighbors(ext_id)) {
      config::RouterConfig& attach =
          *problem.solved.FindRouter(problem.topo.NameOf(nbr));
      config::RouteMap& map = config::EnsureExportMap(attach, ext);
      if (map.entries.empty()) map.entries.push_back(config::DenyAll(10));
      if (problem.question_router.empty()) {
        problem.question_router = attach.router;
        problem.question_map = map.name;
      }
    }
  }
}

FamilyProblem FatTreeProblem(int k) {
  NS_ASSERT_MSG(k >= 2 && k % 2 == 0, "fat-tree size must be even");
  FamilyProblem problem;
  net::ClosParams params;
  params.pods = k;
  params.edges_per_pod = k / 2;
  params.aggs_per_pod = k / 2;
  params.cores = (k / 2) * (k / 2);
  params.externals_per_pod = 0;  // exactly two peers, added below
  problem.topo = net::Clos(params);
  const RouterId x1 = problem.topo.AddRouter("X1", 500, /*external=*/true);
  const RouterId x2 = problem.topo.AddRouter("X2", 600, /*external=*/true);
  problem.topo.AddLink(x1, problem.topo.FindRouter("T1_1"));
  problem.topo.AddLink(x2, problem.topo.FindRouter("T2_1"));
  // Peer->ToR->agg->core->agg->ToR->peer is the longest useful corridor.
  problem.max_hops = 6;
  SolveNoTransit(problem, "X1", "X2");
  return problem;
}

FamilyProblem WanProblem(int nodes, std::uint64_t seed) {
  FamilyProblem problem;
  problem.topo = net::Wan(nodes, 2, seed);
  problem.max_hops = 8;
  SolveNoTransit(problem, "XW1", "XW2");
  return problem;
}

FamilyProblem MultiAsProblem(int cores) {
  FamilyProblem problem;
  net::MeshParams params;
  params.cores = cores;
  params.providers = 2;
  params.customers = 1;
  problem.topo = net::ProviderMesh(params);
  // The mesh is dense, so an unbounded hop limit explodes the candidate
  // paths without adding usable routes. Bound by the P1->CU1 corridor
  // (the longest distance any requirement needs) plus one hop of slack
  // for the alternate dual-homed entry.
  problem.max_hops =
      static_cast<int>(net::Distance(problem.topo,
                                     problem.topo.FindRouter("P1"),
                                     problem.topo.FindRouter("CU1"))) +
      1;

  // Community-driven solution: tag provider routes where they enter the
  // mesh, drop the other provider's tag at every exit towards a provider.
  // Unlike the deny-all pattern this keeps provider->customer reachability
  // (Req2) while blocking provider->provider transit (Req1).
  problem.solved = config::SkeletonFor(problem.topo);
  auto spec = spec::ParseSpec(
      DestDecls(problem.solved, {"P1", "P2"}) +
      "Req1 {\n  !(P1->...->P2)\n  !(P2->...->P1)\n}\n"
      "Req2 {\n  (P1->...->CU1)\n}");
  NS_ASSERT(spec.ok());
  problem.spec = std::move(spec).value();
  const config::Community tag_p1 = config::MakeCommunity(100, 1);
  const config::Community tag_p2 = config::MakeCommunity(100, 2);
  for (const auto& [provider, own_tag, other_tag] :
       {std::tuple{std::string("P1"), tag_p1, tag_p2},
        std::tuple{std::string("P2"), tag_p2, tag_p1}}) {
    const RouterId ext_id = problem.topo.FindRouter(provider);
    for (RouterId nbr : problem.topo.Neighbors(ext_id)) {
      config::RouterConfig& attach =
          *problem.solved.FindRouter(problem.topo.NameOf(nbr));
      config::RouteMap& imp = config::EnsureImportMap(attach, provider);
      if (imp.entries.empty()) {
        synth::AddCommunityTagEntry(imp, 10, own_tag);
      }
      config::RouteMap& exp = config::EnsureExportMap(attach, provider);
      if (exp.entries.empty()) {
        config::RouteMapEntry screen;
        screen.seq = 10;
        screen.action = config::RmAction::kDeny;
        screen.match.field = config::MatchField::kCommunity;
        screen.match.community = other_tag;
        exp.entries.push_back(std::move(screen));
        exp.entries.push_back(config::PermitAll(100));
      }
      if (problem.question_router.empty()) {
        problem.question_router = attach.router;
        problem.question_map = exp.name;
      }
    }
  }
  return problem;
}

FamilyProblem OspfMixProblem(int ring) {
  NS_ASSERT_MSG(ring >= 3, "ospf ring needs >=3 routers");
  FamilyProblem problem;
  problem.topo = net::Ring(ring);
  problem.max_hops = ring + 2;

  net::Path arc;
  for (int i = 0; i <= ring / 2; ++i) {
    arc.push_back(problem.topo.FindRouter("R" + std::to_string(i + 1)));
  }
  spec::Spec ospf_spec;
  spec::Requirement req;
  req.name = "Igp1";
  req.statements.push_back(
      spec::AllowStmt{ConcretePattern(problem.topo, arc)});
  ospf_spec.requirements.push_back(std::move(req));
  ospf::OspfSynthesizer synthesizer(problem.topo, ospf_spec);
  auto weights =
      synthesizer.Synthesize(ospf::WeightConfig::SketchFor(problem.topo));
  NS_ASSERT_MSG(weights.ok(), "ospf arc requirement must be satisfiable");
  problem.weights = std::move(weights).value();
  problem.ospf_spec = std::move(ospf_spec);

  SolveNoTransit(problem, "PeerA", "PeerB");
  return problem;
}

}  // namespace

const char* FamilyName(Family family) noexcept {
  switch (family) {
    case Family::kPaper: return "paper";
    case Family::kFatTree: return "fattree";
    case Family::kWan: return "wan";
    case Family::kMultiAs: return "multias";
    case Family::kOspfMix: return "ospfmix";
  }
  return "?";
}

util::Result<Family> ParseFamily(std::string_view name) {
  for (Family family : AllFamilies()) {
    if (name == FamilyName(family)) return family;
  }
  return util::Error(util::ErrorCode::kInvalidArgument,
                     "unknown family '" + std::string(name) +
                         "' (expected paper|fattree|wan|multias|ospfmix)");
}

std::vector<Family> AllFamilies() {
  return {Family::kPaper, Family::kFatTree, Family::kWan, Family::kMultiAs,
          Family::kOspfMix};
}

FuzzScenario GenerateFamilyScenario(Family family, std::uint64_t seed,
                                    const GenOptions& options) {
  if (family == Family::kPaper) return GenerateScenario(seed, options);
  // Decouple the family streams: the same seed explores different corners
  // in different families.
  util::Rng rng(seed ^ (static_cast<std::uint64_t>(family) << 56));
  switch (family) {
    case Family::kFatTree: return FatTreeScenario(rng, seed);
    case Family::kWan: return WanScenario(rng, seed, options);
    case Family::kMultiAs: return MultiAsScenario(rng, seed);
    case Family::kOspfMix: return OspfMixScenario(rng, seed);
    case Family::kPaper: break;
  }
  return GenerateScenario(seed, options);
}

FamilyProblem MakeFamilyProblem(Family family, int size, std::uint64_t seed) {
  FamilyProblem problem;
  switch (family) {
    case Family::kPaper: {
      problem.topo = net::PaperFig1b();
      const auto externals = ExternalNames(problem.topo);
      SolveNoTransit(problem, externals[0], externals[1]);
      break;
    }
    case Family::kFatTree: problem = FatTreeProblem(size); break;
    case Family::kWan: problem = WanProblem(size, seed); break;
    case Family::kMultiAs: problem = MultiAsProblem(size); break;
    case Family::kOspfMix: problem = OspfMixProblem(size); break;
  }
  problem.family = family;
  problem.size = size;
  problem.label =
      std::string(FamilyName(family)) + "(" + std::to_string(size) + ")";
  return problem;
}

}  // namespace ns::testkit
