#include "testkit/oracles.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "config/parse.hpp"
#include "config/render.hpp"
#include "explain/arena.hpp"
#include "explain/batch.hpp"
#include "explain/lift.hpp"
#include "explain/subspec.hpp"
#include "explain/symbolize.hpp"
#include "explain/verify.hpp"
#include "net/topo_text.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "simplify/engine.hpp"
#include "spec/parser.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "smt/z3bridge.hpp"
#include "synth/encoder.hpp"
#include "synth/synthesizer.hpp"
#include "testkit/transform.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ns::testkit {

namespace {

using smt::Expr;

std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

/// Collects every free variable of `constraints`, sorted by name.
std::vector<Expr> CollectVars(const std::vector<Expr>& constraints) {
  std::map<std::string, Expr> by_name;
  for (const Expr e : constraints) {
    for (const Expr v : e.FreeVars()) by_name.emplace(v.name(), v);
  }
  std::vector<Expr> out;
  out.reserve(by_name.size());
  for (const auto& [name, v] : by_name) out.push_back(v);
  return out;
}

/// One random full assignment: bools in {0,1}, ints mostly tiny (so
/// equalities against table indices actually fire) with an occasional
/// large value.
smt::Assignment RandomModel(util::Rng& rng, const std::vector<Expr>& vars) {
  smt::Assignment env;
  for (const Expr v : vars) {
    if (v.sort() == smt::Sort::kBool) {
      env[v.name()] = static_cast<std::int64_t>(rng.Below(2));
    } else {
      env[v.name()] = static_cast<std::int64_t>(
          rng.Chance(3, 4) ? rng.Below(5) : rng.Below(300));
    }
  }
  return env;
}

/// Evaluates the conjunction of `constraints` under `env`. Every constraint
/// is boolean by construction of the encoder.
bool EvalConjunction(const std::vector<Expr>& constraints,
                     const smt::Assignment& env, std::string* error) {
  for (const Expr e : constraints) {
    const auto value = smt::Eval(e, env);
    if (!value.ok()) {
      if (error != nullptr) *error = value.error().ToString();
      return false;
    }
    if (value.value() == 0) return false;
  }
  return true;
}

struct Runner {
  const FuzzScenario& scenario;
  const RunOptions& options;
  RunReport report;
  util::Rng rng;

  explicit Runner(const FuzzScenario& s, const RunOptions& o)
      : scenario(s), options(o), rng(s.seed ^ 0x9e3779b97f4a7c15ull) {}

  void Fail(std::string oracle, std::string detail) {
    report.status = RunStatus::kViolation;
    report.failures.push_back(
        OracleFailure{std::move(oracle), std::move(detail)});
  }

  RunReport Run() {
    report.stage = "synthesize";
    synth::Synthesizer synthesizer(scenario.topo, scenario.spec);
    auto synthesized = synthesizer.Synthesize(scenario.sketch);
    if (!synthesized.ok()) {
      const util::Error& error = synthesized.error();
      switch (error.code()) {
        case util::ErrorCode::kUnsat:
          report.status = RunStatus::kUnsatScenario;
          report.note = error.message();
          return report;
        case util::ErrorCode::kInternal:
          // The synthesizer's own differential check (encoder model vs
          // concrete simulator) rejected its solution — a real bug.
          Fail("synth-validate", error.ToString());
          return report;
        default:
          // Lint rejections / unrealizable ranked paths: the generator
          // over-approximated what the encoder supports.
          report.status = RunStatus::kSkipped;
          report.note = error.ToString();
          return report;
      }
    }
    const config::NetworkConfig& solved = synthesized.value().network;

    // ------------------------------------------------ seed specification
    report.stage = "encode";
    config::NetworkConfig symbolic = solved;
    auto holes = explain::Symbolize(symbolic, scenario.selection);
    if (!holes.ok()) {
      if (holes.error().code() == util::ErrorCode::kNotFound) {
        // The selection matches nothing — a generated selection always
        // names sketch route-maps, but the minimizer can shrink them away.
        report.status = RunStatus::kSkipped;
        report.note = holes.error().ToString();
        return report;
      }
      Fail("symbolize", holes.error().ToString());
      return report;
    }
    smt::ExprPool pool;
    auto encoded = synth::Encode(pool, scenario.topo, symbolic, scenario.spec);
    if (!encoded.ok()) {
      // Encoding succeeded for synthesis on the same inputs; the
      // symbolized variant must encode too.
      Fail("encode", encoded.error().ToString());
      return report;
    }
    const std::vector<Expr>& seed = encoded.value().constraints;

    // ------------------------------------- engine differential + shuffle
    report.stage = "simplify";
    simplify::Engine fast(pool);
    simplify::Engine reference(pool, simplify::ReferenceEngineOptions());
    const std::vector<Expr> fast_out = fast.SimplifyConstraints(seed);
    const std::vector<Expr> reference_out =
        reference.SimplifyConstraints(seed);
    if (fast_out != reference_out) {
      Fail("engine-differential",
           "optimized engine output differs from ReferenceEngineOptions "
           "output (constraints " +
               std::to_string(fast_out.size()) + " vs " +
               std::to_string(reference_out.size()) + ", sizes " +
               std::to_string(simplify::ConstraintSetSize(fast_out)) +
               " vs " +
               std::to_string(simplify::ConstraintSetSize(reference_out)) +
               ")");
    }

    const std::vector<Expr> vars = CollectVars(seed);
    std::vector<smt::Assignment> models;
    for (int i = 0; i < options.eval_models; ++i) {
      models.push_back(RandomModel(rng, vars));
    }
    CheckEvalEquivalence("simplify-eval-equivalence", seed, fast_out, models);

    std::vector<Expr> shuffled = seed;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
    }
    simplify::Engine shuffled_engine(pool);
    CheckEvalEquivalence("conjunct-shuffle",
                         seed, shuffled_engine.SimplifyConstraints(shuffled),
                         models);

    // --------------------------------------------------------- subspec
    report.stage = "explain";
    explain::Explainer explainer(scenario.topo, scenario.spec, solved);
    auto subspec = explainer.Explain(scenario.selection);
    if (!subspec.ok()) {
      Fail("explain", subspec.error().ToString());
      return report;
    }

    if (options.with_z3) {
      CheckEquisat(seed, pool, encoded.value(), subspec.value(),
                   explainer.pool());
    }

    // ------------------------------------------------------------- lift
    report.stage = "lift";
    bool liftable = options.with_lift && !subspec.value().IsEmpty() &&
                    !subspec.value().IsUnsatisfiable();
    std::string lift_text;
    if (liftable) {
      explain::Lifter lifter(explainer.pool(), scenario.topo, scenario.spec,
                             solved);
      auto lifted = lifter.Lift(subspec.value(), scenario.mode);
      if (!lifted.ok()) {
        // Outside the lifter's documented fragment (e.g. rest-of-network
        // summaries): a clean refusal, not an oracle violation.
        if (lifted.error().code() == util::ErrorCode::kUnsupported) {
          liftable = false;
        } else {
          Fail("lift", lifted.error().ToString());
        }
      } else {
        lift_text = lifted.value().ToString();
        if (options.with_z3 && lifted.value().complete) {
          CheckLiftImplication(subspec.value(), lifted.value(),
                               explainer.pool());
        }
        if (options.with_z3 && options.with_solver_diff) {
          report.stage = "solver-diff";
          CheckSolverDifferential(explainer.pool(), solved, subspec.value(),
                                  lifted.value());
        }
      }
    }

    // ------------------------------------------------------------ batch
    if (options.with_batch) {
      report.stage = "batch";
      CheckBatchDeterminism(solved);
    }

    // ------------------------------------------------------------ arena
    if (options.with_arena_diff) {
      report.stage = "arena";
      CheckArenaDifferential(solved);
    }

    // ------------------------------------------------------- portfolio
    if (options.with_portfolio_diff) {
      report.stage = "portfolio";
      CheckPortfolioDifferential(solved);
    }

    // ------------------------------------------------------------ serve
    if (options.with_serve_diff) {
      report.stage = "serve";
      CheckServeDifferential(solved);
    }

    // ----------------------------------------------------------- rename
    if (options.with_rename) {
      report.stage = "rename";
      CheckRenameIsomorphism(solved, subspec.value(), liftable, lift_text);
    }

    report.stage = "done";
    if (report.status == RunStatus::kSkipped) report.status = RunStatus::kOk;
    return report;
  }

  /// `simplified` must agree with `seed` on every random full model.
  void CheckEvalEquivalence(const char* oracle, const std::vector<Expr>& seed,
                            const std::vector<Expr>& simplified,
                            const std::vector<smt::Assignment>& models) {
    for (std::size_t i = 0; i < models.size(); ++i) {
      std::string error;
      const bool seed_value = EvalConjunction(seed, models[i], &error);
      if (!error.empty()) {
        Fail(oracle, "seed evaluation failed: " + error);
        return;
      }
      const bool simplified_value =
          EvalConjunction(simplified, models[i], &error);
      if (!error.empty()) {
        Fail(oracle, "simplified evaluation failed: " + error);
        return;
      }
      if (seed_value != simplified_value) {
        Fail(oracle, "model #" + std::to_string(i) + ": seed evaluates to " +
                         (seed_value ? "true" : "false") +
                         " but the simplified set evaluates to " +
                         (simplified_value ? "true" : "false"));
        return;
      }
    }
  }

  /// Seed ∧ pins must be satisfiable exactly when residual ∧ domains ∧ pins
  /// is: auxiliary-variable elimination is an existential projection, so
  /// pinning *all* explanation variables makes the two sides equi-sat.
  void CheckEquisat(const std::vector<Expr>& seed, smt::ExprPool& seed_pool,
                    const synth::Encoding& encoding,
                    const explain::Subspec& subspec, smt::ExprPool& sub_pool) {
    if (encoding.hole_vars.empty()) return;
    smt::Z3Session z3;
    std::vector<Expr> hole_vars;
    for (const auto& [name, var] : encoding.hole_vars) {
      hole_vars.push_back(var);
    }
    auto model = z3.Solve(seed, hole_vars);
    if (!model.ok()) {
      // The seed came from a successfully synthesized configuration; its
      // symbolized re-encoding must stay satisfiable.
      Fail("subspec-equisat",
           "seed specification unexpectedly " +
               std::string(util::ErrorCodeName(model.error().code())) + ": " +
               model.error().message());
      return;
    }

    for (int round = 0; round < 2; ++round) {
      // Round 0 pins the model exactly (both sides must be sat); later
      // rounds perturb a random subset (both sides must still agree).
      smt::Assignment pins = model.value();
      if (round > 0) {
        for (auto& [name, value] : pins) {
          if (!rng.Coin()) continue;
          value = value == 0
                      ? 1
                      : value + 1 + static_cast<std::int64_t>(rng.Below(3));
        }
      }
      std::vector<Expr> seed_side = seed;
      std::vector<Expr> sub_side = subspec.constraints;
      sub_side.insert(sub_side.end(), subspec.domains.begin(),
                      subspec.domains.end());
      for (const Expr var : hole_vars) {
        const auto it = pins.find(var.name());
        if (it == pins.end()) continue;
        const std::int64_t value = it->second;
        if (var.sort() == smt::Sort::kBool) {
          seed_side.push_back(value != 0 ? var : seed_pool.Not(var));
          const Expr sub_var = sub_pool.Var(var.name(), smt::Sort::kBool);
          sub_side.push_back(value != 0 ? sub_var : sub_pool.Not(sub_var));
        } else {
          seed_side.push_back(seed_pool.Eq(var, seed_pool.Int(value)));
          const Expr sub_var = sub_pool.Var(var.name(), smt::Sort::kInt);
          sub_side.push_back(sub_pool.Eq(sub_var, sub_pool.Int(value)));
        }
      }
      const smt::Outcome seed_sat = z3.CheckSat(seed_side);
      const smt::Outcome sub_sat = z3.CheckSat(sub_side);
      if (seed_sat == smt::Outcome::kUnknown ||
          sub_sat == smt::Outcome::kUnknown) {
        continue;
      }
      if (seed_sat != sub_sat) {
        Fail("subspec-equisat",
             "round " + std::to_string(round) + ": seed is " +
                 smt::OutcomeName(seed_sat) + " but residual+domains is " +
                 smt::OutcomeName(sub_sat) + " under the same hole pinning");
        return;
      }
      if (round == 0 && seed_sat != smt::Outcome::kSat) {
        Fail("subspec-equisat",
             "pinning the holes to their own model left the seed " +
                 std::string(smt::OutcomeName(seed_sat)));
        return;
      }
    }
  }

  /// domains ∧ lifted-meaning must imply every residual constraint; in
  /// exact mode (complete lifts) the converse holds too.
  void CheckLiftImplication(const explain::Subspec& subspec,
                            const explain::LiftResult& lifted,
                            smt::ExprPool& pool) {
    smt::Z3Session z3;
    std::vector<Expr> meaning;
    for (const explain::LiftedStatement& stmt : lifted.used) {
      meaning.insert(meaning.end(), stmt.residual.begin(),
                     stmt.residual.end());
    }
    std::vector<Expr> antecedent = subspec.domains;
    antecedent.insert(antecedent.end(), meaning.begin(), meaning.end());
    const Expr ante = pool.And(antecedent);
    const Expr cons = pool.And(subspec.constraints);
    if (!z3.Implies(ante, cons)) {
      Fail("lift-implication",
           "lifted statements (+domains) do not imply the residual "
           "constraints");
      return;
    }
    if (scenario.mode == explain::LiftMode::kExact) {
      std::vector<Expr> reverse = subspec.domains;
      reverse.insert(reverse.end(), subspec.constraints.begin(),
                     subspec.constraints.end());
      if (!z3.Implies(pool.And(reverse), pool.And(meaning))) {
        Fail("lift-implication",
             "exact lift is not implied by the residual constraints "
             "(+domains)");
      }
    }
  }

  /// Every solver backend must produce the same answer, byte for byte:
  /// the lift search asks the same queries in the same order whichever
  /// session discharges them, so the assembled statement set, its text,
  /// completeness, and even the candidate count may not diverge. The
  /// default run (above) used the fast path; here we re-lift with the
  /// fresh-session and incremental Z3 backends and diff everything.
  /// Re-running in the same pool is sound: the lifter builds the same
  /// (already interned) nodes, so renderings stay comparable.
  void CheckSolverDifferential(smt::ExprPool& pool,
                               const config::NetworkConfig& solved,
                               const explain::Subspec& subspec,
                               const explain::LiftResult& baseline) {
    explain::Lifter lifter(pool, scenario.topo, scenario.spec, solved);
    for (const smt::SolverBackend backend :
         {smt::SolverBackend::kFreshZ3, smt::SolverBackend::kIncrementalZ3}) {
      explain::SubspecOptions with_backend;
      with_backend.solver.backend = backend;
      auto lifted = lifter.Lift(subspec, scenario.mode, with_backend);
      if (!lifted.ok()) {
        Fail("solver-differential",
             std::string(smt::SolverBackendName(backend)) +
                 " backend failed to lift: " + lifted.error().ToString());
        return;
      }
      const explain::LiftResult& other = lifted.value();
      std::string detail;
      if (other.ToString() != baseline.ToString()) {
        detail = "lift text differs";
      } else if (other.complete != baseline.complete) {
        detail = "completeness differs";
      } else if (other.candidates_tried != baseline.candidates_tried) {
        detail = "candidate count differs (" +
                 std::to_string(other.candidates_tried) + " vs " +
                 std::to_string(baseline.candidates_tried) + ")";
      } else if (other.used.size() != baseline.used.size()) {
        detail = "statement count differs";
      } else {
        for (std::size_t i = 0; i < other.used.size(); ++i) {
          // Expr equality is pointer equality in the shared pool, so this
          // checks the compiled meanings (and their order) exactly.
          if (other.used[i].residual != baseline.used[i].residual) {
            detail = "statement #" + std::to_string(i) +
                     " compiles to a different residual";
            break;
          }
        }
      }
      if (!detail.empty()) {
        Fail("solver-differential",
             std::string(smt::SolverBackendName(backend)) +
                 " backend diverges from the fast-path answer: " + detail);
        return;
      }
    }

    // Encoder-based verification must also be backend-independent.
    smt::SolverOptions fresh;
    fresh.backend = smt::SolverBackend::kFreshZ3;
    auto verdict_fresh = explain::VerifyWithEncoder(scenario.topo,
                                                    scenario.spec, solved,
                                                    fresh);
    auto verdict_fast = explain::VerifyWithEncoder(scenario.topo,
                                                   scenario.spec, solved);
    if (verdict_fresh.ok() != verdict_fast.ok()) {
      Fail("solver-differential",
           "encoder verification success differs between fresh and "
           "fast-path backends");
      return;
    }
    if (verdict_fresh.ok() &&
        verdict_fresh.value().ToString() != verdict_fast.value().ToString()) {
      Fail("solver-differential",
           "encoder verification verdict differs between fresh and "
           "fast-path backends");
    }
  }

  /// Sequential and parallel batch answers must be byte-identical.
  void CheckBatchDeterminism(const config::NetworkConfig& solved) {
    std::vector<explain::BatchRequest> requests =
        explain::RequestsForAllRouters(solved, scenario.mode);
    if (requests.size() > 4) requests.resize(4);
    if (requests.empty()) return;
    const explain::BatchOutcome sequential =
        explain::BatchExplain(scenario.topo, scenario.spec, solved, requests,
                              explain::BatchOptions{.num_threads = 1});
    const explain::BatchOutcome parallel =
        explain::BatchExplain(scenario.topo, scenario.spec, solved, requests,
                              explain::BatchOptions{.num_threads = 3});
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto& a = sequential.items[i].result;
      const auto& b = parallel.items[i].result;
      if (a.ok() != b.ok()) {
        Fail("batch-determinism",
             "request #" + std::to_string(i) +
                 ": sequential and parallel disagree on success");
        return;
      }
      if (!a.ok()) {
        if (a.error().ToString() != b.error().ToString()) {
          Fail("batch-determinism",
               "request #" + std::to_string(i) + ": error messages differ");
          return;
        }
        continue;
      }
      if (a.value().report != b.value().report ||
          a.value().subspec_text != b.value().subspec_text ||
          a.value().empty != b.value().empty ||
          a.value().unsat != b.value().unsat) {
        Fail("batch-determinism",
             "request #" + std::to_string(i) +
                 ": parallel answer is not byte-identical to sequential");
        return;
      }
    }
  }

  /// Answers computed through a frozen arena + copy-on-write overlay must
  /// be byte-identical to the fresh-pool path. Each question is answered
  /// three ways — fresh pool, cold registry (first request builds the
  /// arena), warm registry (second request reuses it) — and everything a
  /// client can see is diffed: report, subspec text, verdict flags, error
  /// text. The warm answer must also record the same overlay-node count as
  /// the cold one (the overlay suffix is deterministic per question).
  void CheckArenaDifferential(const config::NetworkConfig& solved) {
    std::vector<explain::BatchRequest> requests;
    {
      explain::BatchRequest ours;
      ours.selection = scenario.selection;
      ours.mode = scenario.mode;
      requests.push_back(std::move(ours));
    }
    std::vector<explain::BatchRequest> routers =
        explain::RequestsForAllRouters(solved, scenario.mode);
    if (routers.size() > 3) routers.resize(3);
    for (explain::BatchRequest& request : routers) {
      requests.push_back(std::move(request));
    }

    auto registry = std::make_shared<explain::ArenaRegistry>();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto fresh = explain::AnswerRequest(scenario.topo, scenario.spec,
                                                solved, requests[i]);
      const auto cold = explain::AnswerRequest(scenario.topo, scenario.spec,
                                               solved, requests[i], registry);
      const auto warm = explain::AnswerRequest(scenario.topo, scenario.spec,
                                               solved, requests[i], registry);
      const auto diff = [&](const util::Result<explain::BatchAnswer>& other,
                            const char* label) -> std::string {
        if (fresh.ok() != other.ok()) {
          return std::string(label) + " path disagrees on success";
        }
        if (!fresh.ok()) {
          if (fresh.error().ToString() != other.error().ToString()) {
            return std::string(label) + " path reports a different error";
          }
          return "";
        }
        if (other.value().report != fresh.value().report) {
          return std::string(label) + " report differs";
        }
        if (other.value().subspec_text != fresh.value().subspec_text) {
          return std::string(label) + " subspec text differs";
        }
        if (other.value().empty != fresh.value().empty ||
            other.value().unsat != fresh.value().unsat) {
          return std::string(label) + " verdict flags differ";
        }
        return "";
      };
      for (const std::string& detail : {diff(cold, "cold"), diff(warm, "warm")}) {
        if (!detail.empty()) {
          Fail("arena-differential",
               "request #" + std::to_string(i) + ": " + detail);
          return;
        }
      }
      if (fresh.ok()) {
        if (!warm.value().stats.arena.used) {
          Fail("arena-differential",
               "request #" + std::to_string(i) +
                   ": warm answer did not use the frozen arena");
          return;
        }
        if (warm.value().stats.arena.overlay_nodes !=
            cold.value().stats.arena.overlay_nodes) {
          Fail("arena-differential",
               "request #" + std::to_string(i) +
                   ": warm overlay allocated a different node count (" +
                   std::to_string(warm.value().stats.arena.overlay_nodes) +
                   " vs " +
                   std::to_string(cold.value().stats.arena.overlay_nodes) +
                   ")");
          return;
        }
      }
    }
  }

  /// The portfolio lift must be pure speculation: compile workers and the
  /// racing assembly strategies may not change anything observable about
  /// the answer. Both sides share one frozen-arena registry (so the racing
  /// side also exercises warm compile-cache reuse) and are diffed on the
  /// rendered report, the subspec text, completeness, and the canonical
  /// strategy's candidates_tried accounting.
  void CheckPortfolioDifferential(const config::NetworkConfig& solved) {
    std::vector<explain::Selection> selections{scenario.selection};
    {
      std::vector<explain::BatchRequest> routers =
          explain::RequestsForAllRouters(solved, scenario.mode);
      if (routers.size() > 2) routers.resize(2);
      for (explain::BatchRequest& request : routers) {
        selections.push_back(std::move(request.selection));
      }
    }

    auto registry = std::make_shared<explain::ArenaRegistry>();
    explain::Session sequential(scenario.topo, scenario.spec, solved);
    sequential.UseArenaRegistry(registry);
    sequential.SetLiftOptions(/*threads=*/1, /*portfolio=*/false);
    explain::Session racing(scenario.topo, scenario.spec, solved);
    racing.UseArenaRegistry(registry);
    racing.SetLiftOptions(/*threads=*/4, /*portfolio=*/true);

    for (std::size_t i = 0; i < selections.size(); ++i) {
      auto base = sequential.Ask(selections[i], scenario.mode);
      auto race = racing.Ask(selections[i], scenario.mode);
      std::string detail;
      if (base.ok() != race.ok()) {
        detail = "success differs";
      } else if (!base.ok()) {
        if (base.error().ToString() != race.error().ToString()) {
          detail = "error text differs";
        }
      } else if (race.value().Report() != base.value().Report()) {
        detail = "report differs";
      } else if (race.value().SubspecText() != base.value().SubspecText()) {
        detail = "subspec text differs";
      } else if (race.value().lifted.complete != base.value().lifted.complete) {
        detail = "completeness differs";
      } else if (race.value().lifted.candidates_tried !=
                 base.value().lifted.candidates_tried) {
        detail = "candidates_tried differs (" +
                 std::to_string(race.value().lifted.candidates_tried) +
                 " vs " +
                 std::to_string(base.value().lifted.candidates_tried) + ")";
      } else if (race.value().lifted.stats.winner != 0) {
        detail = "a non-canonical strategy answered (winner=" +
                 std::to_string(race.value().lifted.stats.winner) + ")";
      }
      if (!detail.empty()) {
        Fail("portfolio-differential",
             "question #" + std::to_string(i) + " (" +
                 selections[i].ToString() + "): " + detail);
        return;
      }
    }
  }

  /// Served answers must match explain::AnswerRequest exactly, whatever
  /// the byte framing on the wire: the scenario is rendered to the same
  /// texts a `load` request carries, replayed through a live epoll server
  /// over a real loopback socket in rng-sized chunks (sometimes mid-line
  /// drips, sometimes multi-line pipelined bursts), and each response is
  /// diffed against the sequential ground truth on the reparsed texts.
  void CheckServeDifferential(const config::NetworkConfig& solved) {
    const std::string topo_text = net::ToText(scenario.topo);
    const std::string spec_text = scenario.spec.ToString();
    const std::string config_text =
        config::RenderNetwork(solved, &scenario.topo);

    // The serving contract is defined over the rendered texts. If the
    // local parsers reject the roundtrip the generator over-approximated
    // what the text formats can carry — not a serve bug, since the server
    // runs these very parsers.
    auto topo2 = net::ParseTopology(topo_text);
    auto spec2 = spec::ParseSpec(spec_text);
    auto solved2 = config::ParseNetworkConfig(config_text);
    if (!topo2.ok() || !spec2.ok() || !solved2.ok()) return;

    std::vector<explain::BatchRequest> requests =
        explain::RequestsForAllRouters(solved2.value(), scenario.mode);
    if (requests.size() > 3) requests.resize(3);
    if (requests.empty()) return;

    serve::ServerOptions server_options;
    server_options.threads = 2;
    serve::Server server(server_options);
    if (auto started = server.Start(); !started.ok()) {
      Fail("serve-differential",
           "server failed to start: " + started.ToString());
      return;
    }
    auto client = serve::Client::Connect(server.port());
    if (!client.ok()) {
      Fail("serve-differential", client.error().ToString());
      return;
    }

    util::Json load = util::Json::MakeObject();
    load.Set("cmd", "load");
    load.Set("topo", topo_text);
    load.Set("spec", spec_text);
    load.Set("config", config_text);
    std::string stream = load.Dump(0) + "\n";
    for (const explain::BatchRequest& request : requests) {
      util::Json question = util::Json::MakeObject();
      question.Set("cmd", "explain");
      question.Set("router", request.selection.router);
      if (request.selection.complement) question.Set("rest", true);
      question.Set("mode", request.mode == explain::LiftMode::kExact
                               ? "exact"
                               : "faithful");
      stream += question.Dump(0) + "\n";
    }

    // Randomized wire framing over the whole exchange.
    std::size_t sent = 0;
    while (sent < stream.size()) {
      const std::size_t remaining = stream.size() - sent;
      std::size_t chunk =
          1 + rng.Below(rng.Coin() ? std::min<std::size_t>(remaining, 7)
                                   : remaining);
      chunk = std::min(chunk, remaining);
      if (auto status = client.value().SendRaw(
              std::string_view(stream).substr(sent, chunk));
          !status.ok()) {
        Fail("serve-differential", "send failed: " + status.ToString());
        return;
      }
      sent += chunk;
    }

    auto loaded = client.value().ReadResponse();
    if (!loaded.ok() || loaded.value().Find("ok") == nullptr ||
        !loaded.value().Find("ok")->AsBool()) {
      Fail("serve-differential",
           "load failed on texts the local parsers accept: " +
               (loaded.ok() ? loaded.value().Dump(0)
                            : loaded.error().ToString()));
      return;
    }

    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto response = client.value().ReadResponse();
      if (!response.ok()) {
        Fail("serve-differential", "request #" + std::to_string(i) + ": " +
                                       response.error().ToString());
        return;
      }
      const util::Json& body = response.value();
      const auto expected = explain::AnswerRequest(
          topo2.value(), spec2.value(), solved2.value(), requests[i]);
      const bool served_ok =
          body.Find("ok") != nullptr && body.Find("ok")->AsBool();
      if (served_ok != expected.ok()) {
        Fail("serve-differential",
             "request #" + std::to_string(i) +
                 ": served success differs from explain::AnswerRequest (" +
                 body.Dump(0) + ")");
        return;
      }
      if (!expected.ok()) {
        const util::Json* error = body.Find("error");
        const util::Json* code =
            error != nullptr ? error->Find("code") : nullptr;
        const util::Json* message =
            error != nullptr ? error->Find("message") : nullptr;
        if (code == nullptr || message == nullptr ||
            code->AsString() !=
                util::ErrorCodeName(expected.error().code()) ||
            message->AsString() != expected.error().message()) {
          Fail("serve-differential",
               "request #" + std::to_string(i) +
                   ": served error differs from explain::AnswerRequest (" +
                   body.Dump(0) + ")");
          return;
        }
        continue;
      }
      if (body.Find("report")->AsString() != expected.value().report ||
          body.Find("subspec")->AsString() != expected.value().subspec_text ||
          body.Find("empty")->AsBool() != expected.value().empty ||
          body.Find("unsat")->AsBool() != expected.value().unsat) {
        Fail("serve-differential",
             "request #" + std::to_string(i) +
                 ": served answer is not byte-identical to "
                 "explain::AnswerRequest");
        return;
      }
    }
  }

  /// An order-preserving router renaming must leave the whole answer
  /// isomorphic: identical metrics and an identical subspec/lift rendering
  /// after mapping the names back.
  void CheckRenameIsomorphism(const config::NetworkConfig& solved,
                              const explain::Subspec& subspec, bool liftable,
                              const std::string& lift_text) {
    RenameMap renames;
    for (const net::RouterId id : scenario.topo.AllRouters()) {
      const std::string& name = scenario.topo.NameOf(id);
      renames[name] = "Q" + name;  // prefixing preserves lexicographic order
    }
    const net::Topology topo2 = RenameTopology(scenario.topo, renames);
    const spec::Spec spec2 = RenameSpec(scenario.spec, renames);
    const config::NetworkConfig solved2 = RenameConfig(solved, renames);
    const explain::Selection selection2 =
        RenameSelection(scenario.selection, renames);

    explain::Explainer explainer2(topo2, spec2, solved2);
    auto subspec2 = explainer2.Explain(selection2);
    if (!subspec2.ok()) {
      Fail("rename-isomorphism",
           "renamed scenario failed to explain: " +
               subspec2.error().ToString());
      return;
    }
    const explain::SubspecMetrics& m1 = subspec.metrics;
    const explain::SubspecMetrics& m2 = subspec2.value().metrics;
    if (m1.seed_constraints != m2.seed_constraints ||
        m1.seed_size != m2.seed_size ||
        m1.simplified_constraints != m2.simplified_constraints ||
        m1.simplified_size != m2.simplified_size ||
        m1.residual_constraints != m2.residual_constraints ||
        m1.residual_size != m2.residual_size ||
        m1.simplify_passes != m2.simplify_passes ||
        m1.rule_stats != m2.rule_stats) {
      Fail("rename-isomorphism",
           "renamed scenario produced different pipeline metrics (e.g. "
           "simplified size " +
               std::to_string(m2.simplified_size) + " vs " +
               std::to_string(m1.simplified_size) + ")");
      return;
    }
    std::string text2 = subspec2.value().ToString();
    for (const auto& [name, renamed] : renames) {
      text2 = ReplaceAll(std::move(text2), renamed, name);
    }
    if (text2 != subspec.ToString()) {
      Fail("rename-isomorphism",
           "renamed subspec is not isomorphic to the original rendering");
      return;
    }
    if (liftable) {
      explain::Lifter lifter2(explainer2.pool(), topo2, spec2, solved2);
      auto lifted2 = lifter2.Lift(subspec2.value(), scenario.mode);
      if (!lifted2.ok()) {
        Fail("rename-isomorphism",
             "renamed scenario failed to lift: " +
                 lifted2.error().ToString());
        return;
      }
      std::string lift2 = lifted2.value().ToString();
      for (const auto& [name, renamed] : renames) {
        lift2 = ReplaceAll(std::move(lift2), renamed, name);
      }
      if (lift2 != lift_text) {
        Fail("rename-isomorphism",
             "renamed lift is not isomorphic to the original lift");
      }
    }
  }
};

}  // namespace

const char* RunStatusName(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kUnsatScenario: return "unsat-scenario";
    case RunStatus::kSkipped: return "skipped";
    case RunStatus::kViolation: return "VIOLATION";
  }
  return "?";
}

std::string RunReport::Summary() const {
  std::ostringstream out;
  out << RunStatusName(status) << " (stage " << stage << ")";
  if (!note.empty()) out << ": " << note;
  for (const OracleFailure& failure : failures) {
    out << "\n  [" << failure.oracle << "] " << failure.detail;
  }
  return out.str();
}

RunReport RunScenario(const FuzzScenario& scenario, const RunOptions& options) {
  Runner runner(scenario, options);
  return runner.Run();
}

}  // namespace ns::testkit
