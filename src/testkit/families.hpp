// Topology-family generators (ROADMAP item 4): the realistic topology
// classes the NetComplete line of work evaluates on — k-ary fat-tree /
// Clos data centers, Topology-Zoo-style WANs, and multi-AS provider
// meshes — plus mixed OSPF+BGP scenarios reusing the OSPF weight
// synthesizer.
//
// Each family comes in two scales:
//  - fuzz scale (GenerateFamilyScenario): small instances of the family
//    shape, with family-flavored specs (cross-pod no-transit, provider
//    no-transit via communities, IGP-informed forbids), cheap enough that
//    every netfuzz oracle — including the Z3-backed ones — runs per seed.
//    Scenarios are pure functions of (family, seed) and round-trip
//    through the corpus text format like any other FuzzScenario.
//  - bench scale (MakeFamilyProblem): solved-by-construction no-transit
//    problems over arbitrarily large family instances (no solver in the
//    loop), the input of the bench_scaling size sweep and of the
//    paper-scale-assumption tests in tests/families_test.cpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ospf/weights.hpp"
#include "testkit/gen.hpp"

namespace ns::testkit {

enum class Family {
  kPaper,    ///< the historical random Fig. 1b-scale generator
  kFatTree,  ///< pod-structured Clos / k-ary fat-tree fabrics
  kWan,      ///< Topology-Zoo-style WANs (preferential attachment)
  kMultiAs,  ///< provider meshes: communities + dual-homed peers
  kOspfMix,  ///< OSPF-weight-informed BGP scenarios on rings
};

/// Canonical flag spelling: "paper", "fattree", "wan", "multias",
/// "ospfmix".
const char* FamilyName(Family family) noexcept;

/// Inverse of FamilyName; kInvalidArgument on unknown names.
util::Result<Family> ParseFamily(std::string_view name);

/// All families, in enum order.
std::vector<Family> AllFamilies();

/// Deterministically generates the fuzz-scale scenario for `seed` within
/// `family`. kPaper delegates to GenerateScenario unchanged; the other
/// families build their family topology and grow family-flavored specs
/// plus the usual random sketch and question over it.
FuzzScenario GenerateFamilyScenario(Family family, std::uint64_t seed,
                                    const GenOptions& options = {});

/// A bench-scale problem instance: a solved no-transit configuration over
/// a family topology of the requested size, valid against `spec` by
/// construction (the bench_scaling MakeProblem pattern — no solver runs).
struct FamilyProblem {
  std::string label;  ///< e.g. "fattree(4)"
  Family family = Family::kFatTree;
  int size = 0;  ///< family size parameter (fat-tree arity, WAN nodes, ...)
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;
  std::string question_router;
  std::string question_map;
  /// Encoder candidate-path bound appropriate for this family and size
  /// (0 = every simple path). Pass as SubspecOptions::encoder.max_hops /
  /// EncoderOptions::max_hops; unbounded enumeration is exponential on
  /// the dense families.
  int max_hops = 0;
  /// kOspfMix only: the synthesized IGP weights and the weight spec they
  /// satisfy (ValidateOspf-checkable).
  std::optional<ospf::WeightConfig> weights;
  std::optional<spec::Spec> ospf_spec;
};

/// Builds the problem for (family, size, seed). `size` is the fat-tree
/// arity k (even), WAN node count, provider-mesh core count, or OSPF ring
/// length; kPaper ignores `size` and returns the Fig. 1b problem. `seed`
/// only matters for the randomized families (WAN wiring).
FamilyProblem MakeFamilyProblem(Family family, int size,
                                std::uint64_t seed = 1);

}  // namespace ns::testkit
