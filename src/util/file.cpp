#include "util/file.hpp"

#include <fstream>
#include <sstream>

namespace ns::util {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    return Error(ErrorCode::kInvalidArgument, "error reading '" + path + "'");
  }
  return os.str();
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error(ErrorCode::kInvalidArgument,
                 "cannot open '" + path + "' for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    return Error(ErrorCode::kInvalidArgument, "error writing '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace ns::util
