// Small string utilities shared across the library. Nothing here allocates
// unless the return type demands it; inputs are taken as std::string_view.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ns::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text) noexcept;

bool StartsWith(std::string_view text, std::string_view prefix) noexcept;
bool EndsWith(std::string_view text, std::string_view suffix) noexcept;

/// True if `text` is a non-empty run of ASCII digits.
bool IsAllDigits(std::string_view text) noexcept;

/// Lowercases ASCII letters only.
std::string ToLower(std::string_view text);

/// Indents every line of `text` by `spaces` spaces (including the first).
std::string Indent(std::string_view text, int spaces);

/// Formats "n item(s)" with naive pluralization; handy for reports.
std::string Plural(std::size_t n, std::string_view noun);

}  // namespace ns::util
