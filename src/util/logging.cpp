#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace ns::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel GetLogLevel() noexcept { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << "[" << LevelTag(level) << "] " << message << '\n';
}
}  // namespace internal

}  // namespace ns::util
