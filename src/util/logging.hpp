// Leveled logging to stderr. Off by default above kWarn so test and bench
// output stays clean; examples turn on kInfo to narrate pipeline stages.
#pragma once

#include <sstream>
#include <string>

namespace ns::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ns::util

#define NS_LOG(level) ::ns::util::internal::LogLine(::ns::util::LogLevel::level)
#define NS_DEBUG NS_LOG(kDebug)
#define NS_INFO NS_LOG(kInfo)
#define NS_WARN NS_LOG(kWarn)
#define NS_ERROR NS_LOG(kError)
