// Deterministic xorshift128+ RNG. Used by property tests and the random
// formula corpus in bench_rules; seeded explicitly so every run reproduces.
#pragma once

#include <cstdint>

namespace ns::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept
      : s0_(seed ^ 0x9E3779B97F4A7C15ull), s1_(SplitMix(seed)) {
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is a fixed point
  }

  std::uint64_t Next() noexcept {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Below(std::uint64_t bound) noexcept { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int Range(int lo, int hi) noexcept {
    return lo + static_cast<int>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool Coin() noexcept { return (Next() & 1u) != 0; }

  /// Bernoulli with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) noexcept {
    return Below(den) < num;
  }

 private:
  static std::uint64_t SplitMix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace ns::util
