// Whole-file IO helpers for the command-line tool and tests.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ns::util {

/// Reads the entire file; kNotFound if it cannot be opened.
Result<std::string> ReadFile(const std::string& path);

/// Writes (truncating) the file; kInvalidArgument on failure.
Status WriteFile(const std::string& path, std::string_view contents);

}  // namespace ns::util
