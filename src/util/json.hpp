// Minimal JSON value type with a deterministic writer and a strict parser.
//
// Grown for the machine-readable bench artifacts (BENCH_*.json) and the
// batch-explain CLI output; deliberately tiny — no external dependency,
// object keys keep insertion order so emitted files are stable across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace ns::util {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered: serialization is deterministic.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  Json(std::size_t value)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const noexcept { return type_; }
  bool IsNull() const noexcept { return type_ == Type::kNull; }
  bool IsBool() const noexcept { return type_ == Type::kBool; }
  bool IsNumber() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool IsString() const noexcept { return type_ == Type::kString; }
  bool IsArray() const noexcept { return type_ == Type::kArray; }
  bool IsObject() const noexcept { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  std::int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object helpers. Set() appends or overwrites; Find() returns nullptr
  /// when the key (or an object at all) is missing.
  void Set(std::string key, Json value);
  const Json* Find(std::string_view key) const;

  /// Array helper.
  void Append(Json value) { array_.push_back(std::move(value)); }

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits a compact single line.
  std::string Dump(int indent = 2) const;

  /// Strict parser (UTF-8 passthrough; no comments, no trailing commas).
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace ns::util
