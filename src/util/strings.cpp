#include "util/strings.hpp"

#include <cctype>
#include <sstream>

namespace ns::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) noexcept {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view text) noexcept {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find('\n', start);
    const std::string_view line =
        text.substr(start, pos == std::string_view::npos ? std::string_view::npos
                                                         : pos - start);
    if (!line.empty()) out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string Plural(std::size_t n, std::string_view noun) {
  std::ostringstream os;
  os << n << ' ' << noun;
  if (n != 1) os << 's';
  return os.str();
}

}  // namespace ns::util
