#include "util/status.hpp"

#include <sstream>

namespace ns::util {

const char* ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kUnsat: return "unsat";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::ToString() const {
  std::ostringstream os;
  os << ErrorCodeName(code_) << " error";
  if (line_) {
    os << " at " << *line_;
    if (column_) os << ":" << *column_;
  }
  os << ": " << message_;
  return os.str();
}

void AssertionFailure(const char* expr, const char* file, int line,
                      const std::string& detail) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " (" << file << ":" << line
     << ")";
  if (!detail.empty()) os << " — " << detail;
  throw InternalError(os.str());
}

}  // namespace ns::util
