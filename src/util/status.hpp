// Error handling primitives for netsubspec.
//
// The library reports recoverable failures (parse errors, unsat synthesis,
// malformed configurations) through `Result<T>`; programming errors use
// NS_ASSERT which throws `InternalError` so tests can observe them.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ns::util {

/// Category of a recoverable error. Kept coarse on purpose: callers dispatch
/// on the category, humans read the message.
enum class ErrorCode {
  kInvalidArgument,  ///< caller handed us something malformed
  kParse,            ///< DSL or config text failed to parse
  kNotFound,         ///< named entity (router, prefix, requirement) missing
  kUnsat,            ///< the underlying constraint problem is unsatisfiable
  kUnsupported,      ///< feature outside the implemented fragment
  kInternal,         ///< invariant violation escaped as a value
};

/// Human-readable name of an error code ("parse", "unsat", ...).
const char* ErrorCodeName(ErrorCode code) noexcept;

/// A recoverable error: a category plus a message, with optional
/// source-location context (used by the DSL and config parsers).
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Error(ErrorCode code, std::string message, int line, int column)
      : code_(code), message_(std::move(message)), line_(line), column_(column) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  std::optional<int> line() const noexcept { return line_; }
  std::optional<int> column() const noexcept { return column_; }

  /// "parse error at 3:14: expected ')'"
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
  std::optional<int> line_;
  std::optional<int> column_;
};

/// Minimal result type: either a value or an `Error`. We deliberately avoid
/// exceptions for recoverable failures (parsing user input, unsat specs);
/// see C++ Core Guidelines E.2/E.3 — exceptions are reserved for bugs.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return value;`
  Result(T value) : storage_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return error;`
  Result(Error error) : storage_(std::move(error)) {}

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    RequireOk();
    return std::get<T>(storage_);
  }
  T& value() & {
    RequireOk();
    return std::get<T>(storage_);
  }
  T&& value() && {
    RequireOk();
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on ok result");
    return std::get<Error>(storage_);
  }

  const T& value_or(const T& fallback) const& noexcept {
    return ok() ? std::get<T>(storage_) : fallback;
  }

 private:
  void RequireOk() const {
    if (!ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Error>(storage_).ToString());
    }
  }

  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  Status(Error error) : error_(std::move(error)) {}

  static Status Ok() { return Status(); }

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const { return error_.value(); }
  std::string ToString() const { return ok() ? "ok" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

/// Thrown on internal invariant violations (never on bad user input).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void AssertionFailure(const char* expr, const char* file, int line,
                                   const std::string& detail = "");

}  // namespace ns::util

/// Invariant check: throws ns::util::InternalError with location info.
/// Active in all build types — this library is about trustworthy tooling,
/// and the checks are never on a hot path that matters.
#define NS_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::ns::util::AssertionFailure(#expr, __FILE__, __LINE__); \
  } while (false)

#define NS_ASSERT_MSG(expr, detail)                                        \
  do {                                                                     \
    if (!(expr))                                                           \
      ::ns::util::AssertionFailure(#expr, __FILE__, __LINE__, (detail));   \
  } while (false)
