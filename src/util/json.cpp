#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ns::util {

void Json::Set(std::string key, Json value) {
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [existing, slot] : object_) {
    if (existing == key) return &slot;
  }
  return nullptr;
}

namespace {

void EscapeInto(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no NaN/Inf
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", double_);
      out += buf;
      return;
    }
    case Type::kString: EscapeInto(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        EscapeInto(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

/// Containers deeper than this are rejected instead of recursing further;
/// without a cap a hostile input like 100k '[' characters overflows the
/// parser's call stack.
constexpr int kMaxParseDepth = 1000;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Error Fail(const std::string& what) const {
    return Error(ErrorCode::kParse,
                 "json: " + what + " at offset " + std::to_string(pos));
  }

  Result<Json> Value() {
    SkipSpace();
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    if (c == '{' || c == '[') {
      if (depth >= kMaxParseDepth) return Fail("nesting too deep");
      ++depth;
      auto v = c == '{' ? ObjectValue() : ArrayValue();
      --depth;
      return v;
    }
    if (c == '"') {
      auto s = StringValue();
      if (!s) return s.error();
      return Json(std::move(s).value());
    }
    if (c == 't' || c == 'f') return BoolValue();
    if (c == 'n') return NullValue();
    if (c == '-' || (c >= '0' && c <= '9')) return NumberValue();
    return Fail("unexpected character");
  }

  Result<Json> NullValue() {
    if (text.substr(pos, 4) != "null") return Fail("expected 'null'");
    pos += 4;
    return Json(nullptr);
  }

  Result<Json> BoolValue() {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      return Json(true);
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      return Json(false);
    }
    return Fail("expected boolean");
  }

  Result<Json> NumberValue() {
    const std::size_t start = pos;
    if (!AtEnd() && Peek() == '-') ++pos;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
    bool is_double = false;
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty() || token == "-") return Fail("malformed number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("malformed number");
    }
    return Json(value);
  }

  Result<std::string> StringValue() {
    if (Peek() != '"') return Fail("expected string");
    ++pos;
    std::string out;
    while (!AtEnd() && Peek() != '"') {
      char c = Peek();
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("unterminated escape");
        switch (Peek()) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 >= text.size()) return Fail("truncated \\u escape");
            unsigned int code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("malformed \\u escape");
            }
            pos += 4;
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Fail("unknown escape");
        }
        ++pos;
      } else {
        out.push_back(c);
        ++pos;
      }
    }
    if (AtEnd()) return Fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  Result<Json> ArrayValue() {
    ++pos;  // '['
    Json::Array out;
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return Json(std::move(out));
    }
    while (true) {
      auto v = Value();
      if (!v) return v.error();
      out.push_back(std::move(v).value());
      SkipSpace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == ']') {
        ++pos;
        return Json(std::move(out));
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ObjectValue() {
    ++pos;  // '{'
    Json::Object out;
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return Json(std::move(out));
    }
    while (true) {
      SkipSpace();
      auto key = StringValue();
      if (!key) return key.error();
      SkipSpace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':'");
      ++pos;
      auto v = Value();
      if (!v) return v.error();
      out.emplace_back(std::move(key).value(), std::move(v).value());
      SkipSpace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos;
        continue;
      }
      if (Peek() == '}') {
        ++pos;
        return Json(std::move(out));
      }
      return Fail("expected ',' or '}'");
    }
  }
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser parser{text};
  auto value = parser.Value();
  if (!value) return value.error();
  parser.SkipSpace();
  if (!parser.AtEnd()) return parser.Fail("trailing content");
  return value;
}

}  // namespace ns::util
