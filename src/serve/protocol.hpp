// Wire protocol of the explanation service (see docs/SERVE.md).
//
// Newline-delimited JSON over a loopback TCP socket: each request is one
// JSON object on one line, each response is one JSON object on one line,
// answered in order on the connection. Four commands:
//
//   {"cmd":"load", "topo":T, "spec":S, "config":C}     install a scenario
//   {"cmd":"explain", "router":R, ...}                 ask one question
//   {"cmd":"stats"}                                    service counters
//   {"cmd":"shutdown"}                                 begin graceful drain
//
// This header also defines the *canonical digests* the LRU answer cache
// keys on: ScenarioDigest hashes the loaded scenario's exact text
// (topology + spec + config), and CacheKey extends it with every request
// field that influences the answer (selection, lift mode, requirement
// projection, baselines). Two requests share a cache entry iff they are
// the same question about the same bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "explain/batch.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

enum class RequestKind { kLoad, kExplain, kStats, kShutdown };

/// Texts in the repo's own formats (net/topo_text, spec/parser,
/// config/parse) — exactly what the CLI reads from files.
struct LoadRequest {
  std::string topo;
  std::string spec;
  std::string config;
};

struct ExplainRequest {
  explain::BatchRequest request;
  /// Per-request deadline override; unset = the server's --deadline-ms.
  std::optional<int> deadline_ms;
  /// Diagnostic: make the worker sleep this long before computing. Used
  /// by the deadline tests to make "too slow" deterministic; documented
  /// in docs/SERVE.md as test-only.
  int debug_sleep_ms = 0;
};

struct Request {
  RequestKind kind = RequestKind::kStats;
  LoadRequest load;        // kLoad
  ExplainRequest explain;  // kExplain
};

/// Parses one request line. Errors (kParse/kInvalidArgument) are reported
/// to the client as an error response; the connection survives.
util::Result<Request> ParseRequest(std::string_view line);

/// FNV-1a 64-bit digest, rendered as 16 hex digits. Stable across runs
/// and platforms; used for scenario identity, not security.
std::string Digest64(std::string_view text);

/// Digest of a scenario's exact constituent texts.
std::string ScenarioDigest(std::string_view topo, std::string_view spec,
                           std::string_view config);

/// Canonical cache key: scenario digest + every answer-relevant request
/// field, joined with separators that cannot occur inside the fields.
std::string CacheKey(const std::string& scenario_digest,
                     const explain::BatchRequest& request);

// --------------------------------------------------------------- responses

/// {"ok":true, "cmd":<cmd>, ...fields appended by the caller}
util::Json OkResponse(std::string_view cmd);

/// {"ok":false, "cmd":<cmd>, "error":{"code":<code>,"message":<msg>}}
util::Json ErrorResponse(std::string_view cmd, std::string_view code,
                         std::string_view message);
util::Json ErrorResponse(std::string_view cmd, const util::Error& error);

/// Error code string for a request that exceeded its deadline.
inline constexpr std::string_view kDeadlineExceeded = "deadline-exceeded";

/// Error code string for a request shed by the full admission queue.
/// Distinct from every other code so clients can back off and retry.
inline constexpr std::string_view kOverloaded = "overloaded";

/// Rendered answer -> explain response body.
util::Json AnswerResponse(const explain::BatchAnswer& answer, bool cached,
                          double wall_ms);

}  // namespace ns::serve
