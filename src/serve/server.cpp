#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "config/parse.hpp"
#include "net/topo_text.hpp"
#include "spec/parser.hpp"
#include "util/strings.hpp"

namespace ns::serve {

using util::Error;
using util::ErrorCode;
using util::Json;
using util::Result;
using util::Status;

namespace {

/// Poll tick: the latency bound on noticing the stop flag in any blocked
/// loop (accept, blocking connection read, idle reactor). Short enough
/// that drains feel instant, long enough that an idle server burns no
/// measurable CPU.
constexpr int kPollMs = 100;

/// Completed-answer latencies kept for the percentile estimate.
constexpr std::size_t kLatencyWindow = 4096;

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

double Percentile(std::vector<double> sorted_copy, double p) {
  if (sorted_copy.empty()) return 0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_copy.size() - 1) + 0.5);
  return sorted_copy[std::min(rank, sorted_copy.size() - 1)];
}

/// Both front ends must emit this byte-identically (and identically to
/// the pre-reactor server at the default 64 MiB cap).
std::string OversizedMessage(std::size_t cap) {
  if (cap > 0 && cap % (std::size_t{1} << 20) == 0) {
    return "request line exceeds " + std::to_string(cap >> 20) + " MiB";
  }
  return "request line exceeds " + std::to_string(cap) + " bytes";
}

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Error(ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kInvalidArgument,
                 "cannot bind 127.0.0.1:" + std::to_string(options_.port) +
                     ": " + message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kInternal, "listen: " + message);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (options_.frontend == Frontend::kEpoll) {
    const int reactor_count = options_.reactors > 0 ? options_.reactors : 2;
    for (int i = 0; i < reactor_count; ++i) {
      auto reactor = std::make_unique<Reactor>(
          this, ReactorConfig{options_.max_line_bytes, kPollMs});
      const Status started = reactor->Start();
      if (!started.ok()) {
        for (auto& running : reactors_) {
          running->RequestStop();
          running->Join();
          threads_joined_.fetch_add(1);
        }
        reactors_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        return started;
      }
      threads_spawned_.fetch_add(1);
      reactors_.push_back(std::move(reactor));
    }
  }

  worker_count_ = options_.threads;
  if (worker_count_ <= 0) {
    worker_count_ = static_cast<int>(std::thread::hardware_concurrency());
    if (worker_count_ <= 0) worker_count_ = 2;
  }
  workers_.reserve(static_cast<std::size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    threads_spawned_.fetch_add(1);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  threads_spawned_.fetch_add(1);
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status Server::Load(const std::string& topo_text, const std::string& spec_text,
                    const std::string& config_text) {
  auto topo = net::ParseTopology(topo_text);
  if (!topo) return Error(topo.error().code(),
                          "topology: " + topo.error().message());
  auto spec = spec::ParseSpec(spec_text);
  if (!spec) return Error(spec.error().code(),
                          "spec: " + spec.error().message());
  auto solved = config::ParseNetworkConfig(config_text);
  if (!solved) return Error(solved.error().code(),
                            "config: " + solved.error().message());

  auto scenario = std::make_shared<Scenario>();
  scenario->topo = std::move(topo).value();
  scenario->spec = std::move(spec).value();
  scenario->solved = std::move(solved).value();
  scenario->digest = ScenarioDigest(topo_text, spec_text, config_text);
  scenario->registry = std::make_shared<explain::ArenaRegistry>();
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario_ = std::move(scenario);
  }
  return Status::Ok();
}

void Server::BeginShutdown() { stop_.store(true, std::memory_order_release); }

void Server::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  joined_ = true;
  BeginShutdown();
  if (!started_.load(std::memory_order_acquire)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }

  // 1. No new connections.
  if (accept_thread_.joinable()) {
    accept_thread_.join();
    threads_joined_.fetch_add(1);
  }

  // 2. The front end drains. Workers are still running, so every pending
  //    request resolves (bounded further by its deadline), every
  //    connection flushes and closes, and the front-end threads exit.
  for (auto& reactor : reactors_) reactor->RequestStop();
  for (auto& reactor : reactors_) {
    reactor->Join();
    threads_joined_.fetch_add(1);
  }
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(conn_threads_);
  }
  for (std::thread& connection : connections) {
    connection.join();
    threads_joined_.fetch_add(1);
  }

  // 3. Run the queue dry, then stop the workers.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
    threads_joined_.fetch_add(1);
  }
  workers_.clear();
}

void Server::Wait() {
  while (!ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  Shutdown();
}

void Server::AcceptLoop() {
  while (!ShutdownRequested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.frontend == Frontend::kEpoll) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      // Round-robin; the reactor owns (and counts) the fd from here,
      // including the raced-with-drain case.
      reactors_[next_reactor_]->AddConnection(fd);
      next_reactor_ = (next_reactor_ + 1) % reactors_.size();
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    blocking_conns_opened_.fetch_add(1, std::memory_order_relaxed);
    if (ShutdownRequested()) {  // raced with a drain: refuse politely
      ::close(fd);
      blocking_conns_closed_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
    threads_spawned_.fetch_add(1);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ConnectionLoop(int fd) {
  std::string buffer;
  bool close_now = false;
  while (!close_now && !ShutdownRequested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) break;
    if (ready == 0) continue;
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;                       // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (util::Trim(line).empty()) continue;
      const Json response = HandleBlockingLine(line);
      if (!SendAll(fd, response.Dump(0) + "\n")) {
        close_now = true;
        break;
      }
      // A handled shutdown raises the stop flag; finish this line batch
      // gracefully on the next loop check.
    }
    // Complete lines were consumed above, so only a single unframed line
    // is bounded — the same framing rule as the reactor.
    if (!close_now && buffer.size() > options_.max_line_bytes) {
      SendAll(fd, OversizedResponse().Dump(0) + "\n");
      break;
    }
  }
  ::close(fd);
  blocking_conns_closed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
}

Json Server::HandleBlockingLine(std::string_view line) {
  LineOutcome outcome = HandleReactorLine(line);
  if (outcome.job == nullptr) return outcome.response;

  const std::shared_ptr<Job> job = outcome.job;
  if (!EnqueueJob(job)) return ShedResponse();

  {
    std::unique_lock<std::mutex> lock(job->mu);
    if (outcome.deadline_ms > 0) {
      const auto deadline =
          outcome.start + std::chrono::milliseconds(outcome.deadline_ms);
      if (!job->cv.wait_until(lock, deadline, [&] { return job->done; })) {
        // No partial answers: the worker keeps going in the background and
        // still populates the cache, but this request reports failure.
        lock.unlock();
        return RenderExpiry(outcome.deadline_ms);
      }
    } else {
      job->cv.wait(lock, [&] { return job->done; });
    }
  }
  return RenderCompletion(*job, outcome.start);
}

LineOutcome Server::HandleReactorLine(std::string_view line) {
  LineOutcome out;
  auto request = ParseRequest(line);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.requests_total;
    if (!request) {
      ++counters_.requests_malformed;
    } else {
      switch (request.value().kind) {
        case RequestKind::kLoad: ++counters_.requests_load; break;
        case RequestKind::kExplain: ++counters_.requests_explain; break;
        case RequestKind::kStats: ++counters_.requests_stats; break;
        case RequestKind::kShutdown: ++counters_.requests_shutdown; break;
      }
    }
  }
  if (!request) {
    out.response = ErrorResponse("unknown", request.error());
    return out;
  }

  switch (request.value().kind) {
    case RequestKind::kLoad:
      out.response = HandleLoad(request.value().load);
      return out;
    case RequestKind::kExplain:
      return StartExplain(request.value().explain);
    case RequestKind::kStats:
      out.response = StatsResponse();
      return out;
    case RequestKind::kShutdown: {
      BeginShutdown();
      queue_cv_.notify_all();
      Json response = OkResponse("shutdown");
      response.Set("draining", true);
      out.response = std::move(response);
      return out;
    }
  }
  out.response = ErrorResponse("unknown", "internal", "unreachable");
  return out;
}

Json Server::HandleLoad(const LoadRequest& request) {
  const Status loaded = Load(request.topo, request.spec, request.config);
  if (!loaded.ok()) return ErrorResponse("load", loaded.error());
  std::shared_ptr<const Scenario> scenario;
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario = scenario_;
  }
  Json response = OkResponse("load");
  response.Set("scenario", scenario->digest);
  response.Set("routers", scenario->solved.routers.size());
  return response;
}

LineOutcome Server::StartExplain(const ExplainRequest& request) {
  LineOutcome out;
  out.start = std::chrono::steady_clock::now();
  std::shared_ptr<const Scenario> scenario;
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario = scenario_;
  }
  if (scenario == nullptr) {
    out.response =
        ErrorResponse("explain", "invalid-argument",
                      "no scenario loaded; send a 'load' request first");
    return out;
  }

  // In flight from here until exactly one of RenderCompletion /
  // RenderExpiry / ShedResponse / DiscardPending (or the cache hit below).
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.in_flight;
  }

  const std::string key = CacheKey(scenario->digest, request.request);
  if (auto cached = cache_.Lookup(key)) {
    const double ms = WallMs(out.start);
    RecordLatency(ms);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --counters_.in_flight;
    }
    out.response = AnswerResponse(*cached, /*cached=*/true, ms);
    return out;
  }

  auto job = std::make_shared<Job>();
  job->request = request.request;
  // Server-wide lift pipeline settings; byte-identical answers, so the
  // cache key above deliberately ignores them.
  job->request.lift_threads = options_.lift_threads;
  job->request.lift_portfolio = options_.lift_portfolio;
  job->scenario = scenario;
  job->cache_key = key;
  job->debug_sleep_ms = request.debug_sleep_ms;
  out.job = std::move(job);
  out.deadline_ms = request.deadline_ms.value_or(options_.deadline_ms);
  return out;
}

bool Server::EnqueueJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      return false;
    }
    queue_.push_back(job);
  }
  queue_cv_.notify_one();
  return true;
}

Json Server::ShedResponse() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.requests_shed;
    --counters_.in_flight;
  }
  return ErrorResponse(
      "explain", kOverloaded,
      "admission queue is full (" + std::to_string(options_.max_queue) +
          " queued explains); retry later");
}

Json Server::RenderCompletion(Job& job,
                              std::chrono::steady_clock::time_point start) {
  // `done` was published before any front end reaches here (cv wait or
  // on_done); the lock is just the matching acquire.
  {
    std::lock_guard<std::mutex> lock(job.mu);
  }
  if (!job.result.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.answers_failed;
    --counters_.in_flight;
    return ErrorResponse("explain", job.result.error());
  }
  const double ms = WallMs(start);
  RecordLatency(ms);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --counters_.in_flight;
  }
  return AnswerResponse(job.result.value(), /*cached=*/false, ms);
}

Json Server::RenderExpiry(int deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.deadline_exceeded;
    --counters_.in_flight;
  }
  return ErrorResponse("explain", kDeadlineExceeded,
                       "request exceeded its " + std::to_string(deadline_ms) +
                           " ms deadline");
}

Json Server::OversizedResponse() {
  return ErrorResponse("unknown", "invalid-argument",
                       OversizedMessage(options_.max_line_bytes));
}

void Server::DiscardPending(std::size_t count) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.in_flight -= static_cast<int>(count);
}

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job->debug_sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(job->debug_sleep_ms));
    }
    auto result = explain::AnswerRequest(
        job->scenario->topo, job->scenario->spec, job->scenario->solved,
        job->request, job->scenario->registry);
    if (result.ok()) {
      cache_.Insert(job->cache_key, result.value());
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.solver += result.value().stats.lift;
      counters_.lift += result.value().stats.pipeline;
    }
    std::function<void(const std::shared_ptr<Job>&)> on_done;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->result = std::move(result);
      job->done = true;
      on_done = std::move(job->on_done);
    }
    job->cv.notify_all();
    if (on_done) on_done(job);
  }
}

void Server::RecordLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++counters_.latency_count;
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

std::uint64_t Server::connections_opened() const {
  std::uint64_t total = blocking_conns_opened_.load(std::memory_order_relaxed);
  for (const auto& reactor : reactors_) total += reactor->connections_opened();
  return total;
}

std::uint64_t Server::connections_closed() const {
  std::uint64_t total = blocking_conns_closed_.load(std::memory_order_relaxed);
  for (const auto& reactor : reactors_) total += reactor->connections_closed();
  return total;
}

ServerStats Server::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = counters_;
    stats.latency_p50_ms = Percentile(latencies_, 0.50);
    stats.latency_p95_ms = Percentile(latencies_, 0.95);
  }
  stats.cache = cache_.Stats();
  stats.worker_threads = worker_count_;
  stats.connections_opened = connections_opened();
  stats.connections_closed = connections_closed();
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    if (scenario_ != nullptr) {
      stats.scenario_digest = scenario_->digest;
      if (scenario_->registry != nullptr) {
        stats.arena = scenario_->registry->stats();
      }
    }
  }
  return stats;
}

Json Server::StatsResponse() const {
  const ServerStats stats = Stats();
  Json response = OkResponse("stats");

  Json requests = Json::MakeObject();
  requests.Set("total", stats.requests_total);
  requests.Set("load", stats.requests_load);
  requests.Set("explain", stats.requests_explain);
  requests.Set("stats", stats.requests_stats);
  requests.Set("shutdown", stats.requests_shutdown);
  requests.Set("malformed", stats.requests_malformed);
  requests.Set("shed", stats.requests_shed);
  response.Set("requests", std::move(requests));

  Json cache = Json::MakeObject();
  cache.Set("hits", stats.cache.hits);
  cache.Set("misses", stats.cache.misses);
  cache.Set("evictions", stats.cache.evictions);
  cache.Set("inserts", stats.cache.inserts);
  cache.Set("entries", stats.cache.entries);
  cache.Set("capacity", stats.cache.capacity);
  response.Set("cache", std::move(cache));

  Json solver = Json::MakeObject();
  solver.Set("queries", stats.solver.queries);
  solver.Set("assertions", stats.solver.assertions);
  solver.Set("fast_path_hits", stats.solver.fast_path_hits);
  solver.Set("fast_path_fallbacks", stats.solver.fast_path_fallbacks);
  solver.Set("fast_path_ineligible", stats.solver.fast_path_ineligible);
  solver.Set("memo_hits", stats.solver.memo_hits);
  solver.Set("z3_queries", stats.solver.z3_queries);
  solver.Set("frame_reuse", stats.solver.frame_reuse);
  solver.Set("wall_ms", stats.solver.wall_ms);
  response.Set("solver", std::move(solver));

  Json arena = Json::MakeObject();
  arena.Set("builds", stats.arena.builds);
  arena.Set("reuses", stats.arena.reuses);
  arena.Set("entries", stats.arena.entries);
  arena.Set("frozen_nodes", stats.arena.frozen_nodes);
  arena.Set("frozen_symbols", stats.arena.frozen_symbols);
  arena.Set("memo_entries", stats.arena.memo_entries);
  arena.Set("memo_hits", stats.arena.memo_hits);
  arena.Set("memo_misses", stats.arena.memo_misses);
  arena.Set("memo_hit_rate", stats.arena.MemoHitRate());
  arena.Set("compile_entries", stats.arena.compile_entries);
  arena.Set("compile_hits", stats.arena.compile_hits);
  arena.Set("compile_misses", stats.arena.compile_misses);
  response.Set("arena", std::move(arena));

  Json lift = Json::MakeObject();
  lift.Set("threads", stats.lift.threads);
  lift.Set("portfolio", stats.lift.portfolio);
  lift.Set("strategies", stats.lift.strategies);
  lift.Set("strategies_cancelled", stats.lift.strategies_cancelled);
  lift.Set("compile_cache_hits", stats.lift.compile_cache_hits);
  lift.Set("compile_cache_misses", stats.lift.compile_cache_misses);
  lift.Set("candidates_compiled", stats.lift.candidates_compiled);
  lift.Set("compile_ms", stats.lift.compile_ms);
  lift.Set("assemble_ms", stats.lift.assemble_ms);
  response.Set("lift", std::move(lift));

  Json latency = Json::MakeObject();
  latency.Set("count", stats.latency_count);
  latency.Set("p50_ms", stats.latency_p50_ms);
  latency.Set("p95_ms", stats.latency_p95_ms);
  response.Set("latency", std::move(latency));

  Json connections = Json::MakeObject();
  connections.Set("opened", stats.connections_opened);
  connections.Set("closed", stats.connections_closed);
  response.Set("connections", std::move(connections));

  response.Set("in_flight", stats.in_flight);
  response.Set("deadline_exceeded", stats.deadline_exceeded);
  response.Set("answers_failed", stats.answers_failed);
  response.Set("threads", stats.worker_threads);
  response.Set("frontend",
               options_.frontend == Frontend::kEpoll ? "epoll" : "blocking");
  response.Set("scenario", stats.scenario_digest);
  return response;
}

}  // namespace ns::serve
