#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "config/parse.hpp"
#include "net/topo_text.hpp"
#include "spec/parser.hpp"
#include "util/strings.hpp"

namespace ns::serve {

using util::Error;
using util::ErrorCode;
using util::Json;
using util::Result;
using util::Status;

namespace {

/// Poll tick: the latency bound on noticing the stop flag in any blocked
/// loop (accept, connection read). Short enough that drains feel instant,
/// long enough that an idle server burns no measurable CPU.
constexpr int kPollMs = 100;

/// Cap on one request line; a line past this is a protocol error, not an
/// allocation bomb. Scenario texts are the biggest payload and stay far
/// below this at paper scale.
constexpr std::size_t kMaxLineBytes = 64u << 20;

/// Completed-answer latencies kept for the percentile estimate.
constexpr std::size_t kLatencyWindow = 4096;

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

double Percentile(std::vector<double> sorted_copy, double p) {
  if (sorted_copy.empty()) return 0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_copy.size() - 1) + 0.5);
  return sorted_copy[std::min(rank, sorted_copy.size() - 1)];
}

}  // namespace

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Error(ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kInvalidArgument,
                 "cannot bind 127.0.0.1:" + std::to_string(options_.port) +
                     ": " + message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kInternal, "listen: " + message);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  worker_count_ = options_.threads;
  if (worker_count_ <= 0) {
    worker_count_ = static_cast<int>(std::thread::hardware_concurrency());
    if (worker_count_ <= 0) worker_count_ = 2;
  }
  workers_.reserve(static_cast<std::size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    threads_spawned_.fetch_add(1);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  threads_spawned_.fetch_add(1);
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status Server::Load(const std::string& topo_text, const std::string& spec_text,
                    const std::string& config_text) {
  auto topo = net::ParseTopology(topo_text);
  if (!topo) return Error(topo.error().code(),
                          "topology: " + topo.error().message());
  auto spec = spec::ParseSpec(spec_text);
  if (!spec) return Error(spec.error().code(),
                          "spec: " + spec.error().message());
  auto solved = config::ParseNetworkConfig(config_text);
  if (!solved) return Error(solved.error().code(),
                            "config: " + solved.error().message());

  auto scenario = std::make_shared<Scenario>();
  scenario->topo = std::move(topo).value();
  scenario->spec = std::move(spec).value();
  scenario->solved = std::move(solved).value();
  scenario->digest = ScenarioDigest(topo_text, spec_text, config_text);
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario_ = std::move(scenario);
  }
  return Status::Ok();
}

void Server::BeginShutdown() { stop_.store(true, std::memory_order_release); }

void Server::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  joined_ = true;
  BeginShutdown();
  if (!started_.load(std::memory_order_acquire)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }

  // 1. No new connections.
  if (accept_thread_.joinable()) {
    accept_thread_.join();
    threads_joined_.fetch_add(1);
  }

  // 2. Every connection finishes its in-flight request and exits (the
  //    read loops tick on the stop flag; workers are still running, so a
  //    connection waiting on a job is released by the job completing).
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(conn_threads_);
  }
  for (std::thread& connection : connections) {
    connection.join();
    threads_joined_.fetch_add(1);
  }

  // 3. Run the queue dry, then stop the workers.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
    threads_joined_.fetch_add(1);
  }
  workers_.clear();
}

void Server::Wait() {
  while (!ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  Shutdown();
}

void Server::AcceptLoop() {
  while (!ShutdownRequested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (ShutdownRequested()) {  // raced with a drain: refuse politely
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
    threads_spawned_.fetch_add(1);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ConnectionLoop(int fd) {
  std::string buffer;
  bool close_now = false;
  while (!close_now && !ShutdownRequested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) break;
    if (ready == 0) continue;
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;                       // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes) {
      SendAll(fd, ErrorResponse("unknown", "invalid-argument",
                                "request line exceeds 64 MiB")
                      .Dump(0) +
                  "\n");
      break;
    }
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (util::Trim(line).empty()) continue;
      const Json response = HandleLine(line);
      if (!SendAll(fd, response.Dump(0) + "\n")) {
        close_now = true;
        break;
      }
      // A handled shutdown raises the stop flag; finish this line batch
      // gracefully on the next loop check.
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
}

Json Server::HandleLine(std::string_view line) {
  auto request = ParseRequest(line);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.requests_total;
    if (!request) {
      ++counters_.requests_malformed;
    } else {
      switch (request.value().kind) {
        case RequestKind::kLoad: ++counters_.requests_load; break;
        case RequestKind::kExplain: ++counters_.requests_explain; break;
        case RequestKind::kStats: ++counters_.requests_stats; break;
        case RequestKind::kShutdown: ++counters_.requests_shutdown; break;
      }
    }
  }
  if (!request) return ErrorResponse("unknown", request.error());

  switch (request.value().kind) {
    case RequestKind::kLoad:
      return HandleLoad(request.value().load);
    case RequestKind::kExplain:
      return HandleExplain(request.value().explain);
    case RequestKind::kStats:
      return StatsResponse();
    case RequestKind::kShutdown: {
      BeginShutdown();
      queue_cv_.notify_all();
      Json response = OkResponse("shutdown");
      response.Set("draining", true);
      return response;
    }
  }
  return ErrorResponse("unknown", "internal", "unreachable");
}

Json Server::HandleLoad(const LoadRequest& request) {
  const Status loaded = Load(request.topo, request.spec, request.config);
  if (!loaded.ok()) return ErrorResponse("load", loaded.error());
  std::shared_ptr<const Scenario> scenario;
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario = scenario_;
  }
  Json response = OkResponse("load");
  response.Set("scenario", scenario->digest);
  response.Set("routers", scenario->solved.routers.size());
  return response;
}

Json Server::HandleExplain(const ExplainRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const Scenario> scenario;
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    scenario = scenario_;
  }
  if (scenario == nullptr) {
    return ErrorResponse("explain", "invalid-argument",
                         "no scenario loaded; send a 'load' request first");
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.in_flight;
  }
  struct InFlightGuard {
    Server* server;
    ~InFlightGuard() {
      std::lock_guard<std::mutex> lock(server->stats_mu_);
      --server->counters_.in_flight;
    }
  } in_flight_guard{this};

  const std::string key = CacheKey(scenario->digest, request.request);
  const auto wall_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  if (auto cached = cache_.Lookup(key)) {
    const double ms = wall_ms();
    RecordLatency(ms);
    return AnswerResponse(*cached, /*cached=*/true, ms);
  }

  auto job = std::make_shared<Job>();
  job->request = request.request;
  job->scenario = scenario;
  job->cache_key = key;
  job->debug_sleep_ms = request.debug_sleep_ms;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(job);
  }
  queue_cv_.notify_one();

  const int deadline_ms = request.deadline_ms.value_or(options_.deadline_ms);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    if (deadline_ms > 0) {
      const auto deadline = start + std::chrono::milliseconds(deadline_ms);
      if (!job->cv.wait_until(lock, deadline, [&] { return job->done; })) {
        // No partial answers: the worker keeps going in the background and
        // still populates the cache, but this request reports failure.
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++counters_.deadline_exceeded;
        }
        return ErrorResponse(
            "explain", kDeadlineExceeded,
            "request exceeded its " + std::to_string(deadline_ms) +
                " ms deadline");
      }
    } else {
      job->cv.wait(lock, [&] { return job->done; });
    }
  }

  if (!job->result.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.answers_failed;
    }
    return ErrorResponse("explain", job->result.error());
  }
  const double ms = wall_ms();
  RecordLatency(ms);
  return AnswerResponse(job->result.value(), /*cached=*/false, ms);
}

void Server::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job->debug_sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(job->debug_sleep_ms));
    }
    auto result = explain::AnswerRequest(job->scenario->topo,
                                         job->scenario->spec,
                                         job->scenario->solved, job->request);
    if (result.ok()) {
      cache_.Insert(job->cache_key, result.value());
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.solver += result.value().stats.lift;
    }
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->result = std::move(result);
      job->done = true;
    }
    job->cv.notify_all();
  }
}

void Server::RecordLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++counters_.latency_count;
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

ServerStats Server::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = counters_;
    stats.latency_p50_ms = Percentile(latencies_, 0.50);
    stats.latency_p95_ms = Percentile(latencies_, 0.95);
  }
  stats.cache = cache_.Stats();
  stats.worker_threads = worker_count_;
  {
    std::lock_guard<std::mutex> lock(scenario_mu_);
    if (scenario_ != nullptr) stats.scenario_digest = scenario_->digest;
  }
  return stats;
}

Json Server::StatsResponse() const {
  const ServerStats stats = Stats();
  Json response = OkResponse("stats");

  Json requests = Json::MakeObject();
  requests.Set("total", stats.requests_total);
  requests.Set("load", stats.requests_load);
  requests.Set("explain", stats.requests_explain);
  requests.Set("stats", stats.requests_stats);
  requests.Set("shutdown", stats.requests_shutdown);
  requests.Set("malformed", stats.requests_malformed);
  response.Set("requests", std::move(requests));

  Json cache = Json::MakeObject();
  cache.Set("hits", stats.cache.hits);
  cache.Set("misses", stats.cache.misses);
  cache.Set("evictions", stats.cache.evictions);
  cache.Set("inserts", stats.cache.inserts);
  cache.Set("entries", stats.cache.entries);
  cache.Set("capacity", stats.cache.capacity);
  response.Set("cache", std::move(cache));

  Json solver = Json::MakeObject();
  solver.Set("queries", stats.solver.queries);
  solver.Set("assertions", stats.solver.assertions);
  solver.Set("fast_path_hits", stats.solver.fast_path_hits);
  solver.Set("fast_path_fallbacks", stats.solver.fast_path_fallbacks);
  solver.Set("memo_hits", stats.solver.memo_hits);
  solver.Set("z3_queries", stats.solver.z3_queries);
  solver.Set("frame_reuse", stats.solver.frame_reuse);
  solver.Set("wall_ms", stats.solver.wall_ms);
  response.Set("solver", std::move(solver));

  Json latency = Json::MakeObject();
  latency.Set("count", stats.latency_count);
  latency.Set("p50_ms", stats.latency_p50_ms);
  latency.Set("p95_ms", stats.latency_p95_ms);
  response.Set("latency", std::move(latency));

  response.Set("in_flight", stats.in_flight);
  response.Set("deadline_exceeded", stats.deadline_exceeded);
  response.Set("answers_failed", stats.answers_failed);
  response.Set("threads", stats.worker_threads);
  response.Set("scenario", stats.scenario_digest);
  return response;
}

}  // namespace ns::serve
