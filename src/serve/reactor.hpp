// Non-blocking epoll reactor: the event-driven serve front end.
//
// Each Reactor is one thread owning one epoll instance and a set of
// connections. All socket I/O happens here — edge-triggered reads into a
// per-connection buffer, newline framing of partial reads, request
// pipelining (any number of complete lines per wakeup, answered strictly
// in request order), and buffered writes with EPOLLOUT backpressure for
// slow readers. The reactor never computes an answer and never blocks on
// one: explain questions are handed to the shared worker pool through
// ReactorHost, and completions come back over an eventfd wakeup.
//
// Ordering: a connection's responses go out in request order whatever
// order the workers finish in. Each parsed request occupies a slot in a
// per-connection queue; a slot is either ready (rendered bytes) or
// pending (a Job). The flusher only drains the queue head, so a fast
// answer behind a slow one waits — exactly the blocking front end's
// semantics, without a thread parked per connection.
//
// Deadlines: a pending slot carries its expiry; the epoll timeout is
// clamped to the nearest one. On expiry the slot is answered with the
// host's deadline response and the job reference dropped — the worker
// still finishes and populates the cache (the abandon-not-cancel
// contract of docs/SERVE.md).
//
// Overload: the reactor enqueues through ReactorHost::EnqueueJob, which
// applies the server's bounded admission queue; a refused job is answered
// immediately with the host's `overloaded` shed response. The connection
// survives — shedding is per-request backpressure, not a disconnect.
//
// Robustness: a single line longer than `max_line_bytes` is answered
// with a protocol error and the connection closed (bounded buffering, no
// allocation bomb); NUL bytes and empty lines are harmless (the JSON
// parser rejects the former, the framer skips the latter); a peer that
// disconnects mid-request just closes — any in-flight jobs complete in
// the background. Connections opened/closed are counted so tests can
// assert the reactor leaks no fds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/job.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

/// What the reactor needs from the service. Implemented by serve::Server;
/// every method is thread-safe and non-blocking.
class ReactorHost {
 public:
  virtual ~ReactorHost() = default;

  /// Parses and dispatches one request line (counts stats, consults the
  /// cache). Returns either a ready response or an un-enqueued Job.
  virtual LineOutcome HandleReactorLine(std::string_view line) = 0;

  /// Admits `job` to the worker queue. Returns false when the bounded
  /// admission queue is full — the caller must answer with ShedResponse.
  virtual bool EnqueueJob(const std::shared_ptr<Job>& job) = 0;

  /// The `overloaded` error response (counts the shed).
  virtual util::Json ShedResponse() = 0;

  /// Renders a completed job (answer or contained error; records
  /// latency).
  virtual util::Json RenderCompletion(
      Job& job, std::chrono::steady_clock::time_point start) = 0;

  /// Renders the deadline-exceeded error (counts it).
  virtual util::Json RenderExpiry(int deadline_ms) = 0;

  /// The protocol error for a single line exceeding max_line_bytes.
  virtual util::Json OversizedResponse() = 0;

  /// `count` pending jobs were dropped without a rendered response (their
  /// peer vanished); the host balances its in-flight accounting.
  virtual void DiscardPending(std::size_t count) = 0;
};

struct ReactorConfig {
  std::size_t max_line_bytes = 64u << 20;
  int poll_ms = 100;  ///< idle tick: the latency bound on stop detection
};

class Reactor {
 public:
  Reactor(ReactorHost* host, ReactorConfig config)
      : host_(host), config_(config) {}
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll instance and wakeup eventfd and spawns the thread.
  util::Status Start();

  /// Transfers ownership of a connected, non-blocking socket to this
  /// reactor. Thread-safe. Counted immediately (never leaked: a fd handed
  /// to a stopping reactor is closed and counted on the reactor thread).
  void AddConnection(int fd);

  /// Begins the drain: stop reading new requests, resolve every pending
  /// slot (workers are still running), flush, close, exit. Thread-safe.
  void RequestStop();

  /// Joins the reactor thread. Call after RequestStop.
  void Join();

  std::uint64_t connections_opened() const noexcept {
    return conns_opened_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_closed() const noexcept {
    return conns_closed_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// One response slot: answers leave in request order, so a connection's
  /// output queue is a deque of these and only a ready head is flushed.
  struct Slot {
    bool ready = false;
    std::string bytes;         // framed response once ready
    std::shared_ptr<Job> job;  // pending answer
    int deadline_ms = 0;
    Clock::time_point start{};
    Clock::time_point deadline = Clock::time_point::max();
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;           // unframed bytes (at most one partial line)
    std::string out;          // flushed from out_offset
    std::size_t out_offset = 0;
    std::deque<Slot> slots;
    bool eof = false;                // peer half-closed its side
    bool close_after_flush = false;  // protocol error: drain out, close
    bool want_write = false;         // EPOLLOUT armed
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::shared_ptr<Job> job;
  };

  void Run();
  void Wake();
  void DrainInbox();
  void HandleReadable(Conn& conn);
  void ProcessLines(Conn& conn);
  void Flush(Conn& conn);
  void UpdateInterest(Conn& conn);
  void ExpireDeadlines(Clock::time_point now);
  void CloseConn(std::uint64_t id);
  /// Closes every connection that is fully answered and flushed and was
  /// asked to close (eof / protocol error / reactor drain).
  void SweepClosable();
  std::string OversizedResponseBytes() const;
  int TimeoutMs(Clock::time_point now) const;
  bool Draining() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  ReactorHost* const host_;
  const ReactorConfig config_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::mutex inbox_mu_;
  std::vector<int> new_fds_;             // guarded by inbox_mu_
  std::vector<Completion> completions_;  // guarded by inbox_mu_

  // Reactor-thread state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  std::atomic<std::uint64_t> conns_opened_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
};

}  // namespace ns::serve
