// Minimal blocking client for the explanation service: one TCP
// connection, one JSON request line out, one JSON response line back.
// Shared by tests/serve_test.cpp and the tools/serve_smoke scripted
// exchange; small enough to copy into another language from docs/SERVE.md.
#pragma once

#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:<port>.
  static util::Result<Client> Connect(int port);

  Client(Client&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `request` as one line and blocks for the next response line.
  /// Transport failures (connection dropped mid-exchange) are kInternal;
  /// protocol-level failures arrive as {"ok":false,...} responses, which
  /// this returns successfully.
  util::Result<util::Json> Call(const util::Json& request);

  /// Half of Call: just send. For tests that drive raw lines.
  util::Status SendLine(const std::string& line);
  util::Result<util::Json> ReadResponse();

  /// Sends raw bytes with no framing added — tests and the fuzz serve
  /// oracle use this to drip a request byte by byte or to pipeline many
  /// framed lines in a single write.
  util::Status SendRaw(std::string_view bytes);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace ns::serve
