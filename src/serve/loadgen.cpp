#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace ns::serve {

using util::Error;
using util::ErrorCode;
using util::Json;
using util::Result;

namespace {

using Clock = std::chrono::steady_clock;

/// Histogram buckets: 0.25 ms to ~8 s, doubling. 16 buckets + open tail.
constexpr int kHistogramBuckets = 16;

double BucketUpperMs(int i) { return 0.25 * std::pow(2.0, i); }

struct ConnStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t answers_ok = 0;
  std::uint64_t answers_cached = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t answer_errors = 0;
  std::uint64_t protocol_errors = 0;
  std::vector<double> latencies_ms;
};

void Classify(const Result<Json>& response, ConnStats& stats) {
  if (!response.ok()) {
    ++stats.protocol_errors;
    return;
  }
  const Json& body = response.value();
  const Json* ok = body.Find("ok");
  if (ok == nullptr || !ok->IsBool()) {
    ++stats.protocol_errors;
    return;
  }
  if (ok->AsBool()) {
    ++stats.answers_ok;
    const Json* cached = body.Find("cached");
    if (cached != nullptr && cached->IsBool() && cached->AsBool()) {
      ++stats.answers_cached;
    }
    return;
  }
  const Json* error = body.Find("error");
  const Json* code = error != nullptr ? error->Find("code") : nullptr;
  const std::string code_text =
      code != nullptr && code->IsString() ? code->AsString() : "";
  if (code_text == kOverloaded) {
    ++stats.shed;
  } else if (code_text == kDeadlineExceeded) {
    ++stats.deadline_exceeded;
  } else {
    ++stats.answer_errors;
  }
}

void DriveConnection(int port, const LoadgenOptions& options,
                     const std::vector<std::string>& lines,
                     std::uint64_t seed, Clock::time_point end,
                     ConnStats& stats) {
  auto client = Client::Connect(port);
  if (!client.ok()) {
    ++stats.protocol_errors;
    return;
  }
  util::Rng rng(seed);
  // Seeded starting offset: connections spread over the request mix
  // instead of hammering the same (cacheable) question in lockstep.
  std::size_t next = lines.empty() ? 0 : rng.Below(lines.size());

  const bool open_loop = options.rate_per_s > 0;
  const auto interval =
      open_loop ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(1.0 / options.rate_per_s))
                : Clock::duration::zero();
  Clock::time_point scheduled = Clock::now();

  while (Clock::now() < end) {
    const std::string& line = lines[next];
    next = (next + 1) % lines.size();

    if (open_loop) {
      // Fixed cadence; latency is measured from the scheduled arrival so
      // server stalls show up in the tail (no coordinated omission).
      std::this_thread::sleep_until(scheduled);
    } else {
      scheduled = Clock::now();
    }
    ++stats.requests_sent;
    auto response = [&]() -> Result<Json> {
      if (auto status = client.value().SendLine(line); !status.ok()) {
        return status.error();
      }
      return client.value().ReadResponse();
    }();
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                                scheduled)
                          .count();
    Classify(response, stats);
    if (response.ok()) stats.latencies_ms.push_back(ms);
    if (!response.ok()) return;  // connection unusable: stop this driver
    if (open_loop) scheduled += interval;
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options,
                                 const std::vector<std::string>& request_lines) {
  if (request_lines.empty()) {
    return Error(ErrorCode::kInvalidArgument, "loadgen: no request lines");
  }
  if (options.connections <= 0) {
    return Error(ErrorCode::kInvalidArgument, "loadgen: connections must be > 0");
  }
  // Fail fast if the server is unreachable at all (each driver thread
  // also tolerates individual connect failures).
  if (auto probe = Client::Connect(options.port); !probe.ok()) {
    return probe.error();
  }

  const auto start = Clock::now();
  const auto end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));

  std::vector<ConnStats> per_conn(static_cast<std::size_t>(options.connections));
  std::vector<std::thread> drivers;
  drivers.reserve(per_conn.size());
  for (std::size_t i = 0; i < per_conn.size(); ++i) {
    drivers.emplace_back([&, i] {
      DriveConnection(options.port, options, request_lines,
                      options.seed * 0x9e3779b97f4a7c15ull + i + 1, end,
                      per_conn[i]);
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadgenReport report;
  std::vector<double> latencies;
  for (const ConnStats& stats : per_conn) {
    report.requests_sent += stats.requests_sent;
    report.answers_ok += stats.answers_ok;
    report.answers_cached += stats.answers_cached;
    report.shed += stats.shed;
    report.deadline_exceeded += stats.deadline_exceeded;
    report.answer_errors += stats.answer_errors;
    report.protocol_errors += stats.protocol_errors;
    latencies.insert(latencies.end(), stats.latencies_ms.begin(),
                     stats.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.wall_s = wall_s;
  report.throughput_rps =
      wall_s > 0 ? static_cast<double>(latencies.size()) / wall_s : 0;
  report.p50_ms = Percentile(latencies, 0.50);
  report.p95_ms = Percentile(latencies, 0.95);
  report.p99_ms = Percentile(latencies, 0.99);
  report.max_ms = latencies.empty() ? 0 : latencies.back();
  report.shed_rate =
      report.requests_sent > 0
          ? static_cast<double>(report.shed) /
                static_cast<double>(report.requests_sent)
          : 0;

  report.histogram_upper_ms.resize(kHistogramBuckets + 1);
  report.histogram_counts.assign(kHistogramBuckets + 1, 0);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    report.histogram_upper_ms[static_cast<std::size_t>(i)] = BucketUpperMs(i);
  }
  report.histogram_upper_ms[kHistogramBuckets] = -1;  // open-ended tail
  for (const double ms : latencies) {
    int bucket = 0;
    while (bucket < kHistogramBuckets && ms > BucketUpperMs(bucket)) ++bucket;
    ++report.histogram_counts[static_cast<std::size_t>(bucket)];
  }
  return report;
}

Json LoadgenReportToJson(const LoadgenReport& report) {
  Json out = Json::MakeObject();
  out.Set("requests_sent", report.requests_sent);
  out.Set("answers_ok", report.answers_ok);
  out.Set("answers_cached", report.answers_cached);
  out.Set("shed", report.shed);
  out.Set("deadline_exceeded", report.deadline_exceeded);
  out.Set("answer_errors", report.answer_errors);
  out.Set("protocol_errors", report.protocol_errors);
  out.Set("wall_s", report.wall_s);
  out.Set("throughput_rps", report.throughput_rps);
  out.Set("shed_rate", report.shed_rate);
  Json latency = Json::MakeObject();
  latency.Set("p50_ms", report.p50_ms);
  latency.Set("p95_ms", report.p95_ms);
  latency.Set("p99_ms", report.p99_ms);
  latency.Set("max_ms", report.max_ms);
  Json histogram = Json::MakeArray();
  for (std::size_t i = 0; i < report.histogram_counts.size(); ++i) {
    Json bucket = Json::MakeObject();
    bucket.Set("le_ms", report.histogram_upper_ms[i]);
    bucket.Set("count", report.histogram_counts[i]);
    histogram.Append(std::move(bucket));
  }
  latency.Set("histogram", std::move(histogram));
  out.Set("latency", std::move(latency));
  return out;
}

}  // namespace ns::serve
