#include "serve/cache.hpp"

namespace ns::serve {

std::optional<explain::BatchAnswer> AnswerCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key, explain::BatchAnswer answer) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent computer of the same key beat us here; answers are
    // deterministic, so refreshing recency is all that is left to do.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(answer);
    return;
  }
  lru_.emplace_front(key, std::move(answer));
  index_.emplace(key, lru_.begin());
  ++inserts_;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats AnswerCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.inserts = inserts_;
  stats.entries = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace ns::serve
