#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ns::serve {

using util::Error;
using util::ErrorCode;
using util::Json;
using util::Result;
using util::Status;

Result<Client> Client::Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Error(ErrorCode::kInternal,
                 "connect 127.0.0.1:" + std::to_string(port) + ": " + message);
  }
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status Client::SendRaw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Error(ErrorCode::kInternal,
                   std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Json> Client::ReadResponse() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return Json::Parse(line);
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Error(ErrorCode::kInternal,
                   "server closed the connection before responding");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCode::kInternal,
                   std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<Json> Client::Call(const Json& request) {
  if (auto status = SendLine(request.Dump(0)); !status.ok()) {
    return status.error();
  }
  return ReadResponse();
}

}  // namespace ns::serve
