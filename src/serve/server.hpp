// Explanation-as-a-service: a multi-threaded TCP server that answers
// explain questions about one loaded scenario (`netsubspec serve`).
//
// Architecture (docs/SERVE.md has the wire protocol):
//
//   accept thread ──► one connection thread per client ──► worker pool
//
// Connection threads own all protocol work (newline-delimited JSON in
// request order); `explain` questions are handed to a fixed pool of
// workers so N slow Z3-backed questions from one client cannot starve
// other clients, and so concurrency is bounded whatever the client count.
// Every question is answered through explain::AnswerRequest — a fresh
// Session (fresh ExprPool + Engine) per request — so concurrent answers
// are byte-identical to a sequential Session::Ask on the same inputs
// (the determinism contract of explain/batch.hpp, asserted end to end by
// tests/serve_test.cpp).
//
// An LRU cache (serve/cache.hpp) keyed by the canonical digest of
// (scenario bytes, selection, mode, requirement projection) short-circuits
// repeated questions; determinism makes hits byte-identical to recomputes.
//
// Deadlines: each `explain` carries a wall-clock budget (per-request
// override or the server default). The connection thread waits on the
// worker up to the budget and then reports `deadline-exceeded` — never a
// partial answer. The worker finishes in the background and still
// populates the cache, so a retry of a timed-out question usually hits.
//
// Shutdown is a graceful drain: stop accepting, let every connection
// finish its in-flight request, run the worker queue dry, join all
// threads. Triggered by a `shutdown` request, Shutdown(), or (in the CLI)
// SIGTERM/SIGINT.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "config/device.hpp"
#include "net/topology.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "smt/solver.hpp"
#include "spec/ast.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

struct ServerOptions {
  int port = 0;         ///< 0 = kernel-assigned ephemeral port (see port())
  int threads = 0;      ///< worker threads; 0 = hardware concurrency
  std::size_t cache_entries = 256;  ///< LRU capacity; 0 disables caching
  int deadline_ms = 0;  ///< default per-request budget; 0 = unbounded
};

/// Point-in-time service counters (the `stats` response carries the same
/// numbers; keep the two in sync).
struct ServerStats {
  std::uint64_t requests_total = 0;
  std::uint64_t requests_load = 0;
  std::uint64_t requests_explain = 0;
  std::uint64_t requests_stats = 0;
  std::uint64_t requests_shutdown = 0;
  std::uint64_t requests_malformed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t answers_failed = 0;  ///< explain answered with an error
  int in_flight = 0;                 ///< explain requests being answered
  std::uint64_t latency_count = 0;   ///< completed explain answers
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  CacheStats cache;
  /// Solver-layer counters summed over every explain answer computed by
  /// the workers (cache hits recompute nothing, so they add nothing).
  smt::SolverStats solver;
  int worker_threads = 0;
  std::string scenario_digest;  ///< empty until a scenario is loaded
};

class Server {
 public:
  explicit Server(ServerOptions options) : options_(options) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept thread and the worker
  /// pool. Fails (kInvalidArgument) if the port is taken.
  util::Status Start();

  /// The actual bound port (the kernel's pick when options.port == 0).
  int port() const noexcept { return port_; }

  /// Installs a scenario, as the `load` request does. Handy for the CLI's
  /// --topo/--spec/--config preload and for tests.
  util::Status Load(const std::string& topo_text, const std::string& spec_text,
                    const std::string& config_text);

  /// Flags the drain; returns immediately. Safe from any thread.
  void BeginShutdown();
  bool ShutdownRequested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// Graceful drain: BeginShutdown + join accept thread, connection
  /// threads (each finishes its in-flight request) and workers (queue
  /// runs dry). Idempotent; called by the destructor.
  void Shutdown();

  /// Blocks until a `shutdown` request (or BeginShutdown) arrives, then
  /// drains. The CLI's serving loop.
  void Wait();

  ServerStats Stats() const;

  /// Threads ever spawned / joined — equal after Shutdown(); the leak
  /// check of tests/serve_test.cpp.
  int threads_spawned() const noexcept { return threads_spawned_.load(); }
  int threads_joined() const noexcept { return threads_joined_.load(); }

 private:
  struct Scenario {
    net::Topology topo;
    spec::Spec spec;
    config::NetworkConfig solved;
    std::string digest;
  };

  /// One queued explain question; the connection thread waits on `cv` up
  /// to its deadline, the worker always completes the job.
  struct Job {
    explain::BatchRequest request;
    std::shared_ptr<const Scenario> scenario;
    std::string cache_key;
    int debug_sleep_ms = 0;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    util::Result<explain::BatchAnswer> result =
        util::Error(util::ErrorCode::kInternal, "request was not run");
  };

  void AcceptLoop();
  void ConnectionLoop(int fd);
  void WorkerLoop();

  /// Handles one request line; returns the response to send.
  util::Json HandleLine(std::string_view line);
  util::Json HandleLoad(const LoadRequest& request);
  util::Json HandleExplain(const ExplainRequest& request);
  util::Json StatsResponse() const;

  void RecordLatency(double ms);

  const ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  bool joined_ = false;           // guarded by shutdown_mu_
  std::mutex shutdown_mu_;

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;  // guarded by conn_mu_
  std::set<int> conn_fds_;                 // guarded by conn_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;  // guarded by queue_mu_
  bool stop_workers_ = false;               // guarded by queue_mu_
  std::vector<std::thread> workers_;
  int worker_count_ = 0;

  mutable std::mutex scenario_mu_;
  std::shared_ptr<const Scenario> scenario_;  // guarded by scenario_mu_

  mutable AnswerCache cache_{options_.cache_entries};

  mutable std::mutex stats_mu_;
  ServerStats counters_;                 // counter fields; guarded by stats_mu_
  std::vector<double> latencies_;        // ring buffer; guarded by stats_mu_
  std::size_t latency_next_ = 0;         // guarded by stats_mu_

  std::atomic<int> threads_spawned_{0};
  std::atomic<int> threads_joined_{0};
};

}  // namespace ns::serve
