// Explanation-as-a-service: a TCP server that answers explain questions
// about one loaded scenario (`netsubspec serve`).
//
// Architecture (docs/SERVE.md has the wire protocol and the diagram):
//
//              ┌► reactor 0 (epoll) ─┐
//   acceptor ──┤        ...          ├──► bounded queue ──► worker pool
//              └► reactor R-1        ┘        │
//        (or: one blocking thread per conn)   └ full? shed `overloaded`
//
// Two selectable front ends share one request-dispatch core:
//
//   * kEpoll (default): a fixed pool of non-blocking reactors
//     (serve/reactor.hpp) owns all socket I/O — edge-triggered reads,
//     partial-line framing, pipelining, buffered writes. No thread is
//     ever parked per connection or per in-flight request.
//   * kBlocking: the original thread-per-connection loops, kept
//     selectable (`--frontend blocking`) as the transition baseline.
//
// Responses are byte-identical across front ends: both funnel every line
// through HandleReactorLine / EnqueueJob / RenderCompletion /
// RenderExpiry / ShedResponse, and every answer is computed through
// explain::AnswerRequest — a fresh Session (fresh ExprPool + Engine) per
// request — so answers are pure functions of (scenario texts, request)
// whatever the front end, concurrency, or cache state
// (tests/serve_frontend_test.cpp asserts the identity end to end).
//
// Backpressure: `explain` admission is bounded by max_queue. A full
// queue sheds the request immediately with an `overloaded` error — the
// client sees fast failure, the connection survives, and the counters
// surface in `stats`. Slow readers exert backpressure through the
// reactor's buffered writes, never by blocking a worker.
//
// An LRU cache (serve/cache.hpp) keyed by the canonical digest of
// (scenario bytes, selection, mode, requirement projection) short-circuits
// repeated questions; determinism makes hits byte-identical to recomputes.
//
// Deadlines: each `explain` carries a wall-clock budget (per-request
// override or the server default). Expiry reports `deadline-exceeded` —
// never a partial answer. The worker finishes in the background and still
// populates the cache, so a retry of a timed-out question usually hits.
//
// Shutdown is a graceful drain: stop accepting, resolve every in-flight
// request, flush, run the worker queue dry, join all threads. Triggered
// by a `shutdown` request, Shutdown(), or (in the CLI) SIGTERM/SIGINT.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/reactor.hpp"
#include "smt/solver.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

enum class Frontend {
  kEpoll,     ///< non-blocking reactor pool (default)
  kBlocking,  ///< thread-per-connection (the pre-reactor baseline)
};

struct ServerOptions {
  int port = 0;         ///< 0 = kernel-assigned ephemeral port (see port())
  int threads = 0;      ///< worker threads; 0 = hardware concurrency
  std::size_t cache_entries = 256;  ///< LRU capacity; 0 disables caching
  int deadline_ms = 0;  ///< default per-request budget; 0 = unbounded
  Frontend frontend = Frontend::kEpoll;
  int reactors = 2;             ///< epoll reactor threads; <=0 = 2
  std::size_t max_queue = 256;  ///< admission bound; 0 = unbounded (no shed)
  std::size_t max_line_bytes = 64u << 20;  ///< request-line cap
  /// Compile workers for each answer's lift phase A (DESIGN.md §12);
  /// applied to every explain. Answers stay byte-identical, so cache keys
  /// and responses are unaffected — only latency and the stats counters.
  int lift_threads = 1;
  /// Race the lift's phase-B strategy portfolio on every explain.
  bool lift_portfolio = false;
};

/// Point-in-time service counters (the `stats` response carries the same
/// numbers; keep the two in sync).
struct ServerStats {
  std::uint64_t requests_total = 0;
  std::uint64_t requests_load = 0;
  std::uint64_t requests_explain = 0;
  std::uint64_t requests_stats = 0;
  std::uint64_t requests_shutdown = 0;
  std::uint64_t requests_malformed = 0;
  std::uint64_t requests_shed = 0;  ///< refused by the full admission queue
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t answers_failed = 0;  ///< explain answered with an error
  int in_flight = 0;                 ///< explain requests being answered
  std::uint64_t latency_count = 0;   ///< completed explain answers
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  CacheStats cache;
  /// Solver-layer counters summed over every explain answer computed by
  /// the workers (cache hits recompute nothing, so they add nothing).
  smt::SolverStats solver;
  /// Two-phase lift pipeline counters, summed the same way.
  explain::LiftStats lift;
  /// Frozen-arena registry counters for the current scenario (each `load`
  /// starts a fresh registry, so these reset with the scenario).
  explain::ArenaRegistryStats arena;
  int worker_threads = 0;
  std::string scenario_digest;  ///< empty until a scenario is loaded
};

class Server : public ReactorHost {
 public:
  explicit Server(ServerOptions options) : options_(options) {}
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts the front end (reactor pool or
  /// blocking acceptor) and the worker pool. Fails (kInvalidArgument) if
  /// the port is taken.
  util::Status Start();

  /// The actual bound port (the kernel's pick when options.port == 0).
  int port() const noexcept { return port_; }

  /// Installs a scenario, as the `load` request does. Handy for the CLI's
  /// --topo/--spec/--config preload and for tests.
  util::Status Load(const std::string& topo_text, const std::string& spec_text,
                    const std::string& config_text);

  /// Flags the drain; returns immediately. Safe from any thread.
  void BeginShutdown();
  bool ShutdownRequested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// Graceful drain: BeginShutdown + join the acceptor, the front end
  /// (every pending request resolves — the workers are still running —
  /// and every connection flushes and closes) and finally the workers
  /// (queue runs dry). Idempotent; called by the destructor.
  void Shutdown();

  /// Blocks until a `shutdown` request (or BeginShutdown) arrives, then
  /// drains. The CLI's serving loop.
  void Wait();

  ServerStats Stats() const;

  /// Threads ever spawned / joined — equal after Shutdown(); the leak
  /// check of tests/serve_test.cpp. Reactor threads are counted too.
  int threads_spawned() const noexcept { return threads_spawned_.load(); }
  int threads_joined() const noexcept { return threads_joined_.load(); }

  /// Connections ever accepted / closed — equal after Shutdown() on
  /// either front end; the fd-leak check of serve_frontend_test.cpp.
  std::uint64_t connections_opened() const;
  std::uint64_t connections_closed() const;

  // ReactorHost — the dispatch core shared by both front ends. Each
  // explain is counted in-flight from dispatch until exactly one of
  // RenderCompletion / RenderExpiry / ShedResponse / DiscardPending.
  LineOutcome HandleReactorLine(std::string_view line) override;
  bool EnqueueJob(const std::shared_ptr<Job>& job) override;
  util::Json ShedResponse() override;
  util::Json RenderCompletion(Job& job,
                              std::chrono::steady_clock::time_point start)
      override;
  util::Json RenderExpiry(int deadline_ms) override;
  util::Json OversizedResponse() override;
  void DiscardPending(std::size_t count) override;

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void WorkerLoop();

  /// Blocking-front-end line handler: shared dispatch, then park this
  /// thread on the job up to its deadline.
  util::Json HandleBlockingLine(std::string_view line);
  util::Json HandleLoad(const LoadRequest& request);
  /// Shared explain dispatch: cache hit -> ready response; miss -> an
  /// un-enqueued Job for the front end to admit.
  LineOutcome StartExplain(const ExplainRequest& request);
  util::Json StatsResponse() const;

  void RecordLatency(double ms);

  const ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  bool joined_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;

  std::thread accept_thread_;

  // Epoll front end.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  // accept-thread only

  // Blocking front end.
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;  // guarded by conn_mu_
  std::set<int> conn_fds_;                 // guarded by conn_mu_
  std::atomic<std::uint64_t> blocking_conns_opened_{0};
  std::atomic<std::uint64_t> blocking_conns_closed_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;  // guarded by queue_mu_
  bool stop_workers_ = false;               // guarded by queue_mu_
  std::vector<std::thread> workers_;
  int worker_count_ = 0;

  mutable std::mutex scenario_mu_;
  std::shared_ptr<const Scenario> scenario_;  // guarded by scenario_mu_

  mutable AnswerCache cache_{options_.cache_entries};

  mutable std::mutex stats_mu_;
  ServerStats counters_;           // counter fields; guarded by stats_mu_
  std::vector<double> latencies_;  // ring buffer; guarded by stats_mu_
  std::size_t latency_next_ = 0;   // guarded by stats_mu_

  std::atomic<int> threads_spawned_{0};
  std::atomic<int> threads_joined_{0};
};

}  // namespace ns::serve
