#include "serve/protocol.hpp"

#include "explain/lift.hpp"

namespace ns::serve {

using util::Error;
using util::ErrorCode;
using util::Json;
using util::Result;

namespace {

Result<std::string> RequiredString(const Json& object, std::string_view key) {
  const Json* value = object.Find(key);
  if (value == nullptr || !value->IsString()) {
    return Error(ErrorCode::kInvalidArgument,
                 "request needs a string field '" + std::string(key) + "'");
  }
  return value->AsString();
}

bool OptionalBool(const Json& object, std::string_view key) {
  const Json* value = object.Find(key);
  return value != nullptr && value->IsBool() && value->AsBool();
}

Result<Request> ParseLoad(const Json& object) {
  Request request;
  request.kind = RequestKind::kLoad;
  auto topo = RequiredString(object, "topo");
  if (!topo) return topo.error();
  auto spec = RequiredString(object, "spec");
  if (!spec) return spec.error();
  auto config = RequiredString(object, "config");
  if (!config) return config.error();
  request.load = LoadRequest{std::move(topo).value(), std::move(spec).value(),
                             std::move(config).value()};
  return request;
}

Result<Request> ParseExplain(const Json& object) {
  Request request;
  request.kind = RequestKind::kExplain;
  explain::BatchRequest& question = request.explain.request;

  auto router = RequiredString(object, "router");
  if (!router) return router.error();
  question.selection = OptionalBool(object, "rest")
                           ? explain::Selection::Rest(std::move(router).value())
                           : explain::Selection::Router(std::move(router).value());
  if (const Json* map = object.Find("map"); map != nullptr) {
    if (!map->IsString()) {
      return Error(ErrorCode::kInvalidArgument, "'map' must be a string");
    }
    question.selection.route_map = map->AsString();
  }
  if (const Json* seq = object.Find("seq"); seq != nullptr) {
    if (!seq->IsNumber()) {
      return Error(ErrorCode::kInvalidArgument, "'seq' must be a number");
    }
    question.selection.seq = static_cast<int>(seq->AsInt());
  }
  if (const Json* slot = object.Find("slot"); slot != nullptr) {
    if (!slot->IsString()) {
      return Error(ErrorCode::kInvalidArgument, "'slot' must be a string");
    }
    question.selection.slot = slot->AsString();
  }

  if (const Json* mode = object.Find("mode"); mode != nullptr) {
    if (!mode->IsString() ||
        (mode->AsString() != "exact" && mode->AsString() != "faithful")) {
      return Error(ErrorCode::kInvalidArgument,
                   "'mode' must be 'exact' or 'faithful'");
    }
    question.mode = mode->AsString() == "exact" ? explain::LiftMode::kExact
                                                : explain::LiftMode::kFaithful;
  }
  if (const Json* reqs = object.Find("requirements"); reqs != nullptr) {
    if (!reqs->IsArray()) {
      return Error(ErrorCode::kInvalidArgument,
                   "'requirements' must be an array of strings");
    }
    for (const Json& name : reqs->AsArray()) {
      if (!name.IsString()) {
        return Error(ErrorCode::kInvalidArgument,
                     "'requirements' must be an array of strings");
      }
      question.requirements.push_back(name.AsString());
    }
  }
  question.compute_baselines = OptionalBool(object, "baselines");
  if (const Json* solver = object.Find("solver"); solver != nullptr) {
    if (!solver->IsString()) {
      return Error(ErrorCode::kInvalidArgument,
                   "'solver' must be 'fresh', 'incremental', or 'fastpath'");
    }
    auto backend = smt::ParseSolverBackend(solver->AsString());
    if (!backend) return backend.error();
    question.solver.backend = backend.value();
  }

  if (const Json* deadline = object.Find("deadline_ms"); deadline != nullptr) {
    if (!deadline->IsNumber() || deadline->AsInt() < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "'deadline_ms' must be a non-negative number");
    }
    request.explain.deadline_ms = static_cast<int>(deadline->AsInt());
  }
  if (const Json* sleep = object.Find("debug_sleep_ms"); sleep != nullptr) {
    if (!sleep->IsNumber() || sleep->AsInt() < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "'debug_sleep_ms' must be a non-negative number");
    }
    request.explain.debug_sleep_ms = static_cast<int>(sleep->AsInt());
  }
  return request;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  auto parsed = Json::Parse(line);
  if (!parsed) return parsed.error();
  const Json& object = parsed.value();
  if (!object.IsObject()) {
    return Error(ErrorCode::kInvalidArgument, "request must be a JSON object");
  }
  auto cmd = RequiredString(object, "cmd");
  if (!cmd) return cmd.error();
  if (cmd.value() == "load") return ParseLoad(object);
  if (cmd.value() == "explain") return ParseExplain(object);
  if (cmd.value() == "stats") {
    Request request;
    request.kind = RequestKind::kStats;
    return request;
  }
  if (cmd.value() == "shutdown") {
    Request request;
    request.kind = RequestKind::kShutdown;
    return request;
  }
  return Error(ErrorCode::kInvalidArgument,
               "unknown command '" + cmd.value() + "'");
}

std::string Digest64(std::string_view text) {
  // FNV-1a 64-bit.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

namespace {

/// Length-prefixed field append: unambiguous whatever bytes the field
/// holds, so distinct (scenario, request) tuples can never collide.
void AppendField(std::string& key, std::string_view field) {
  key += std::to_string(field.size());
  key += ':';
  key += field;
  key += ';';
}

}  // namespace

std::string ScenarioDigest(std::string_view topo, std::string_view spec,
                           std::string_view config) {
  std::string canonical;
  canonical.reserve(topo.size() + spec.size() + config.size() + 32);
  AppendField(canonical, topo);
  AppendField(canonical, spec);
  AppendField(canonical, config);
  return Digest64(canonical);
}

std::string CacheKey(const std::string& scenario_digest,
                     const explain::BatchRequest& request) {
  std::string key;
  AppendField(key, scenario_digest);
  AppendField(key, request.selection.router);
  AppendField(key, request.selection.route_map.value_or("\x01<all>"));
  AppendField(key, request.selection.seq
                       ? std::to_string(*request.selection.seq)
                       : "\x01<all>");
  AppendField(key, request.selection.slot.value_or("\x01<all>"));
  AppendField(key, request.selection.complement ? "rest" : "direct");
  AppendField(key, explain::LiftModeName(request.mode));
  AppendField(key, request.compute_baselines ? "baselines" : "plain");
  // Answers are backend-independent, but the stats object in the response
  // is not — keep per-backend cache entries so a cached answer's counters
  // describe the backend the client asked for.
  AppendField(key, smt::SolverBackendName(request.solver.backend));
  for (const std::string& requirement : request.requirements) {
    AppendField(key, requirement);
  }
  return key;
}

Json OkResponse(std::string_view cmd) {
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("cmd", std::string(cmd));
  return response;
}

Json ErrorResponse(std::string_view cmd, std::string_view code,
                   std::string_view message) {
  Json error = Json::MakeObject();
  error.Set("code", std::string(code));
  error.Set("message", std::string(message));
  Json response = Json::MakeObject();
  response.Set("ok", false);
  response.Set("cmd", std::string(cmd));
  response.Set("error", std::move(error));
  return response;
}

Json ErrorResponse(std::string_view cmd, const util::Error& error) {
  return ErrorResponse(cmd, util::ErrorCodeName(error.code()),
                       error.message());
}

namespace {

Json SolverStatsJson(const explain::ExplainStats& stats) {
  const smt::SolverStats& s = stats.lift;
  Json solver = Json::MakeObject();
  solver.Set("backend", std::string(smt::SolverBackendName(stats.backend)));
  solver.Set("queries", static_cast<std::int64_t>(s.queries));
  solver.Set("assertions", static_cast<std::int64_t>(s.assertions));
  solver.Set("fast_path_hits", static_cast<std::int64_t>(s.fast_path_hits));
  solver.Set("fast_path_fallbacks",
             static_cast<std::int64_t>(s.fast_path_fallbacks));
  solver.Set("memo_hits", static_cast<std::int64_t>(s.memo_hits));
  solver.Set("z3_queries", static_cast<std::int64_t>(s.z3_queries));
  solver.Set("frame_reuse", static_cast<std::int64_t>(s.frame_reuse));
  solver.Set("wall_ms", s.wall_ms);
  return solver;
}

}  // namespace

Json AnswerResponse(const explain::BatchAnswer& answer, bool cached,
                    double wall_ms) {
  Json response = OkResponse("explain");
  response.Set("cached", cached);
  response.Set("report", answer.report);
  response.Set("subspec", answer.subspec_text);
  response.Set("empty", answer.empty);
  response.Set("unsat", answer.unsat);
  Json metrics = Json::MakeObject();
  metrics.Set("seed_constraints", answer.metrics.seed_constraints);
  metrics.Set("seed_size", answer.metrics.seed_size);
  metrics.Set("simplified_constraints", answer.metrics.simplified_constraints);
  metrics.Set("simplified_size", answer.metrics.simplified_size);
  metrics.Set("residual_constraints", answer.metrics.residual_constraints);
  metrics.Set("residual_size", answer.metrics.residual_size);
  metrics.Set("simplify_passes", answer.metrics.simplify_passes);
  response.Set("metrics", std::move(metrics));
  response.Set("solver", SolverStatsJson(answer.stats));
  response.Set("wall_ms", wall_ms);
  return response;
}

}  // namespace ns::serve
