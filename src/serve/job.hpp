// Shared service-internal state passed between the front ends (blocking
// thread-per-connection, epoll reactor), the worker pool, and the request
// dispatch core in server.cpp.
//
// A `Job` is one queued explain question. The worker always completes the
// job — computes, inserts into the answer cache, publishes the result —
// whatever the front end does meanwhile:
//
//   * the blocking front end parks the connection thread on `cv` (up to
//     the request deadline);
//   * the epoll front end never blocks: it sets `on_done` *before* the
//     job is enqueued, and the worker invokes it after publishing, which
//     wakes the owning reactor through its eventfd.
//
// A front end that abandons a job (deadline expiry, connection gone)
// simply drops its reference; the worker still finishes and the answer
// still lands in the cache, so a retry becomes a hit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "config/device.hpp"
#include "explain/arena.hpp"
#include "explain/batch.hpp"
#include "net/topology.hpp"
#include "spec/ast.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

/// One loaded scenario, published as an immutable snapshot: in-flight
/// requests keep their snapshot alive across a concurrent `load`.
struct Scenario {
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig solved;
  std::string digest;
  /// Frozen-arena registry for this scenario: one frozen encoding per
  /// distinct question, shared by every worker and both front ends.
  /// Created per `load` (a new snapshot gets a new registry) and immutable
  /// in structure thereafter — safe to use from any worker thread.
  std::shared_ptr<explain::ArenaRegistry> registry;
};

/// One queued explain question.
struct Job {
  explain::BatchRequest request;
  std::shared_ptr<const Scenario> scenario;
  std::string cache_key;
  int debug_sleep_ms = 0;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  // guarded by mu
  util::Result<explain::BatchAnswer> result =
      util::Error(util::ErrorCode::kInternal, "request was not run");

  /// Completion hook for non-blocking front ends. Must be installed
  /// before the job is enqueued (the worker may finish immediately);
  /// invoked by the worker after `done` is published, outside `mu`.
  std::function<void(const std::shared_ptr<Job>&)> on_done;
};

/// Outcome of dispatching one request line without blocking: either a
/// ready response, or a pending explain job the front end must (a) arm
/// with `on_done` if it cannot block, (b) hand to Server::EnqueueJob, and
/// (c) answer with RenderCompletion / RenderExpiry / ShedResponse.
struct LineOutcome {
  util::Json response;       ///< valid iff job == nullptr
  std::shared_ptr<Job> job;  ///< pending explain (not yet enqueued)
  int deadline_ms = 0;       ///< effective deadline for the job; 0 = none
  std::chrono::steady_clock::time_point start{};
};

}  // namespace ns::serve
