// Thread-safe LRU cache for rendered explanation answers.
//
// The serving path answers the same question many times: an operator
// iterating on one solved network re-asks per-router questions after every
// UI refresh, and several clients debugging the same scenario ask
// identical questions concurrently. Answers are pure functions of
// (scenario, request) — the per-request-fresh-Session model of
// explain/batch.hpp makes them deterministic — so caching the *rendered*
// answer (strings + POD metrics, never smt::Expr handles) is sound: a hit
// is byte-identical to recomputing.
//
// Keys are canonical digests built by serve::CacheKey (protocol.hpp) from
// the loaded scenario's content digest plus every request field that
// influences the answer. Capacity is entry-count based; eviction is
// strict least-recently-used. All counters are monotonic.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "explain/batch.hpp"

namespace ns::serve {

/// Monotonic counters plus a point-in-time size, all read under one lock
/// so the snapshot is consistent (hits + misses == lookups).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// LRU map from canonical request digests to rendered answers.
class AnswerCache {
 public:
  /// `capacity` = max entries; 0 disables caching (every lookup misses,
  /// inserts are dropped) — the serve CLI's `--cache-entries 0`.
  explicit AnswerCache(std::size_t capacity) : capacity_(capacity) {}

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Returns the cached answer and refreshes its recency, or nullopt.
  /// Counts a hit or a miss.
  std::optional<explain::BatchAnswer> Lookup(const std::string& key);

  /// Inserts (or refreshes) `answer` under `key`, evicting the least
  /// recently used entry when full. Concurrent computers of the same key
  /// may both insert; the second insert just refreshes the entry.
  void Insert(const std::string& key, explain::BatchAnswer answer);

  CacheStats Stats() const;

 private:
  using Entry = std::pair<std::string, explain::BatchAnswer>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t inserts_ = 0;
};

}  // namespace ns::serve
