// Load generator for the explanation service: drives a fixed set of
// connections against a live server and reports latency percentiles,
// throughput, and shed/deadline/error counts. Used by tools/loadgen (CLI
// + CI smoke), bench/bench_serve (the BENCH_SERVE.json trajectory), and
// the sustained-load tests.
//
// Two arrival models:
//
//   * closed loop (rate_per_s == 0): each connection keeps exactly one
//     request outstanding — the classic "N users, think time zero" model;
//     throughput is what the server can sustain at concurrency N.
//   * open loop (rate_per_s > 0): each connection schedules arrivals on a
//     fixed cadence independent of completions, and latency is measured
//     from the *scheduled* arrival — so a stalled server inflates the
//     tail instead of silently slowing the generator down (the
//     coordinated-omission correction).
//
// The generator is deterministic given (seed, request set): request
// order is a seeded shuffle per connection, wall-clock effects aside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace ns::serve {

struct LoadgenOptions {
  int port = 0;             ///< live server, 127.0.0.1
  int connections = 8;      ///< concurrent connections (one thread each)
  double duration_s = 5.0;  ///< generation window (drains after)
  double rate_per_s = 0;    ///< per-connection arrival rate; 0 = closed loop
  std::uint64_t seed = 1;   ///< request-order shuffle
};

struct LoadgenReport {
  std::uint64_t requests_sent = 0;
  std::uint64_t answers_ok = 0;      ///< ok:true explain responses
  std::uint64_t answers_cached = 0;  ///< subset of answers_ok served cached
  std::uint64_t shed = 0;            ///< `overloaded` error responses
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t answer_errors = 0;    ///< other well-formed error responses
  std::uint64_t protocol_errors = 0;  ///< transport/parse failures (want: 0)
  double wall_s = 0;
  double throughput_rps = 0;  ///< completed responses per second
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double shed_rate = 0;  ///< shed / requests_sent
  /// Log-scaled latency histogram: bucket i counts latencies in
  /// (upper_ms[i-1], upper_ms[i]]; the last bucket is open-ended.
  std::vector<double> histogram_upper_ms;
  std::vector<std::uint64_t> histogram_counts;
};

/// Runs the generator against 127.0.0.1:port, cycling `request_lines`
/// (already-framed JSON request lines, without the trailing newline).
/// Fails only on setup errors (no connection at all); per-request
/// failures are counted in the report instead.
util::Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::vector<std::string>& request_lines);

/// The report as JSON — the schema committed in BENCH_SERVE.json's
/// sidecar fields and printed by `tools/loadgen --json`.
util::Json LoadgenReportToJson(const LoadgenReport& report);

}  // namespace ns::serve
