#include "serve/reactor.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.hpp"

namespace ns::serve {

using util::Json;

namespace {

/// epoll user-data token for the wakeup eventfd; connection ids start at 1.
constexpr std::uint64_t kWakeToken = 0;

constexpr std::size_t kReadChunk = 16384;

}  // namespace

Reactor::~Reactor() {
  RequestStop();
  Join();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

util::Status Reactor::Start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return util::Error(util::ErrorCode::kInternal,
                       std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const std::string message = std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return util::Error(util::ErrorCode::kInternal, "eventfd: " + message);
  }
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event) != 0) {
    const std::string message = std::strerror(errno);
    ::close(epoll_fd_);
    ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return util::Error(util::ErrorCode::kInternal, "epoll_ctl: " + message);
  }
  thread_ = std::thread([this] { Run(); });
  return util::Status::Ok();
}

void Reactor::AddConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    new_fds_.push_back(fd);
  }
  Wake();
}

void Reactor::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) Wake();
}

void Reactor::Join() {
  if (thread_.joinable()) thread_.join();
}

void Reactor::Wake() {
  const std::uint64_t one = 1;
  // The eventfd counter saturates long before this write could block;
  // a short/failed write only costs an extra poll tick.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::Run() {
  std::vector<epoll_event> events(64);
  bool drained_buffers = false;
  while (true) {
    DrainInbox();
    ExpireDeadlines(Clock::now());
    if (Draining() && !drained_buffers) {
      drained_buffers = true;
      // Answer the complete lines already read, then read no more — the
      // same "finish the current batch" semantics as the blocking front
      // end's stop-flag check.
      for (auto& [id, conn] : conns_) {
        ProcessLines(*conn);
        Flush(*conn);
      }
    }
    SweepClosable();
    if (Draining() && conns_.empty()) break;

    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               TimeoutMs(Clock::now()));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; drain state is still joined
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t mask = events[i].events;
      if (id == kWakeToken) {
        std::uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if (mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        if (!Draining() && !conn.close_after_flush) {
          HandleReadable(conn);
        } else if (mask & (EPOLLHUP | EPOLLERR)) {
          conn.eof = true;
        }
      }
      if (mask & EPOLLOUT) Flush(conn);
    }
  }
}

void Reactor::DrainInbox() {
  std::vector<int> fds;
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    fds.swap(new_fds_);
    completions.swap(completions_);
  }

  for (const int fd : fds) {
    // A fd handed to a draining reactor is refused, but still counted on
    // both sides so opened == closed holds after shutdown.
    conns_opened_.fetch_add(1, std::memory_order_relaxed);
    if (Draining()) {
      ::close(fd);
      conns_closed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    event.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      conns_closed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn& ref = *conn;
    conns_.emplace(ref.id, std::move(conn));
    // Edge-triggered registration reports current readability, but read
    // eagerly anyway: bytes may already be waiting.
    HandleReadable(ref);
  }

  for (const Completion& completion : completions) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection gone; cache is warm
    Conn& conn = *it->second;
    for (Slot& slot : conn.slots) {
      if (slot.ready || slot.job != completion.job) continue;
      slot.bytes =
          host_->RenderCompletion(*slot.job, slot.start).Dump(0) + "\n";
      slot.ready = true;
      slot.job.reset();
      break;
    }
    Flush(conn);
  }
}

void Reactor::HandleReadable(Conn& conn) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      if (conn.in.size() > config_.max_line_bytes) {
        // Pipelined bursts are fine — consume the complete lines first;
        // only a single unframed line past the cap is a protocol error.
        ProcessLines(conn);
        if (conn.in.size() > config_.max_line_bytes) {
          Slot slot;
          slot.ready = true;
          slot.bytes = OversizedResponseBytes();
          conn.slots.push_back(std::move(slot));
          conn.close_after_flush = true;
          conn.in.clear();
          conn.in.shrink_to_fit();
          break;
        }
      }
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.eof = true;  // hard error: stop reading, flush what we can
    break;
  }
  if (!conn.close_after_flush) ProcessLines(conn);
  Flush(conn);
}

void Reactor::ProcessLines(Conn& conn) {
  if (conn.close_after_flush) return;
  std::size_t newline;
  while ((newline = conn.in.find('\n')) != std::string::npos) {
    const std::string line = conn.in.substr(0, newline);
    conn.in.erase(0, newline + 1);
    if (util::Trim(line).empty()) continue;
    LineOutcome outcome = host_->HandleReactorLine(line);
    if (outcome.job == nullptr) {
      Slot slot;
      slot.ready = true;
      slot.bytes = outcome.response.Dump(0) + "\n";
      conn.slots.push_back(std::move(slot));
      continue;
    }
    Slot slot;
    slot.job = outcome.job;
    slot.deadline_ms = outcome.deadline_ms;
    slot.start = outcome.start;
    if (outcome.deadline_ms > 0) {
      slot.deadline =
          outcome.start + std::chrono::milliseconds(outcome.deadline_ms);
    }
    conn.slots.push_back(std::move(slot));
    Slot& pending = conn.slots.back();
    // Arm the completion hook BEFORE enqueueing: the worker may finish
    // (and fire it) before EnqueueJob even returns.
    pending.job->on_done = [this, conn_id = conn.id](
                               const std::shared_ptr<Job>& job) {
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        completions_.push_back(Completion{conn_id, job});
      }
      Wake();
    };
    if (!host_->EnqueueJob(pending.job)) {
      pending.job.reset();
      pending.ready = true;
      pending.bytes = host_->ShedResponse().Dump(0) + "\n";
    }
  }
}

void Reactor::Flush(Conn& conn) {
  while (!conn.slots.empty() && conn.slots.front().ready) {
    conn.out += conn.slots.front().bytes;
    conn.slots.pop_front();
  }
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer vanished: nothing more can be delivered. Drop buffered output
    // and pending slots; in-flight jobs still finish into the cache.
    std::size_t pending = 0;
    for (const Slot& slot : conn.slots) pending += slot.ready ? 0 : 1;
    if (pending > 0) host_->DiscardPending(pending);
    conn.out.clear();
    conn.out_offset = 0;
    conn.slots.clear();
    conn.eof = true;
    UpdateInterest(conn);
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  UpdateInterest(conn);
}

void Reactor::UpdateInterest(Conn& conn) {
  const bool want_write = conn.out_offset < conn.out.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event event{};
  event.events = EPOLLET | EPOLLRDHUP |
                 (conn.close_after_flush ? 0u : static_cast<std::uint32_t>(
                                                    EPOLLIN)) |
                 (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  event.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
}

void Reactor::ExpireDeadlines(Clock::time_point now) {
  for (auto& [id, conn] : conns_) {
    bool expired = false;
    for (Slot& slot : conn->slots) {
      if (slot.ready || now < slot.deadline) continue;
      slot.bytes = host_->RenderExpiry(slot.deadline_ms).Dump(0) + "\n";
      slot.ready = true;
      slot.job.reset();  // abandon: the worker still populates the cache
      expired = true;
    }
    if (expired) Flush(*conn);
  }
}

int Reactor::TimeoutMs(Clock::time_point now) const {
  std::int64_t timeout = config_.poll_ms;
  for (const auto& [id, conn] : conns_) {
    for (const Slot& slot : conn->slots) {
      if (slot.ready || slot.deadline == Clock::time_point::max()) continue;
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             slot.deadline - now)
                             .count();
      if (until < timeout) timeout = until;
    }
  }
  return static_cast<int>(timeout < 0 ? 0 : timeout);
}

void Reactor::SweepClosable() {
  std::vector<std::uint64_t> closable;
  for (const auto& [id, conn] : conns_) {
    const bool should_close =
        conn->close_after_flush || conn->eof || Draining();
    const bool answered = conn->slots.empty();
    const bool flushed = conn->out_offset >= conn->out.size();
    if (should_close && answered && flushed) closable.push_back(id);
  }
  for (const std::uint64_t id : closable) CloseConn(id);
}

void Reactor::CloseConn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
}

std::string Reactor::OversizedResponseBytes() const {
  return host_->OversizedResponse().Dump(0) + "\n";
}

}  // namespace ns::serve
