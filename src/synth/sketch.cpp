#include "synth/sketch.hpp"

namespace ns::synth {

using config::Field;
using config::MatchField;
using config::RmAction;
using config::RouteMap;
using config::RouteMapEntry;

std::string HoleName(std::string_view map, int seq, std::string_view slot) {
  return std::string(map) + "." + std::to_string(seq) + "." + std::string(slot);
}

RouteMapEntry& AddSymbolicEntry(RouteMap& map, int seq,
                                SymbolicEntryOptions options) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = Field<RmAction>::Hole(HoleName(map.name, seq, "action"));
  entry.match.field =
      Field<MatchField>::Hole(HoleName(map.name, seq, "attr"));
  entry.match.prefix =
      Field<net::Prefix>::Hole(HoleName(map.name, seq, "prefix"));
  entry.match.community =
      Field<config::Community>::Hole(HoleName(map.name, seq, "community"));
  entry.match.next_hop =
      Field<net::Ipv4Addr>::Hole(HoleName(map.name, seq, "nexthop"));
  entry.match.via =
      Field<std::string>::Hole(HoleName(map.name, seq, "via"));
  if (options.with_set_next_hop) {
    entry.sets.next_hop =
        Field<net::Ipv4Addr>::Hole(HoleName(map.name, seq, "set-nexthop"));
  }
  if (options.with_set_local_pref) {
    entry.sets.local_pref =
        Field<int>::Hole(HoleName(map.name, seq, "set-lp"));
  }
  if (options.with_set_community) {
    entry.sets.add_community =
        Field<config::Community>::Hole(HoleName(map.name, seq, "set-comm"));
  }
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

RouteMapEntry& AddPrefixEntry(RouteMap& map, int seq, RmAction action,
                              const net::Prefix& prefix,
                              bool symbolic_local_pref) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = action;
  entry.match.field = MatchField::kPrefix;
  entry.match.prefix = prefix;
  if (symbolic_local_pref) {
    entry.sets.local_pref =
        Field<int>::Hole(HoleName(map.name, seq, "set-lp"));
  }
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

RouteMapEntry& AddViaScreenEntry(RouteMap& map, int seq) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = Field<RmAction>::Hole(HoleName(map.name, seq, "action"));
  entry.match.field = MatchField::kViaContains;
  entry.match.via = Field<std::string>::Hole(HoleName(map.name, seq, "via"));
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

RouteMapEntry& AddActionHoleEntry(RouteMap& map, int seq,
                                  const net::Prefix& prefix) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = Field<RmAction>::Hole(HoleName(map.name, seq, "action"));
  entry.match.field = MatchField::kPrefix;
  entry.match.prefix = prefix;
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

RouteMapEntry& AddCommunityTagEntry(RouteMap& map, int seq,
                                    config::Community community) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = RmAction::kPermit;
  entry.sets.add_community = Field<config::Community>(community);
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

RouteMapEntry& AddCommunityScreenEntry(RouteMap& map, int seq,
                                       config::Community community) {
  RouteMapEntry entry;
  entry.seq = seq;
  entry.action = Field<RmAction>::Hole(HoleName(map.name, seq, "action"));
  entry.match.field = MatchField::kCommunity;
  entry.match.community = Field<config::Community>(community);
  map.entries.push_back(std::move(entry));
  return map.entries.back();
}

}  // namespace ns::synth
