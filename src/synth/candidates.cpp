#include "synth/candidates.hpp"

#include <algorithm>

#include "spec/matcher.hpp"
#include "util/strings.hpp"

namespace ns::synth {

using util::Error;
using util::ErrorCode;
using util::Result;

bool Destination::HasOrigin(const std::string& router) const noexcept {
  return std::find(origins.begin(), origins.end(), router) != origins.end();
}

std::vector<std::string> Candidate::TrafficSeq(const Destination& dest) const {
  std::vector<std::string> seq(via.rbegin(), via.rend());
  seq.push_back(dest.name);
  return seq;
}

std::string Candidate::Label(const Destination& dest) const {
  return dest.name + "|" + util::Join(via, ".");
}

Result<std::vector<Destination>> BuildDestinations(
    const net::Topology& topo, const config::NetworkConfig& network,
    const spec::Spec& spec) {
  std::vector<Destination> out;
  std::vector<net::Prefix> declared_prefixes;

  for (const spec::DestDecl& decl : spec.destinations) {
    Destination dest;
    dest.name = decl.name;
    dest.prefix = decl.prefix;
    dest.origins = decl.origins;
    dest.declared = true;
    if (dest.origins.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "destination '" + decl.name + "' has no origin");
    }
    for (const std::string& origin : dest.origins) {
      if (topo.FindRouter(origin) == net::kInvalidRouter) {
        return Error(ErrorCode::kNotFound, "destination '" + decl.name +
                                               "' originates at unknown "
                                               "router '" + origin + "'");
      }
      if (network.FindRouter(origin) == nullptr) {
        return Error(ErrorCode::kNotFound, "destination '" + decl.name +
                                               "' origin '" + origin +
                                               "' has no configuration");
      }
    }
    for (const net::Prefix& existing : declared_prefixes) {
      if (existing.Overlaps(dest.prefix)) {
        return Error(ErrorCode::kInvalidArgument,
                     "destination prefixes overlap: " + dest.prefix.ToString());
      }
    }
    declared_prefixes.push_back(dest.prefix);
    out.push_back(std::move(dest));
  }

  // Implicit destinations: originated networks not covered by declarations.
  for (const auto& [router, cfg] : network.routers) {
    int index = 0;
    for (const net::Prefix& prefix : cfg.networks) {
      ++index;
      const bool covered =
          std::any_of(out.begin(), out.end(), [&](const Destination& d) {
            return d.prefix == prefix;
          });
      if (covered) {
        // Multi-homing a declared prefix from an undeclared origin would
        // make the two views disagree; record the origin instead.
        for (Destination& d : out) {
          if (d.prefix == prefix && !d.HasOrigin(router)) {
            d.origins.push_back(router);
          }
        }
        continue;
      }
      Destination dest;
      dest.name = router + "_net" +
                  (cfg.networks.size() > 1 ? std::to_string(index) : "");
      dest.prefix = prefix;
      dest.origins = {router};
      dest.declared = false;
      out.push_back(std::move(dest));
    }
  }
  return out;
}

void EnsureOriginated(config::NetworkConfig& network,
                      const std::vector<Destination>& destinations) {
  for (const Destination& dest : destinations) {
    for (const std::string& origin : dest.origins) {
      config::RouterConfig* router = network.FindRouter(origin);
      NS_ASSERT_MSG(router != nullptr, "origin without config: " + origin);
      if (std::find(router->networks.begin(), router->networks.end(),
                    dest.prefix) == router->networks.end()) {
        router->networks.push_back(dest.prefix);
      }
    }
  }
}

bool IsTrafficPattern(const spec::Spec& spec,
                      const spec::PathPattern& pattern) {
  return spec.FindDestination(pattern.elems.back().name) != nullptr;
}

bool PatternHitsCandidate(const spec::Spec& spec,
                          const spec::PathPattern& pattern,
                          const Candidate& candidate, const Destination& dest) {
  if (IsTrafficPattern(spec, pattern)) {
    if (pattern.elems.back().name != dest.name) return false;
    return spec::MatchesInfix(pattern, candidate.TrafficSeq(dest));
  }
  return spec::MatchesInfix(pattern, candidate.AnnouncementSeq());
}

std::vector<Candidate> EnumerateCandidates(
    const net::Topology& topo, const std::vector<Destination>& destinations,
    int max_hops) {
  std::vector<Candidate> out;
  for (std::size_t d = 0; d < destinations.size(); ++d) {
    for (const std::string& origin : destinations[d].origins) {
      const net::RouterId origin_id = topo.FindRouter(origin);
      NS_ASSERT(origin_id != net::kInvalidRouter);
      for (const net::Path& path : topo.SimplePathsFrom(origin_id, max_hops)) {
        if (path.size() < 2) continue;  // the trivial path carries no hop
        Candidate candidate;
        candidate.dest_index = static_cast<int>(d);
        candidate.via.reserve(path.size());
        for (net::RouterId id : path) {
          candidate.via.push_back(topo.NameOf(id));
        }
        out.push_back(std::move(candidate));
      }
    }
  }
  return out;
}

}  // namespace ns::synth
