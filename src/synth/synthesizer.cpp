#include "synth/synthesizer.hpp"

#include <set>

#include "config/holes.hpp"
#include "util/logging.hpp"
#include "spec/lint.hpp"
#include "util/strings.hpp"

namespace ns::synth {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<SynthesisResult> Synthesizer::Synthesize(config::NetworkConfig sketch) {
  if (options_.lint) {
    const spec::LintReport report = spec::Lint(topo_, spec_);
    if (report.HasErrors()) {
      return Error(ErrorCode::kInvalidArgument,
                   "specification fails lint:\n" + report.ToString());
    }
    for (const spec::LintFinding& finding : report.findings) {
      NS_WARN << "spec lint: " << finding.ToString();
    }
  }

  // Make sure declared destinations are originated before encoding so the
  // encoder's and simulator's views agree.
  {
    auto destinations = BuildDestinations(topo_, sketch, spec_);
    if (!destinations) return destinations.error();
    EnsureOriginated(sketch, destinations.value());
  }

  auto encoding = Encode(pool_, topo_, sketch, spec_, options_.encoder);
  if (!encoding) return encoding.error();

  const std::vector<smt::Expr> hole_vars = encoding.value().HoleVarList();
  auto model = z3_.Solve(encoding.value().constraints, hole_vars);
  if (!model) {
    if (model.error().code() == ErrorCode::kUnsat) {
      return Error(ErrorCode::kUnsat,
                   "no configuration satisfies the specification: " +
                       DiagnoseUnsat(encoding.value()));
    }
    return model.error();
  }

  // Decode model values into typed hole values and fill the sketch.
  std::map<std::string, config::HoleValue> values;
  for (const config::HoleInfo& info : encoding.value().holes) {
    const auto it = model.value().find(info.name);
    NS_ASSERT_MSG(it != model.value().end(),
                  "model missing hole variable " + info.name);
    auto value = encoding.value().values.DecodeValue(info.type, it->second);
    if (!value) return value.error();
    values.emplace(info.name, std::move(value).value());
  }
  if (auto status = config::FillHoles(sketch, values); !status.ok()) {
    return status.error();
  }
  // Canonicalize: drop the values synthesis assigned to match slots the
  // chosen match field never consults.
  for (auto& [router_name, router] : sketch.routers) {
    for (auto& [map_name, map] : router.route_maps) {
      for (config::RouteMapEntry& entry : map.entries) {
        config::NormalizeUnusedMatchSlots(entry.match);
      }
    }
  }
  NS_INFO << "synthesis filled " << values.size() << " holes";

  SynthesisResult result{std::move(sketch), std::move(encoding).value(),
                         std::move(model).value(),
                         static_cast<int>(values.size())};

  if (options_.validate) {
    auto check = Validate(result.network);
    if (!check) return check.error();
    if (!check.value().ok()) {
      return Error(ErrorCode::kInternal,
                   "synthesized configuration fails independent validation "
                   "(encoder/simulator disagreement): " +
                       check.value().ToString());
    }
  }
  return result;
}

std::string Synthesizer::DiagnoseUnsat(const Encoding& encoding) {
  // Hard part: protocol mechanics and hole domains. Soft part: the
  // requirement assertions, labeled by the block they came from — the
  // unsat core then names the conflicting requirements, pointing the
  // operator at what to refine (the paper's "faster specification
  // refinement iteration").
  std::set<smt::Expr> requirement_set(
      encoding.requirement_constraints.begin(),
      encoding.requirement_constraints.end());
  std::vector<smt::Expr> hard;
  for (smt::Expr c : encoding.constraints) {
    if (requirement_set.count(c) == 0) hard.push_back(c);
  }
  std::vector<std::pair<std::string, smt::Expr>> labeled;
  labeled.reserve(encoding.requirement_constraints.size());
  for (std::size_t i = 0; i < encoding.requirement_constraints.size(); ++i) {
    labeled.emplace_back(encoding.requirement_names[i],
                         encoding.requirement_constraints[i]);
  }
  auto core = z3_.UnsatCore(hard, labeled);
  if (!core.ok() || core.value().empty()) {
    return "the sketch cannot realize the requirements (no requirement "
           "subset isolated)";
  }
  return "requirements in conflict (given this sketch): " +
         util::Join(core.value(), ", ");
}

Result<spec::CheckResult> Synthesizer::Validate(
    const config::NetworkConfig& network) const {
  auto sim = bgp::Simulate(topo_, network);
  if (!sim) return sim.error();

  // Route-direction forbids (e.g. no-transit) constrain *every*
  // destination, including the implicit per-router prefixes the spec never
  // names. Augment the spec with those so the checker sees their routes.
  auto destinations = BuildDestinations(topo_, network, spec_);
  if (!destinations) return destinations.error();
  spec::Spec augmented = spec_;
  for (const Destination& dest : destinations.value()) {
    if (dest.declared) continue;
    augmented.destinations.push_back(
        spec::DestDecl{dest.name, dest.prefix, dest.origins});
  }

  const spec::RoutingOutcome outcome =
      bgp::ToRoutingOutcome(sim.value(), augmented);
  return spec::Check(
      augmented, outcome,
      spec::CheckOptions{spec::PreferenceSemantics::kStrictBlocked});
}

}  // namespace ns::synth
