// The synthesis driver: encode -> solve -> decode -> (optionally) validate.
#pragma once

#include <string>

#include "bgp/simulator.hpp"
#include "config/device.hpp"
#include "smt/z3bridge.hpp"
#include "spec/checker.hpp"
#include "synth/encoder.hpp"

namespace ns::synth {

struct SynthesisOptions {
  EncoderOptions encoder;
  /// Run the concrete simulator + spec checker on the result and fail if
  /// the synthesized configuration does not satisfy the spec — an
  /// end-to-end self-check through an independent implementation.
  bool validate = true;
  /// Statically lint the specification against the topology first and
  /// fail fast (before any solver time) on lint errors.
  bool lint = true;
};

struct SynthesisResult {
  config::NetworkConfig network;  ///< all sketch holes filled
  Encoding encoding;              ///< the constraints that were solved
  smt::Assignment model;          ///< hole variable assignment
  int holes_filled = 0;
};

class Synthesizer {
 public:
  Synthesizer(const net::Topology& topo, const spec::Spec& spec,
              SynthesisOptions options = {})
      : topo_(topo), spec_(spec), options_(options) {}

  /// Synthesizes concrete values for every hole in `sketch`.
  /// Fails with kUnsat when no configuration can satisfy the spec.
  util::Result<SynthesisResult> Synthesize(config::NetworkConfig sketch);

  /// Validates a hole-free configuration against the spec via the
  /// concrete simulator (independent of the encoder).
  util::Result<spec::CheckResult> Validate(
      const config::NetworkConfig& network) const;

 private:
  /// Names the requirements an unsatisfiable encoding pins the blame on
  /// (Z3 unsat core over the requirement assertions).
  std::string DiagnoseUnsat(const Encoding& encoding);

  const net::Topology& topo_;
  const spec::Spec& spec_;
  SynthesisOptions options_;
  smt::ExprPool pool_;
  smt::Z3Session z3_;
};

}  // namespace ns::synth
