// Value tables: the encoder works over a two-sorted (Bool/Int) IR, so every
// configuration value is mapped to an integer —
//   prefixes    -> index into a table of every prefix the problem mentions
//   addresses   -> the 32-bit address value
//   communities -> the packed asn:tag value
//   action      -> 0 = deny, 1 = permit
//   match field -> 0 = any, 1 = prefix, 2 = community, 3 = next-hop
// The table also produces the domain constraint for each hole and decodes
// solver models back into config::HoleValue.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/device.hpp"
#include "config/holes.hpp"
#include "smt/expr.hpp"
#include "spec/ast.hpp"
#include "util/status.hpp"

namespace ns::synth {

/// Integer codes for RmAction (paper: Var_Action).
inline constexpr std::int64_t kActionDeny = 0;
inline constexpr std::int64_t kActionPermit = 1;

/// Integer codes for MatchField (paper: Var_Attr).
inline constexpr std::int64_t kFieldAny = 0;
inline constexpr std::int64_t kFieldPrefix = 1;
inline constexpr std::int64_t kFieldCommunity = 2;
inline constexpr std::int64_t kFieldNextHop = 3;
inline constexpr std::int64_t kFieldVia = 4;

class ValueTable {
 public:
  /// Empty table (placeholder inside a default-constructed Encoding).
  ValueTable() = default;

  /// Scans the configuration, spec, and topology for every prefix, address
  /// and community the encoding may need. `palette` supplies additional
  /// community values synthesis may choose for holes.
  ValueTable(const net::Topology& topo, const config::NetworkConfig& network,
             const spec::Spec& spec,
             const std::vector<config::Community>& palette);

  /// Index of a prefix; the prefix must have been collected.
  std::int64_t PrefixId(const net::Prefix& prefix) const;
  const std::vector<net::Prefix>& prefixes() const noexcept { return prefixes_; }

  static std::int64_t AddressValue(net::Ipv4Addr addr) noexcept {
    return static_cast<std::int64_t>(addr.bits());
  }
  const std::set<net::Ipv4Addr>& addresses() const noexcept { return addresses_; }

  /// All communities the encoding tracks per route (mentioned + palette).
  const std::vector<config::Community>& communities() const noexcept {
    return communities_;
  }

  /// Router names, indexed by topology id (for via/as-path holes).
  const std::vector<std::string>& routers() const noexcept { return routers_; }
  std::int64_t RouterId(const std::string& name) const;

  /// Encodes a concrete hole value as the IR integer.
  std::int64_t EncodeValue(const config::HoleValue& value) const;

  /// Domain constraint for a hole variable of the given type.
  smt::Expr DomainConstraint(smt::ExprPool& pool, smt::Expr var,
                             config::HoleType type) const;

  /// Decodes a model value back into a typed hole value.
  util::Result<config::HoleValue> DecodeValue(config::HoleType type,
                                              std::int64_t value) const;

 private:
  std::vector<net::Prefix> prefixes_;
  std::map<net::Prefix, std::int64_t> prefix_ids_;
  std::set<net::Ipv4Addr> addresses_;
  std::vector<config::Community> communities_;
  std::vector<std::string> routers_;
};

}  // namespace ns::synth
