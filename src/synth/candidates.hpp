// Destination universe and candidate propagation paths — the skeleton the
// NetComplete-style encoder quantifies over.
#pragma once

#include <string>
#include <vector>

#include "config/device.hpp"
#include "net/topology.hpp"
#include "spec/ast.hpp"
#include "util/status.hpp"

namespace ns::synth {

/// A destination the encoding tracks: a declared `dest` plus implicit
/// destinations for every originated network not covered by a declaration.
struct Destination {
  std::string name;                  ///< "D1" or "<router>_net"
  net::Prefix prefix;
  std::vector<std::string> origins;  ///< routers announcing the prefix
  bool declared = false;

  bool HasOrigin(const std::string& router) const noexcept;
};

/// One candidate announcement path for one destination.
struct Candidate {
  int dest_index = 0;
  std::vector<std::string> via;  ///< origin first, holder last

  /// Announcement-direction sequence (== via).
  const std::vector<std::string>& AnnouncementSeq() const noexcept {
    return via;
  }
  /// Traffic-direction sequence: reverse(via) + dest name.
  std::vector<std::string> TrafficSeq(const Destination& dest) const;

  /// Stable short id used in encoder variable names, e.g. "D1|P1.R1.R3".
  std::string Label(const Destination& dest) const;
};

/// Collects the destination universe. Fails if a declared destination names
/// an origin router missing from the topology/config, or two declarations
/// share a prefix.
util::Result<std::vector<Destination>> BuildDestinations(
    const net::Topology& topo, const config::NetworkConfig& network,
    const spec::Spec& spec);

/// Makes sure every destination's prefix is in its origins' `networks`
/// lists, so the concrete simulator originates exactly what the encoder
/// assumes. Idempotent.
void EnsureOriginated(config::NetworkConfig& network,
                      const std::vector<Destination>& destinations);

/// True if `pattern` reads in traffic direction (its last element names a
/// declared destination of `spec`); otherwise it reads in announcement
/// direction. See spec/ast.hpp for the convention.
bool IsTrafficPattern(const spec::Spec& spec, const spec::PathPattern& pattern);

/// Whether `pattern` hits `candidate` under the direction convention:
/// traffic patterns match the candidate's traffic sequence (and only for
/// their own destination), announcement patterns match the via infix.
bool PatternHitsCandidate(const spec::Spec& spec,
                          const spec::PathPattern& pattern,
                          const Candidate& candidate, const Destination& dest);

/// Enumerates candidate announcement paths for every destination: all
/// simple paths of length >= 1 from each origin, bounded by `max_hops`
/// edges. Deterministic order (destination, then origin, then DFS order).
std::vector<Candidate> EnumerateCandidates(
    const net::Topology& topo, const std::vector<Destination>& destinations,
    int max_hops);

}  // namespace ns::synth
