// The paper's three motivating scenarios (§2) as ready-to-run problem
// instances: Fig. 1b topology + specification + configuration sketch.
// Shared by the integration tests, the examples, and every bench.
#pragma once

#include <string>

#include "config/device.hpp"
#include "net/topology.hpp"
#include "spec/ast.hpp"

namespace ns::synth {

struct Scenario {
  std::string name;
  std::string description;
  net::Topology topo;
  spec::Spec spec;
  config::NetworkConfig sketch;
  /// The prefix declared for D1 (scenarios 2 and 3).
  net::Prefix d1_prefix;
};

/// Scenario 1 — identifying underspecified paths. Spec: no transit traffic
/// between the two providers (Fig. 1a). Sketch: a symbolic blocking entry
/// (with the template's `set next-hop` line) plus a trailing deny-all on
/// each provider-facing export map, the shape of Fig. 1c.
Scenario Scenario1();

/// Scenario 2 — resolving ambiguous specifications. Scenario 1 plus the
/// D1 path preference of Fig. 3 (through P1 over through P2) and the
/// import-policy sketch pieces at R1/R2/R3 the preference needs.
Scenario Scenario2();

/// Scenario 3 — taming complexity. Scenario 2 plus additional reachability
/// requirements; the volume of configuration grows and per-requirement
/// questions (Fig. 5) become the only tractable way to review it.
Scenario Scenario3();

/// Scenario by index (1-3); asserts on anything else.
Scenario GetScenario(int index);

/// Scenario 1 refined per the paper's narrative: after seeing the
/// subspecification, the administrator adds a requirement that Provider 1's
/// routes must reach the customer.
Scenario Scenario1Refined();

/// Scenario 2 refined per the paper's narrative: after seeing the Fig. 4
/// subspecification, the administrator "adds additional specifications to
/// allow other available paths as the last resort when none of the
/// specified paths are available" — the detour paths become permitted
/// fallbacks below the ranked ones.
Scenario Scenario2Refined();

/// The community-based no-transit configuration of the paper's §5
/// discussion ("denies routes with community 100:2 from R1 to P1 ... it is
/// essential to ensure a route is tagged with community 100:2 if received
/// from P2"): R1/R2 tag provider routes with 100:2 at import and filter
/// the tag at export. Satisfies Scenario1's specification; explaining one
/// router's filter exposes the tagging obligation on the *rest* of the
/// network (Selection::Rest).
config::NetworkConfig Scenario1CommunityConfig();

/// The concrete configuration the paper's Fig. 1c shows for scenario 1
/// (the synthesizer may pick any satisfying model; explanations in the
/// paper are given for this particular one): the provider-facing export
/// maps deny the customer prefix — with the template's redundant
/// `set next-hop` line — followed by a deny-all. Satisfies Scenario1's
/// specification.
config::NetworkConfig Scenario1PaperConfig();

}  // namespace ns::synth
