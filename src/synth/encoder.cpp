#include "synth/encoder.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <span>

#include "spec/matcher.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace ns::synth {

using config::Community;
using config::HoleInfo;
using config::HoleType;
using config::MatchField;
using config::RmAction;
using config::RouteMap;
using smt::Expr;
using smt::ExprPool;
using smt::Sort;
using util::Error;
using util::ErrorCode;
using util::Result;

bool IsAuxVar(const std::string& name) noexcept {
  return util::StartsWith(name, kAuxPrefix);
}

namespace {

/// Symbolic route state at one position of one candidate path.
struct SymState {
  Expr alive;
  Expr lp;
  Expr med;
  Expr nh;
  Expr len;                ///< AS-path length (hop count) attribute
  std::vector<Expr> comm;  ///< parallel to ValueTable::communities()
};

class EncoderImpl {
 public:
  EncoderImpl(ExprPool& pool, const net::Topology& topo,
              const config::NetworkConfig& network, const spec::Spec& spec,
              EncoderOptions options)
      : pool_(pool),
        topo_(topo),
        network_(network),
        spec_(spec),
        options_(options),
        values_(topo, network, spec,
                options.community_palette.empty()
                    ? DefaultPalette(network)
                    : options.community_palette) {}

  Result<Encoding> Run() {
    auto destinations = BuildDestinations(topo_, network_, spec_);
    if (!destinations) return destinations.error();
    destinations_ = std::move(destinations).value();

    const int max_hops = options_.max_hops > 0
                             ? options_.max_hops
                             : static_cast<int>(topo_.NumRouters());
    candidates_ = EnumerateCandidates(topo_, destinations_, max_hops);

    // Route-state definitions for every candidate (and, via the prefix
    // cache, every prefix of every candidate).
    for (const Candidate& candidate : candidates_) {
      const SymState state = StateFor(candidate.dest_index, candidate.via);
      const std::string label = candidate.Label(
          destinations_[static_cast<std::size_t>(candidate.dest_index)]);
      encoding_.alive_vars.emplace(label, state.alive);
      encoding_.lp_vars.emplace(label, state.lp);
      encoding_.med_vars.emplace(label, state.med);
      encoding_.len_vars.emplace(label, state.len);
    }

    // BGP decision-process mechanics: per (destination, holding router),
    // define reachability and the best route's local-pref — NetComplete's
    // encoding models best-route selection explicitly; the explainer later
    // discards whatever a question does not need.
    {
      std::map<std::pair<int, std::string>, std::vector<SymState>> groups;
      for (const Candidate& candidate : candidates_) {
        groups[{candidate.dest_index, candidate.via.back()}].push_back(
            StateFor(candidate.dest_index, candidate.via));
      }
      for (const auto& [key, states] : groups) {
        const std::string label =
            destinations_[static_cast<std::size_t>(key.first)].name + "|" +
            key.second;
        std::vector<Expr> alives;
        Expr best_lp = pool_.Int(0);
        for (const SymState& st : states) {
          alives.push_back(st.alive);
          best_lp = pool_.Ite(pool_.And({st.alive, pool_.Ge(st.lp, best_lp)}),
                              st.lp, best_lp);
        }
        definitions_.push_back(pool_.Eq(AuxVar("reachable", label, Sort::kBool),
                                        pool_.Or(alives)));
        definitions_.push_back(
            pool_.Eq(AuxVar("bestlp", label, Sort::kInt), best_lp));
      }
    }

    // Requirement constraints.
    for (const spec::Requirement& req : spec_.requirements) {
      if (options_.skip_requirements) break;
      if (req.IsLocalized()) continue;  // subspecs are inputs to lifting only
      if (!options_.only_requirements.empty() &&
          std::find(options_.only_requirements.begin(),
                    options_.only_requirements.end(),
                    req.name) == options_.only_requirements.end()) {
        continue;
      }
      current_req_ = req.name;
      for (const spec::Statement& stmt : req.statements) {
        util::Status status = std::visit(
            [&](const auto& s) { return EncodeStmt(req, s); }, stmt);
        if (!status.ok()) return status.error();
      }
    }

    // Hole domains.
    for (const HoleInfo& info : config::CollectHoles(network_)) {
      const Expr var = HoleVar(info.name, info.type);
      (void)var;
    }

    encoding_.constraints = std::move(definitions_);
    encoding_.constraints.insert(encoding_.constraints.end(),
                                 requirements_.begin(), requirements_.end());
    encoding_.constraints.insert(encoding_.constraints.end(),
                                 domains_.begin(), domains_.end());
    encoding_.requirement_constraints = std::move(requirements_);
    encoding_.requirement_names = std::move(requirement_names_);
    encoding_.domain_constraints = std::move(domains_);
    encoding_.values = values_;
    encoding_.destinations = std::move(destinations_);
    encoding_.candidates = std::move(candidates_);
    return std::move(encoding_);
  }

 private:
  static std::vector<Community> DefaultPalette(
      const config::NetworkConfig& network) {
    // Offer one tag per internal AS (asn:1) plus the classic asn:2 — a
    // small palette keeps the community universe (and thus the encoding)
    // compact while giving synthesis room to invent tags.
    std::set<Community> palette;
    for (const auto& [name, router] : network.routers) {
      const auto asn = static_cast<std::uint16_t>(router.asn & 0xFFFF);
      palette.insert(config::MakeCommunity(asn, 1));
      palette.insert(config::MakeCommunity(asn, 2));
    }
    return {palette.begin(), palette.end()};
  }

  // ------------------------------------------------------------ variables

  Expr HoleVar(const std::string& name, HoleType type) {
    const auto it = encoding_.hole_vars.find(name);
    if (it != encoding_.hole_vars.end()) return it->second;
    NS_ASSERT_MSG(!IsAuxVar(name),
                  "hole name collides with aux prefix: " + name);
    const Expr var = pool_.Var(name, Sort::kInt);
    encoding_.hole_vars.emplace(name, var);
    domains_.push_back(values_.DomainConstraint(pool_, var, type));
    return var;
  }

  Expr AuxVar(const std::string& kind, const std::string& label, Sort sort) {
    ++encoding_.num_aux_vars;
    return pool_.Var(std::string(kAuxPrefix) + kind + "|" + label, sort);
  }

  // ------------------------------------------------ field -> symbolic term

  Expr ActionPermits(const config::Field<RmAction>& action) {
    if (action.is_concrete()) {
      return pool_.Bool(action.value() == RmAction::kPermit);
    }
    return pool_.Eq(HoleVar(action.hole(), HoleType::kAction),
                    pool_.Int(kActionPermit));
  }

  Expr PrefixTerm(const config::Field<net::Prefix>& field) {
    if (field.is_concrete()) return pool_.Int(values_.PrefixId(field.value()));
    return HoleVar(field.hole(), HoleType::kPrefix);
  }

  Expr CommunityTerm(const config::Field<Community>& field) {
    if (field.is_concrete()) {
      return pool_.Int(static_cast<std::int64_t>(field.value()));
    }
    return HoleVar(field.hole(), HoleType::kCommunity);
  }

  Expr AddressTerm(const config::Field<net::Ipv4Addr>& field) {
    if (field.is_concrete()) {
      return pool_.Int(ValueTable::AddressValue(field.value()));
    }
    return HoleVar(field.hole(), HoleType::kAddress);
  }

  Expr IntTerm(const config::Field<int>& field, HoleType type) {
    if (field.is_concrete()) return pool_.Int(field.value());
    return HoleVar(field.hole(), type);
  }

  // ------------------------------------------------- route-map application

  /// Whether `match` accepts a route in state `in` for destination `dest`.
  /// `via_now` is the (constant) propagation path the route has taken when
  /// the map runs — as-path matching evaluates against it.
  Expr MatchExpr(const config::MatchClause& match, const SymState& in,
                 const Destination& dest,
                 std::span<const std::string> via_now) {
    // Each branch is built lazily: unused value slots hold defaults that
    // must never reach the value tables.
    const auto prefix_match = [&] {
      return pool_.Eq(PrefixTerm(match.prefix),
                      pool_.Int(values_.PrefixId(dest.prefix)));
    };
    const auto comm_match = [&] { return CommunityMatch(match.community, in); };
    const auto nh_match = [&] {
      return pool_.Eq(in.nh, AddressTerm(match.next_hop));
    };
    // The path taken is a compile-time constant of the candidate, so a
    // concrete as-path match folds to a boolean; a symbolic router value
    // becomes set membership.
    const auto via_match = [&] {
      if (match.via.is_concrete()) {
        const bool contains =
            std::find(via_now.begin(), via_now.end(), match.via.value()) !=
            via_now.end();
        return pool_.Bool(contains);
      }
      const Expr var = HoleVar(match.via.hole(), HoleType::kRouter);
      std::vector<Expr> options;
      options.reserve(via_now.size());
      for (const std::string& router : via_now) {
        options.push_back(
            pool_.Eq(var, pool_.Int(values_.RouterId(router))));
      }
      if (options.empty()) return pool_.False();
      return pool_.Or(options);
    };

    if (match.field.is_concrete()) {
      switch (match.field.value()) {
        case MatchField::kAny: return pool_.True();
        case MatchField::kPrefix: return prefix_match();
        case MatchField::kCommunity: return comm_match();
        case MatchField::kNextHop: return nh_match();
        case MatchField::kViaContains: return via_match();
      }
      return pool_.True();
    }
    // Symbolic Var_Attr: the match dispatches on the attribute variable.
    const Expr field_var = HoleVar(match.field.hole(), HoleType::kMatchField);
    return pool_.Or({
        pool_.Eq(field_var, pool_.Int(kFieldAny)),
        pool_.And({pool_.Eq(field_var, pool_.Int(kFieldPrefix)),
                   prefix_match()}),
        pool_.And({pool_.Eq(field_var, pool_.Int(kFieldCommunity)),
                   comm_match()}),
        pool_.And({pool_.Eq(field_var, pool_.Int(kFieldNextHop)), nh_match()}),
        pool_.And({pool_.Eq(field_var, pool_.Int(kFieldVia)), via_match()}),
    });
  }

  Expr CommunityMatch(const config::Field<Community>& field,
                      const SymState& in) {
    const auto& universe = values_.communities();
    if (field.is_concrete()) {
      const auto it = std::find(universe.begin(), universe.end(), field.value());
      NS_ASSERT_MSG(it != universe.end(), "community outside universe");
      return in.comm[static_cast<std::size_t>(it - universe.begin())];
    }
    const Expr var = HoleVar(field.hole(), HoleType::kCommunity);
    std::vector<Expr> options;
    options.reserve(universe.size());
    for (std::size_t i = 0; i < universe.size(); ++i) {
      options.push_back(pool_.And(
          {pool_.Eq(var, pool_.Int(static_cast<std::int64_t>(universe[i]))),
           in.comm[i]}));
    }
    if (options.empty()) return pool_.False();
    return pool_.Or(options);
  }

  /// Applies a route-map symbolically. Returns the pass condition and the
  /// updated attributes (valid when the route passes). `default_nh`, when
  /// set, is the next-hop-self value an export hop installs unless the map
  /// rewrites the next-hop itself.
  std::pair<Expr, SymState> ApplyMapSym(const RouteMap* map, const SymState& in,
                                        const Destination& dest,
                                        std::span<const std::string> via_now,
                                        std::optional<Expr> default_nh) {
    SymState out = in;
    if (default_nh) out.nh = *default_nh;
    if (map == nullptr) return {pool_.True(), out};
    if (map->entries.empty()) return {pool_.False(), out};

    // First-match-wins: applies_j = m_j ∧ ¬m_1 ∧ ... ∧ ¬m_{j-1}.
    std::vector<Expr> matches;
    std::vector<Expr> applies;
    matches.reserve(map->entries.size());
    for (const config::RouteMapEntry& entry : map->entries) {
      matches.push_back(MatchExpr(entry.match, in, dest, via_now));
      std::vector<Expr> parts;
      for (std::size_t k = 0; k + 1 < matches.size(); ++k) {
        parts.push_back(pool_.Not(matches[k]));
      }
      parts.push_back(matches.back());
      applies.push_back(pool_.And(parts));
    }

    std::vector<Expr> pass_cases;
    for (std::size_t j = 0; j < map->entries.size(); ++j) {
      pass_cases.push_back(
          pool_.And({applies[j], ActionPermits(map->entries[j].action)}));
    }
    const Expr pass = pool_.Or(pass_cases);

    // Attribute folds, innermost = "no entry applied" default.
    Expr lp = in.lp;
    Expr med = in.med;
    Expr nh = out.nh;  // default-next-hop already installed
    std::vector<Expr> comm = in.comm;
    for (std::size_t r = map->entries.size(); r-- > 0;) {
      const config::RouteMapEntry& entry = map->entries[r];
      if (entry.sets.local_pref) {
        lp = pool_.Ite(applies[r],
                       IntTerm(*entry.sets.local_pref, HoleType::kLocalPref),
                       lp);
      }
      if (entry.sets.med) {
        med = pool_.Ite(applies[r], IntTerm(*entry.sets.med, HoleType::kMed),
                        med);
      }
      if (entry.sets.next_hop) {
        nh = pool_.Ite(applies[r], AddressTerm(*entry.sets.next_hop), nh);
      }
      if (entry.sets.add_community) {
        const auto& universe = values_.communities();
        for (std::size_t i = 0; i < universe.size(); ++i) {
          Expr added;
          if (entry.sets.add_community->is_concrete()) {
            added = entry.sets.add_community->value() == universe[i]
                        ? pool_.True()
                        : in.comm[i];
          } else {
            const Expr var =
                HoleVar(entry.sets.add_community->hole(), HoleType::kCommunity);
            added = pool_.Or(
                {in.comm[i],
                 pool_.Eq(var,
                          pool_.Int(static_cast<std::int64_t>(universe[i])))});
          }
          comm[i] = pool_.Ite(applies[r], added, comm[i]);
        }
      }
    }
    out.lp = lp;
    out.med = med;
    out.nh = nh;
    out.comm = std::move(comm);
    return {pass, out};
  }

  // ------------------------------------------------------ state definitions

  /// Allocates fresh state variables under `key` and emits their defining
  /// constraints.
  SymState DefineStateVars(const std::string& key, Expr alive_expr,
                           Expr lp_expr, Expr med_expr, Expr nh_expr,
                           Expr len_expr, const std::vector<Expr>& comm_expr) {
    SymState state;
    state.alive = AuxVar("alive", key, Sort::kBool);
    state.lp = AuxVar("lp", key, Sort::kInt);
    state.med = AuxVar("med", key, Sort::kInt);
    state.nh = AuxVar("nh", key, Sort::kInt);
    state.len = AuxVar("len", key, Sort::kInt);
    definitions_.push_back(pool_.Eq(state.alive, alive_expr));
    definitions_.push_back(pool_.Eq(state.lp, lp_expr));
    definitions_.push_back(pool_.Eq(state.med, med_expr));
    definitions_.push_back(pool_.Eq(state.nh, nh_expr));
    definitions_.push_back(pool_.Eq(state.len, len_expr));
    state.comm.reserve(comm_expr.size());
    for (std::size_t i = 0; i < comm_expr.size(); ++i) {
      const Expr var = AuxVar(
          "comm" + config::FormatCommunity(values_.communities()[i]), key,
          Sort::kBool);
      definitions_.push_back(pool_.Eq(var, comm_expr[i]));
      state.comm.push_back(var);
    }
    return state;
  }

  /// Symbolic state after the route has propagated along `via` (>= 1
  /// router). Cached so shared path prefixes share their definitions.
  SymState StateFor(int dest_index, const std::vector<std::string>& via) {
    const Destination& dest =
        destinations_[static_cast<std::size_t>(dest_index)];
    const std::string key =
        dest.name + "|" + util::Join(via, ".");
    const auto it = state_cache_.find(key);
    if (it != state_cache_.end()) return it->second;

    SymState state;
    if (via.size() == 1) {
      // Origination: alive with default attributes.
      state.alive = pool_.True();
      state.lp = pool_.Int(config::kDefaultLocalPref);
      state.med = pool_.Int(0);
      state.nh = pool_.Int(0);
      state.len = pool_.Int(0);
      state.comm.assign(values_.communities().size(), pool_.False());
    } else {
      std::vector<std::string> prefix_via(via.begin(), via.end() - 1);
      const SymState prev = StateFor(dest_index, prefix_via);
      const std::string& sender = via[via.size() - 2];
      const std::string& receiver = via.back();

      const config::RouterConfig* sender_cfg = network_.FindRouter(sender);
      const config::RouterConfig* receiver_cfg = network_.FindRouter(receiver);
      NS_ASSERT_MSG(sender_cfg != nullptr && receiver_cfg != nullptr,
                    "candidate path through unconfigured router");

      const auto nh_addr = topo_.InterfaceAddr(topo_.FindRouter(sender),
                                               topo_.FindRouter(receiver));
      NS_ASSERT_MSG(nh_addr.has_value(), "candidate hop without a link");
      const Expr default_nh = pool_.Int(ValueTable::AddressValue(*nh_addr));

      // Stage 1 — the announcement on the wire, after the sender's
      // export policy (NetComplete models the exported announcement as its
      // own symbolic record, so each hop contributes two variable groups).
      const auto [exp_pass, exp_raw] = ApplyMapSym(
          sender_cfg->ExportPolicy(receiver), prev, dest,
          std::span<const std::string>(prefix_via), default_nh);
      const SymState wire = DefineStateVars(
          key + "|out", pool_.And({prev.alive, exp_pass}), exp_raw.lp,
          exp_raw.med, exp_raw.nh, pool_.Add(prev.len, pool_.Int(1)),
          exp_raw.comm);

      // Stage 2 — the route as installed after the receiver's import
      // policy.
      const auto [imp_pass, imp_raw] = ApplyMapSym(
          receiver_cfg->ImportPolicy(sender), wire, dest,
          std::span<const std::string>(via), std::nullopt);
      state = DefineStateVars(key, pool_.And({wire.alive, imp_pass}),
                              imp_raw.lp, imp_raw.med, imp_raw.nh, wire.len,
                              imp_raw.comm);
    }
    state_cache_.emplace(key, state);
    return state;
  }

  // ------------------------------------------------- requirement encoding

  /// Does `pattern` hit this candidate (per the direction convention)?
  bool PatternHits(const spec::PathPattern& pattern,
                   const Candidate& candidate) const {
    const Destination& dest =
        destinations_[static_cast<std::size_t>(candidate.dest_index)];
    return PatternHitsCandidate(spec_, pattern, candidate, dest);
  }

  Expr AliveOf(const Candidate& candidate) {
    return StateFor(candidate.dest_index, candidate.via).alive;
  }

  util::Status EncodeStmt(const spec::Requirement&,
                          const spec::ForbidStmt& forbid) {
    std::size_t hits = 0;
    for (const Candidate& candidate : candidates_) {
      if (!PatternHits(forbid.path, candidate)) continue;
      ++hits;
      AddRequirement(pool_.Not(AliveOf(candidate)));
    }
    NS_DEBUG << "forbid " << forbid.path.ToString() << " blocks " << hits
             << " candidate paths";
    return util::Status::Ok();
  }

  util::Status EncodeStmt(const spec::Requirement& req,
                          const spec::AllowStmt& allow) {
    std::vector<Expr> options;
    for (const Candidate& candidate : candidates_) {
      if (PatternHits(allow.path, candidate)) {
        options.push_back(AliveOf(candidate));
      }
    }
    if (options.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   req.name + ": allow pattern (" + allow.path.ToString() +
                       ") matches no candidate path in the topology");
    }
    AddRequirement(pool_.Or(options));
    return util::Status::Ok();
  }

  util::Status EncodeStmt(const spec::Requirement& req,
                          const spec::PreferStmt& prefer) {
    const std::string& src = prefer.ranking.front().elems.front().name;
    const std::string& dest_name = prefer.ranking.front().elems.back().name;
    const spec::DestDecl* decl = spec_.FindDestination(dest_name);
    if (decl == nullptr) {
      return Error(ErrorCode::kInvalidArgument,
                   req.name + ": preference destination '" + dest_name +
                       "' is not declared");
    }
    for (const spec::PathPattern& p : prefer.ranking) {
      if (p.elems.front().name != src || p.elems.back().name != dest_name) {
        return Error(ErrorCode::kInvalidArgument,
                     req.name + ": ranked paths must share source and "
                                "destination");
      }
    }

    // Candidates of this destination arriving at src, classified by the
    // best (lowest-index) ranking pattern they realize.
    struct Ranked {
      const Candidate* candidate;
      int rank;  ///< -1 = unspecified
    };
    std::vector<Ranked> at_src;
    for (const Candidate& candidate : candidates_) {
      const Destination& dest =
          destinations_[static_cast<std::size_t>(candidate.dest_index)];
      if (dest.name != dest_name || candidate.via.back() != src) continue;
      int rank = -1;
      const auto traffic = candidate.TrafficSeq(dest);
      for (std::size_t i = 0; i < prefer.ranking.size(); ++i) {
        if (spec::MatchesExactly(prefer.ranking[i], traffic)) {
          rank = static_cast<int>(i);
          break;
        }
      }
      at_src.push_back(Ranked{&candidate, rank});
    }

    // Every ranked pattern must be realizable.
    for (std::size_t i = 0; i < prefer.ranking.size(); ++i) {
      const bool realizable =
          std::any_of(at_src.begin(), at_src.end(), [&](const Ranked& r) {
            return r.rank == static_cast<int>(i);
          });
      if (!realizable) {
        return Error(ErrorCode::kInvalidArgument,
                     req.name + ": ranked path (" +
                         prefer.ranking[i].ToString() +
                         ") is not realizable in the topology");
      }
    }

    // A path the specification explicitly allows elsewhere is exempt from
    // the strict unranked-blocking: it may stay usable as a fallback (the
    // paper's scenario-2 refinement, "allow other available paths as the
    // last resort").
    const auto explicitly_allowed = [&](const Candidate& candidate) {
      for (const spec::Requirement& other : spec_.requirements) {
        if (other.IsLocalized()) continue;
        for (const spec::Statement& other_stmt : other.statements) {
          const auto* allow = std::get_if<spec::AllowStmt>(&other_stmt);
          if (allow != nullptr && PatternHits(allow->path, candidate)) {
            return true;
          }
        }
      }
      return false;
    };

    for (const Ranked& r : at_src) {
      if (r.rank < 0) {
        if (explicitly_allowed(*r.candidate)) continue;
        // Strict NetComplete semantics: unspecified candidates blocked.
        AddRequirement(pool_.Not(AliveOf(*r.candidate)));
      } else {
        // Ranked candidates must be usable.
        AddRequirement(AliveOf(*r.candidate));
      }
    }

    // Pairwise decision-process ordering: ranked candidates beat
    // lower-ranked candidates, and the top-ranked class beats any allowed
    // fallbacks (so fallbacks never carry traffic while a ranked path is
    // usable — in this static model the top class is the best available).
    for (const Ranked& hi : at_src) {
      if (hi.rank < 0) continue;
      for (const Ranked& lo : at_src) {
        const bool lower_ranked = lo.rank > hi.rank;
        const bool fallback = hi.rank == 0 && lo.rank < 0 &&
                              explicitly_allowed(*lo.candidate);
        if (!lower_ranked && !fallback) continue;
        AddRequirement(pool_.Implies(
            pool_.And({AliveOf(*hi.candidate), AliveOf(*lo.candidate)}),
            BetterSym(*hi.candidate, *lo.candidate)));
      }
    }
    return util::Status::Ok();
  }

  /// Symbolic BGP decision-process comparison mirroring bgp::BetterThan:
  /// local-pref desc, then hop count asc (a constant here), then MED asc,
  /// then lexicographic path (constant).
  Expr BetterSym(const Candidate& a, const Candidate& b) {
    const SymState sa = StateFor(a.dest_index, a.via);
    const SymState sb = StateFor(b.dest_index, b.via);
    // Final (router-id-style) tie-break is deterministic on the paths.
    const Expr lex_tie = pool_.Bool(a.via < b.via);
    const Expr med_tie = pool_.Or(
        {pool_.Lt(sa.med, sb.med),
         pool_.And({pool_.Eq(sa.med, sb.med), lex_tie})});
    const Expr len_tie = pool_.Or(
        {pool_.Lt(sa.len, sb.len),
         pool_.And({pool_.Eq(sa.len, sb.len), med_tie})});
    return pool_.Or({pool_.Gt(sa.lp, sb.lp),
                     pool_.And({pool_.Eq(sa.lp, sb.lp), len_tie})});
  }

  ExprPool& pool_;
  const net::Topology& topo_;
  const config::NetworkConfig& network_;
  const spec::Spec& spec_;
  EncoderOptions options_;
  ValueTable values_;

  std::vector<Destination> destinations_;
  std::vector<Candidate> candidates_;
  std::map<std::string, SymState> state_cache_;

  void AddRequirement(Expr e) {
    requirements_.push_back(e);
    requirement_names_.push_back(current_req_);
  }

  std::string current_req_;
  std::vector<std::string> requirement_names_;
  std::vector<Expr> definitions_;
  std::vector<Expr> requirements_;
  std::vector<Expr> domains_;
  Encoding encoding_;
};

}  // namespace

std::vector<Expr> Encoding::HoleVarList() const {
  std::vector<Expr> out;
  out.reserve(hole_vars.size());
  for (const auto& [name, var] : hole_vars) out.push_back(var);
  return out;
}

Result<Encoding> Encode(ExprPool& pool, const net::Topology& topo,
                        const config::NetworkConfig& network,
                        const spec::Spec& spec, EncoderOptions options) {
  EncoderImpl impl(pool, topo, network, spec, options);
  auto encoding = impl.Run();
  if (encoding.ok()) {
    // Record hole provenance for decoding.
    encoding.value().holes = config::CollectHoles(network);
  }
  return encoding;
}

}  // namespace ns::synth
