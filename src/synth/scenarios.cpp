#include "synth/scenarios.hpp"

#include "net/builders.hpp"
#include "spec/parser.hpp"
#include "synth/sketch.hpp"
#include "util/status.hpp"

namespace ns::synth {

namespace {

spec::Spec MustParse(const char* text) {
  auto spec = spec::ParseSpec(text);
  NS_ASSERT_MSG(spec.ok(), "scenario spec must parse: " +
                               (spec.ok() ? "" : spec.error().ToString()));
  return std::move(spec).value();
}

/// The provider-facing export sketch of Fig. 1c: one fully symbolic
/// blocking entry (the template also supplies a `set next-hop` line) and a
/// trailing concrete deny-all.
void AddProviderExportSketch(config::RouterConfig& router,
                             std::string_view provider) {
  config::RouteMap& map = config::EnsureExportMap(router, provider);
  AddSymbolicEntry(map, 10, SymbolicEntryOptions{.with_set_next_hop = true});
  map.entries.push_back(config::DenyAll(100));
}

}  // namespace

Scenario Scenario1() {
  Scenario s;
  s.name = "S1";
  s.description =
      "identifying underspecified paths: no-transit only; the synthesized "
      "blocking rules turn out to drop *all* routes to the providers";
  s.topo = net::PaperFig1b();
  s.spec = MustParse(R"(
    // No transit traffic (paper Fig. 1a)
    Req1 {
      !(P1->...->P2)
      !(P2->...->P1)
    }
  )");
  s.sketch = config::SkeletonFor(s.topo);
  AddProviderExportSketch(*s.sketch.FindRouter("R1"), "P1");
  AddProviderExportSketch(*s.sketch.FindRouter("R2"), "P2");
  s.d1_prefix = net::Prefix(net::Ipv4Addr(128, 0, 1, 0), 24);
  return s;
}

Scenario Scenario1Refined() {
  Scenario s = Scenario1();
  s.name = "S1b";
  s.description =
      "scenario 1 after refinement: the administrator additionally requires "
      "the customer's routes to reach both providers, forcing the blocking "
      "entry to discriminate instead of dropping everything";
  s.spec = MustParse(R"(
    Req1 {
      !(P1->...->P2)
      !(P2->...->P1)
    }
    // Added after inspecting the subspecification at R1 (paper §2,
    // scenario 1): regular connectivity must be preserved.
    Req1b {
      (Cust->...->P1)
      (Cust->...->P2)
    }
  )");
  return s;
}

Scenario Scenario2() {
  Scenario s;
  s.name = "S2";
  s.description =
      "resolving ambiguous specifications: no-transit plus the D1 path "
      "preference of Fig. 3; strict NetComplete semantics block every "
      "unspecified path, surprising the administrator";
  s.topo = net::PaperFig1b();
  s.spec = MustParse(R"(
    dest D1 = 128.0.1.0/24 at P1, P2

    Req1 {
      !(P1->...->P2)
      !(P2->...->P1)
    }

    // For D1, prefer the path through P1 over the path through P2
    // (paper Fig. 3).
    Req2 {
      (Cust->R3->R1->P1->...->D1)
      >> (Cust->R3->R2->P2->...->D1)
    }
  )");
  s.d1_prefix = net::Prefix(net::Ipv4Addr(128, 0, 1, 0), 24);

  s.sketch = config::SkeletonFor(s.topo);
  AddProviderExportSketch(*s.sketch.FindRouter("R1"), "P1");
  AddProviderExportSketch(*s.sketch.FindRouter("R2"), "P2");

  // Preference sketch at R3's import interfaces (where the paper's Fig. 4
  // subspecification lives): an as-path screening entry that can drop the
  // detour routes, then a (symbolic) local-pref on D1 routes.
  for (const char* neighbor : {"R1", "R2"}) {
    config::RouteMap& imp =
        config::EnsureImportMap(*s.sketch.FindRouter("R3"), neighbor);
    AddViaScreenEntry(imp, 10);
    AddPrefixEntry(imp, 20, config::RmAction::kPermit, s.d1_prefix,
                   /*symbolic_local_pref=*/true);
    imp.entries.push_back(config::PermitAll(100));
  }
  return s;
}

Scenario Scenario2Refined() {
  Scenario s = Scenario2();
  s.name = "S2b";
  s.description =
      "scenario 2 after refinement: the detour paths are explicitly allowed "
      "as fallbacks, restoring the path redundancy the administrator "
      "expected";
  s.spec = MustParse(R"(
    dest D1 = 128.0.1.0/24 at P1, P2

    Req1 {
      !(P1->...->P2)
      !(P2->...->P1)
    }

    Req2 {
      (Cust->R3->R1->P1->...->D1)
      >> (Cust->R3->R2->P2->...->D1)
    }

    // Added after inspecting Fig. 4's subspecification: the unranked
    // paths stay usable as a last resort.
    Req2b {
      (Cust->R3->R2->R1->P1->...->D1)
      (Cust->R3->R1->R2->P2->...->D1)
    }
  )");
  return s;
}

Scenario Scenario3() {
  Scenario s = Scenario2();
  s.name = "S3";
  s.description =
      "taming complexity: scenario 2 plus customer reachability "
      "requirements and more sketched policies; per-requirement questions "
      "localize the review (Fig. 5)";
  s.spec = MustParse(R"(
    dest D1 = 128.0.1.0/24 at P1, P2
    dest C1 = 123.0.1.0/20 at Cust

    Req1 {
      !(P1->...->P2)
      !(P2->...->P1)
    }

    Req2 {
      (Cust->R3->R1->P1->...->D1)
      >> (Cust->R3->R2->P2->...->D1)
    }

    // The customer prefix must be reachable from both providers.
    Req3 {
      (P1->...->C1)
      (P2->...->C1)
    }
  )");

  // More sketched policy surface: R3's customer import — extra "volume of
  // configuration" that overwhelms manual review. (Deliberately no export
  // sketches at R3: the no-transit requirement must be carried by the
  // provider-facing maps at R1/R2, as in the paper's Fig. 5.)
  {
    config::RouteMap& imp =
        config::EnsureImportMap(*s.sketch.FindRouter("R3"), "Cust");
    AddSymbolicEntry(imp, 10);
    imp.entries.push_back(config::PermitAll(100));
  }
  return s;
}

config::NetworkConfig Scenario1CommunityConfig() {
  const Scenario s = Scenario1();
  config::NetworkConfig network = config::SkeletonFor(s.topo);
  const config::Community transit_tag = config::MakeCommunity(100, 2);

  for (const auto& [router, provider] :
       std::vector<std::pair<const char*, const char*>>{{"R1", "P1"},
                                                        {"R2", "P2"}}) {
    config::RouterConfig& cfg = *network.FindRouter(router);
    // Tag everything learned from the provider with 100:2...
    config::RouteMap& import = config::EnsureImportMap(cfg, provider);
    config::RouteMapEntry tag = config::PermitAll(10);
    tag.sets.add_community = transit_tag;
    import.entries.push_back(tag);
    // ...and refuse to export tagged (i.e. provider-learned) routes to the
    // other provider's side.
    config::RouteMap& exp = config::EnsureExportMap(cfg, provider);
    config::RouteMapEntry filter;
    filter.seq = 10;
    filter.action = config::RmAction::kDeny;
    filter.match.field = config::MatchField::kCommunity;
    filter.match.community = transit_tag;
    exp.entries.push_back(filter);
    exp.entries.push_back(config::PermitAll(100));
  }
  return network;
}

config::NetworkConfig Scenario1PaperConfig() {
  const Scenario s = Scenario1();
  config::NetworkConfig network = config::SkeletonFor(s.topo);
  const net::Prefix customer = network.FindRouter("Cust")->networks[0];

  int link = 0;
  for (const auto& [router, provider] :
       std::vector<std::pair<const char*, const char*>>{{"R1", "P1"},
                                                        {"R2", "P2"}}) {
    config::RouteMap& map =
        config::EnsureExportMap(*network.FindRouter(router), provider);
    config::RouteMapEntry blocking;
    blocking.seq = 10;
    blocking.action = config::RmAction::kDeny;
    blocking.match.field = config::MatchField::kPrefix;
    blocking.match.prefix = customer;
    // The template's redundant `set next-hop` line (paper Fig. 1c).
    blocking.sets.next_hop = net::Ipv4Addr(10, 0, 0, static_cast<uint8_t>(++link));
    map.entries.push_back(blocking);
    map.entries.push_back(config::DenyAll(100));
  }
  return network;
}

Scenario GetScenario(int index) {
  switch (index) {
    case 1: return Scenario1();
    case 2: return Scenario2();
    case 3: return Scenario3();
    default:
      NS_ASSERT_MSG(false, "scenario index must be 1, 2 or 3");
  }
  return Scenario1();  // unreachable
}

}  // namespace ns::synth
