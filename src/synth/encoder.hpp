// The NetComplete-style constraint encoder (paper §3: "The encoding
// process follow the same process as the NetComplete synthesizer").
//
// One encoder serves both directions of the pipeline:
//  - synthesis: the sketch's holes become solver variables; a model fills
//    them with concrete values;
//  - explanation: the solved configuration with some fields re-opened as
//    holes is re-encoded, producing the *seed specification* (paper Fig. 6)
//    that the simplifier then reduces.
//
// Shape of the encoding (aux-variable style, matching the paper's ">1000
// constraints even in the simple scenario"):
//  - for every destination, every candidate announcement path, and every
//    hop, fresh auxiliary variables (`st.`-prefixed) describe the route
//    state after that hop: aliveness, local-pref, MED, next-hop, and one
//    boolean per tracked community; each is defined by one equality
//    constraint in terms of the previous hop's variables and the hop's
//    export/import route-maps;
//  - requirement constraints (forbid / allow / prefer) are asserted over
//    the aliveness and local-pref variables;
//  - each hole variable gets a domain constraint.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/holes.hpp"
#include "smt/expr.hpp"
#include "synth/candidates.hpp"
#include "synth/vartable.hpp"

namespace ns::synth {

struct EncoderOptions {
  /// Bound on candidate-path edges; 0 means #routers (every simple path).
  int max_hops = 0;
  /// Extra communities synthesis may assign to community holes, in
  /// addition to those already mentioned in the configuration.
  std::vector<config::Community> community_palette;
  /// When non-empty, only the named requirements are encoded — the
  /// per-requirement projection the paper's Scenario 3 asks questions with
  /// ("when asked about the no transit traffic requirement...").
  std::vector<std::string> only_requirements;
  /// Encode protocol mechanics only, no requirement assertions (the lifter
  /// compiles candidate statements against this).
  bool skip_requirements = false;
};

/// Prefix of every auxiliary (route-state) variable name.
inline constexpr const char* kAuxPrefix = "st.";

/// True for names of encoder-internal route-state variables.
bool IsAuxVar(const std::string& name) noexcept;

struct Encoding {
  /// The full seed specification: state definitions, requirement
  /// constraints, and hole domains, in that order.
  std::vector<smt::Expr> constraints;
  /// Subset of `constraints`: just the requirement assertions, with the
  /// name of the requirement block each came from (parallel vectors).
  std::vector<smt::Expr> requirement_constraints;
  std::vector<std::string> requirement_names;
  /// Subset of `constraints`: the hole-domain side conditions.
  std::vector<smt::Expr> domain_constraints;

  /// Hole bookkeeping (synthesis variables).
  std::vector<config::HoleInfo> holes;
  std::map<std::string, smt::Expr> hole_vars;

  ValueTable values;
  std::vector<Destination> destinations;
  std::vector<Candidate> candidates;

  /// label (Candidate::Label) -> route-state variables of the full path.
  std::map<std::string, smt::Expr> alive_vars;
  std::map<std::string, smt::Expr> lp_vars;
  std::map<std::string, smt::Expr> med_vars;
  std::map<std::string, smt::Expr> len_vars;

  std::size_t num_aux_vars = 0;

  std::vector<smt::Expr> HoleVarList() const;
};

/// Builds the encoding. Fails on spec/config inconsistencies (unknown
/// routers, unrealizable ranked paths, allow patterns with no candidate).
util::Result<Encoding> Encode(smt::ExprPool& pool, const net::Topology& topo,
                              const config::NetworkConfig& network,
                              const spec::Spec& spec,
                              EncoderOptions options = {});

}  // namespace ns::synth
