#include "synth/vartable.hpp"

#include <algorithm>

namespace ns::synth {

using config::Community;
using config::HoleType;
using config::HoleValue;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

template <typename T>
void CollectField(const config::Field<T>& field, std::set<T>& out) {
  if (field.is_concrete()) out.insert(field.value());
}

}  // namespace

ValueTable::ValueTable(const net::Topology& topo,
                       const config::NetworkConfig& network,
                       const spec::Spec& spec,
                       const std::vector<Community>& palette) {
  std::set<net::Prefix> prefix_set;
  std::set<Community> community_set(palette.begin(), palette.end());

  for (const auto& [name, router] : network.routers) {
    for (const net::Prefix& p : router.networks) prefix_set.insert(p);
    for (const auto& [map_name, map] : router.route_maps) {
      for (const config::RouteMapEntry& entry : map.entries) {
        // A match-value slot only matters when the (possibly symbolic)
        // match field can select it; unused slots keep defaults that must
        // not pollute the tables.
        const auto relevant = [&](config::MatchField field) {
          return entry.match.field.is_hole() ||
                 entry.match.field.value() == field;
        };
        if (relevant(config::MatchField::kPrefix)) {
          CollectField(entry.match.prefix, prefix_set);
        }
        if (relevant(config::MatchField::kCommunity)) {
          CollectField(entry.match.community, community_set);
        }
        if (relevant(config::MatchField::kNextHop) &&
            entry.match.next_hop.is_concrete()) {
          addresses_.insert(entry.match.next_hop.value());
        }
        if (entry.sets.add_community) {
          CollectField(*entry.sets.add_community, community_set);
        }
        if (entry.sets.next_hop && entry.sets.next_hop->is_concrete()) {
          addresses_.insert(entry.sets.next_hop->value());
        }
      }
    }
  }
  for (const spec::DestDecl& dest : spec.destinations) {
    prefix_set.insert(dest.prefix);
  }
  for (const net::Link& link : topo.links()) {
    addresses_.insert(link.addr_a);
    addresses_.insert(link.addr_b);
  }
  // Community value 0 ("0:0") is reserved as the encoder's "no community"
  // placeholder; drop it from the tracked universe.
  community_set.erase(0);

  for (net::RouterId id : topo.AllRouters()) {
    routers_.push_back(topo.NameOf(id));
  }

  prefixes_.assign(prefix_set.begin(), prefix_set.end());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    prefix_ids_.emplace(prefixes_[i], static_cast<std::int64_t>(i));
  }
  communities_.assign(community_set.begin(), community_set.end());
}

std::int64_t ValueTable::RouterId(const std::string& name) const {
  const auto it = std::find(routers_.begin(), routers_.end(), name);
  NS_ASSERT_MSG(it != routers_.end(), "router not collected: " + name);
  return static_cast<std::int64_t>(it - routers_.begin());
}

std::int64_t ValueTable::PrefixId(const net::Prefix& prefix) const {
  const auto it = prefix_ids_.find(prefix);
  NS_ASSERT_MSG(it != prefix_ids_.end(),
                "prefix not collected: " + prefix.ToString());
  return it->second;
}

std::int64_t ValueTable::EncodeValue(const HoleValue& value) const {
  return std::visit(
      [&](const auto& v) -> std::int64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, config::RmAction>) {
          return v == config::RmAction::kPermit ? kActionPermit : kActionDeny;
        } else if constexpr (std::is_same_v<T, config::MatchField>) {
          switch (v) {
            case config::MatchField::kAny: return kFieldAny;
            case config::MatchField::kPrefix: return kFieldPrefix;
            case config::MatchField::kCommunity: return kFieldCommunity;
            case config::MatchField::kNextHop: return kFieldNextHop;
            case config::MatchField::kViaContains: return kFieldVia;
          }
          return kFieldAny;
        } else if constexpr (std::is_same_v<T, net::Prefix>) {
          // Total even for unused-slot defaults (e.g. 0.0.0.0/0 on an
          // entry whose match field never consults the prefix): -1 is a
          // sentinel outside every hole domain, semantically
          // "matches nothing".
          const auto it = prefix_ids_.find(v);
          return it == prefix_ids_.end() ? -1 : it->second;
        } else if constexpr (std::is_same_v<T, net::Ipv4Addr>) {
          return AddressValue(v);
        } else if constexpr (std::is_same_v<T, Community>) {
          return static_cast<std::int64_t>(v);
        } else if constexpr (std::is_same_v<T, std::string>) {
          const auto it = std::find(routers_.begin(), routers_.end(), v);
          return it == routers_.end()
                     ? -1
                     : static_cast<std::int64_t>(it - routers_.begin());
        } else {
          return static_cast<std::int64_t>(v);  // plain int (lp / med)
        }
      },
      value);
}

smt::Expr ValueTable::DomainConstraint(smt::ExprPool& pool, smt::Expr var,
                                       HoleType type) const {
  const auto in_range = [&](std::int64_t lo, std::int64_t hi) {
    return pool.And({pool.Le(pool.Int(lo), var), pool.Le(var, pool.Int(hi))});
  };
  const auto one_of = [&](const std::vector<std::int64_t>& values) {
    NS_ASSERT_MSG(!values.empty(), "empty hole domain");
    std::vector<smt::Expr> options;
    options.reserve(values.size());
    for (std::int64_t v : values) options.push_back(pool.Eq(var, pool.Int(v)));
    return pool.Or(options);
  };

  switch (type) {
    case HoleType::kAction:
      return in_range(kActionDeny, kActionPermit);
    case HoleType::kMatchField:
      return in_range(kFieldAny, kFieldVia);
    case HoleType::kPrefix:
      return in_range(0, static_cast<std::int64_t>(prefixes_.size()) - 1);
    case HoleType::kCommunity: {
      std::vector<std::int64_t> values;
      values.reserve(communities_.size());
      for (Community c : communities_) {
        values.push_back(static_cast<std::int64_t>(c));
      }
      return one_of(values);
    }
    case HoleType::kAddress: {
      std::vector<std::int64_t> values;
      values.reserve(addresses_.size());
      for (net::Ipv4Addr addr : addresses_) {
        values.push_back(AddressValue(addr));
      }
      return one_of(values);
    }
    case HoleType::kLocalPref:
      return in_range(config::kMinLocalPref, config::kMaxLocalPref);
    case HoleType::kMed:
      return in_range(0, 1000);
    case HoleType::kRouter:
      return in_range(0, static_cast<std::int64_t>(routers_.size()) - 1);
  }
  NS_ASSERT_MSG(false, "unknown hole type");
  return pool.True();
}

Result<HoleValue> ValueTable::DecodeValue(HoleType type,
                                          std::int64_t value) const {
  switch (type) {
    case HoleType::kAction:
      if (value != kActionDeny && value != kActionPermit) break;
      return HoleValue(value == kActionPermit ? config::RmAction::kPermit
                                              : config::RmAction::kDeny);
    case HoleType::kMatchField:
      switch (value) {
        case kFieldAny: return HoleValue(config::MatchField::kAny);
        case kFieldPrefix: return HoleValue(config::MatchField::kPrefix);
        case kFieldCommunity: return HoleValue(config::MatchField::kCommunity);
        case kFieldNextHop: return HoleValue(config::MatchField::kNextHop);
        case kFieldVia: return HoleValue(config::MatchField::kViaContains);
        default: break;
      }
      break;
    case HoleType::kPrefix:
      if (value < 0 || value >= static_cast<std::int64_t>(prefixes_.size())) {
        break;
      }
      return HoleValue(prefixes_[static_cast<std::size_t>(value)]);
    case HoleType::kCommunity:
      return HoleValue(static_cast<Community>(value));
    case HoleType::kAddress:
      return HoleValue(net::Ipv4Addr(static_cast<std::uint32_t>(value)));
    case HoleType::kLocalPref:
    case HoleType::kMed:
      return HoleValue(static_cast<int>(value));
    case HoleType::kRouter:
      if (value < 0 || value >= static_cast<std::int64_t>(routers_.size())) {
        break;
      }
      return HoleValue(routers_[static_cast<std::size_t>(value)]);
  }
  return Error(ErrorCode::kInternal,
               "model value " + std::to_string(value) +
                   " outside the domain of hole type " +
                   config::HoleTypeName(type));
}

}  // namespace ns::synth
