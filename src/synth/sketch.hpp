// Sketch construction helpers (NetComplete's "configuration sketch"): they
// add route-map entries whose fields are holes for the synthesizer to fill.
//
// Hole naming convention: "<map>.<seq>.<slot>", e.g. "R1_to_P1.10.action".
// The explainer's symbolization (explain/symbolize.hpp) re-opens solved
// fields under "Var_*" names instead, so the two kinds of variables are
// easy to tell apart in constraint dumps.
#pragma once

#include <string>

#include "config/device.hpp"

namespace ns::synth {

/// Canonical hole name for a route-map entry slot.
std::string HoleName(std::string_view map, int seq, std::string_view slot);

struct SymbolicEntryOptions {
  bool with_set_next_hop = false;  ///< include a `set ip next-hop ?` hole
                                   ///< (the "template" line of Fig. 1c)
  bool with_set_local_pref = false;
  bool with_set_community = false;
};

/// Appends a fully symbolic entry to `map`: symbolic action (Var_Action),
/// symbolic match attribute (Var_Attr) and symbolic values for each match
/// slot (Var_Val), plus the requested symbolic set lines (Var_Param).
config::RouteMapEntry& AddSymbolicEntry(config::RouteMap& map, int seq,
                                        SymbolicEntryOptions options = {});

/// Appends a concrete permit/deny entry that matches the given prefix, with
/// an optional symbolic local-pref (NetComplete's classic lp sketch).
config::RouteMapEntry& AddPrefixEntry(config::RouteMap& map, int seq,
                                      config::RmAction action,
                                      const net::Prefix& prefix,
                                      bool symbolic_local_pref = false);

/// Appends a concrete entry matching the given prefix whose *action* is a
/// hole (synthesis decides permit/deny).
config::RouteMapEntry& AddActionHoleEntry(config::RouteMap& map, int seq,
                                          const net::Prefix& prefix);

/// Appends an as-path screening entry: `<?action> match as-path contains
/// <?router>` — both the action and the router value are holes. This is the
/// knob scenario 2 gives R3 to drop detour routes at its import interfaces.
config::RouteMapEntry& AddViaScreenEntry(config::RouteMap& map, int seq);

/// Appends a concrete permit-all entry that tags routes with `community`
/// (the provider-mesh import idiom: mark where a route entered the AS).
config::RouteMapEntry& AddCommunityTagEntry(config::RouteMap& map, int seq,
                                            config::Community community);

/// Appends a community screening entry: `<?action> match community <c>` —
/// the action is a hole, so synthesis decides whether routes carrying the
/// tag are released or dropped at this session (community-driven
/// no-transit, the multi-AS counterpart of AddViaScreenEntry).
config::RouteMapEntry& AddCommunityScreenEntry(config::RouteMap& map, int seq,
                                               config::Community community);

}  // namespace ns::synth
