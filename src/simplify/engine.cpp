#include "simplify/engine.hpp"

#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/status.hpp"

namespace ns::simplify {

using smt::Expr;
using smt::ExprPool;
using smt::Op;

namespace {

constexpr std::uint32_t kNoSymbol = std::numeric_limits<std::uint32_t>::max();

/// The seed's substitution: name-keyed, full traversal, no mask pruning.
/// Kept verbatim so the reference engine configuration measures exactly the
/// pre-optimization behavior.
Expr ReferenceSubstitute(ExprPool& pool, Expr e,
                         const std::unordered_map<std::string, Expr>& env) {
  std::unordered_map<const smt::Node*, Expr> memo;
  std::function<Expr(Expr)> go = [&](Expr cur) -> Expr {
    const auto it = memo.find(cur.raw());
    if (it != memo.end()) return it->second;
    Expr result = cur;
    if (cur.IsVar()) {
      const auto env_it = env.find(cur.name());
      if (env_it != env.end()) {
        NS_ASSERT_MSG(env_it->second.sort() == cur.sort(),
                      "substitution changes sort of " + cur.name());
        result = env_it->second;
      }
    } else if (cur.NumChildren() > 0) {
      std::vector<Expr> children;
      children.reserve(cur.NumChildren());
      bool changed = false;
      for (std::size_t i = 0; i < cur.NumChildren(); ++i) {
        Expr child = go(cur.Child(i));
        changed = changed || child != cur.Child(i);
        children.push_back(child);
      }
      if (changed) {
        switch (cur.op()) {
          case Op::kNot: result = pool.Not(children[0]); break;
          case Op::kAnd: result = pool.And(children); break;
          case Op::kOr: result = pool.Or(children); break;
          case Op::kImplies:
            result = pool.Implies(children[0], children[1]);
            break;
          case Op::kIte:
            result = pool.Ite(children[0], children[1], children[2]);
            break;
          case Op::kEq: result = pool.Eq(children[0], children[1]); break;
          case Op::kLt: result = pool.Lt(children[0], children[1]); break;
          case Op::kLe: result = pool.Le(children[0], children[1]); break;
          case Op::kAdd: result = pool.Add(children[0], children[1]); break;
          case Op::kSub: result = pool.Sub(children[0], children[1]); break;
          case Op::kMul: result = pool.Mul(children[0], children[1]); break;
          default:
            NS_ASSERT_MSG(false, "substitute: unexpected op");
        }
      }
    }
    memo.emplace(cur.raw(), result);
    return result;
  };
  return go(e);
}

}  // namespace

Engine::Engine(ExprPool& pool, EngineOptions options)
    : pool_(pool), options_(options) {
  if (options_.cross_pass_memo && options_.propagate_units) {
    shared_ = options_.shared_fixpoints;
  }
}

std::string TraceEntry::ToString() const {
  return std::string(RuleName(rule)) + ": " + before.ToString() + "  ==>  " +
         after.ToString();
}

std::size_t Engine::TotalRuleHits() const noexcept {
  return std::accumulate(stats_.begin(), stats_.end(), std::size_t{0});
}

SimplifyOutcome Engine::Simplify(Expr e) {
  SimplifyOutcome outcome{e, 0, true};
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    FlushPassMemo();
    const Expr next = PassOnce(outcome.expr);
    ++outcome.passes;
    if (next == outcome.expr) {
      last_passes_ = outcome.passes;
      return outcome;  // fixpoint
    }
    outcome.expr = next;
  }
  outcome.converged = false;
  last_passes_ = outcome.passes;
  NS_WARN << "simplifier hit pass limit (" << options_.max_passes
          << ") before reaching a fixpoint";
  return outcome;
}

void Engine::FlushPassMemo() {
  if (!options_.cross_pass_memo) {
    pass_memo_.clear();
    dirty_.clear();
    return;
  }
  // Clean entries persist (recomputing them would fire nothing); entries a
  // rewrite touched must be recomputed next pass so that a later rewrite
  // re-creating such a node recounts its rule hits exactly like the
  // reference engine does.
  for (const smt::Node* key : dirty_) pass_memo_.erase(key);
  dirty_.clear();
}

Expr Engine::PassOnce(Expr e) { return PassOnceEntry(e).result; }

const Engine::MemoEntry& Engine::PassOnceEntry(Expr e) {
  const auto it = pass_memo_.find(e.raw());
  if (it != pass_memo_.end()) return it->second;

  // Shared frozen tier: a node another request already proved clean maps
  // to itself with zero rule hits — adopting that entry is observably
  // identical to re-traversing the subtree.
  const bool frozen =
      shared_ != nullptr && e.id() < shared_->frozen_limit();
  if (frozen && shared_->Lookup(e.raw())) {
    const auto [pos, unused] =
        pass_memo_.emplace(e.raw(), MemoEntry{e, true});
    return pos->second;
  }

  const std::size_t hits_before = TotalRuleHits();
  bool children_clean = true;
  Expr result = e;
  const std::size_t num_children = e.NumChildren();
  if (num_children > 0) {
    // Bottom-up: children first. The rebuilt-children vector is allocated
    // lazily — the common unchanged path costs no copy at all.
    std::vector<Expr> children;
    for (std::size_t i = 0; i < num_children; ++i) {
      const Expr child = e.Child(i);
      // Value references in unordered_map are stable across the recursive
      // inserts, so holding `entry` across them is safe.
      const MemoEntry& entry = PassOnceEntry(child);
      children_clean = children_clean && entry.clean;
      const Expr simplified = entry.result;
      if (!children.empty()) {
        children.push_back(simplified);
      } else if (simplified != child) {
        children.reserve(num_children);
        for (std::size_t j = 0; j < i; ++j) children.push_back(e.Child(j));
        children.push_back(simplified);
      }
    }
    if (!children.empty()) {
      switch (e.op()) {
        case Op::kNot: result = pool_.Not(children[0]); break;
        case Op::kAnd: result = pool_.And(children); break;
        case Op::kOr: result = pool_.Or(children); break;
        case Op::kImplies: result = pool_.Implies(children[0], children[1]); break;
        case Op::kIte:
          result = pool_.Ite(children[0], children[1], children[2]);
          break;
        case Op::kEq: result = pool_.Eq(children[0], children[1]); break;
        case Op::kLt: result = pool_.Lt(children[0], children[1]); break;
        case Op::kLe: result = pool_.Le(children[0], children[1]); break;
        case Op::kAdd: result = pool_.Add(children[0], children[1]); break;
        case Op::kSub: result = pool_.Sub(children[0], children[1]); break;
        case Op::kMul: result = pool_.Mul(children[0], children[1]); break;
        default: break;
      }
    }
  }
  result = RewriteNode(result);
  const bool clean =
      children_clean && result == e && TotalRuleHits() == hits_before;
  if (clean && frozen) shared_->Insert(e.raw());
  const auto [pos, inserted] =
      pass_memo_.emplace(e.raw(), MemoEntry{result, clean});
  if (!clean) dirty_.push_back(e.raw());
  return pos->second;
}

Expr Engine::RewriteNode(Expr e) {
  // Apply local rules repeatedly at this node; each application may expose
  // another (e.g. flatten then identity). Bounded by the node's size.
  for (int guard = 0; guard < 1024; ++guard) {
    if (e.op() == Op::kAnd && options_.propagate_units) {
      const Expr propagated = PropagateWithinAnd(e);
      if (propagated != e) {
        if (options_.record_trace && trace_.size() < options_.max_trace_entries) {
          trace_.push_back(TraceEntry{RuleId::kUnitPropagation, e, propagated});
        }
        e = propagated;
        if (e.op() != Op::kAnd) continue;
      }
    }
    // Snapshot the per-rule counters so the fired rule can be identified
    // for the trace without changing ApplyLocalRules' interface.
    const RuleStats before_stats = stats_;
    const auto rewritten = ApplyLocalRules(pool_, e, &stats_);
    if (!rewritten) return e;
    if (options_.record_trace && trace_.size() < options_.max_trace_entries) {
      RuleId fired = RuleId::kConstFold;
      for (int rule = 0; rule < kNumRules; ++rule) {
        if (stats_[static_cast<std::size_t>(rule)] !=
            before_stats[static_cast<std::size_t>(rule)]) {
          fired = static_cast<RuleId>(rule);
          break;
        }
      }
      trace_.push_back(TraceEntry{fired, e, *rewritten});
    }
    e = *rewritten;
    if (e.NumChildren() == 0) return e;  // constant/leaf: done
  }
  NS_WARN << "node rewrite guard tripped";
  return e;
}

Expr Engine::PropagateWithinAnd(Expr e) {
  return options_.indexed_propagation ? PropagateWithinAndIndexed(e)
                                      : PropagateWithinAndReference(e);
}

Expr Engine::PropagateWithinAndIndexed(Expr e) {
  // R13/R14: collect units among the conjuncts —
  //   boolean literal  v      =>  v := true
  //   boolean literal  ¬v     =>  v := false
  //   equality         x = c  =>  x := c
  // and substitute them into every *other*, non-unit conjunct. Units are
  // preserved verbatim so no information is lost.
  //
  // The environment is keyed by interned symbol id, and each conjunct is
  // screened through its free-variable bloom mask + cached exact set, so
  // only conjuncts that really mention a bound variable are substituted
  // into — no per-unit environment copies, no blind O(units × conjuncts)
  // traversals.
  const std::size_t num_children = e.NumChildren();
  smt::SymbolEnv env;
  // Symbol each unit conjunct binds; kNoSymbol for non-units.
  std::vector<std::uint32_t> unit_symbol(num_children, kNoSymbol);

  for (std::size_t i = 0; i < num_children; ++i) {
    const Expr c = e.Child(i);
    if (c.IsVar() && c.sort() == smt::Sort::kBool) {
      if (env.emplace(c.symbol(), pool_.True()).second) {
        unit_symbol[i] = c.symbol();
      }
    } else if (c.op() == Op::kNot && c.Child(0).IsVar()) {
      if (env.emplace(c.Child(0).symbol(), pool_.False()).second) {
        unit_symbol[i] = c.Child(0).symbol();
      }
    } else if (c.op() == Op::kEq) {
      const Expr lhs = c.Child(0);
      const Expr rhs = c.Child(1);
      if (lhs.IsVar() && rhs.IsConst()) {
        if (env.emplace(lhs.symbol(), rhs).second) unit_symbol[i] = lhs.symbol();
      } else if (rhs.IsVar() && lhs.IsConst()) {
        if (env.emplace(rhs.symbol(), lhs).second) unit_symbol[i] = rhs.symbol();
      }
    }
  }
  if (env.empty()) return e;

  std::uint64_t env_mask = 0;
  for (const auto& [symbol, unused] : env) env_mask |= smt::VarMaskBit(symbol);

  // Occurrence screen: does conjunct `c` mention a bound variable other
  // than `own`? The bloom mask rejects most conjuncts in O(1); survivors
  // get an exact check against the cached free-variable set.
  const auto mentions_bound = [&](Expr c, std::uint32_t own) {
    if ((c.VarMask() & env_mask) == 0) return false;
    for (const smt::Node* var : c.FreeVarNodes()) {
      const auto symbol = static_cast<std::uint32_t>(var->value);
      if (symbol != own && env.count(symbol) > 0) return true;
    }
    return false;
  };

  bool changed = false;
  bool bool_unit_fired = false;
  bool eq_unit_fired = false;
  std::vector<Expr> rebuilt;
  rebuilt.reserve(num_children);
  for (std::size_t i = 0; i < num_children; ++i) {
    // A unit is substituted with everything except its *own* binding, so
    // `x=3 ∧ x=4` collapses to `x=3 ∧ false` while `x=3` itself survives.
    const Expr c = e.Child(i);
    Expr substituted = c;
    if (mentions_bound(c, unit_symbol[i])) {
      if (unit_symbol[i] == kNoSymbol) {
        substituted = smt::Substitute(pool_, c, env);
      } else {
        // Temporarily lift the conjunct's own binding out of the
        // environment instead of copying the map.
        auto own = env.extract(unit_symbol[i]);
        substituted = smt::Substitute(pool_, c, env);
        env.insert(std::move(own));
      }
    }
    if (substituted != c) {
      changed = true;
      // Attribute the hit: equality bindings vs boolean literals.
      for (const smt::Node* var : c.FreeVarNodes()) {
        const auto found = env.find(static_cast<std::uint32_t>(var->value));
        if (found == env.end()) continue;
        (found->second.IsBoolConst() && var->sort == smt::Sort::kBool
             ? bool_unit_fired
             : eq_unit_fired) = true;
      }
    }
    rebuilt.push_back(substituted);
  }
  if (!changed) return e;
  if (bool_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kUnitPropagation)] += 1;
  }
  if (eq_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kEqPropagation)] += 1;
  }
  return pool_.And(rebuilt);
}

Expr Engine::PropagateWithinAndReference(Expr e) {
  // The seed implementation, preserved as the benchmark/property-test
  // baseline: substitutes every conjunct and copies the environment per
  // unit conjunct.
  const std::vector<Expr> children = e.Children();
  std::unordered_map<std::string, Expr> env;
  // Variable each unit conjunct binds; empty for non-units.
  std::vector<std::string> unit_var(children.size());

  for (std::size_t i = 0; i < children.size(); ++i) {
    const Expr c = children[i];
    if (c.IsVar() && c.sort() == smt::Sort::kBool) {
      if (env.emplace(c.name(), pool_.True()).second) unit_var[i] = c.name();
    } else if (c.op() == Op::kNot && c.Child(0).IsVar()) {
      if (env.emplace(c.Child(0).name(), pool_.False()).second) {
        unit_var[i] = c.Child(0).name();
      }
    } else if (c.op() == Op::kEq) {
      const Expr lhs = c.Child(0);
      const Expr rhs = c.Child(1);
      if (lhs.IsVar() && rhs.IsConst()) {
        if (env.emplace(lhs.name(), rhs).second) unit_var[i] = lhs.name();
      } else if (rhs.IsVar() && lhs.IsConst()) {
        if (env.emplace(rhs.name(), lhs).second) unit_var[i] = rhs.name();
      }
    }
  }
  if (env.empty()) return e;

  bool changed = false;
  bool bool_unit_fired = false;
  bool eq_unit_fired = false;
  std::vector<Expr> rebuilt;
  rebuilt.reserve(children.size());
  for (std::size_t i = 0; i < children.size(); ++i) {
    Expr substituted = children[i];
    if (unit_var[i].empty()) {
      substituted = ReferenceSubstitute(pool_, children[i], env);
    } else if (env.size() > 1) {
      auto reduced = env;
      reduced.erase(unit_var[i]);
      substituted = ReferenceSubstitute(pool_, children[i], reduced);
    }
    if (substituted != children[i]) {
      changed = true;
      for (const Expr var : children[i].FreeVars()) {
        const auto found = env.find(var.name());
        if (found == env.end()) continue;
        (found->second.IsBoolConst() && var.sort() == smt::Sort::kBool
             ? bool_unit_fired
             : eq_unit_fired) = true;
      }
    }
    rebuilt.push_back(substituted);
  }
  if (!changed) return e;
  if (bool_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kUnitPropagation)] += 1;
  }
  if (eq_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kEqPropagation)] += 1;
  }
  return pool_.And(rebuilt);
}

std::vector<Expr> Engine::SimplifyConstraints(std::vector<Expr> constraints) {
  if (constraints.empty()) return constraints;
  const Expr conjunction =
      constraints.size() == 1 ? constraints.front() : pool_.And(constraints);
  const Expr simplified = Simplify(conjunction).expr;

  std::vector<Expr> out;
  if (simplified.op() == Op::kAnd) {
    for (const smt::Node* child : simplified.ChildrenSpan()) {
      const Expr c = Expr::FromRaw(child);
      if (!c.IsTrue()) out.push_back(c);
    }
  } else if (!simplified.IsTrue()) {
    out.push_back(simplified);
  }
  return out;
}

Expr Simplify(ExprPool& pool, Expr e) {
  Engine engine(pool);
  return engine.Simplify(e).expr;
}

std::size_t ConstraintSetSize(const std::vector<Expr>& constraints) {
  std::size_t total = 0;
  for (Expr e : constraints) total += e.TreeSize();
  return total;
}

}  // namespace ns::simplify
