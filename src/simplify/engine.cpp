#include "simplify/engine.hpp"

#include <numeric>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/status.hpp"

namespace ns::simplify {

using smt::Expr;
using smt::ExprPool;
using smt::Op;

Engine::Engine(ExprPool& pool, EngineOptions options)
    : pool_(pool), options_(options) {}

std::string TraceEntry::ToString() const {
  return std::string(RuleName(rule)) + ": " + before.ToString() + "  ==>  " +
         after.ToString();
}

std::size_t Engine::TotalRuleHits() const noexcept {
  return std::accumulate(stats_.begin(), stats_.end(), std::size_t{0});
}

SimplifyOutcome Engine::Simplify(Expr e) {
  SimplifyOutcome outcome{e, 0, true};
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    pass_memo_.clear();
    const Expr next = PassOnce(outcome.expr);
    ++outcome.passes;
    if (next == outcome.expr) {
      last_passes_ = outcome.passes;
      return outcome;  // fixpoint
    }
    outcome.expr = next;
  }
  outcome.converged = false;
  last_passes_ = outcome.passes;
  NS_WARN << "simplifier hit pass limit (" << options_.max_passes
          << ") before reaching a fixpoint";
  return outcome;
}

Expr Engine::PassOnce(Expr e) {
  const auto it = pass_memo_.find(e.raw());
  if (it != pass_memo_.end()) return it->second;

  Expr result = e;
  if (e.NumChildren() > 0) {
    // Bottom-up: children first.
    std::vector<Expr> children;
    children.reserve(e.NumChildren());
    bool changed = false;
    for (std::size_t i = 0; i < e.NumChildren(); ++i) {
      const Expr child = PassOnce(e.Child(i));
      changed = changed || child != e.Child(i);
      children.push_back(child);
    }
    if (changed) {
      switch (e.op()) {
        case Op::kNot: result = pool_.Not(children[0]); break;
        case Op::kAnd: result = pool_.And(children); break;
        case Op::kOr: result = pool_.Or(children); break;
        case Op::kImplies: result = pool_.Implies(children[0], children[1]); break;
        case Op::kIte:
          result = pool_.Ite(children[0], children[1], children[2]);
          break;
        case Op::kEq: result = pool_.Eq(children[0], children[1]); break;
        case Op::kLt: result = pool_.Lt(children[0], children[1]); break;
        case Op::kLe: result = pool_.Le(children[0], children[1]); break;
        case Op::kAdd: result = pool_.Add(children[0], children[1]); break;
        case Op::kSub: result = pool_.Sub(children[0], children[1]); break;
        case Op::kMul: result = pool_.Mul(children[0], children[1]); break;
        default: break;
      }
    }
  }
  result = RewriteNode(result);
  pass_memo_.emplace(e.raw(), result);
  return result;
}

Expr Engine::RewriteNode(Expr e) {
  // Apply local rules repeatedly at this node; each application may expose
  // another (e.g. flatten then identity). Bounded by the node's size.
  for (int guard = 0; guard < 1024; ++guard) {
    if (e.op() == Op::kAnd && options_.propagate_units) {
      const Expr propagated = PropagateWithinAnd(e);
      if (propagated != e) {
        if (options_.record_trace && trace_.size() < options_.max_trace_entries) {
          trace_.push_back(TraceEntry{RuleId::kUnitPropagation, e, propagated});
        }
        e = propagated;
        if (e.op() != Op::kAnd) continue;
      }
    }
    // Snapshot the per-rule counters so the fired rule can be identified
    // for the trace without changing ApplyLocalRules' interface.
    const RuleStats before_stats = stats_;
    const auto rewritten = ApplyLocalRules(pool_, e, &stats_);
    if (!rewritten) return e;
    if (options_.record_trace && trace_.size() < options_.max_trace_entries) {
      RuleId fired = RuleId::kConstFold;
      for (int rule = 0; rule < kNumRules; ++rule) {
        if (stats_[static_cast<std::size_t>(rule)] !=
            before_stats[static_cast<std::size_t>(rule)]) {
          fired = static_cast<RuleId>(rule);
          break;
        }
      }
      trace_.push_back(TraceEntry{fired, e, *rewritten});
    }
    e = *rewritten;
    if (e.NumChildren() == 0) return e;  // constant/leaf: done
  }
  NS_WARN << "node rewrite guard tripped";
  return e;
}

Expr Engine::PropagateWithinAnd(Expr e) {
  // R13/R14: collect units among the conjuncts —
  //   boolean literal  v      =>  v := true
  //   boolean literal  ¬v     =>  v := false
  //   equality         x = c  =>  x := c
  // and substitute them into every *other*, non-unit conjunct. Units are
  // preserved verbatim so no information is lost.
  const std::vector<Expr> children = e.Children();
  std::unordered_map<std::string, Expr> env;
  // Variable each unit conjunct binds; empty for non-units.
  std::vector<std::string> unit_var(children.size());

  for (std::size_t i = 0; i < children.size(); ++i) {
    const Expr c = children[i];
    if (c.IsVar() && c.sort() == smt::Sort::kBool) {
      if (env.emplace(c.name(), pool_.True()).second) unit_var[i] = c.name();
    } else if (c.op() == Op::kNot && c.Child(0).IsVar()) {
      if (env.emplace(c.Child(0).name(), pool_.False()).second) {
        unit_var[i] = c.Child(0).name();
      }
    } else if (c.op() == Op::kEq) {
      const Expr lhs = c.Child(0);
      const Expr rhs = c.Child(1);
      if (lhs.IsVar() && rhs.IsConst()) {
        if (env.emplace(lhs.name(), rhs).second) unit_var[i] = lhs.name();
      } else if (rhs.IsVar() && lhs.IsConst()) {
        if (env.emplace(rhs.name(), lhs).second) unit_var[i] = rhs.name();
      }
    }
  }
  if (env.empty()) return e;

  bool changed = false;
  bool bool_unit_fired = false;
  bool eq_unit_fired = false;
  std::vector<Expr> rebuilt;
  rebuilt.reserve(children.size());
  for (std::size_t i = 0; i < children.size(); ++i) {
    // A unit is substituted with everything except its *own* binding, so
    // `x=3 ∧ x=4` collapses to `x=3 ∧ false` while `x=3` itself survives.
    Expr substituted = children[i];
    if (unit_var[i].empty()) {
      substituted = smt::Substitute(pool_, children[i], env);
    } else if (env.size() > 1) {
      auto reduced = env;
      reduced.erase(unit_var[i]);
      substituted = smt::Substitute(pool_, children[i], reduced);
    }
    if (substituted != children[i]) {
      changed = true;
      // Attribute the hit: equality bindings vs boolean literals.
      for (const Expr var : children[i].FreeVars()) {
        const auto found = env.find(var.name());
        if (found == env.end()) continue;
        (found->second.IsBoolConst() && var.sort() == smt::Sort::kBool
             ? bool_unit_fired
             : eq_unit_fired) = true;
      }
    }
    rebuilt.push_back(substituted);
  }
  if (!changed) return e;
  if (bool_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kUnitPropagation)] += 1;
  }
  if (eq_unit_fired) {
    stats_[static_cast<std::size_t>(RuleId::kEqPropagation)] += 1;
  }
  return pool_.And(rebuilt);
}

std::vector<Expr> Engine::SimplifyConstraints(std::vector<Expr> constraints) {
  if (constraints.empty()) return constraints;
  const Expr conjunction =
      constraints.size() == 1 ? constraints.front() : pool_.And(constraints);
  const Expr simplified = Simplify(conjunction).expr;

  std::vector<Expr> out;
  if (simplified.op() == Op::kAnd) {
    for (Expr c : simplified.Children()) {
      if (!c.IsTrue()) out.push_back(c);
    }
  } else if (!simplified.IsTrue()) {
    out.push_back(simplified);
  }
  return out;
}

Expr Simplify(ExprPool& pool, Expr e) {
  Engine engine(pool);
  return engine.Simplify(e).expr;
}

std::size_t ConstraintSetSize(const std::vector<Expr>& constraints) {
  std::size_t total = 0;
  for (Expr e : constraints) total += e.TreeSize();
  return total;
}

}  // namespace ns::simplify
