// Fixpoint rewrite engine (paper §3 step 3): applies the 15 rules
// bottom-up, pass after pass, "until no further rules could be applied".
//
// The two conjunction-context rules (unit propagation, equality
// propagation) live here rather than in rules.cpp because they need the
// sibling conjuncts: a ∧ φ[a] ≡ a ∧ φ[a:=true], (x=c) ∧ φ[x] ≡ (x=c) ∧ φ[x:=c].
// They are what makes *partial evaluation* work when the explainer pins
// every other router's configuration to concrete values.
//
// Performance model: PassOnce is a pure function of the node (rules are
// deterministic and context-free; the conjunction rules only read the
// node's own children), so a node→result memo entry never goes *wrong*
// across passes or Simplify calls. But the per-pass-memo reference engine
// recounts a rule whenever a later rewrite re-creates a node it already
// rewrote (e.g. unit propagation substituting b:=true re-creates `¬true`),
// and that count is part of the engine's observable behavior. So only
// *clean* entries — node already at fixpoint, zero rules fired anywhere in
// its subtree — persist across passes; recomputing those is observably a
// no-op, which is exactly what a memo hit is. Entries touched by any
// rewrite are dropped at the end of the pass. Fixpoints, rule-hit counts,
// and traces are bit-identical to the reference engine; only the redundant
// re-traversal of at-fixpoint subtrees (the vast bulk of every pass after
// the first) disappears.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simplify/rules.hpp"
#include "smt/expr.hpp"

namespace ns::simplify {

/// Shared memo tier for frozen-arena nodes (DESIGN.md §11): a thread-safe
/// set of nodes known to be *clean* — already at simplify fixpoint, with
/// zero rules firing anywhere in their subtree — under default-semantics
/// EngineOptions (propagate_units on). Engines over overlays of one arena
/// consult it on memo misses for frozen nodes (id < frozen_limit) and
/// publish clean frozen entries back, so the at-fixpoint bulk of a frozen
/// seed encoding is traversed once per arena rather than once per request.
///
/// A hit is observably a no-op by the same argument as the cross-pass
/// memo: clean entries map a node to itself with no rule hits and no trace
/// entries, so fixpoints, rule-hit counts, and traces stay bit-identical.
/// One cache per arena; sharing across arenas would confuse node ids.
class FixpointCache {
 public:
  explicit FixpointCache(std::size_t frozen_limit)
      : frozen_limit_(frozen_limit) {}
  FixpointCache(const FixpointCache&) = delete;
  FixpointCache& operator=(const FixpointCache&) = delete;

  /// First id past the frozen tier: only nodes with id < frozen_limit()
  /// may be looked up or inserted (overlay nodes are request-local).
  std::size_t frozen_limit() const noexcept { return frozen_limit_; }

  /// True iff `node` is known clean. Counts a hit or a miss.
  bool Lookup(const smt::Node* node) const {
    {
      std::shared_lock lock(mu_);
      if (clean_.count(node) > 0) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Publishes a node proven clean by a default-semantics engine.
  void Insert(const smt::Node* node) {
    std::unique_lock lock(mu_);
    clean_.insert(node);
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return clean_.size();
  }
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t frozen_limit_;
  mutable std::shared_mutex mu_;
  std::unordered_set<const smt::Node*> clean_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

struct EngineOptions {
  /// Upper bound on full passes; the scenarios converge in < 10.
  int max_passes = 64;
  /// Enable the conjunction-context rules (R13/R14). The E8 baseline turns
  /// them off to mimic a purely local generic simplifier.
  bool propagate_units = true;
  /// Record a bounded audit trail of rule applications (Engine::trace()).
  /// Off by default: large seeds fire thousands of rules.
  bool record_trace = false;
  std::size_t max_trace_entries = 4096;
  /// Keep *clean* memo entries (node at fixpoint, no rules fired in its
  /// subtree) across fixpoint passes and Simplify calls instead of clearing
  /// everything per pass; see the header comment. Semantics, fixpoints,
  /// rule-hit counts, and traces are identical; only redundant re-traversal
  /// disappears. Off = the reference per-pass-memo behavior (benchmarks,
  /// property tests).
  bool cross_pass_memo = true;
  /// Use cached free-variable sets and bloom masks so unit/equality
  /// propagation substitutes only into conjuncts that actually mention a
  /// bound variable, without copying the unit environment per conjunct.
  /// Off = the reference O(units × conjuncts) substitution scan.
  bool indexed_propagation = true;
  /// Shared clean-node memo over the frozen arena this engine's pool
  /// overlays (non-owning; must outlive the engine). Consulted only when
  /// the engine runs default semantics (cross_pass_memo and
  /// propagate_units both on) — a cache built under unit propagation says
  /// nothing about an engine that disables it.
  FixpointCache* shared_fixpoints = nullptr;
};

/// Reference (pre-optimization) engine configuration: per-pass memo and
/// unindexed propagation. Used by benches and equivalence property tests.
constexpr EngineOptions ReferenceEngineOptions() {
  EngineOptions options;
  options.cross_pass_memo = false;
  options.indexed_propagation = false;
  return options;
}

/// One recorded rewrite step: `rule` turned `before` into `after`.
struct TraceEntry {
  RuleId rule;
  smt::Expr before;
  smt::Expr after;

  std::string ToString() const;
};

struct SimplifyOutcome {
  smt::Expr expr;
  int passes = 0;        ///< passes actually run (last one is a no-op check)
  bool converged = true; ///< false iff max_passes was hit while still changing
};

class Engine {
 public:
  explicit Engine(smt::ExprPool& pool, EngineOptions options = {});

  /// Simplifies one expression to fixpoint.
  SimplifyOutcome Simplify(smt::Expr e);

  /// Simplifies a constraint *set*: the set is treated as one conjunction
  /// (so units in one constraint propagate into the others), then split
  /// back into top-level conjuncts. Tautological conjuncts disappear; an
  /// inconsistent set collapses to the single constraint `false`.
  std::vector<smt::Expr> SimplifyConstraints(std::vector<smt::Expr> constraints);

  const RuleStats& stats() const noexcept { return stats_; }
  std::size_t TotalRuleHits() const noexcept;
  /// Passes run by the most recent Simplify/SimplifyConstraints call.
  int last_passes() const noexcept { return last_passes_; }
  /// Audit trail (only populated with EngineOptions::record_trace).
  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }
  /// Memoized single-pass results currently held (bench introspection).
  std::size_t memo_size() const noexcept { return pass_memo_.size(); }

 private:
  /// One single-pass result. `clean` records that the node was already at
  /// fixpoint and computing it fired no rules anywhere in its subtree —
  /// only such entries may outlive the pass (recomputing them is
  /// observably a no-op; anything else must be recomputed so rule-hit
  /// counts match the reference engine exactly).
  struct MemoEntry {
    smt::Expr result;
    bool clean;
  };

  smt::Expr PassOnce(smt::Expr e);
  const MemoEntry& PassOnceEntry(smt::Expr e);
  /// Drops non-clean entries between passes (or everything, in reference
  /// mode).
  void FlushPassMemo();
  smt::Expr RewriteNode(smt::Expr e);
  smt::Expr PropagateWithinAnd(smt::Expr e);
  smt::Expr PropagateWithinAndIndexed(smt::Expr e);
  smt::Expr PropagateWithinAndReference(smt::Expr e);

  smt::ExprPool& pool_;
  EngineOptions options_;
  /// options_.shared_fixpoints iff this engine runs default semantics,
  /// else null (see EngineOptions::shared_fixpoints).
  FixpointCache* shared_ = nullptr;
  RuleStats stats_{};
  int last_passes_ = 0;
  std::vector<TraceEntry> trace_;
  std::unordered_map<const smt::Node*, MemoEntry> pass_memo_;
  std::vector<const smt::Node*> dirty_;  ///< keys to drop at pass end
};

/// Convenience: one-shot simplification with default options.
smt::Expr Simplify(smt::ExprPool& pool, smt::Expr e);

/// Total *tree* size of a constraint set (the paper's size metric).
std::size_t ConstraintSetSize(const std::vector<smt::Expr>& constraints);

}  // namespace ns::simplify
