// Fixpoint rewrite engine (paper §3 step 3): applies the 15 rules
// bottom-up, pass after pass, "until no further rules could be applied".
//
// The two conjunction-context rules (unit propagation, equality
// propagation) live here rather than in rules.cpp because they need the
// sibling conjuncts: a ∧ φ[a] ≡ a ∧ φ[a:=true], (x=c) ∧ φ[x] ≡ (x=c) ∧ φ[x:=c].
// They are what makes *partial evaluation* work when the explainer pins
// every other router's configuration to concrete values.
#pragma once

#include <string>
#include <vector>

#include "simplify/rules.hpp"
#include "smt/expr.hpp"

namespace ns::simplify {

struct EngineOptions {
  /// Upper bound on full passes; the scenarios converge in < 10.
  int max_passes = 64;
  /// Enable the conjunction-context rules (R13/R14). The E8 baseline turns
  /// them off to mimic a purely local generic simplifier.
  bool propagate_units = true;
  /// Record a bounded audit trail of rule applications (Engine::trace()).
  /// Off by default: large seeds fire thousands of rules.
  bool record_trace = false;
  std::size_t max_trace_entries = 4096;
};

/// One recorded rewrite step: `rule` turned `before` into `after`.
struct TraceEntry {
  RuleId rule;
  smt::Expr before;
  smt::Expr after;

  std::string ToString() const;
};

struct SimplifyOutcome {
  smt::Expr expr;
  int passes = 0;        ///< passes actually run (last one is a no-op check)
  bool converged = true; ///< false iff max_passes was hit while still changing
};

class Engine {
 public:
  explicit Engine(smt::ExprPool& pool, EngineOptions options = {});

  /// Simplifies one expression to fixpoint.
  SimplifyOutcome Simplify(smt::Expr e);

  /// Simplifies a constraint *set*: the set is treated as one conjunction
  /// (so units in one constraint propagate into the others), then split
  /// back into top-level conjuncts. Tautological conjuncts disappear; an
  /// inconsistent set collapses to the single constraint `false`.
  std::vector<smt::Expr> SimplifyConstraints(std::vector<smt::Expr> constraints);

  const RuleStats& stats() const noexcept { return stats_; }
  std::size_t TotalRuleHits() const noexcept;
  /// Passes run by the most recent Simplify/SimplifyConstraints call.
  int last_passes() const noexcept { return last_passes_; }
  /// Audit trail (only populated with EngineOptions::record_trace).
  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }

 private:
  smt::Expr PassOnce(smt::Expr e);
  smt::Expr RewriteNode(smt::Expr e);
  smt::Expr PropagateWithinAnd(smt::Expr e);

  smt::ExprPool& pool_;
  EngineOptions options_;
  RuleStats stats_{};
  int last_passes_ = 0;
  std::vector<TraceEntry> trace_;
  std::unordered_map<const smt::Node*, smt::Expr> pass_memo_;
};

/// Convenience: one-shot simplification with default options.
smt::Expr Simplify(smt::ExprPool& pool, smt::Expr e);

/// Total *tree* size of a constraint set (the paper's size metric).
std::size_t ConstraintSetSize(const std::vector<smt::Expr>& constraints);

}  // namespace ns::simplify
