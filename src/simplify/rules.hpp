// The 15 rewrite rules (after Nazari et al., OOPSLA'23 — the simplification
// procedure the paper applies to seed specifications, §3 step 3).
//
// Each rule is a local, equivalence-preserving transformation; the engine
// (engine.hpp) applies them bottom-up to a fixpoint ("iteratively ... until
// no further rules could be applied", paper §4). The paper quotes two of
// the rules explicitly, which appear here verbatim:
//   R8  (implication):    false -> a  ≡  true
//   R6  (complementation): a ∨ ¬a     ≡  true
#pragma once

#include <array>
#include <optional>

#include "smt/expr.hpp"

namespace ns::simplify {

enum class RuleId : int {
  kNotConst = 0,     ///< ¬true ≡ false, ¬false ≡ true
  kDoubleNegation,   ///< ¬¬a ≡ a
  kAndIdentity,      ///< a ∧ true ≡ a;  a ∧ false ≡ false
  kOrIdentity,       ///< a ∨ false ≡ a;  a ∨ true ≡ true
  kIdempotence,      ///< a ∧ a ≡ a;  a ∨ a ≡ a
  kComplement,       ///< a ∧ ¬a ≡ false;  a ∨ ¬a ≡ true
  kAbsorption,       ///< a ∧ (a ∨ b) ≡ a;  a ∨ (a ∧ b) ≡ a
  kImplication,      ///< false→a ≡ true; true→a ≡ a; a→true ≡ true;
                     ///< a→false ≡ ¬a; a→a ≡ true
  kIteReduction,     ///< ite(true,a,b) ≡ a; ite(false,a,b) ≡ b;
                     ///< ite(c,a,a) ≡ a; ite(c,true,false) ≡ c;
                     ///< ite(c,false,true) ≡ ¬c
  kReflexivity,      ///< a = a ≡ true;  a < a ≡ false;  a ≤ a ≡ true
  kConstFold,        ///< constant folding over =, <, ≤, +, −, ×
  kFlatten,          ///< (a ∧ b) ∧ c ≡ a ∧ b ∧ c (likewise ∨)
  kUnitPropagation,  ///< a ∧ φ[a] ≡ a ∧ φ[a := true] (a a boolean literal)
  kEqPropagation,    ///< (x = c) ∧ φ[x] ≡ (x = c) ∧ φ[x := c]
  kFactoring,        ///< (a ∧ b) ∨ (a ∧ c) ≡ a ∧ (b ∨ c)
};

inline constexpr int kNumRules = 15;

const char* RuleName(RuleId rule) noexcept;

/// Hit counters, indexed by RuleId.
using RuleStats = std::array<std::size_t, kNumRules>;

/// Applies the *node-local* rules (all but unit/eq propagation, which need
/// conjunction context and live in the engine) once at the root of `e`,
/// assuming children are already simplified. Returns nullopt when no rule
/// fires. `stats` (optional) is incremented per fired rule.
std::optional<smt::Expr> ApplyLocalRules(smt::ExprPool& pool, smt::Expr e,
                                         RuleStats* stats);

namespace testing {

/// Test-only fault injection for the netfuzz harness: while a fault is
/// armed, every *boolean-valued* rewrite produced by the given local rule
/// is replaced by `true` — a deliberate, deterministic soundness bug the
/// metamorphic oracles must catch and the delta-debugging minimizer must
/// preserve while shrinking. Only the 13 node-local rules are coverable
/// (unit/eq propagation live in the engine). Never armed in production
/// code paths; the flag is process-global, so arm it only in
/// single-scenario test drivers.
void InjectRuleFault(RuleId rule) noexcept;
/// Disarms any injected fault.
void ClearRuleFault() noexcept;
/// The armed fault, or nullopt.
std::optional<RuleId> InjectedRuleFault() noexcept;

}  // namespace testing

}  // namespace ns::simplify
