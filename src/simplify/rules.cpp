#include "simplify/rules.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

namespace ns::simplify {

namespace testing {
namespace {
// -1 = no fault armed; otherwise the RuleId to corrupt.
std::atomic<int> g_rule_fault{-1};
}  // namespace

void InjectRuleFault(RuleId rule) noexcept {
  g_rule_fault.store(static_cast<int>(rule), std::memory_order_relaxed);
}

void ClearRuleFault() noexcept {
  g_rule_fault.store(-1, std::memory_order_relaxed);
}

std::optional<RuleId> InjectedRuleFault() noexcept {
  const int raw = g_rule_fault.load(std::memory_order_relaxed);
  if (raw < 0) return std::nullopt;
  return static_cast<RuleId>(raw);
}

}  // namespace testing

using smt::Expr;
using smt::ExprPool;
using smt::Op;

const char* RuleName(RuleId rule) noexcept {
  switch (rule) {
    case RuleId::kNotConst: return "not-const";
    case RuleId::kDoubleNegation: return "double-negation";
    case RuleId::kAndIdentity: return "and-identity";
    case RuleId::kOrIdentity: return "or-identity";
    case RuleId::kIdempotence: return "idempotence";
    case RuleId::kComplement: return "complement";
    case RuleId::kAbsorption: return "absorption";
    case RuleId::kImplication: return "implication";
    case RuleId::kIteReduction: return "ite-reduction";
    case RuleId::kReflexivity: return "reflexivity";
    case RuleId::kConstFold: return "const-fold";
    case RuleId::kFlatten: return "flatten";
    case RuleId::kUnitPropagation: return "unit-propagation";
    case RuleId::kEqPropagation: return "eq-propagation";
    case RuleId::kFactoring: return "factoring";
  }
  return "?";
}

namespace {

void Bump(RuleStats* stats, RuleId rule) {
  if (stats != nullptr) (*stats)[static_cast<std::size_t>(rule)] += 1;
}

std::optional<Expr> SimplifyNot(ExprPool& pool, Expr e, RuleStats* stats) {
  const Expr a = e.Child(0);
  if (a.IsBoolConst()) {  // R1: ¬true ≡ false, ¬false ≡ true
    Bump(stats, RuleId::kNotConst);
    return pool.Bool(!a.IsTrue());
  }
  if (a.op() == Op::kNot) {  // R2: ¬¬a ≡ a
    Bump(stats, RuleId::kDoubleNegation);
    return a.Child(0);
  }
  return std::nullopt;
}

std::optional<Expr> SimplifyAndOr(ExprPool& pool, Expr e, RuleStats* stats) {
  const bool is_and = e.op() == Op::kAnd;
  const Expr neutral = is_and ? pool.True() : pool.False();
  const Expr absorbing = is_and ? pool.False() : pool.True();
  const std::vector<Expr> children = e.Children();

  // R12: flatten nested conjunctions/disjunctions.
  if (std::any_of(children.begin(), children.end(),
                  [&](Expr c) { return c.op() == e.op(); })) {
    std::vector<Expr> flat;
    for (Expr c : children) {
      if (c.op() == e.op()) {
        for (Expr grandchild : c.Children()) flat.push_back(grandchild);
      } else {
        flat.push_back(c);
      }
    }
    Bump(stats, RuleId::kFlatten);
    return is_and ? pool.And(flat) : pool.Or(flat);
  }

  // R3/R4: identity and annihilation by constants.
  if (std::any_of(children.begin(), children.end(),
                  [&](Expr c) { return c.IsBoolConst(); })) {
    std::vector<Expr> kept;
    for (Expr c : children) {
      if (c == absorbing) {
        Bump(stats, is_and ? RuleId::kAndIdentity : RuleId::kOrIdentity);
        return absorbing;
      }
      if (c != neutral) kept.push_back(c);
    }
    Bump(stats, is_and ? RuleId::kAndIdentity : RuleId::kOrIdentity);
    if (kept.empty()) return neutral;
    return is_and ? pool.And(kept) : pool.Or(kept);
  }

  // R5: idempotence (duplicates are pointer-equal thanks to hash-consing).
  {
    std::set<Expr> unique(children.begin(), children.end());
    if (unique.size() < children.size()) {
      std::vector<Expr> kept;
      std::set<Expr> seen;
      for (Expr c : children) {
        if (seen.insert(c).second) kept.push_back(c);
      }
      Bump(stats, RuleId::kIdempotence);
      return is_and ? pool.And(kept) : pool.Or(kept);
    }
  }

  // R6: complementation — a together with ¬a.
  {
    std::set<Expr> operand_set(children.begin(), children.end());
    for (Expr c : children) {
      if (c.op() == Op::kNot && operand_set.count(c.Child(0)) > 0) {
        Bump(stats, RuleId::kComplement);
        return absorbing;
      }
    }
  }

  // R7: absorption — drop an inner dual node containing a sibling.
  {
    const Op dual = is_and ? Op::kOr : Op::kAnd;
    std::set<Expr> operand_set(children.begin(), children.end());
    for (std::size_t i = 0; i < children.size(); ++i) {
      const Expr c = children[i];
      if (c.op() != dual) continue;
      const auto inner = c.Children();
      const bool absorbs =
          std::any_of(inner.begin(), inner.end(), [&](Expr in) {
            return in != c && operand_set.count(in) > 0;
          });
      if (absorbs) {
        std::vector<Expr> kept;
        for (std::size_t j = 0; j < children.size(); ++j) {
          if (j != i) kept.push_back(children[j]);
        }
        Bump(stats, RuleId::kAbsorption);
        if (kept.size() == 1) return kept.front();
        return is_and ? pool.And(kept) : pool.Or(kept);
      }
    }
  }

  // R15: factoring (Or of Ands with a common conjunct):
  //      (a ∧ b) ∨ (a ∧ c) ≡ a ∧ (b ∨ c).
  if (!is_and && children.size() >= 2 &&
      std::all_of(children.begin(), children.end(),
                  [](Expr c) { return c.op() == Op::kAnd; })) {
    const auto first = children.front().Children();
    std::set<Expr> common(first.begin(), first.end());
    for (std::size_t i = 1; i < children.size() && !common.empty(); ++i) {
      const auto parts = children[i].Children();
      const std::set<Expr> part_set(parts.begin(), parts.end());
      std::set<Expr> still;
      for (Expr f : common) {
        if (part_set.count(f) > 0) still.insert(f);
      }
      common = std::move(still);
    }
    if (!common.empty()) {
      std::vector<Expr> residual_disjuncts;
      for (Expr c : children) {
        std::vector<Expr> rest;
        for (Expr part : c.Children()) {
          if (common.count(part) == 0) rest.push_back(part);
        }
        if (rest.empty()) {
          // A disjunct that *is* the common factor: the whole Or reduces
          // to the factor (a ∨ (a ∧ c) case caught by absorption, but be
          // safe here too).
          Bump(stats, RuleId::kFactoring);
          std::vector<Expr> factor(common.begin(), common.end());
          return pool.And(factor);
        }
        residual_disjuncts.push_back(rest.size() == 1 ? rest.front()
                                                      : pool.And(rest));
      }
      std::vector<Expr> conjuncts(common.begin(), common.end());
      conjuncts.push_back(pool.Or(residual_disjuncts));
      Bump(stats, RuleId::kFactoring);
      return pool.And(conjuncts);
    }
  }

  return std::nullopt;
}

std::optional<Expr> SimplifyImplies(ExprPool& pool, Expr e, RuleStats* stats) {
  const Expr a = e.Child(0);
  const Expr b = e.Child(1);
  // R8 — includes the paper's quoted rule `false -> a ≡ true`.
  if (a.IsFalse() || b.IsTrue() || a == b) {
    Bump(stats, RuleId::kImplication);
    return pool.True();
  }
  if (a.IsTrue()) {
    Bump(stats, RuleId::kImplication);
    return b;
  }
  if (b.IsFalse()) {
    Bump(stats, RuleId::kImplication);
    return pool.Not(a);
  }
  return std::nullopt;
}

std::optional<Expr> SimplifyIte(ExprPool& pool, Expr e, RuleStats* stats) {
  const Expr cond = e.Child(0);
  const Expr then_e = e.Child(1);
  const Expr else_e = e.Child(2);
  if (cond.IsBoolConst()) {
    Bump(stats, RuleId::kIteReduction);
    return cond.IsTrue() ? then_e : else_e;
  }
  if (then_e == else_e) {
    Bump(stats, RuleId::kIteReduction);
    return then_e;
  }
  if (then_e.IsTrue() && else_e.IsFalse()) {
    Bump(stats, RuleId::kIteReduction);
    return cond;
  }
  if (then_e.IsFalse() && else_e.IsTrue()) {
    Bump(stats, RuleId::kIteReduction);
    return pool.Not(cond);
  }
  return std::nullopt;
}

std::optional<Expr> SimplifyAtom(ExprPool& pool, Expr e, RuleStats* stats) {
  const Expr a = e.Child(0);
  const Expr b = e.Child(1);
  // R10: reflexivity.
  if (a == b) {
    Bump(stats, RuleId::kReflexivity);
    switch (e.op()) {
      case Op::kEq:
      case Op::kLe: return pool.True();
      case Op::kLt: return pool.False();
      default: break;
    }
  }
  // R11: constant folding.
  if (a.IsConst() && b.IsConst()) {
    Bump(stats, RuleId::kConstFold);
    switch (e.op()) {
      case Op::kEq: return pool.Bool(a.value() == b.value());
      case Op::kLt: return pool.Bool(a.value() < b.value());
      case Op::kLe: return pool.Bool(a.value() <= b.value());
      default: break;
    }
  }
  // R11 (boolean equations): true = x ≡ x, false = x ≡ ¬x.
  if (e.op() == Op::kEq && a.sort() == smt::Sort::kBool) {
    if (a.IsBoolConst()) {
      Bump(stats, RuleId::kConstFold);
      return a.IsTrue() ? b : pool.Not(b);
    }
    if (b.IsBoolConst()) {
      Bump(stats, RuleId::kConstFold);
      return b.IsTrue() ? a : pool.Not(a);
    }
  }
  return std::nullopt;
}

std::optional<Expr> SimplifyArith(ExprPool& pool, Expr e, RuleStats* stats) {
  const Expr a = e.Child(0);
  const Expr b = e.Child(1);
  // R11: constant folding, including neutral/absorbing elements.
  if (a.IsIntConst() && b.IsIntConst()) {
    Bump(stats, RuleId::kConstFold);
    switch (e.op()) {
      case Op::kAdd: return pool.Int(a.value() + b.value());
      case Op::kSub: return pool.Int(a.value() - b.value());
      case Op::kMul: return pool.Int(a.value() * b.value());
      default: break;
    }
  }
  const auto is_zero = [](Expr x) { return x.IsIntConst() && x.value() == 0; };
  const auto is_one = [](Expr x) { return x.IsIntConst() && x.value() == 1; };
  switch (e.op()) {
    case Op::kAdd:
      if (is_zero(a)) { Bump(stats, RuleId::kConstFold); return b; }
      if (is_zero(b)) { Bump(stats, RuleId::kConstFold); return a; }
      break;
    case Op::kSub:
      if (is_zero(b)) { Bump(stats, RuleId::kConstFold); return a; }
      if (a == b) { Bump(stats, RuleId::kConstFold); return pool.Int(0); }
      break;
    case Op::kMul:
      if (is_zero(a) || is_zero(b)) {
        Bump(stats, RuleId::kConstFold);
        return pool.Int(0);
      }
      if (is_one(a)) { Bump(stats, RuleId::kConstFold); return b; }
      if (is_one(b)) { Bump(stats, RuleId::kConstFold); return a; }
      break;
    default:
      break;
  }
  return std::nullopt;
}

std::optional<Expr> Dispatch(ExprPool& pool, Expr e, RuleStats* stats) {
  switch (e.op()) {
    case Op::kNot: return SimplifyNot(pool, e, stats);
    case Op::kAnd:
    case Op::kOr: return SimplifyAndOr(pool, e, stats);
    case Op::kImplies: return SimplifyImplies(pool, e, stats);
    case Op::kIte: return SimplifyIte(pool, e, stats);
    case Op::kEq:
    case Op::kLt:
    case Op::kLe: return SimplifyAtom(pool, e, stats);
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul: return SimplifyArith(pool, e, stats);
    default: return std::nullopt;
  }
}

}  // namespace

std::optional<Expr> ApplyLocalRules(ExprPool& pool, Expr e, RuleStats* stats) {
  const auto fault = testing::InjectedRuleFault();
  if (!fault.has_value()) return Dispatch(pool, e, stats);

  // Fault-injection path (test-only): run the rules against a local stat
  // block so we can tell *which* rule fired, then corrupt its result.
  RuleStats local{};
  std::optional<Expr> result = Dispatch(pool, e, &local);
  if (stats != nullptr) {
    for (std::size_t i = 0; i < local.size(); ++i) (*stats)[i] += local[i];
  }
  if (result.has_value() && local[static_cast<std::size_t>(*fault)] > 0 &&
      result->sort() == smt::Sort::kBool) {
    return pool.True();  // the injected soundness bug
  }
  return result;
}

}  // namespace ns::simplify
