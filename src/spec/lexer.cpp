#include "spec/lexer.hpp"

#include <cctype>

namespace ns::spec {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* TokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEllipsis: return "'...'";
    case TokenKind::kPrefer: return "'>>'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kComma: return "','";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {
bool IsIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto push = [&](TokenKind kind, std::string text, int tok_col) {
    tokens.push_back(Token{kind, std::move(text), line, tok_col});
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    const int tok_col = column;
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < source.size() && IsIdentCont(source[i])) {
        ++i;
        ++column;
      }
      push(TokenKind::kIdent, std::string(source.substr(start, i - start)),
           tok_col);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
        ++column;
      }
      push(TokenKind::kNumber, std::string(source.substr(start, i - start)),
           tok_col);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('-', '>')) {
      push(TokenKind::kArrow, "", tok_col);
      i += 2;
      column += 2;
      continue;
    }
    if (two('>', '>')) {
      push(TokenKind::kPrefer, "", tok_col);
      i += 2;
      column += 2;
      continue;
    }
    if (c == '.' && i + 2 < source.size() && source[i + 1] == '.' &&
        source[i + 2] == '.') {
      push(TokenKind::kEllipsis, "", tok_col);
      i += 3;
      column += 3;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '!': kind = TokenKind::kBang; break;
      case '=': kind = TokenKind::kEquals; break;
      case '/': kind = TokenKind::kSlash; break;
      case '.': kind = TokenKind::kDot; break;
      case ',': kind = TokenKind::kComma; break;
      default:
        return Error(ErrorCode::kParse,
                     std::string("unexpected character '") + c + "'", line,
                     tok_col);
    }
    push(kind, "", tok_col);
    ++i;
    ++column;
  }
  tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return tokens;
}

}  // namespace ns::spec
