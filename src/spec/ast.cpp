#include "spec/ast.hpp"

#include <sstream>

namespace ns::spec {

bool PathPattern::HasWildcard() const noexcept {
  for (const PathElem& e : elems) {
    if (e.IsWildcard()) return true;
  }
  return false;
}

std::vector<std::string> PathPattern::NodeNames() const {
  std::vector<std::string> out;
  for (const PathElem& e : elems) {
    if (!e.IsWildcard()) out.push_back(e.name);
  }
  return out;
}

std::string PathPattern::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (i != 0) os << "->";
    os << (elems[i].IsWildcard() ? "..." : elems[i].name);
  }
  return os.str();
}

std::string ToString(const Statement& stmt) {
  std::ostringstream os;
  if (const auto* forbid = std::get_if<ForbidStmt>(&stmt)) {
    os << "!(" << forbid->path.ToString() << ")";
  } else if (const auto* prefer = std::get_if<PreferStmt>(&stmt)) {
    for (std::size_t i = 0; i < prefer->ranking.size(); ++i) {
      if (i != 0) os << " >> ";
      os << "(" << prefer->ranking[i].ToString() << ")";
    }
  } else if (const auto* allow = std::get_if<AllowStmt>(&stmt)) {
    os << "(" << allow->path.ToString() << ")";
  }
  return os.str();
}

std::string Requirement::ToString() const {
  std::ostringstream os;
  os << name;
  if (scope_router) {
    // Localized block headers render as "<router>" / "<router> to <peer>",
    // matching the paper's Figs. 2 and 5 (`name` holds the router name).
    if (scope_peer) os << " to " << *scope_peer;
  }
  os << " {\n";
  for (const Statement& stmt : statements) {
    os << "  " << spec::ToString(stmt) << "\n";
  }
  os << "}";
  return os.str();
}

const DestDecl* Spec::FindDestination(std::string_view name) const noexcept {
  for (const DestDecl& d : destinations) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const Requirement* Spec::FindRequirement(std::string_view name) const noexcept {
  for (const Requirement& r : requirements) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string Spec::ToString() const {
  std::ostringstream os;
  for (const DestDecl& d : destinations) {
    os << "dest " << d.name << " = " << d.prefix.ToString() << " at ";
    for (std::size_t i = 0; i < d.origins.size(); ++i) {
      if (i != 0) os << ", ";
      os << d.origins[i];
    }
    os << "\n";
  }
  if (!destinations.empty() && !requirements.empty()) os << "\n";
  for (std::size_t i = 0; i < requirements.size(); ++i) {
    if (i != 0) os << "\n";
    os << requirements[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace ns::spec
