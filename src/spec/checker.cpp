#include "spec/checker.hpp"

#include <algorithm>
#include <sstream>

#include "spec/matcher.hpp"
#include "util/strings.hpp"

namespace ns::spec {

namespace {

std::string FormatSeq(const std::vector<std::string>& seq) {
  return util::Join(seq, " -> ");
}

class CheckerImpl {
 public:
  CheckerImpl(const Spec& spec, const RoutingOutcome& outcome,
              CheckOptions options)
      : spec_(spec), outcome_(outcome), options_(options) {}

  CheckResult Run() {
    for (const Requirement& req : spec_.requirements) {
      if (req.IsLocalized()) continue;  // subspecs are validated elsewhere
      for (const Statement& stmt : req.statements) {
        std::visit([&](const auto& s) { CheckStmt(req, stmt, s); }, stmt);
      }
    }
    return std::move(result_);
  }

 private:
  void AddViolation(const Requirement& req, const Statement& stmt,
                    std::string detail) {
    result_.violations.push_back(
        Violation{req.name, spec::ToString(stmt), std::move(detail)});
  }

  /// True if the pattern reads in traffic direction (ends at a declared
  /// destination name).
  bool IsTrafficPattern(const PathPattern& pattern) const {
    return spec_.FindDestination(pattern.elems.back().name) != nullptr;
  }

  /// Is this route covered by an AllowStmt anywhere in the spec?
  bool ExplicitlyAllowed(const std::string& dest,
                         const AnnouncementPath& via) const {
    for (const Requirement& req : spec_.requirements) {
      if (req.IsLocalized()) continue;
      for (const Statement& stmt : req.statements) {
        const auto* allow = std::get_if<AllowStmt>(&stmt);
        if (allow != nullptr && PatternHitsRoute(allow->path, dest, via)) {
          return true;
        }
      }
    }
    return false;
  }

  /// Does `pattern` occur (as an infix) along a usable route for `dest`?
  bool PatternHitsRoute(const PathPattern& pattern, const std::string& dest,
                        const AnnouncementPath& via) const {
    if (IsTrafficPattern(pattern)) {
      if (pattern.elems.back().name != dest) return false;
      return MatchesInfix(pattern, TrafficSequence(via, dest));
    }
    return MatchesInfix(pattern, via);
  }

  // A forbidden pattern must not occur along any usable route for any
  // destination (best routes are a subset of usable routes).
  void CheckStmt(const Requirement& req, const Statement& stmt,
                 const ForbidStmt& forbid) {
    for (const auto& [dest, vias] : outcome_.usable) {
      for (const AnnouncementPath& via : vias) {
        if (PatternHitsRoute(forbid.path, dest, via)) {
          AddViolation(req, stmt,
                       "usable route for " + dest +
                           " traverses forbidden pattern: " + FormatSeq(via) +
                           " (announcement direction)");
        }
      }
    }
  }

  // At least one usable route must realize the pattern.
  void CheckStmt(const Requirement& req, const Statement& stmt,
                 const AllowStmt& allow) {
    for (const auto& [dest, vias] : outcome_.usable) {
      for (const AnnouncementPath& via : vias) {
        if (PatternHitsRoute(allow.path, dest, via)) return;  // satisfied
      }
    }
    AddViolation(req, stmt, "no usable route matches the allow pattern");
  }

  void CheckStmt(const Requirement& req, const Statement& stmt,
                 const PreferStmt& prefer) {
    if (prefer.ranking.size() < 2) {
      AddViolation(req, stmt, "preference needs at least two paths");
      return;
    }
    const std::string src = prefer.ranking.front().elems.front().name;
    const std::string dest = prefer.ranking.front().elems.back().name;
    for (const PathPattern& p : prefer.ranking) {
      if (p.elems.front().name != src || p.elems.back().name != dest) {
        AddViolation(req, stmt,
                     "ranked paths must share source and destination");
        return;
      }
    }
    if (spec_.FindDestination(dest) == nullptr) {
      AddViolation(req, stmt, "preference destination '" + dest +
                                  "' is not a declared dest");
      return;
    }

    // Usable candidates arriving at src.
    std::vector<AnnouncementPath> at_src;
    const auto usable_it = outcome_.usable.find(dest);
    if (usable_it != outcome_.usable.end()) {
      for (const AnnouncementPath& via : usable_it->second) {
        if (!via.empty() && via.back() == src) at_src.push_back(via);
      }
    }

    const auto matches_rank = [&](const PathPattern& pattern,
                                  const AnnouncementPath& via) {
      return MatchesExactly(pattern, TrafficSequence(via, dest));
    };

    // Which ranked pattern (if any) has a usable instance at src?
    int best_available = -1;
    for (std::size_t i = 0; i < prefer.ranking.size(); ++i) {
      const bool available = std::any_of(
          at_src.begin(), at_src.end(), [&](const AnnouncementPath& via) {
            return matches_rank(prefer.ranking[i], via);
          });
      if (available) {
        best_available = static_cast<int>(i);
        break;
      }
    }

    if (options_.preference == PreferenceSemantics::kStrictBlocked) {
      // Every usable candidate at src must match one of the ranked
      // patterns — or be explicitly allowed elsewhere in the spec (the
      // fallback exemption of scenario 2's refinement).
      for (const AnnouncementPath& via : at_src) {
        const bool ranked =
            std::any_of(prefer.ranking.begin(), prefer.ranking.end(),
                        [&](const PathPattern& pattern) {
                          return matches_rank(pattern, via);
                        });
        if (ranked) continue;
        if (ExplicitlyAllowed(dest, via)) continue;
        AddViolation(req, stmt,
                     "unspecified path is usable (strict semantics): " +
                         FormatSeq(TrafficSequence(via, dest)));
      }
    }

    // The forwarding route at src must follow the best available pattern.
    const AnnouncementPath* fwd = nullptr;
    const auto fwd_dest = outcome_.forwarding.find(dest);
    if (fwd_dest != outcome_.forwarding.end()) {
      const auto fwd_src = fwd_dest->second.find(src);
      if (fwd_src != fwd_dest->second.end()) fwd = &fwd_src->second;
    }
    if (best_available < 0) {
      if (options_.preference == PreferenceSemantics::kStrictBlocked && fwd) {
        AddViolation(req, stmt,
                     "no ranked path available, but traffic still flows: " +
                         FormatSeq(TrafficSequence(*fwd, dest)));
      }
      return;
    }
    if (fwd == nullptr) {
      AddViolation(req, stmt, "ranked path available but " + src +
                                  " has no route to " + dest);
      return;
    }
    const auto& want = prefer.ranking[static_cast<std::size_t>(best_available)];
    if (!matches_rank(want, *fwd)) {
      AddViolation(req, stmt,
                   "forwarding path " + FormatSeq(TrafficSequence(*fwd, dest)) +
                       " does not follow the most preferred available path " +
                       want.ToString());
    }
  }

  const Spec& spec_;
  const RoutingOutcome& outcome_;
  CheckOptions options_;
  CheckResult result_;
};

}  // namespace

std::vector<std::string> TrafficSequence(const AnnouncementPath& via,
                                         const std::string& dest_name) {
  std::vector<std::string> seq(via.rbegin(), via.rend());
  seq.push_back(dest_name);
  return seq;
}

std::string Violation::ToString() const {
  std::ostringstream os;
  os << requirement << ": " << statement << " — " << detail;
  return os.str();
}

std::string CheckResult::ToString() const {
  if (ok()) return "all requirements satisfied";
  std::ostringstream os;
  os << util::Plural(violations.size(), "violation") << ":\n";
  for (const Violation& v : violations) os << "  " << v.ToString() << "\n";
  return os.str();
}

CheckResult Check(const Spec& spec, const RoutingOutcome& outcome,
                  CheckOptions options) {
  return CheckerImpl(spec, outcome, options).Run();
}

}  // namespace ns::spec
