// Matching concrete node sequences against path patterns with `...`
// wildcards. A wildcard matches zero or more intermediate nodes.
//
// Sequences are in *traffic direction* (source first, destination last);
// the destination name (e.g. `D1`) may appear as the final element when the
// pattern names a declared destination.
#pragma once

#include <string>
#include <vector>

#include "spec/ast.hpp"

namespace ns::spec {

/// True if `sequence` (whole sequence, exactly) matches `pattern`.
bool MatchesExactly(const PathPattern& pattern,
                    const std::vector<std::string>& sequence);

/// True if any contiguous subsequence (infix) of `sequence` matches
/// `pattern`. Forbidden-path semantics: traffic must not *traverse* the
/// pattern anywhere along its path.
bool MatchesInfix(const PathPattern& pattern,
                  const std::vector<std::string>& sequence);

/// True if a prefix of `sequence` matches `pattern`.
bool MatchesPrefix(const PathPattern& pattern,
                   const std::vector<std::string>& sequence);

}  // namespace ns::spec
