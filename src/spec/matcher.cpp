#include "spec/matcher.hpp"

namespace ns::spec {

namespace {

// Dynamic program over (pattern position, sequence position). Small inputs
// (paths are < 20 hops), so the O(P*S) table is plenty fast.
//
// match[p][s] == true  <=>  pattern[p..] matches sequence[s..] exactly.
bool MatchFrom(const PathPattern& pattern,
               const std::vector<std::string>& sequence, std::size_t p0,
               std::size_t s0, bool allow_trailing) {
  const std::size_t np = pattern.elems.size();
  const std::size_t ns = sequence.size();
  // dp[p][s]: pattern suffix from p matches sequence suffix from s.
  std::vector<std::vector<char>> dp(np + 1, std::vector<char>(ns + 1, 0));
  dp[np][ns] = 1;
  if (allow_trailing) {
    // Prefix match: an exhausted pattern accepts any remaining sequence.
    for (std::size_t s = 0; s <= ns; ++s) dp[np][s] = 1;
  }
  for (std::size_t p = np; p-- > 0;) {
    for (std::size_t s = ns + 1; s-- > 0;) {
      const PathElem& elem = pattern.elems[p];
      if (elem.IsWildcard()) {
        // Consume zero elements, or one element and stay on the wildcard.
        dp[p][s] = dp[p + 1][s] || (s < ns && dp[p][s + 1]);
      } else {
        dp[p][s] = s < ns && sequence[s] == elem.name && dp[p + 1][s + 1];
      }
    }
  }
  return dp[p0][s0] != 0;
}

}  // namespace

bool MatchesExactly(const PathPattern& pattern,
                    const std::vector<std::string>& sequence) {
  return MatchFrom(pattern, sequence, 0, 0, /*allow_trailing=*/false);
}

bool MatchesPrefix(const PathPattern& pattern,
                   const std::vector<std::string>& sequence) {
  return MatchFrom(pattern, sequence, 0, 0, /*allow_trailing=*/true);
}

bool MatchesInfix(const PathPattern& pattern,
                  const std::vector<std::string>& sequence) {
  for (std::size_t start = 0; start < sequence.size(); ++start) {
    std::vector<std::string> suffix(sequence.begin() +
                                        static_cast<std::ptrdiff_t>(start),
                                    sequence.end());
    if (MatchesPrefix(pattern, suffix)) return true;
  }
  return false;
}

}  // namespace ns::spec
