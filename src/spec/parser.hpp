// Recursive-descent parser for the requirement DSL (see ast.hpp for the
// grammar by example). Produces located parse errors on malformed input.
#pragma once

#include <string_view>

#include "spec/ast.hpp"
#include "util/status.hpp"

namespace ns::spec {

struct ParseOptions {
  /// When true, every block header names a router (optionally `to <peer>`)
  /// and the resulting requirements are localized subspecifications, as in
  /// the paper's Figs. 2, 4 and 5. When false (global specs), only the
  /// `X to Y` header form is treated as localized.
  bool localized = false;
};

/// Parses a full specification file.
util::Result<Spec> ParseSpec(std::string_view source, ParseOptions options = {});

/// Parses a single path pattern like "P1->...->P2" (no parentheses).
util::Result<PathPattern> ParsePathPattern(std::string_view source);

/// Parses a single statement ("!(A->B)", "(A) >> (B)", "(A->B)").
util::Result<Statement> ParseStatement(std::string_view source);

}  // namespace ns::spec
