#include "spec/parser.hpp"

#include <string>

#include "spec/lexer.hpp"

namespace ns::spec {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, ParseOptions options)
      : tokens_(std::move(tokens)), options_(options) {}

  Result<Spec> ParseSpecFile() {
    Spec spec;
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kIdent) && Peek().text == "dest") {
        auto decl = ParseDestDecl();
        if (!decl) return decl.error();
        spec.destinations.push_back(std::move(decl).value());
      } else {
        auto req = ParseRequirement();
        if (!req) return req.error();
        spec.requirements.push_back(std::move(req).value());
      }
    }
    return spec;
  }

  Result<PathPattern> ParsePatternOnly() {
    auto pattern = ParsePath();
    if (!pattern) return pattern.error();
    if (auto st = Expect(TokenKind::kEof); !st.ok()) return st.error();
    return pattern;
  }

  Result<Statement> ParseStatementOnly() {
    auto stmt = ParseStatement();
    if (!stmt) return stmt.error();
    if (auto st = Expect(TokenKind::kEof); !st.ok()) return st.error();
    return stmt;
  }

 private:
  const Token& Peek() const noexcept { return tokens_[pos_]; }
  bool At(TokenKind kind) const noexcept { return Peek().kind == kind; }

  Token Advance() { return tokens_[pos_++]; }

  Error Unexpected(std::string_view expected) const {
    const Token& tok = Peek();
    std::string got = TokenKindName(tok.kind);
    if (!tok.text.empty()) got += " '" + tok.text + "'";
    return Error(ErrorCode::kParse,
                 "expected " + std::string(expected) + ", got " + got, tok.line,
                 tok.column);
  }

  util::Status Expect(TokenKind kind) {
    if (!At(kind)) return Unexpected(TokenKindName(kind));
    Advance();
    return util::Status::Ok();
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (!At(TokenKind::kIdent)) return Unexpected(what);
    return Advance().text;
  }

  // dest D1 = 128.0.1.0/24 at P1
  Result<DestDecl> ParseDestDecl() {
    Advance();  // 'dest'
    auto name = ExpectIdent("destination name");
    if (!name) return name.error();
    if (auto st = Expect(TokenKind::kEquals); !st.ok()) return st.error();
    auto prefix = ParsePrefix();
    if (!prefix) return prefix.error();
    if (!At(TokenKind::kIdent) || Peek().text != "at") {
      return Unexpected("'at <origin router>[, <origin router>...]'");
    }
    Advance();  // 'at'
    std::vector<std::string> origins;
    while (true) {
      auto origin = ExpectIdent("origin router name");
      if (!origin) return origin.error();
      origins.push_back(std::move(origin).value());
      if (!At(TokenKind::kComma)) break;
      Advance();
    }
    return DestDecl{std::move(name).value(), prefix.value(),
                    std::move(origins)};
  }

  // 128.0.1.0/24 as NUM . NUM . NUM . NUM / NUM tokens
  Result<net::Prefix> ParsePrefix() {
    std::string text;
    for (int octet = 0; octet < 4; ++octet) {
      if (octet != 0) {
        if (auto st = Expect(TokenKind::kDot); !st.ok()) return st.error();
        text += '.';
      }
      if (!At(TokenKind::kNumber)) return Unexpected("prefix octet");
      text += Advance().text;
    }
    if (auto st = Expect(TokenKind::kSlash); !st.ok()) return st.error();
    if (!At(TokenKind::kNumber)) return Unexpected("prefix length");
    text += '/' + Advance().text;
    auto prefix = net::Prefix::Parse(text);
    if (!prefix) {
      return Error(ErrorCode::kParse, prefix.error().message(), Peek().line,
                   Peek().column);
    }
    return prefix.value();
  }

  // <name> [to <peer>] { stmt* }
  Result<Requirement> ParseRequirement() {
    auto name = ExpectIdent("requirement or router name");
    if (!name) return name.error();
    Requirement req;
    req.name = std::move(name).value();
    if (At(TokenKind::kIdent) && Peek().text == "to") {
      Advance();
      auto peer = ExpectIdent("peer router name");
      if (!peer) return peer.error();
      req.scope_router = req.name;
      req.scope_peer = std::move(peer).value();
    } else if (options_.localized) {
      req.scope_router = req.name;
    }
    if (auto st = Expect(TokenKind::kLBrace); !st.ok()) return st.error();
    while (!At(TokenKind::kRBrace)) {
      if (At(TokenKind::kIdent) && Peek().text == "preference") {
        // `preference { ... }` — statement group; contents must be
        // preferences or bare paths (which would be malformed anyway).
        Advance();
        if (auto st = Expect(TokenKind::kLBrace); !st.ok()) return st.error();
        while (!At(TokenKind::kRBrace)) {
          auto stmt = ParseStatement();
          if (!stmt) return stmt.error();
          req.statements.push_back(std::move(stmt).value());
        }
        Advance();  // '}'
        continue;
      }
      auto stmt = ParseStatement();
      if (!stmt) return stmt.error();
      req.statements.push_back(std::move(stmt).value());
    }
    Advance();  // '}'
    return req;
  }

  // '!' '(' path ')'  |  '(' path ')' ('>>' '(' path ')')*
  Result<Statement> ParseStatement() {
    if (At(TokenKind::kBang)) {
      Advance();
      auto path = ParseParenPath();
      if (!path) return path.error();
      return Statement{ForbidStmt{std::move(path).value()}};
    }
    if (!At(TokenKind::kLParen)) return Unexpected("'!' or '('");
    auto first = ParseParenPath();
    if (!first) return first.error();
    std::vector<PathPattern> ranking;
    ranking.push_back(std::move(first).value());
    while (At(TokenKind::kPrefer)) {
      Advance();
      auto next = ParseParenPath();
      if (!next) return next.error();
      ranking.push_back(std::move(next).value());
    }
    if (ranking.size() == 1) {
      return Statement{AllowStmt{std::move(ranking.front())}};
    }
    return Statement{PreferStmt{std::move(ranking)}};
  }

  Result<PathPattern> ParseParenPath() {
    if (auto st = Expect(TokenKind::kLParen); !st.ok()) return st.error();
    auto path = ParsePath();
    if (!path) return path.error();
    if (auto st = Expect(TokenKind::kRParen); !st.ok()) return st.error();
    return path;
  }

  Result<PathPattern> ParsePath() {
    PathPattern pattern;
    while (true) {
      if (At(TokenKind::kEllipsis)) {
        Advance();
        if (!pattern.elems.empty() && pattern.elems.back().IsWildcard()) {
          return Error(ErrorCode::kParse, "consecutive '...' in path pattern",
                       Peek().line, Peek().column);
        }
        pattern.elems.push_back(PathElem::Wildcard());
      } else if (At(TokenKind::kIdent)) {
        pattern.elems.push_back(PathElem::Node(Advance().text));
      } else {
        return Unexpected("path element (router name or '...')");
      }
      if (!At(TokenKind::kArrow)) break;
      Advance();
    }
    if (pattern.elems.size() < 2) {
      return Error(ErrorCode::kParse, "path pattern needs at least two hops",
                   Peek().line, Peek().column);
    }
    if (pattern.elems.front().IsWildcard() || pattern.elems.back().IsWildcard()) {
      return Error(ErrorCode::kParse,
                   "path pattern must start and end with a concrete node",
                   Peek().line, Peek().column);
    }
    return pattern;
  }

  std::vector<Token> tokens_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Spec> ParseSpec(std::string_view source, ParseOptions options) {
  auto tokens = Lex(source);
  if (!tokens) return tokens.error();
  return Parser(std::move(tokens).value(), options).ParseSpecFile();
}

Result<PathPattern> ParsePathPattern(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens) return tokens.error();
  return Parser(std::move(tokens).value(), {}).ParsePatternOnly();
}

Result<Statement> ParseStatement(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens) return tokens.error();
  return Parser(std::move(tokens).value(), {}).ParseStatementOnly();
}

}  // namespace ns::spec
