// Static analysis of a specification against a topology: the mistakes
// operators actually make (typo'd router names, unreachable patterns,
// duplicate requirement names, contradictory statements) caught before
// synthesis spends solver time on them.
#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"
#include "spec/ast.hpp"

namespace ns::spec {

enum class LintSeverity { kWarning, kError };

struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  std::string requirement;  ///< block name; empty for file-level findings
  std::string message;

  std::string ToString() const;
};

struct LintReport {
  std::vector<LintFinding> findings;

  bool HasErrors() const noexcept;
  std::string ToString() const;
};

/// Checks, per statement and across the file:
///  - every concrete pattern element names a topology router or a declared
///    destination (error);
///  - destination names are unique, origins exist, prefixes don't overlap
///    (error);
///  - duplicate requirement block names (error);
///  - a path pattern whose consecutive concrete elements are not adjacent
///    in the topology can never match (warning — wildcards may still
///    bridge, so only wildcard-free adjacency gaps are flagged);
///  - the same pattern both forbidden and allowed/ranked (error);
///  - preference rankings whose patterns disagree on endpoints (error);
///  - destination declared but never referenced (warning).
LintReport Lint(const net::Topology& topo, const Spec& spec);

}  // namespace ns::spec
