// AST for the NetComplete-style routing requirement language used by the
// paper for both global specifications and localized subspecifications.
//
// Global specification (paper Fig. 1a / Fig. 3):
//
//   dest D1 = 128.0.1.0/24
//
//   // No transit traffic
//   Req1 {
//     !(P1->...->P2)
//     !(P2->...->P1)
//   }
//
//   Req2 {
//     (Cust->R3->R1->P1->...->D1)
//     >> (Cust->R3->R2->P2->...->D1)
//   }
//
// Localized subspecification (paper Figs. 2, 4, 5) — same statement forms,
// but the block is scoped to a router (optionally a router/peer interface):
//
//   R3 {
//     preference { (R3->R1->P1->...->D1) >> (R3->R2->P2->...->D1) }
//     !(R3->R1->R2->P2->...->D1)
//   }
//
//   R2 to P2 { !(P1->R1->R2->P2) }
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/prefix.hpp"

namespace ns::spec {

// Pattern-direction convention (see DESIGN.md):
//  - A pattern whose final element is a *declared destination name* reads
//    in TRAFFIC direction: source router first, destination last
//    (Fig. 3: `Cust->R3->R1->P1->...->D1`).
//  - A pattern of router names only reads in ROUTE-ANNOUNCEMENT direction:
//    origin first ("routes from P1 to P2", Fig. 5: `P1->R1->R2->P2`;
//    Fig. 2: `R1->P1` = routes R1 announces to P1).
// This is the convention under which all of the paper's figures type-check
// against its prose.

/// One element of a path pattern: a concrete node name or the `...`
/// wildcard, which matches zero or more intermediate nodes.
struct PathElem {
  enum class Kind { kNode, kWildcard };
  Kind kind = Kind::kNode;
  std::string name;  ///< valid iff kind == kNode

  static PathElem Node(std::string n) {
    return PathElem{Kind::kNode, std::move(n)};
  }
  static PathElem Wildcard() { return PathElem{Kind::kWildcard, {}}; }

  bool IsWildcard() const noexcept { return kind == Kind::kWildcard; }
  friend bool operator==(const PathElem&, const PathElem&) = default;
};

/// A path pattern like `P1->...->P2`. Names refer to routers or declared
/// destinations (resolution happens at check/encode time).
struct PathPattern {
  std::vector<PathElem> elems;

  bool HasWildcard() const noexcept;
  /// True if every element is a concrete node (directly a topology path).
  bool IsConcrete() const noexcept { return !HasWildcard(); }
  /// Names of concrete elements, in order.
  std::vector<std::string> NodeNames() const;
  std::string ToString() const;

  friend bool operator==(const PathPattern&, const PathPattern&) = default;
};

/// `!(pattern)` — no announcement/traffic may follow a path matching the
/// pattern.
struct ForbidStmt {
  PathPattern path;
  friend bool operator==(const ForbidStmt&, const ForbidStmt&) = default;
};

/// `(p1) >> (p2) >> ...` — p1 is strictly preferred over p2, etc. The last
/// element of every pattern must be the same destination name.
struct PreferStmt {
  std::vector<PathPattern> ranking;  ///< most preferred first; size >= 2
  friend bool operator==(const PreferStmt&, const PreferStmt&) = default;
};

/// `(pattern)` on its own — at least one path matching the pattern must be
/// usable (routes propagate along it). Used when refining scenario 1
/// ("allow routes from Provider 1 to the customer network").
struct AllowStmt {
  PathPattern path;
  friend bool operator==(const AllowStmt&, const AllowStmt&) = default;
};

using Statement = std::variant<ForbidStmt, PreferStmt, AllowStmt>;

std::string ToString(const Statement& stmt);

/// A named requirement block. For global specs the scope fields are empty;
/// for localized subspecifications `scope_router` (and optionally
/// `scope_peer`, the `to <peer>` form) identify the component.
struct Requirement {
  std::string name;
  std::optional<std::string> scope_router;
  std::optional<std::string> scope_peer;
  std::vector<Statement> statements;

  bool IsLocalized() const noexcept { return scope_router.has_value(); }
  std::string ToString() const;
  friend bool operator==(const Requirement&, const Requirement&) = default;
};

/// `dest D1 = 128.0.1.0/24 at P1, P2` — binds a destination name to a
/// prefix announced by one or more origin routers. Multiple origins model
/// multi-homed destinations like the paper's D1, reachable through both
/// providers (Fig. 3).
struct DestDecl {
  std::string name;
  net::Prefix prefix;
  std::vector<std::string> origins;
  friend bool operator==(const DestDecl&, const DestDecl&) = default;
};

/// A parsed specification file: destination declarations plus requirements.
struct Spec {
  std::vector<DestDecl> destinations;
  std::vector<Requirement> requirements;

  const DestDecl* FindDestination(std::string_view name) const noexcept;
  const Requirement* FindRequirement(std::string_view name) const noexcept;

  /// Re-renders the spec in canonical DSL syntax (parse(ToString()) == *this).
  std::string ToString() const;

  friend bool operator==(const Spec&, const Spec&) = default;
};

}  // namespace ns::spec
