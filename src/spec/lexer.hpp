// Tokenizer for the requirement DSL. `//` comments run to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace ns::spec {

enum class TokenKind {
  kIdent,     // R1, Req1, D1, Cust, to, dest, at, preference
  kNumber,    // 24, 128 (components of prefixes)
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kBang,      // !
  kArrow,     // ->
  kEllipsis,  // ...
  kPrefer,    // >>
  kEquals,    // =
  kSlash,     // /
  kDot,       // .
  kComma,     // ,
  kEof,
};

const char* TokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  ///< source lexeme (idents/numbers); empty for punctuation
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`. On success the stream always ends with a kEof token.
util::Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace ns::spec
