// Validates a specification against an observed routing outcome.
//
// The checker is deliberately independent of the SMT encoder: the outcome
// comes from the concrete BGP simulator (bgp::Simulator), so synthesized
// configurations are validated by a second, unrelated implementation of the
// protocol semantics — mirroring the paper's concern that synthesizers and
// verifiers themselves can be buggy.
//
// Direction convention (see ast.hpp): route-only patterns are matched
// against announcement paths (origin router first); patterns ending in a
// declared destination are matched against traffic sequences
// (reverse(announcement path) + destination name).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spec/ast.hpp"
#include "util/status.hpp"

namespace ns::spec {

/// Announcement path: router names in propagation order, origin first.
using AnnouncementPath = std::vector<std::string>;

struct RoutingOutcome {
  /// destination name -> every announcement path along which a usable
  /// (accepted, not necessarily best) route exists. Each path runs from an
  /// origin of the destination to the router holding the route.
  std::map<std::string, std::vector<AnnouncementPath>> usable;

  /// destination name -> router name -> announcement path of the router's
  /// best (forwarding) route; absent when the router has no route.
  std::map<std::string, std::map<std::string, AnnouncementPath>> forwarding;
};

/// Traffic-direction node sequence for a usable route: reversed
/// announcement path with the destination name appended.
std::vector<std::string> TrafficSequence(const AnnouncementPath& via,
                                         const std::string& dest_name);

/// How `>>` treats paths that no ranking pattern mentions.
enum class PreferenceSemantics {
  /// Interpretation (1) of the paper's Scenario 2: unspecified paths for the
  /// ranked (source, destination) pair must be blocked. This is what the
  /// synthesizer implements.
  kStrictBlocked,
  /// Interpretation (2): unspecified paths are acceptable as a last resort
  /// when none of the ranked paths is available.
  kFallbackAllowed,
};

struct Violation {
  std::string requirement;  ///< requirement block name
  std::string statement;    ///< rendered statement text
  std::string detail;       ///< what concretely went wrong

  std::string ToString() const;
};

struct CheckResult {
  std::vector<Violation> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string ToString() const;
};

struct CheckOptions {
  PreferenceSemantics preference = PreferenceSemantics::kStrictBlocked;
};

/// Checks every (non-localized) requirement of `spec` against `outcome`.
CheckResult Check(const Spec& spec, const RoutingOutcome& outcome,
                  CheckOptions options = {});

}  // namespace ns::spec
