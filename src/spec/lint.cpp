#include "spec/lint.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ns::spec {

namespace {

class Linter {
 public:
  Linter(const net::Topology& topo, const Spec& spec)
      : topo_(topo), spec_(spec) {}

  LintReport Run() {
    CheckDestinations();
    CheckRequirementNames();
    for (const Requirement& req : spec_.requirements) {
      for (const Statement& stmt : req.statements) {
        std::visit([&](const auto& s) { CheckStmt(req, s); }, stmt);
      }
    }
    CheckForbidAllowConflicts();
    CheckUnusedDestinations();
    return std::move(report_);
  }

 private:
  void Add(LintSeverity severity, const std::string& requirement,
           std::string message) {
    report_.findings.push_back(
        LintFinding{severity, requirement, std::move(message)});
  }

  bool IsKnownName(const std::string& name) const {
    return topo_.FindRouter(name) != net::kInvalidRouter ||
           spec_.FindDestination(name) != nullptr;
  }

  void CheckDestinations() {
    std::set<std::string> names;
    for (std::size_t i = 0; i < spec_.destinations.size(); ++i) {
      const DestDecl& dest = spec_.destinations[i];
      if (!names.insert(dest.name).second) {
        Add(LintSeverity::kError, "",
            "duplicate destination name '" + dest.name + "'");
      }
      if (topo_.FindRouter(dest.name) != net::kInvalidRouter) {
        Add(LintSeverity::kError, "",
            "destination '" + dest.name + "' shadows a router name");
      }
      for (const std::string& origin : dest.origins) {
        if (topo_.FindRouter(origin) == net::kInvalidRouter) {
          Add(LintSeverity::kError, "",
              "destination '" + dest.name + "' originates at unknown router '" +
                  origin + "'");
        }
      }
      for (std::size_t j = i + 1; j < spec_.destinations.size(); ++j) {
        if (dest.prefix.Overlaps(spec_.destinations[j].prefix)) {
          Add(LintSeverity::kError, "",
              "destinations '" + dest.name + "' and '" +
                  spec_.destinations[j].name + "' have overlapping prefixes");
        }
      }
    }
  }

  void CheckRequirementNames() {
    std::set<std::string> names;
    for (const Requirement& req : spec_.requirements) {
      if (!names.insert(req.name).second && !req.IsLocalized()) {
        Add(LintSeverity::kError, req.name,
            "duplicate requirement block name");
      }
    }
  }

  void CheckPattern(const Requirement& req, const PathPattern& pattern) {
    for (const PathElem& elem : pattern.elems) {
      if (elem.IsWildcard()) continue;
      if (!IsKnownName(elem.name)) {
        Add(LintSeverity::kError, req.name,
            "'" + elem.name + "' in (" + pattern.ToString() +
                ") names neither a router nor a declared destination");
      }
    }
    // Wildcard-free adjacency: consecutive concrete ROUTER elements must be
    // linked, or the pattern can never match. (A trailing destination name
    // is not a router hop.)
    for (std::size_t i = 0; i + 1 < pattern.elems.size(); ++i) {
      const PathElem& a = pattern.elems[i];
      const PathElem& b = pattern.elems[i + 1];
      if (a.IsWildcard() || b.IsWildcard()) continue;
      const net::RouterId ra = topo_.FindRouter(a.name);
      const net::RouterId rb = topo_.FindRouter(b.name);
      if (ra == net::kInvalidRouter || rb == net::kInvalidRouter) {
        continue;  // destination names / unknowns handled above
      }
      if (!topo_.Adjacent(ra, rb)) {
        Add(LintSeverity::kWarning, req.name,
            "(" + pattern.ToString() + ") can never match: " + a.name +
                " and " + b.name + " are not linked");
      }
    }
  }

  void CheckStmt(const Requirement& req, const ForbidStmt& stmt) {
    CheckPattern(req, stmt.path);
    forbidden_.emplace_back(req.name, stmt.path);
  }

  void CheckStmt(const Requirement& req, const AllowStmt& stmt) {
    CheckPattern(req, stmt.path);
    allowed_.emplace_back(req.name, stmt.path);
  }

  void CheckStmt(const Requirement& req, const PreferStmt& stmt) {
    for (const PathPattern& pattern : stmt.ranking) {
      CheckPattern(req, pattern);
      allowed_.emplace_back(req.name, pattern);
    }
    if (stmt.ranking.size() < 2) {
      Add(LintSeverity::kError, req.name,
          "preference needs at least two ranked paths");
      return;
    }
    const std::string& src = stmt.ranking.front().elems.front().name;
    const std::string& dst = stmt.ranking.front().elems.back().name;
    for (const PathPattern& pattern : stmt.ranking) {
      if (pattern.elems.front().name != src ||
          pattern.elems.back().name != dst) {
        Add(LintSeverity::kError, req.name,
            "ranked paths must share endpoints (" + src + " ... " + dst + ")");
        break;
      }
    }
    std::set<std::string> seen;
    for (const PathPattern& pattern : stmt.ranking) {
      if (!seen.insert(pattern.ToString()).second) {
        Add(LintSeverity::kWarning, req.name,
            "the same path appears twice in one ranking: " +
                pattern.ToString());
      }
    }
  }

  void CheckForbidAllowConflicts() {
    for (const auto& [forbid_req, forbidden] : forbidden_) {
      for (const auto& [allow_req, allowed] : allowed_) {
        if (forbidden == allowed) {
          Add(LintSeverity::kError, forbid_req,
              "(" + forbidden.ToString() + ") is forbidden here but " +
                  "allowed/ranked in '" + allow_req + "'");
        }
      }
    }
  }

  void CheckUnusedDestinations() {
    for (const DestDecl& dest : spec_.destinations) {
      bool used = false;
      for (const Requirement& req : spec_.requirements) {
        for (const Statement& stmt : req.statements) {
          const auto mentions = [&](const PathPattern& pattern) {
            return std::any_of(pattern.elems.begin(), pattern.elems.end(),
                               [&](const PathElem& elem) {
                                 return !elem.IsWildcard() &&
                                        elem.name == dest.name;
                               });
          };
          if (const auto* f = std::get_if<ForbidStmt>(&stmt)) {
            used = used || mentions(f->path);
          } else if (const auto* a = std::get_if<AllowStmt>(&stmt)) {
            used = used || mentions(a->path);
          } else if (const auto* p = std::get_if<PreferStmt>(&stmt)) {
            for (const PathPattern& pattern : p->ranking) {
              used = used || mentions(pattern);
            }
          }
        }
      }
      if (!used) {
        Add(LintSeverity::kWarning, "",
            "destination '" + dest.name + "' is declared but never used");
      }
    }
  }

  const net::Topology& topo_;
  const Spec& spec_;
  LintReport report_;
  std::vector<std::pair<std::string, PathPattern>> forbidden_;
  std::vector<std::pair<std::string, PathPattern>> allowed_;
};

}  // namespace

std::string LintFinding::ToString() const {
  std::ostringstream os;
  os << (severity == LintSeverity::kError ? "error" : "warning");
  if (!requirement.empty()) os << " in " << requirement;
  os << ": " << message;
  return os.str();
}

bool LintReport::HasErrors() const noexcept {
  return std::any_of(findings.begin(), findings.end(),
                     [](const LintFinding& finding) {
                       return finding.severity == LintSeverity::kError;
                     });
}

std::string LintReport::ToString() const {
  if (findings.empty()) return "no findings";
  std::ostringstream os;
  for (const LintFinding& finding : findings) {
    os << finding.ToString() << "\n";
  }
  return os.str();
}

LintReport Lint(const net::Topology& topo, const Spec& spec) {
  return Linter(topo, spec).Run();
}

}  // namespace ns::spec
