// Concrete control-plane simulator.
//
// Synchronous-round path-vector propagation: every router re-advertises all
// accepted routes (add-path-style; see route.hpp for why) to every neighbor
// each round, with export/import route-maps applied and loop prevention by
// path inspection. Simple paths are finite, so a fixpoint always exists; we
// additionally bound rounds at #routers + 2 and assert stability.
//
// The simulator shares only the config model with the SMT encoder — no
// encoding code — so it serves as an independent oracle for synthesized
// configurations (the paper's "verifiers and synthesizers can contain
// bugs" concern).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "config/device.hpp"
#include "net/topology.hpp"
#include "spec/ast.hpp"
#include "spec/checker.hpp"
#include "util/status.hpp"

namespace ns::bgp {

/// Converged control-plane state.
struct SimulationResult {
  /// router name -> every accepted route (its Adj-RIB-In across peers,
  /// plus locally originated routes), deterministic order.
  std::map<std::string, std::vector<Route>> rib;

  /// router name -> prefix -> best route index into rib[router] (per the
  /// decision process); absent when no route is known.
  std::map<std::string, std::map<net::Prefix, int>> best;

  int rounds = 0;  ///< rounds until fixpoint

  const Route* BestRoute(const std::string& router,
                         const net::Prefix& prefix) const;

  /// All accepted routes for `prefix` anywhere in the network.
  std::vector<Route> RoutesFor(const net::Prefix& prefix) const;
};

/// Runs the simulation. Fails (kInvalidArgument) if `network` still
/// contains holes, or references routers absent from `topo`.
util::Result<SimulationResult> Simulate(const net::Topology& topo,
                                        const config::NetworkConfig& network);

/// Projects a simulation result onto the spec checker's view: traffic-
/// direction paths per declared destination, with the destination name
/// appended to each node sequence.
spec::RoutingOutcome ToRoutingOutcome(const SimulationResult& sim,
                                      const spec::Spec& spec);

}  // namespace ns::bgp
