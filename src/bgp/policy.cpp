#include "bgp/policy.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace ns::bgp {

using config::MatchClause;
using config::MatchField;
using config::RmAction;
using config::RouteMap;
using config::SetClause;

bool Matches(const MatchClause& match, const Route& route) {
  NS_ASSERT_MSG(!match.HasHole(), "concrete policy evaluation on a sketch");
  switch (match.field.value()) {
    case MatchField::kAny:
      return true;
    case MatchField::kPrefix:
      return match.prefix.value() == route.prefix;
    case MatchField::kCommunity:
      return route.communities.count(match.community.value()) > 0;
    case MatchField::kNextHop:
      return match.next_hop.value() == route.next_hop;
    case MatchField::kViaContains:
      return std::find(route.via.begin(), route.via.end(),
                       match.via.value()) != route.via.end();
  }
  return false;
}

void ApplySets(const SetClause& sets, Route& route) {
  NS_ASSERT_MSG(!sets.HasHole(), "concrete policy evaluation on a sketch");
  if (sets.local_pref) route.local_pref = sets.local_pref->value();
  if (sets.add_community) route.communities.insert(sets.add_community->value());
  if (sets.next_hop) route.next_hop = sets.next_hop->value();
  if (sets.med) route.med = sets.med->value();
}

std::optional<Route> ApplyRouteMap(const RouteMap* map, Route route,
                                   bool* set_next_hop) {
  if (set_next_hop != nullptr) *set_next_hop = false;
  if (map == nullptr) return route;  // no policy: permit unmodified
  for (const config::RouteMapEntry& entry : map->entries) {
    if (!Matches(entry.match, route)) continue;
    if (entry.action.value() == RmAction::kDeny) return std::nullopt;
    ApplySets(entry.sets, route);
    if (set_next_hop != nullptr) {
      *set_next_hop = entry.sets.next_hop.has_value();
    }
    return route;
  }
  return std::nullopt;  // implicit deny
}

}  // namespace ns::bgp
