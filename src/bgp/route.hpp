// Concrete BGP route state as it propagates through the network.
//
// Modeling notes (shared with the SMT encoder — see DESIGN.md §4):
//  - propagation is path-vector over *routers* (the paper's requirement
//    language speaks about router-level paths like P1->R1->R2->P2);
//  - every accepted route is re-advertised (add-path-style flooding), so
//    the set of usable paths equals the set of policy-surviving simple
//    paths — exactly what the NetComplete-style encoder enumerates;
//  - local-pref travels with the route and import maps may overwrite it.
#pragma once

#include <string>
#include <vector>

#include "config/attrs.hpp"
#include "net/prefix.hpp"

namespace ns::bgp {

struct Route {
  net::Prefix prefix;                      ///< announced destination
  std::vector<std::string> via;            ///< propagation path, origin first
  int local_pref = config::kDefaultLocalPref;
  int med = 0;
  config::CommunitySet communities;
  net::Ipv4Addr next_hop;                  ///< address of the advertising hop

  /// Router currently holding the route (last element of `via`).
  const std::string& AtRouter() const { return via.back(); }

  /// Number of links traversed so far.
  std::size_t HopCount() const noexcept { return via.size() - 1; }

  /// True if advertising to `router` would form a loop.
  bool WouldLoop(const std::string& router) const noexcept;

  /// Traffic-direction node sequence: reverse of `via` (router towards
  /// origin), used for spec checking.
  std::vector<std::string> TrafficPath() const;

  std::string ToString() const;

  friend bool operator==(const Route&, const Route&) = default;
};

}  // namespace ns::bgp
