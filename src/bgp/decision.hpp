// The BGP decision process: picks the best route among candidates for the
// same destination prefix. Deterministic by construction so the simulator
// is reproducible and the SMT encoder can mirror the exact same order.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.hpp"

namespace ns::bgp {

/// Strict-weak "is `a` better than `b`" ordering:
///   1. higher local-pref wins;
///   2. fewer hops wins;
///   3. lower MED wins;
///   4. lexicographically smaller propagation path wins (deterministic
///      stand-in for router-id tie-breaking).
bool BetterThan(const Route& a, const Route& b) noexcept;

/// Best route among `candidates` (nullopt when empty).
std::optional<Route> SelectBest(const std::vector<Route>& candidates);

/// Index of the best route; -1 when empty.
int SelectBestIndex(const std::vector<Route>& candidates) noexcept;

}  // namespace ns::bgp
