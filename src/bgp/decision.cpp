#include "bgp/decision.hpp"

namespace ns::bgp {

bool BetterThan(const Route& a, const Route& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.HopCount() != b.HopCount()) return a.HopCount() < b.HopCount();
  if (a.med != b.med) return a.med < b.med;
  return a.via < b.via;
}

std::optional<Route> SelectBest(const std::vector<Route>& candidates) {
  const int index = SelectBestIndex(candidates);
  if (index < 0) return std::nullopt;
  return candidates[static_cast<std::size_t>(index)];
}

int SelectBestIndex(const std::vector<Route>& candidates) noexcept {
  int best = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (best < 0 ||
        BetterThan(candidates[i], candidates[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace ns::bgp
