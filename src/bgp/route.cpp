#include "bgp/route.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace ns::bgp {

bool Route::WouldLoop(const std::string& router) const noexcept {
  return std::find(via.begin(), via.end(), router) != via.end();
}

std::vector<std::string> Route::TrafficPath() const {
  return {via.rbegin(), via.rend()};
}

std::string Route::ToString() const {
  std::ostringstream os;
  os << prefix.ToString() << " via " << util::Join(via, "->")
     << " lp=" << local_pref << " med=" << med;
  if (!communities.empty()) {
    os << " comm={";
    bool first = true;
    for (config::Community c : communities) {
      if (!first) os << ",";
      os << config::FormatCommunity(c);
      first = false;
    }
    os << "}";
  }
  os << " nh=" << next_hop.ToString();
  return os.str();
}

}  // namespace ns::bgp
