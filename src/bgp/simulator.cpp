#include "bgp/simulator.hpp"

#include <algorithm>
#include <set>

#include "bgp/decision.hpp"
#include "bgp/policy.hpp"
#include "util/logging.hpp"

namespace ns::bgp {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

util::Status Validate(const net::Topology& topo,
                      const config::NetworkConfig& network) {
  if (network.HasHole()) {
    return Error(ErrorCode::kInvalidArgument,
                 "cannot simulate a configuration with holes; synthesize or "
                 "fill the sketch first");
  }
  for (const auto& [name, router] : network.routers) {
    const net::RouterId id = topo.FindRouter(name);
    if (id == net::kInvalidRouter) {
      return Error(ErrorCode::kInvalidArgument,
                   "configured router '" + name + "' is not in the topology");
    }
    for (const config::Neighbor& neighbor : router.neighbors) {
      const net::RouterId peer = topo.FindRouter(neighbor.peer);
      if (peer == net::kInvalidRouter || !topo.Adjacent(id, peer)) {
        return Error(ErrorCode::kInvalidArgument,
                     "router '" + name + "' has a BGP session with '" +
                         neighbor.peer + "' but no link to it");
      }
      if (neighbor.import_map && !router.FindRouteMap(*neighbor.import_map)) {
        return Error(ErrorCode::kInvalidArgument,
                     name + ": missing route-map '" + *neighbor.import_map + "'");
      }
      if (neighbor.export_map && !router.FindRouteMap(*neighbor.export_map)) {
        return Error(ErrorCode::kInvalidArgument,
                     name + ": missing route-map '" + *neighbor.export_map + "'");
      }
    }
  }
  return util::Status::Ok();
}

/// Identity of a route within a RIB: destination + propagation path.
/// Attributes are a function of (prefix, path) under concrete policies.
using RouteKey = std::pair<net::Prefix, std::vector<std::string>>;

RouteKey KeyOf(const Route& route) { return {route.prefix, route.via}; }

}  // namespace

const Route* SimulationResult::BestRoute(const std::string& router,
                                         const net::Prefix& prefix) const {
  const auto rib_it = rib.find(router);
  const auto best_it = best.find(router);
  if (rib_it == rib.end() || best_it == best.end()) return nullptr;
  const auto idx_it = best_it->second.find(prefix);
  if (idx_it == best_it->second.end()) return nullptr;
  return &rib_it->second[static_cast<std::size_t>(idx_it->second)];
}

std::vector<Route> SimulationResult::RoutesFor(const net::Prefix& prefix) const {
  std::vector<Route> out;
  for (const auto& [router, routes] : rib) {
    for (const Route& route : routes) {
      if (route.prefix == prefix) out.push_back(route);
    }
  }
  return out;
}

Result<SimulationResult> Simulate(const net::Topology& topo,
                                  const config::NetworkConfig& network) {
  if (auto status = Validate(topo, network); !status.ok()) {
    return status.error();
  }

  SimulationResult result;
  std::map<std::string, std::set<RouteKey>> seen;

  // Originate local networks.
  for (const auto& [name, router] : network.routers) {
    for (const net::Prefix& prefix : router.networks) {
      Route route;
      route.prefix = prefix;
      route.via = {name};
      result.rib[name].push_back(route);
      seen[name].insert(KeyOf(route));
    }
    result.rib.try_emplace(name);  // every router gets a (possibly empty) RIB
  }

  // Synchronous rounds to fixpoint. Each new route extends a simple path,
  // so the number of rounds is bounded by the longest simple path.
  const int max_rounds = static_cast<int>(topo.NumRouters()) + 2;
  bool changed = true;
  while (changed) {
    NS_ASSERT_MSG(result.rounds <= max_rounds, "simulation failed to converge");
    changed = false;
    ++result.rounds;

    std::vector<Route> additions;
    std::vector<std::string> addition_owner;

    for (const auto& [sender_name, sender_cfg] : network.routers) {
      const net::RouterId sender_id = topo.FindRouter(sender_name);
      for (const Route& route : result.rib[sender_name]) {
        for (const config::Neighbor& session : sender_cfg.neighbors) {
          if (route.WouldLoop(session.peer)) continue;
          const auto* receiver_cfg = network.FindRouter(session.peer);
          if (receiver_cfg == nullptr) continue;  // peer outside managed set

          // The export map matches on the route as held (received
          // next-hop); next-hop-self is applied afterwards unless the map
          // rewrote the next-hop explicitly.
          bool map_set_nh = false;
          auto exported = ApplyRouteMap(sender_cfg.ExportPolicy(session.peer),
                                        route, &map_set_nh);
          if (!exported) continue;
          if (!map_set_nh) {
            const net::RouterId peer_id = topo.FindRouter(session.peer);
            if (const auto addr = topo.InterfaceAddr(sender_id, peer_id)) {
              exported->next_hop = *addr;
            }
          }
          exported->via.push_back(session.peer);
          auto imported = ApplyRouteMap(
              receiver_cfg->ImportPolicy(sender_name), std::move(*exported));
          if (!imported) continue;

          if (seen[session.peer].insert(KeyOf(*imported)).second) {
            additions.push_back(std::move(*imported));
            addition_owner.push_back(session.peer);
            changed = true;
          }
        }
      }
    }

    for (std::size_t i = 0; i < additions.size(); ++i) {
      result.rib[addition_owner[i]].push_back(std::move(additions[i]));
    }
  }

  // Decision process per (router, prefix).
  for (auto& [router, routes] : result.rib) {
    std::map<net::Prefix, std::vector<int>> by_prefix;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      by_prefix[routes[i].prefix].push_back(static_cast<int>(i));
    }
    for (const auto& [prefix, indices] : by_prefix) {
      int best = indices.front();
      for (int idx : indices) {
        if (BetterThan(routes[static_cast<std::size_t>(idx)],
                       routes[static_cast<std::size_t>(best)])) {
          best = idx;
        }
      }
      result.best[router][prefix] = best;
    }
  }

  NS_DEBUG << "simulation converged after " << result.rounds << " rounds";
  return result;
}

spec::RoutingOutcome ToRoutingOutcome(const SimulationResult& sim,
                                      const spec::Spec& spec) {
  spec::RoutingOutcome outcome;
  for (const spec::DestDecl& dest : spec.destinations) {
    auto& usable = outcome.usable[dest.name];
    auto& forwarding = outcome.forwarding[dest.name];
    const auto originates = [&](const std::string& router) {
      return std::find(dest.origins.begin(), dest.origins.end(), router) !=
             dest.origins.end();
    };
    for (const auto& [router, routes] : sim.rib) {
      for (const Route& route : routes) {
        if (route.prefix != dest.prefix) continue;
        if (!originates(route.via.front())) continue;
        usable.push_back(route.via);
      }
      const Route* best = sim.BestRoute(router, dest.prefix);
      if (best != nullptr && originates(best->via.front())) {
        forwarding.emplace(router, best->via);
      }
    }
    std::sort(usable.begin(), usable.end());
  }
  return outcome;
}

}  // namespace ns::bgp
