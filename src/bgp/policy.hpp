// Concrete route-map semantics: the reference implementation the SMT
// encoder must agree with (tests cross-check the two on random inputs).
#pragma once

#include <optional>

#include "bgp/route.hpp"
#include "config/routemap.hpp"

namespace ns::bgp {

/// Whether a (hole-free) match clause matches the route.
bool Matches(const config::MatchClause& match, const Route& route);

/// Applies a (hole-free) set clause in place.
void ApplySets(const config::SetClause& sets, Route& route);

/// Runs `map` over `route`: first entry whose match clause accepts the
/// route decides (permit => sets applied, route returned; deny => nullopt).
/// A route matching no entry is denied (Cisco default). `map == nullptr`
/// (session without policy) permits the route unmodified.
///
/// `set_next_hop` (optional) reports whether the applied entry rewrote the
/// next-hop — the simulator uses this to decide whether the default
/// next-hop-self rewrite still applies after an export map.
///
/// Requires the map to be hole-free; call sites working with sketches go
/// through the encoder instead.
std::optional<Route> ApplyRouteMap(const config::RouteMap* map, Route route,
                                   bool* set_next_hop = nullptr);

}  // namespace ns::bgp
